//! Umbrella crate for the Ultrascalar reproduction workspace.
//!
//! Re-exports the member crates so examples and integration tests can use
//! a single dependency root.
pub use ultrascalar as core;
pub use ultrascalar_circuit as circuit;
pub use ultrascalar_isa as isa;
pub use ultrascalar_memsys as memsys;
pub use ultrascalar_prefix as prefix;
pub use ultrascalar_vlsi as vlsi;
