//! Workspace-level regression suite for the paper's headline claims —
//! every table and figure has an assertion here (the experiment
//! binaries in `ultrascalar-bench` print the same data as reports).

use ultrascalar_suite::core::{PredictorKind, ProcConfig, Processor, Ultrascalar};
use ultrascalar_suite::isa::workload;
use ultrascalar_suite::memsys::Bandwidth;
use ultrascalar_suite::vlsi::metrics::ArchParams;
use ultrascalar_suite::vlsi::{empirical, fit, hybrid, threed, usi, usii, Tech};

/// E2 / Figure 3: the paper's timing diagram, exactly.
#[test]
fn figure3_issue_times() {
    let prog = workload::figure1_sequence();
    let r = Ultrascalar::new(ProcConfig::ultrascalar_i(8)).run(&prog);
    let issues: Vec<u64> = r.timings.iter().take(8).map(|t| t.issue).collect();
    assert_eq!(issues, vec![0, 10, 0, 11, 0, 3, 0, 1]);
}

/// E7 / Figure 11, headline cells: Ultrascalar I wire delay √n at low
/// bandwidth; hybrid area Θ(nL); Ultrascalar II side Θ(n + L).
#[test]
fn figure11_headline_exponents() {
    let tech = Tech::cmos_035();
    let mem = Bandwidth::constant(1.0);
    let sweep = |f: &dyn Fn(usize) -> f64| -> f64 {
        let pts: Vec<(f64, f64)> = (4..=10u32)
            .map(|k| {
                let n = 4usize.pow(k);
                (n as f64, f(n))
            })
            .collect();
        fit::fit_exponent_tail(&pts, 4).exponent
    };
    let usi_wire = sweep(&|n| {
        usi::metrics(
            &ArchParams {
                n,
                l: 32,
                bits: 32,
                mem,
            },
            &tech,
        )
        .wire_um
    });
    assert!(
        (usi_wire - 0.5).abs() < 0.1,
        "US-I wire exponent {usi_wire}"
    );
    let hy_area = sweep(&|n| {
        hybrid::metrics(
            &ArchParams {
                n,
                l: 32,
                bits: 32,
                mem,
            },
            &tech,
        )
        .area_um2
    });
    assert!(
        (hy_area - 1.0).abs() < 0.15,
        "hybrid area exponent {hy_area}"
    );
    let usii_side = sweep(&|n| {
        usii::side_linear_um(
            &ArchParams {
                n,
                l: 32,
                bits: 32,
                mem,
            },
            &tech,
        )
    });
    assert!(
        (usii_side - 1.0).abs() < 0.1,
        "US-II side exponent {usii_side}"
    );
}

/// §7: the US-I/US-II crossover scales as Θ(L²) — the crossover point
/// n*, measured per L, keeps n*/L² within one bounded band.
#[test]
fn crossover_scales_as_l_squared() {
    let tech = Tech::cmos_035();
    let mem = Bandwidth::constant(1.0);
    let mut ratios = Vec::new();
    for l in [8usize, 16, 32, 64] {
        let mut crossover = None;
        for k in 1..=12u32 {
            let n = 4usize.pow(k);
            let p = ArchParams {
                n,
                l,
                bits: 32,
                mem,
            };
            if usi::metrics(&p, &tech).side_um < usii::side_linear_um(&p, &tech) {
                crossover = Some(n as f64);
                break;
            }
        }
        let n_star = crossover.expect("crossover exists in range");
        ratios.push(n_star / (l * l) as f64);
    }
    let lo = ratios.iter().cloned().fold(f64::MAX, f64::min);
    let hi = ratios.iter().cloned().fold(0.0f64, f64::max);
    // Power-of-4 sampling quantises n* by 4×; allow that plus a
    // constant.
    assert!(hi / lo <= 16.0, "n*/L² band too wide: {ratios:?}");
}

/// E8 / Figure 12: the calibrated model reproduces the empirical
/// comparison — US-I ≈ 7 cm, hybrid an order of magnitude denser.
#[test]
fn figure12_density_ratio() {
    let f = empirical::figure12(&Tech::cmos_035());
    assert!((f.ultrascalar_i.width_cm - 7.0).abs() < 1.5);
    assert!(f.density_ratio > 6.0 && f.density_ratio < 20.0);
}

/// E10 / §6: optimal cluster size is Θ(L).
#[test]
fn optimal_cluster_theta_l() {
    let tech = Tech::cmos_035();
    for l in [8usize, 32, 128] {
        let p = ArchParams {
            n: 1 << 14,
            l,
            bits: 32,
            mem: Bandwidth::constant(1.0),
        };
        let (c_star, _) = hybrid::optimal_cluster(&p, &tech);
        assert!(
            c_star >= l / 4 && c_star <= 8 * l,
            "L={l}: C*={c_star} is not Θ(L)"
        );
    }
}

/// E11 / §7: 3-D volumes — US-I linear in n, US-II quadratic, hybrid's
/// optimal cluster L^(3/4).
#[test]
fn three_d_bounds() {
    let tech = Tech::cmos_035();
    let p_small = ArchParams {
        n: 1 << 10,
        l: 32,
        bits: 32,
        mem: Bandwidth::constant(1.0),
    };
    let p_big = ArchParams {
        n: 1 << 14,
        ..p_small
    };
    let v1 = threed::usi_3d(&p_big, &tech).volume_um3 / threed::usi_3d(&p_small, &tech).volume_um3;
    assert!(
        (v1 - 16.0).abs() < 1.0,
        "US-I 3-D volume ratio {v1} (linear ⇒ 16)"
    );
    let v2 =
        threed::usii_3d(&p_big, &tech).volume_um3 / threed::usii_3d(&p_small, &tech).volume_um3;
    assert!(
        (v2 - 256.0).abs() < 20.0,
        "US-II 3-D volume ratio {v2} (quadratic ⇒ 256)"
    );
    assert_eq!(threed::optimal_cluster_3d(256), 64);
}

/// §4: the batch-refill Ultrascalar II pays a real IPC penalty vs the
/// wrap-around Ultrascalar I on every serial kernel, and the hybrid
/// sits between them.
#[test]
fn ipc_ordering_usii_vs_usi() {
    for (name, prog) in [
        ("fibonacci", workload::fibonacci(48)),
        ("dot_product", workload::dot_product(48)),
        ("sum_reduction", workload::sum_reduction(48)),
    ] {
        let n = 16;
        let usi_c = Ultrascalar::new(ProcConfig::ultrascalar_i(n))
            .run(&prog)
            .cycles;
        let hy_c = Ultrascalar::new(ProcConfig::hybrid(n, 4)).run(&prog).cycles;
        let usii_c = Ultrascalar::new(ProcConfig::ultrascalar_ii(n))
            .run(&prog)
            .cycles;
        assert!(
            usi_c <= hy_c && hy_c <= usii_c && usi_c < usii_c,
            "{name}: {usi_c} / {hy_c} / {usii_c}"
        );
    }
}

/// §2: misprediction recovery is one cycle — turning prediction off
/// entirely (always-wrong on taken loop branches) costs a bounded
/// per-misprediction penalty, and never corrupts state.
#[test]
fn one_cycle_recovery_penalty() {
    let prog = workload::sum_reduction(64);
    let n = 8;
    let perfect = Ultrascalar::new(ProcConfig::ultrascalar_i(n)).run(&prog);
    let wrong =
        Ultrascalar::new(ProcConfig::ultrascalar_i(n).with_predictor(PredictorKind::NotTaken))
            .run(&prog);
    assert_eq!(perfect.regs, wrong.regs);
    let penalty = wrong.cycles - perfect.cycles;
    assert!(penalty <= 4 * wrong.stats.mispredictions, "{penalty}");
}

/// The paper's opening motivation: the Ultrascalar's gate delay is
/// logarithmic where conventional broadcast circuits are quadratic —
/// check the gate-level measurement end to end through the circuit
/// crate: 64× more stations, constant extra depth per doubling.
#[test]
fn gate_depth_log_scaling_measured() {
    use ultrascalar_suite::circuit::generators::{CombineOp, CsppTree};
    use ultrascalar_suite::circuit::Netlist;
    let depth_at = |n: usize| {
        let mut nl = Netlist::new();
        let tree = CsppTree::build(&mut nl, n, 33, CombineOp::First);
        let mut inputs = vec![false; nl.num_inputs()];
        inputs[tree.seg[0].0 as usize] = true;
        nl.evaluate(&inputs, &[]).unwrap().max_level()
    };
    let d8 = depth_at(8);
    let d512 = depth_at(512);
    // 64× more stations: six doublings, a small constant each.
    assert!(d512 - d8 <= 6 * 4, "d8={d8} d512={d512}");
}
