//! Workspace integration tests: the full pipeline from assembly text
//! through every processor model, the memory subsystem and the
//! gate-level substrate, crossing every crate boundary.

use ultrascalar_suite::core::processor::check_against_golden;
use ultrascalar_suite::core::{BaselineOoO, PredictorKind, ProcConfig, Processor, Ultrascalar};
use ultrascalar_suite::isa::{assemble, workload, Interp};
use ultrascalar_suite::memsys::{Bandwidth, MemConfig, NetworkKind};

/// Assembly text → program → three processors + baseline → identical
/// architectural state, equal to the golden interpreter.
#[test]
fn assembly_to_silicon_pipeline() {
    let src = "
            li   r1, 0
            li   r2, 24          ; n
            li   r3, 0           ; acc
            li   r7, 0
        loop:
            lw   r4, (r1)
            mul  r4, r4, r4
            add  r3, r3, r4
            addi r1, r1, 1
            subi r2, r2, 1
            bne  r2, r7, loop
            sw   r3, 100(r7)
            halt
    ";
    let program = assemble(src, 8).unwrap().with_init_mem((1..=24).collect());

    let expect: u32 = (1u32..=24).map(|x| x * x).sum();
    let mem = MemConfig {
        n_leaves: 8,
        bandwidth: Bandwidth::sqrt(),
        banks: 4,
        bank_occupancy: 1,
        hop_latency: 1,
        base_latency: 0,
        words: 256,
        network: NetworkKind::FatTree,
        cluster_cache: None,
    };
    for cfg in [
        ProcConfig::ultrascalar_i(8),
        ProcConfig::hybrid(8, 4),
        ProcConfig::ultrascalar_ii(8),
    ] {
        let cfg = cfg
            .with_mem(mem.clone())
            .with_predictor(PredictorKind::Bimodal(16));
        let mut p = Ultrascalar::new(cfg.clone());
        let r = p.run(&program);
        assert!(r.halted, "{}", p.name());
        assert_eq!(r.regs[3], expect, "{}", p.name());
        assert_eq!(r.mem[100], expect, "{}", p.name());
        check_against_golden(&r, &program, 100_000).unwrap();

        let mut b = BaselineOoO::new(cfg);
        let rb = b.run(&program);
        assert_eq!(rb.regs[3], expect);
    }
}

/// The standard kernel suite, all processor shapes, stressed memory,
/// imperfect prediction: architectural equivalence end to end.
#[test]
fn full_suite_on_all_models_with_realistic_config() {
    let n = 16;
    let mem = MemConfig::realistic(n, 1 << 12);
    for (name, prog) in workload::standard_suite(99) {
        for cluster in [1usize, 4, 16] {
            let cfg = ProcConfig::hybrid(n, cluster)
                .with_mem(mem.clone())
                .with_predictor(PredictorKind::Bimodal(128));
            let mut p = Ultrascalar::new(cfg);
            let r = p.run(&prog);
            check_against_golden(&r, &prog, 5_000_000)
                .unwrap_or_else(|e| panic!("{name} on {}: {e}", p.name()));
        }
    }
}

/// Random programs across the whole configuration cube.
#[test]
fn random_cube() {
    for seed in 0..6u64 {
        let prog = workload::random_program(&workload::RandomCfg {
            seed,
            len: 200,
            mem_frac: 0.3,
            branch_frac: 0.12,
            ..Default::default()
        });
        for n in [2usize, 8, 32] {
            for pred in [PredictorKind::Perfect, PredictorKind::NotTaken] {
                let cfg = ProcConfig::ultrascalar_i(n).with_predictor(pred);
                let mut p = Ultrascalar::new(cfg);
                let r = p.run(&prog);
                check_against_golden(&r, &prog, 1_000_000)
                    .unwrap_or_else(|e| panic!("seed {seed} n {n} {pred:?}: {e}"));
            }
        }
    }
}

/// The interpreter and the processors agree on dynamic instruction
/// counts (commit-stream equivalence, not just final state).
#[test]
fn committed_counts_match_interpreter() {
    for (name, prog) in workload::standard_suite(7) {
        let mut interp = Interp::new(&prog, 1 << 12);
        let steps = interp.run(5_000_000).steps() as u64;
        let mut p = Ultrascalar::new(ProcConfig::ultrascalar_ii(8));
        let r = p.run(&prog);
        assert_eq!(r.stats.committed, steps, "{name}");
    }
}

/// Gate-level CSPP ≡ algorithmic CSPP ≡ what the processor actually
/// forwards: the value each station receives for a register equals the
/// circuit's output for the same snapshot.
#[test]
fn circuit_agrees_with_prefix_model_through_umbrella() {
    use ultrascalar_suite::circuit::build::bus_value;
    use ultrascalar_suite::circuit::generators::{CombineOp, CsppTree};
    use ultrascalar_suite::circuit::Netlist;
    use ultrascalar_suite::prefix::{cspp_ring, First};

    let n = 24;
    let vals: Vec<u64> = (0..n as u64).map(|i| i * 13 % 97).collect();
    let seg: Vec<bool> = (0..n).map(|i| i % 5 == 2).collect();

    let mut nl = Netlist::new();
    let tree = CsppTree::build(&mut nl, n, 8, CombineOp::First);
    let mut inputs = vec![false; nl.num_inputs()];
    for i in 0..n {
        for (b, &w) in tree.values[i].iter().enumerate() {
            inputs[w.0 as usize] = vals[i] >> b & 1 == 1;
        }
        inputs[tree.seg[i].0 as usize] = seg[i];
    }
    let eval = nl.evaluate(&inputs, &[]).unwrap();
    let model = cspp_ring::<u64, First>(&vals, &seg);
    for (i, m) in model.iter().enumerate() {
        assert_eq!(bus_value(&eval, &tree.out_value[i]), m.value, "station {i}");
    }
}

/// Memory-bandwidth plumbing reaches the processor: the same kernel is
/// strictly slower through a bandwidth-1 tree than through an ideal
/// one, and both stay architecturally correct.
#[test]
fn bandwidth_shapes_performance_not_semantics() {
    let mut src = String::from("li r0, 0\n");
    for i in 0..24 {
        src.push_str(&format!("lw r{}, {}(r0)\n", 1 + i % 7, i));
    }
    src.push_str("halt\n");
    let prog = assemble(&src, 8)
        .unwrap()
        .with_init_mem((0..64).map(|i| i * 2 + 1).collect());

    let fast_cfg = ProcConfig::ultrascalar_i(8).with_mem(MemConfig::ideal(8, 128));
    let slow_cfg = ProcConfig::ultrascalar_i(8).with_mem(MemConfig {
        n_leaves: 8,
        bandwidth: Bandwidth::constant(1.0),
        banks: 8,
        bank_occupancy: 1,
        hop_latency: 0,
        base_latency: 0,
        words: 128,
        network: NetworkKind::FatTree,
        cluster_cache: None,
    });
    let fast = Ultrascalar::new(fast_cfg).run(&prog);
    let slow = Ultrascalar::new(slow_cfg).run(&prog);
    assert!(fast.halted && slow.halted);
    assert_eq!(fast.regs, slow.regs);
    assert!(
        slow.cycles > fast.cycles,
        "bandwidth 1 ({}) must cost more cycles than ideal ({})",
        slow.cycles,
        fast.cycles
    );
    assert!(slow.stats.mem.link_rejections > 0);
}
