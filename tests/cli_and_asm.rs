//! Integration tests for the `usim` CLI plumbing and the shipped
//! sample programs in `asm/`.

use ultrascalar_bench::cli;
use ultrascalar_suite::isa::{assemble, Interp};

fn sample(path: &str) -> String {
    std::fs::read_to_string(format!("{}/{path}", env!("CARGO_MANIFEST_DIR")))
        .unwrap_or_else(|e| panic!("read {path}: {e}"))
}

#[test]
fn all_shipped_samples_assemble_and_halt() {
    for name in ["asm/dot_product.asm", "asm/collatz.asm", "asm/fib.asm"] {
        let src = sample(name);
        let p = assemble(&src, 32).unwrap_or_else(|e| panic!("{name}: {e}"));
        let mut m = Interp::new(&p, 1 << 16);
        assert!(m.run(5_000_000).halted(), "{name} must halt");
    }
}

#[test]
fn collatz_of_27_is_111_steps() {
    let p = assemble(&sample("asm/collatz.asm"), 32).unwrap();
    let mut m = Interp::new(&p, 1 << 10);
    m.run(1_000_000);
    assert_eq!(m.regs[2], 111);
}

#[test]
fn cli_runs_every_sample_on_every_arch() {
    for name in ["asm/dot_product.asm", "asm/collatz.asm", "asm/fib.asm"] {
        let src = sample(name);
        for arch in ["usi", "usii", "hybrid"] {
            let o = cli::parse_run(
                &[name, "--arch", arch, "--window", "16"]
                    .iter()
                    .map(|s| s.to_string())
                    .collect::<Vec<_>>(),
            )
            .unwrap();
            let (r, report) = cli::execute_run(&o, &src).unwrap();
            assert!(r.halted, "{name} on {arch}");
            assert!(report.contains("IPC"), "{name} on {arch}");
        }
    }
}

#[test]
fn cli_feature_flags_run_the_samples() {
    let src = sample("asm/dot_product.asm");
    let o = cli::parse_run(
        &[
            "x.asm",
            "--arch",
            "hybrid",
            "--window",
            "16",
            "--cluster",
            "4",
            "--renaming",
            "--cache",
            "--alus",
            "4",
            "--fetch-width",
            "8",
            "--mem-exp",
            "0.5",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect::<Vec<_>>(),
    )
    .unwrap();
    let (r, _) = cli::execute_run(&o, &src).unwrap();
    assert!(r.halted);
    // dot product of a[i]=i+1, b[i]=2i+1 over 16 elements.
    let expect: u32 = (0..16u32).map(|i| (i + 1) * (2 * i + 1)).sum();
    assert_eq!(r.regs[4], expect);
}

#[test]
fn cli_results_match_direct_interpreter() {
    let src = sample("asm/fib.asm");
    let o = cli::parse_run(&["f.asm".to_string(), "--arch".into(), "usii".into()]).unwrap();
    let (r, _) = cli::execute_run(&o, &src).unwrap();
    let p = assemble(&src, 32).unwrap();
    let mut m = Interp::new(&p, 1 << 16);
    m.run(1_000_000);
    assert_eq!(r.regs, m.regs);
}

#[test]
fn asm_subcommand_round_trips_samples() {
    for name in ["asm/dot_product.asm", "asm/collatz.asm", "asm/fib.asm"] {
        let src = sample(name);
        let listing = cli::execute_asm(&src, 32).unwrap();
        // Every listed line re-assembles.
        // Listing format: "{idx:>4}: {encoding:016x}  {text}".
        let stripped: String = listing.lines().map(|l| format!("{}\n", &l[24..])).collect();
        assert!(assemble(&stripped, 32).is_ok(), "{name} relisting");
    }
}
