//! Drive the actual gate-level CSPP datapath: build the per-register
//! forwarding circuit, apply a window snapshot, and watch each station
//! receive its operands — with settle-depth (gate-delay) readouts.
//!
//! ```text
//! cargo run --example dataflow_circuit [n]
//! ```

use std::env;
use ultrascalar_suite::circuit::build::bus_value;
use ultrascalar_suite::circuit::generators::{CombineOp, CsppTree};
use ultrascalar_suite::circuit::Netlist;

fn main() {
    let n: usize = env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);
    const WIDTH: usize = 33; // 32-bit value + ready bit
    const READY: u64 = 1 << 32;

    // Build one register's CSPP tree for an n-station window.
    let mut nl = Netlist::new();
    let tree = CsppTree::build(&mut nl, n, WIDTH, CombineOp::First);
    println!(
        "CSPP forwarding tree for one 32-bit register, {n} stations:\n\
         {} logic gates, {} inputs\n",
        nl.logic_gate_count(),
        nl.num_inputs()
    );

    // Snapshot: the oldest station (0) inserts the committed value 100;
    // station n/3 has a pending (not-ready) write; station 2n/3 wrote
    // 777 and is done.
    let pending = n / 3;
    let done = 2 * n / 3;
    let mut inputs = vec![false; nl.num_inputs()];
    let set = |bus: &[ultrascalar_suite::circuit::NodeId], v: u64, inputs: &mut Vec<bool>| {
        for (i, &w) in bus.iter().enumerate() {
            inputs[w.0 as usize] = v >> i & 1 == 1;
        }
    };
    set(&tree.values[0], 100 | READY, &mut inputs);
    inputs[tree.seg[0].0 as usize] = true;
    if pending > 0 {
        set(&tree.values[pending], 0, &mut inputs);
        inputs[tree.seg[pending].0 as usize] = true;
    }
    if done != pending {
        set(&tree.values[done], 777 | READY, &mut inputs);
        inputs[tree.seg[done].0 as usize] = true;
    }

    let eval = nl.evaluate(&inputs, &[]).expect("datapath settles");
    println!("station | incoming value | settled at gate level");
    println!("--------+----------------+---------------------");
    for i in 0..n {
        let v = bus_value(&eval, &tree.out_value[i]);
        let text = if v & READY != 0 {
            format!("{:>6} (ready)", v & 0xFFFF_FFFF)
        } else {
            "   ? (pending)".to_string()
        };
        let lvl = tree.out_value[i]
            .iter()
            .map(|&b| eval.level(b))
            .max()
            .unwrap_or(0);
        println!("{i:>7} | {text:<14} | {lvl}");
    }
    println!(
        "\ncritical path: {} gate levels for {n} stations (Θ(log n) — \
         doubling n adds a constant)",
        eval.max_level()
    );
}
