//! Watch the instruction window work: station-occupancy traces that
//! make the three processors' refill policies visible — the
//! Ultrascalar I's sliding wrap-around ring, the hybrid's
//! cluster-granular turnover, and the Ultrascalar II's batch barrier.
//!
//! ```text
//! cargo run --example window_trace [kernel]
//! ```

use std::env;
use ultrascalar_suite::core::{
    render_station_occupancy, PredictorKind, ProcConfig, Processor, Ultrascalar,
};
use ultrascalar_suite::isa::workload;

fn main() {
    let kernel = env::args().nth(1).unwrap_or_else(|| "fibonacci".into());
    let Some((_, program)) = workload::standard_suite(1)
        .into_iter()
        .find(|(name, _)| *name == kernel)
    else {
        eprintln!("unknown kernel `{kernel}`; available:");
        for (name, _) in workload::standard_suite(1) {
            eprintln!("  {name}");
        }
        std::process::exit(1);
    };

    let n = 8;
    println!(
        "station occupancy for `{kernel}` (window n = {n}; lowercase =\n\
         waiting for operands, uppercase = executing; letters advance\n\
         with program order and wrap at z)\n"
    );
    for cfg in [
        ProcConfig::ultrascalar_i(n),
        ProcConfig::hybrid(n, 4),
        ProcConfig::ultrascalar_ii(n),
    ] {
        let mut p = Ultrascalar::new(cfg.with_predictor(PredictorKind::Bimodal(64)));
        let name = p.name();
        let r = p.run(&program);
        assert!(r.halted);
        println!("== {name}: {} cycles, IPC {:.2}", r.cycles, r.ipc());
        // Clip long traces for readability.
        let clip: Vec<_> = r
            .timings
            .iter()
            .copied()
            .filter(|t| t.complete < 60)
            .collect();
        println!("{}", render_station_occupancy(&clip, n));
    }
    println!(
        "note how the Ultrascalar I refills each station the moment it\n\
         (and everything older) finishes, the hybrid recycles four\n\
         stations at a time, and the Ultrascalar II waits for the whole\n\
         window — §4's \"stations idle waiting for everyone to finish\"."
    );
}
