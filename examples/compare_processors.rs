//! Compare the three Ultrascalars and the conventional baseline on a
//! workload of your choice — the paper's scheduling-equivalence story
//! (§2, §4) as a runnable scenario.
//!
//! ```text
//! cargo run --example compare_processors [kernel] [window]
//! # e.g.
//! cargo run --example compare_processors matvec 16
//! ```

use std::env;
use ultrascalar_suite::core::{BaselineOoO, PredictorKind, ProcConfig, Processor, Ultrascalar};
use ultrascalar_suite::isa::workload;

fn main() {
    let args: Vec<String> = env::args().collect();
    let kernel = args.get(1).map(String::as_str).unwrap_or("dot_product");
    let n: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(16);

    let Some((_, program)) = workload::standard_suite(1)
        .into_iter()
        .find(|(name, _)| *name == kernel)
    else {
        eprintln!("unknown kernel `{kernel}`; available:");
        for (name, _) in workload::standard_suite(1) {
            eprintln!("  {name}");
        }
        std::process::exit(1);
    };

    println!("kernel `{kernel}`, window n = {n}\n");
    println!(
        "{:<28} {:>8} {:>6} {:>9} {:>8}",
        "processor", "cycles", "IPC", "mispred", "flushed"
    );
    let pred = PredictorKind::Bimodal(64);
    let mut runs: Vec<(String, ultrascalar_suite::core::processor::RunResult)> = Vec::new();

    let mut base = BaselineOoO::new(ProcConfig::ultrascalar_i(n).with_predictor(pred));
    runs.push((base.name(), base.run(&program)));
    for cfg in [
        ProcConfig::ultrascalar_i(n),
        ProcConfig::hybrid(n, (n / 4).max(1)),
        ProcConfig::ultrascalar_ii(n),
    ] {
        let mut p = Ultrascalar::new(cfg.with_predictor(pred));
        runs.push((p.name(), p.run(&program)));
    }

    for (name, r) in &runs {
        println!(
            "{:<28} {:>8} {:>6.2} {:>9} {:>8}",
            name,
            r.cycles,
            r.ipc(),
            r.stats.mispredictions,
            r.stats.flushed
        );
    }

    // All four must agree architecturally.
    let first = &runs[0].1;
    for (name, r) in &runs[1..] {
        assert_eq!(r.regs, first.regs, "{name} diverged in registers");
        assert_eq!(r.mem, first.mem, "{name} diverged in memory");
    }
    println!("\nall processors produced identical architectural state ✓");
    println!(
        "US-I matches the baseline cycle count exactly: {}",
        if runs[0].1.cycles == runs[1].1.cycles {
            "yes ✓"
        } else {
            "no ✗"
        }
    );
}
