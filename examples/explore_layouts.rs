//! Explore the VLSI design space: pick a window size, register count
//! and memory-bandwidth exponent, and see what each architecture costs
//! in silicon — the paper's Figure 11 as an interactive tool.
//!
//! ```text
//! cargo run --example explore_layouts [n] [L] [bandwidth-exponent]
//! # e.g. a 1024-wide machine with 64 registers and √n memory ports:
//! cargo run --example explore_layouts 1024 64 0.5
//! ```

use std::env;
use ultrascalar_suite::memsys::Bandwidth;
use ultrascalar_suite::vlsi::metrics::ArchParams;
use ultrascalar_suite::vlsi::{hybrid, usi, usii, Tech};

fn main() {
    let args: Vec<String> = env::args().collect();
    let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(256);
    let l: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(32);
    let p_exp: f64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(0.0);

    let tech = Tech::cmos_035();
    let params = ArchParams {
        n,
        l,
        bits: 32,
        mem: Bandwidth::new(1.0, p_exp),
    };

    println!(
        "n = {n} stations, L = {l} logical 32-bit registers, M(s) = s^{p_exp} \
         ({} ports at the root), 0.35 µm process\n",
        params.mem.capacity(n)
    );
    println!(
        "{:<32} {:>10} {:>12} {:>12} {:>12}",
        "architecture", "side (mm)", "area (mm²)", "wire (mm)", "delay (ns)"
    );
    let (c_star, hy_opt) = hybrid::optimal_cluster(&params, &tech);
    let rows = [
        (
            "Ultrascalar I (H-tree)".to_string(),
            usi::metrics(&params, &tech),
        ),
        (
            "Ultrascalar II (linear grid)".to_string(),
            usii::metrics_linear(&params, &tech),
        ),
        (
            "Ultrascalar II (mesh of trees)".to_string(),
            usii::metrics_log(&params, &tech),
        ),
        (format!("Hybrid (C* = {c_star})"), hy_opt),
    ];
    for (name, m) in &rows {
        println!(
            "{:<32} {:>10.2} {:>12.1} {:>12.2} {:>12.2}",
            name,
            m.side_um / 1e3,
            m.area_mm2(),
            m.wire_um / 1e3,
            m.total_delay_ps(&tech) / 1e3
        );
    }
    let best = rows
        .iter()
        .min_by(|a, b| a.1.area_um2.partial_cmp(&b.1.area_um2).unwrap())
        .unwrap();
    println!("\nsmallest: {}", best.0);
    println!(
        "(the paper: US-II wins for n ≪ L², US-I for n ≫ L², the hybrid\n\
         with C = Θ(L) dominates both once n ≥ L)"
    );
}
