//! Quickstart: assemble a small program, run it on an Ultrascalar I,
//! and inspect the results.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use ultrascalar_suite::core::{render_timing_diagram, ProcConfig, Processor, Ultrascalar};
use ultrascalar_suite::isa::assemble;

fn main() {
    // 1. Write a program in the toy RISC assembly (32 logical
    //    registers, word-addressed memory, ≤2 reads / ≤1 write per
    //    instruction — the paper's ISA).
    let src = "
            li   r1, 10          ; n = 10
            li   r2, 0           ; acc
            li   r7, 0
        loop:
            add  r2, r2, r1      ; acc += n
            subi r1, r1, 1
            bne  r1, r7, loop
            sw   r2, (r7)        ; mem[0] = acc
            halt
    ";
    let program = assemble(src, 32).expect("assembles");

    // 2. Build an 8-wide Ultrascalar I (cluster size 1) with the
    //    default Figure 3 latencies, a perfect branch oracle and ideal
    //    memory, and run the program to completion.
    let mut proc = Ultrascalar::new(ProcConfig::ultrascalar_i(8));
    let result = proc.run(&program);

    // 3. Inspect architectural state and microarchitectural behaviour.
    assert!(result.halted);
    println!(
        "sum 10+9+…+1 = {} (stored to mem[0] = {})",
        result.regs[2], result.mem[0]
    );
    println!(
        "executed {} instructions in {} cycles — IPC {:.2}",
        result.stats.committed,
        result.cycles,
        result.ipc()
    );
    println!("\nper-instruction timing (first loop iterations):\n");
    println!(
        "{}",
        render_timing_diagram(&result.timings[..14.min(result.timings.len())])
    );
}
