; dot product of two 16-element vectors
; a[i] = i+1 at address 0..16, b[i] = 2i+1 at 16..32 — initialise them
; first, then accumulate into r4.
        li   r1, 0          ; &a
        li   r2, 16         ; &b
        li   r3, 16         ; remaining
        li   r7, 0
init:                       ; a[i] = i+1 ; b[i] = 2i+1
        addi r5, r1, 1
        sw   r5, (r1)
        add  r6, r5, r5
        subi r6, r6, 1
        sw   r6, (r2)
        addi r1, r1, 1
        addi r2, r2, 1
        subi r3, r3, 1
        bne  r3, r7, init
        li   r1, 0
        li   r2, 16
        li   r3, 16
        li   r4, 0          ; acc
loop:
        lw   r5, (r1)
        lw   r6, (r2)
        mul  r5, r5, r6
        add  r4, r4, r5
        addi r1, r1, 1
        addi r2, r2, 1
        subi r3, r3, 1
        bne  r3, r7, loop
        halt
