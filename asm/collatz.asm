; Collatz trajectory length of 27 (should be 111 steps), left in r2
        li   r1, 27
        li   r2, 0          ; steps
        li   r6, 1
        li   r7, 0
loop:
        beq  r1, r6, done
        andi r3, r1, 1
        beq  r3, r7, even
        ; odd: r1 = 3*r1 + 1
        add  r4, r1, r1
        add  r1, r4, r1
        addi r1, r1, 1
        j    count
even:
        srli r1, r1, 1
count:
        addi r2, r2, 1
        j    loop
done:
        halt
