; iterative fibonacci(30) -> r2
        li   r1, 0
        li   r2, 1
        li   r3, 30
        li   r7, 0
loop:
        add  r4, r1, r2
        add  r1, r2, r7
        add  r2, r4, r7
        subi r3, r3, 1
        bne  r3, r7, loop
        halt
