//! Offline drop-in subset of the `criterion` 0.5 API.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the slice of criterion it actually uses:
//! [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Throughput`],
//! [`Bencher::iter`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! The statistics are deliberately simple: each benchmark is
//! auto-calibrated (the routine is timed over a geometrically growing
//! iteration count until the measurement is long enough to trust), then
//! measured once over a budget proportional to `sample_size`, and the
//! mean wall time per iteration is printed together with the optional
//! throughput. No HTML reports, no regression analysis — just honest
//! ns/iter numbers suitable for before/after comparisons.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    /// Scale the measurement budget (upstream: number of samples).
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.sample_size = n;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("\n== group: {name} ==");
        BenchmarkGroup {
            criterion: self,
            name,
            throughput: None,
        }
    }
}

/// Benchmark identifier: a function name plus an optional parameter,
/// mirroring `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        let mut id = function_name.into();
        let _ = write!(id, "/{parameter}");
        BenchmarkId { id }
    }

    /// Identifier consisting of a parameter only.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration throughput used for derived rates.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Override the measurement budget for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.criterion.sample_size = n;
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run_one(&id, &mut f);
        self
    }

    /// Benchmark a closure against a borrowed input.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        self.run_one(&id, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Close the group (upstream writes reports here; we already
    /// printed each line as it completed).
    pub fn finish(self) {}

    fn run_one(&mut self, id: &BenchmarkId, f: &mut dyn FnMut(&mut Bencher)) {
        let mut b = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
            // ~2 ms of measurement per sample-size unit: sample_size 10
            // ≈ 20 ms/bench, the default 100 ≈ 200 ms/bench.
            budget: Duration::from_millis(2) * self.criterion.sample_size as u32,
        };
        f(&mut b);
        let ns = if b.iters == 0 {
            0.0
        } else {
            b.elapsed.as_nanos() as f64 / b.iters as f64
        };
        let mut line = format!(
            "{}/{:<28} time: {:>12}/iter  ({} iters)",
            self.name,
            id.id,
            fmt_ns(ns),
            b.iters
        );
        match self.throughput {
            Some(Throughput::Elements(n)) if ns > 0.0 => {
                let rate = n as f64 / (ns * 1e-9);
                let _ = write!(line, "  thrpt: {} elem/s", fmt_rate(rate));
            }
            Some(Throughput::Bytes(n)) if ns > 0.0 => {
                let rate = n as f64 / (ns * 1e-9);
                let _ = write!(line, "  thrpt: {} B/s", fmt_rate(rate));
            }
            _ => {}
        }
        eprintln!("{line}");
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn fmt_rate(r: f64) -> String {
    if r >= 1e9 {
        format!("{:.3}G", r / 1e9)
    } else if r >= 1e6 {
        format!("{:.3}M", r / 1e6)
    } else if r >= 1e3 {
        format!("{:.3}K", r / 1e3)
    } else {
        format!("{r:.1}")
    }
}

/// Timing context handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
    budget: Duration,
}

impl Bencher {
    /// Time `routine`, auto-calibrating the iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Calibrate: grow the batch geometrically until one batch takes
        // long enough (≥ 1 ms) to give a trustworthy per-iter estimate.
        let mut n: u64 = 1;
        let per_iter_ns = loop {
            let start = Instant::now();
            for _ in 0..n {
                black_box(routine());
            }
            let dt = start.elapsed();
            if dt >= Duration::from_millis(1) || n >= 1 << 22 {
                break (dt.as_nanos().max(1) as f64 / n as f64).max(0.1);
            }
            n = n.saturating_mul(4);
        };
        // Measure: one batch sized to fill the budget.
        let m = ((self.budget.as_nanos() as f64 / per_iter_ns) as u64).clamp(1, 100_000_000);
        let start = Instant::now();
        for _ in 0..m {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = m;
    }
}

/// Define a named group of benchmark target functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Define `main` running the given benchmark groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        let mut g = c.benchmark_group("smoke");
        g.throughput(Throughput::Elements(100));
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("sum_to", 50), &50u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(2);
        targets = target
    }

    #[test]
    fn harness_runs() {
        benches();
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 64).id, "f/64");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }
}
