//! Value-generation strategies: the offline stand-ins for
//! `proptest::strategy::Strategy` and friends.
//!
//! The trait is object safe (generation takes a concrete [`StdRng`]) so
//! `prop_oneof!` can erase heterogeneous arm types behind
//! `Box<dyn Strategy<Value = V>>`.

use rand::rngs::StdRng;
use rand::Rng;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values with `f`, mirroring
    /// `Strategy::prop_map`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy, mirroring
/// `proptest::arbitrary::Arbitrary`.
pub trait Arbitrary {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy over the whole domain of `T`; returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: core::marker::PhantomData<T>,
}

/// The whole-domain strategy for `T`, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: core::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed strategies; the engine behind
/// `prop_oneof!`.
pub struct Union<V> {
    arms: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Start an empty union; arms are attached with [`Union::or`].
    pub fn empty() -> Self {
        Union { arms: Vec::new() }
    }

    /// Attach one more arm. Taking the arm by value (rather than
    /// pre-boxed) lets type inference unify every arm's `Value`
    /// through ordinary trait resolution.
    pub fn or<S>(mut self, arm: S) -> Self
    where
        S: Strategy<Value = V> + 'static,
    {
        self.arms.push(Box::new(arm));
        self
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut StdRng) -> V {
        assert!(!self.arms.is_empty(), "prop_oneof! needs at least one arm");
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+ ))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}
