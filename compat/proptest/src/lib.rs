//! Offline drop-in subset of the `proptest` 1.x API.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the slice of `proptest` it actually uses: the
//! [`proptest!`] macro with `#![proptest_config(..)]`, `prop_assert!` /
//! `prop_assert_eq!`, [`strategy::Just`], [`any`], `prop_oneof!`,
//! integer/float range strategies, tuple strategies, `.prop_map`, and
//! [`collection::vec`].
//!
//! Unlike upstream proptest this stub does **not** shrink failing
//! inputs — a failure reports the generated values via the panic
//! message of the assertion that tripped, plus the deterministic case
//! seed. Cases are generated from a seed derived from the test's module
//! path and name, so every run of a given test binary explores the same
//! inputs (reproducible CI) while different tests explore different
//! streams.

pub mod strategy;

pub use strategy::{any, Arbitrary, Strategy};

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runner configuration, mirroring `proptest::test_runner::ProptestConfig`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the (unshrunk) offline
        // suite fast while still exercising a meaningful input spread.
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic RNG for one test, seeded from its fully qualified name
/// (FNV-1a) so each test gets a distinct but reproducible stream.
#[doc(hidden)]
pub fn rng_for(test_path: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_path.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h)
}

/// Everything a `use proptest::prelude::*;` consumer expects in scope.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Size specification for [`vec`]: an exact length or a half-open
    /// range of lengths.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_excl: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_excl: n + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_excl: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_excl: *r.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of `element` with lengths drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.lo + 1 == self.size.hi_excl {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi_excl)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The main property-test macro. Supports the subset of upstream
/// grammar used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///     /// docs
///     #[test]
///     fn my_prop(x in 0u64..100, v in collection::vec(any::<bool>(), 1..64)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng =
                $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                $(
                    let $arg = $crate::Strategy::generate(&($strat), &mut __rng);
                )+
                let __run = || -> ::core::result::Result<(), ::std::string::String> {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                };
                if let Err(__msg) = __run() {
                    panic!(
                        "proptest case {}/{} failed: {}",
                        __case + 1,
                        __config.cases,
                        __msg
                    );
                }
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

/// Assert inside a `proptest!` body; failure aborts the current case
/// with the formatted message (no shrinking in this offline stub).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(::std::format!($($fmt)*));
        }
    };
}

/// Equality assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
                l, r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
                l, r, ::std::format!($($fmt)*)
            ));
        }
    }};
}

/// Pick uniformly among several strategies with a common `Value` type,
/// mirroring `prop_oneof!` (weights are not supported).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::empty()$(.or($arm))+
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3u64..17, y in -5i32..5, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.25..0.75).contains(&f), "f = {f}");
        }

        #[test]
        fn vec_sizes_respected(v in crate::collection::vec(any::<u8>(), 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9, "len {}", v.len());
        }

        #[test]
        fn exact_vec_size(v in crate::collection::vec(any::<bool>(), 12)) {
            prop_assert_eq!(v.len(), 12);
        }

        #[test]
        fn oneof_and_map_compose(
            x in prop_oneof![
                Just(0usize),
                (1usize..4).prop_map(|v| v * 10),
                (0usize..2, 0usize..2).prop_map(|(a, b)| 100 + a + b),
            ],
        ) {
            prop_assert!(x == 0 || (10..40).contains(&x) || (100..102 + 1).contains(&x));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let s = 0u64..1000;
        let mut r1 = crate::rng_for("a::b::c");
        let mut r2 = crate::rng_for("a::b::c");
        for _ in 0..50 {
            assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_case_reports() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 1000, "x = {x}");
            }
        }
        always_fails();
    }
}
