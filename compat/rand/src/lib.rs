//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the small slice of `rand` it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! extension methods `gen`, `gen_bool`, and `gen_range`.
//!
//! The backend is SplitMix64 rather than ChaCha, so the *streams* differ
//! from upstream `rand` — but every consumer in this workspace only
//! needs a deterministic, well-mixed sequence (workload generators and
//! differential tests compare simulators against each other on the same
//! generated programs), not bit-compatibility with any particular
//! upstream version.

/// Core source of randomness: 64 uniformly distributed bits per call.
pub trait RngCore {
    /// Produce the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Produce the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that `Rng::gen` can produce (stand-in for sampling from the
/// `Standard` distribution).
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that `Rng::gen_range` accepts (stand-in for
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// User-facing extension methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draw a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0, 1]");
        f64::sample_standard(self) < p
    }

    /// Draw uniformly from `range` (half-open or inclusive).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64 core). Drop-in for
    /// `rand::rngs::StdRng` wherever only determinism — not the exact
    /// upstream stream — matters.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014): full-period, passes
            // BigCrush, and mixes sequential seeds well.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: i32 = rng.gen_range(-128..128);
            assert!((-128..128).contains(&v));
            let u: usize = rng.gen_range(1..=4);
            assert!((1..=4).contains(&u));
            let b: u8 = rng.gen_range(0..4u8);
            assert!(b < 4);
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_bool_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(11);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads = {heads}");
    }
}
