//! Fixed-width binary instruction encoding.
//!
//! Instructions encode to a single 64-bit word:
//!
//! ```text
//!   63      56 55      48 47      40 39      32 31             0
//!  +----------+----------+----------+----------+----------------+
//!  |  opcode  |    rd    |   rs1    |   rs2    |  imm / target  |
//!  +----------+----------+----------+----------+----------------+
//! ```
//!
//! Eight-bit register fields support the paper's full scaling range of
//! logical register counts (up to L = 256). Unused fields must encode
//! as zero, which the decoder checks so that `decode(encode(i)) == i`
//! is exact and corrupted words are rejected rather than aliased.

use crate::instr::{AluOp, BranchCond, Instr, Reg};

/// Error returned by [`decode`] for malformed instruction words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The opcode byte does not name an instruction.
    BadOpcode(u8),
    /// Fields that must be zero for this opcode are not.
    NonZeroPadding(u64),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadOpcode(op) => write!(f, "unknown opcode byte {op:#04x}"),
            DecodeError::NonZeroPadding(w) => {
                write!(f, "non-zero padding in instruction word {w:#018x}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

const OP_NOP: u8 = 0x00;
const OP_HALT: u8 = 0x01;
const OP_JUMP: u8 = 0x02;
const OP_LOADIMM: u8 = 0x03;
const OP_LOAD: u8 = 0x04;
const OP_STORE: u8 = 0x05;
const OP_ALU_BASE: u8 = 0x10; // +0..12 for the 13 AluOps
const OP_ALUIMM_BASE: u8 = 0x30; // +0..12
const OP_BRANCH_BASE: u8 = 0x50; // +0..5 for the 6 BranchConds

fn alu_code(op: AluOp) -> u8 {
    AluOp::ALL.iter().position(|&o| o == op).unwrap() as u8
}

fn alu_from(code: u8) -> Option<AluOp> {
    AluOp::ALL.get(code as usize).copied()
}

fn cond_code(c: BranchCond) -> u8 {
    BranchCond::ALL.iter().position(|&x| x == c).unwrap() as u8
}

fn cond_from(code: u8) -> Option<BranchCond> {
    BranchCond::ALL.get(code as usize).copied()
}

fn pack(opcode: u8, rd: u8, rs1: u8, rs2: u8, imm: u32) -> u64 {
    (opcode as u64) << 56 | (rd as u64) << 48 | (rs1 as u64) << 40 | (rs2 as u64) << 32 | imm as u64
}

/// Encode an instruction into its 64-bit word.
pub fn encode(i: &Instr) -> u64 {
    match *i {
        Instr::Nop => pack(OP_NOP, 0, 0, 0, 0),
        Instr::Halt => pack(OP_HALT, 0, 0, 0, 0),
        Instr::Jump { target } => pack(OP_JUMP, 0, 0, 0, target),
        Instr::LoadImm { rd, imm } => pack(OP_LOADIMM, rd.0, 0, 0, imm as u32),
        Instr::Load { rd, base, offset } => pack(OP_LOAD, rd.0, base.0, 0, offset as u32),
        Instr::Store { src, base, offset } => pack(OP_STORE, 0, base.0, src.0, offset as u32),
        Instr::Alu { op, rd, rs1, rs2 } => pack(OP_ALU_BASE + alu_code(op), rd.0, rs1.0, rs2.0, 0),
        Instr::AluImm { op, rd, rs1, imm } => {
            pack(OP_ALUIMM_BASE + alu_code(op), rd.0, rs1.0, 0, imm as u32)
        }
        Instr::Branch {
            cond,
            rs1,
            rs2,
            target,
        } => pack(OP_BRANCH_BASE + cond_code(cond), 0, rs1.0, rs2.0, target),
    }
}

/// Decode a 64-bit word back into an instruction.
///
/// Strict: any word not produced by [`encode`] is rejected.
pub fn decode(w: u64) -> Result<Instr, DecodeError> {
    let opcode = (w >> 56) as u8;
    let rd = (w >> 48) as u8;
    let rs1 = (w >> 40) as u8;
    let rs2 = (w >> 32) as u8;
    let imm = w as u32;

    // Helper: require listed fields to be zero.
    let zero = |fields: &[u8], imm_zero: bool| -> Result<(), DecodeError> {
        if fields.iter().any(|&f| f != 0) || (imm_zero && imm != 0) {
            Err(DecodeError::NonZeroPadding(w))
        } else {
            Ok(())
        }
    };

    match opcode {
        OP_NOP => {
            zero(&[rd, rs1, rs2], true)?;
            Ok(Instr::Nop)
        }
        OP_HALT => {
            zero(&[rd, rs1, rs2], true)?;
            Ok(Instr::Halt)
        }
        OP_JUMP => {
            zero(&[rd, rs1, rs2], false)?;
            Ok(Instr::Jump { target: imm })
        }
        OP_LOADIMM => {
            zero(&[rs1, rs2], false)?;
            Ok(Instr::LoadImm {
                rd: Reg(rd),
                imm: imm as i32,
            })
        }
        OP_LOAD => {
            zero(&[rs2], false)?;
            Ok(Instr::Load {
                rd: Reg(rd),
                base: Reg(rs1),
                offset: imm as i32,
            })
        }
        OP_STORE => {
            zero(&[rd], false)?;
            Ok(Instr::Store {
                src: Reg(rs2),
                base: Reg(rs1),
                offset: imm as i32,
            })
        }
        _ => {
            if let Some(op) = opcode
                .checked_sub(OP_ALU_BASE)
                .filter(|&c| c < 13)
                .and_then(alu_from)
            {
                zero(&[], true)?;
                return Ok(Instr::Alu {
                    op,
                    rd: Reg(rd),
                    rs1: Reg(rs1),
                    rs2: Reg(rs2),
                });
            }
            if let Some(op) = opcode
                .checked_sub(OP_ALUIMM_BASE)
                .filter(|&c| c < 13)
                .and_then(alu_from)
            {
                zero(&[rs2], false)?;
                return Ok(Instr::AluImm {
                    op,
                    rd: Reg(rd),
                    rs1: Reg(rs1),
                    imm: imm as i32,
                });
            }
            if let Some(cond) = opcode
                .checked_sub(OP_BRANCH_BASE)
                .filter(|&c| c < 6)
                .and_then(cond_from)
            {
                zero(&[rd], false)?;
                return Ok(Instr::Branch {
                    cond,
                    rs1: Reg(rs1),
                    rs2: Reg(rs2),
                    target: imm,
                });
            }
            Err(DecodeError::BadOpcode(opcode))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_instrs() -> Vec<Instr> {
        let mut v = vec![
            Instr::Nop,
            Instr::Halt,
            Instr::Jump { target: 1234 },
            Instr::LoadImm {
                rd: Reg(5),
                imm: -42,
            },
            Instr::Load {
                rd: Reg(1),
                base: Reg(2),
                offset: -8,
            },
            Instr::Store {
                src: Reg(3),
                base: Reg(4),
                offset: 16,
            },
        ];
        for op in AluOp::ALL {
            v.push(Instr::Alu {
                op,
                rd: Reg(7),
                rs1: Reg(8),
                rs2: Reg(255),
            });
            v.push(Instr::AluImm {
                op,
                rd: Reg(7),
                rs1: Reg(8),
                imm: i32::MIN,
            });
        }
        for cond in BranchCond::ALL {
            v.push(Instr::Branch {
                cond,
                rs1: Reg(0),
                rs2: Reg(31),
                target: u32::MAX,
            });
        }
        v
    }

    #[test]
    fn roundtrip_every_form() {
        for i in sample_instrs() {
            let w = encode(&i);
            assert_eq!(decode(w), Ok(i), "word {w:#018x}");
        }
    }

    #[test]
    fn encodings_are_distinct() {
        let instrs = sample_instrs();
        let words: std::collections::HashSet<u64> = instrs.iter().map(encode).collect();
        assert_eq!(words.len(), instrs.len());
    }

    #[test]
    fn bad_opcode_rejected() {
        assert_eq!(decode(0xFFu64 << 56), Err(DecodeError::BadOpcode(0xFF)));
    }

    #[test]
    fn nonzero_padding_rejected() {
        // HALT with a stray register byte set.
        let w = (OP_HALT as u64) << 56 | 1u64 << 48;
        assert!(matches!(decode(w), Err(DecodeError::NonZeroPadding(_))));
        // Plain ALU with a stray immediate.
        let w = encode(&Instr::Alu {
            op: AluOp::Add,
            rd: Reg(1),
            rs1: Reg(2),
            rs2: Reg(3),
        }) | 0xFF;
        assert!(matches!(decode(w), Err(DecodeError::NonZeroPadding(_))));
    }

    #[test]
    fn negative_immediates_roundtrip() {
        let i = Instr::AluImm {
            op: AluOp::Add,
            rd: Reg(1),
            rs1: Reg(1),
            imm: -1,
        };
        assert_eq!(decode(encode(&i)), Ok(i));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_reg() -> impl Strategy<Value = Reg> {
        any::<u8>().prop_map(Reg)
    }

    fn arb_instr() -> impl Strategy<Value = Instr> {
        prop_oneof![
            Just(Instr::Nop),
            Just(Instr::Halt),
            any::<u32>().prop_map(|target| Instr::Jump { target }),
            (arb_reg(), any::<i32>()).prop_map(|(rd, imm)| Instr::LoadImm { rd, imm }),
            (arb_reg(), arb_reg(), any::<i32>()).prop_map(|(rd, base, offset)| Instr::Load {
                rd,
                base,
                offset
            }),
            (arb_reg(), arb_reg(), any::<i32>()).prop_map(|(src, base, offset)| Instr::Store {
                src,
                base,
                offset
            }),
            (0usize..13, arb_reg(), arb_reg(), arb_reg()).prop_map(|(op, rd, rs1, rs2)| {
                Instr::Alu {
                    op: AluOp::ALL[op],
                    rd,
                    rs1,
                    rs2,
                }
            }),
            (0usize..13, arb_reg(), arb_reg(), any::<i32>()).prop_map(|(op, rd, rs1, imm)| {
                Instr::AluImm {
                    op: AluOp::ALL[op],
                    rd,
                    rs1,
                    imm,
                }
            }),
            (0usize..6, arb_reg(), arb_reg(), any::<u32>()).prop_map(|(c, rs1, rs2, target)| {
                Instr::Branch {
                    cond: BranchCond::ALL[c],
                    rs1,
                    rs2,
                    target,
                }
            }),
        ]
    }

    proptest! {
        #[test]
        fn decode_inverts_encode(i in arb_instr()) {
            prop_assert_eq!(decode(encode(&i)), Ok(i));
        }

        #[test]
        fn decode_never_panics(w in any::<u64>()) {
            let _ = decode(w);
        }
    }
}
