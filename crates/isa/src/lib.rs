//! The RISC instruction-set architecture used by the Ultrascalar
//! reproduction.
//!
//! The paper (§7) evaluates "a very simple RISC instruction set
//! architecture \[with\] 32 32-bit logical registers … no floating point
//! … each instruction reads at most two registers and writes at most
//! one". This crate implements that ISA completely:
//!
//! * [`instr`] — the instruction forms, their operand/result register
//!   sets (statically guaranteed ≤ 2 reads, ≤ 1 write), and execution
//!   semantics on 32-bit words;
//! * [`encode`](mod@encode) — a fixed-width binary encoding with full
//!   round-tripping;
//! * [`asm`] — a small two-pass assembler (labels, comments) and a
//!   disassembler;
//! * [`cache`] — a content-hash-keyed LRU cache of assembled programs,
//!   so serving mode re-runs a repeated source without re-assembling;
//! * [`program`] — the [`program::Program`] container shared by every
//!   processor model;
//! * [`interp`] — the *golden* sequential interpreter: the architectural
//!   oracle that every Ultrascalar model must match instruction for
//!   instruction;
//! * [`workload`] — program generators: the paper's Figure 1 example
//!   sequence, dependency-controlled random kernels, and a set of small
//!   realistic kernels (dot product, memcpy, Fibonacci, pointer chase,
//!   matrix–vector product, bubble sort, …).
//!
//! The number of logical registers `L` is a *parameter* throughout the
//! reproduction (the paper scales it from 8 to 64); the ISA supports
//! 1 ≤ L ≤ 256 and each [`program::Program`] records the `L` it was
//! compiled for.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod asm;
pub mod binary;
pub mod cache;
pub mod encode;
pub mod instr;
pub mod interp;
pub mod program;
pub mod workload;

pub use asm::{assemble, disassemble, AsmError};
pub use binary::{read_binary, write_binary, BinaryError};
pub use cache::{CacheStats, ProgramCache, ShardedProgramCache};
pub use encode::{decode, encode, DecodeError};
pub use instr::{AluOp, BranchCond, Instr, Reg};
pub use interp::{ExecRecord, Interp, RunOutcome};
pub use program::Program;
