//! The [`Program`] container shared by every processor model.

use crate::instr::Instr;

/// A compiled program: an instruction sequence plus the architectural
/// parameters it requires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// The instructions, addressed by absolute index (the assembler
    /// resolves labels to indices).
    pub instrs: Vec<Instr>,
    /// Number of logical registers `L` this program is compiled for.
    pub num_regs: usize,
    /// Initial register-file contents (length `num_regs`).
    pub init_regs: Vec<u32>,
    /// Initial data-memory contents (word-addressed; the machine's
    /// memory is at least this long).
    pub init_mem: Vec<u32>,
}

/// Errors reported by [`Program::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// An instruction names a register `>= num_regs`.
    RegOutOfRange {
        /// Instruction index.
        at: usize,
        /// Offending register index.
        reg: u8,
        /// Register file size.
        num_regs: usize,
    },
    /// A control-flow target points past the end of the program.
    TargetOutOfRange {
        /// Instruction index.
        at: usize,
        /// Offending target.
        target: u32,
    },
    /// `init_regs.len() != num_regs`.
    InitRegsLength {
        /// Actual length supplied.
        got: usize,
        /// Required length.
        want: usize,
    },
    /// `num_regs` outside 1..=256.
    BadRegCount(usize),
}

impl std::fmt::Display for ProgramError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProgramError::RegOutOfRange { at, reg, num_regs } => write!(
                f,
                "instruction {at} uses r{reg} but the register file has {num_regs} registers"
            ),
            ProgramError::TargetOutOfRange { at, target } => {
                write!(f, "instruction {at} targets {target}, past end of program")
            }
            ProgramError::InitRegsLength { got, want } => {
                write!(f, "init_regs has length {got}, expected {want}")
            }
            ProgramError::BadRegCount(n) => write!(f, "register count {n} not in 1..=256"),
        }
    }
}

impl std::error::Error for ProgramError {}

impl Program {
    /// Build a program with zeroed initial registers and no initial
    /// memory.
    pub fn new(instrs: Vec<Instr>, num_regs: usize) -> Self {
        Program {
            instrs,
            num_regs,
            init_regs: vec![0; num_regs],
            init_mem: Vec::new(),
        }
    }

    /// Builder: set the initial register file.
    ///
    /// # Panics
    /// Panics if `regs.len() != self.num_regs`.
    pub fn with_init_regs(mut self, regs: Vec<u32>) -> Self {
        assert_eq!(regs.len(), self.num_regs, "init_regs length");
        self.init_regs = regs;
        self
    }

    /// Builder: set the initial data memory image.
    pub fn with_init_mem(mut self, mem: Vec<u32>) -> Self {
        self.init_mem = mem;
        self
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// True iff the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Check every register index and control-flow target against the
    /// program's own parameters. Every processor model calls this before
    /// running.
    ///
    /// A branch/jump target equal to `instrs.len()` is allowed (falling
    /// off the end halts, like an implicit final `halt`).
    pub fn validate(&self) -> Result<(), ProgramError> {
        if self.num_regs == 0 || self.num_regs > 256 {
            return Err(ProgramError::BadRegCount(self.num_regs));
        }
        if self.init_regs.len() != self.num_regs {
            return Err(ProgramError::InitRegsLength {
                got: self.init_regs.len(),
                want: self.num_regs,
            });
        }
        for (at, i) in self.instrs.iter().enumerate() {
            if let Some(reg) = i.max_reg() {
                if reg as usize >= self.num_regs {
                    return Err(ProgramError::RegOutOfRange {
                        at,
                        reg,
                        num_regs: self.num_regs,
                    });
                }
            }
            let target = match *i {
                Instr::Branch { target, .. } | Instr::Jump { target } => Some(target),
                _ => None,
            };
            if let Some(target) = target {
                if target as usize > self.instrs.len() {
                    return Err(ProgramError::TargetOutOfRange { at, target });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{AluOp, BranchCond, Reg};

    #[test]
    fn valid_program_passes() {
        let p = Program::new(
            vec![
                Instr::LoadImm { rd: Reg(0), imm: 1 },
                Instr::Alu {
                    op: AluOp::Add,
                    rd: Reg(1),
                    rs1: Reg(0),
                    rs2: Reg(0),
                },
                Instr::Halt,
            ],
            4,
        );
        assert_eq!(p.validate(), Ok(()));
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
    }

    #[test]
    fn register_out_of_range_detected() {
        let p = Program::new(vec![Instr::LoadImm { rd: Reg(7), imm: 0 }], 4);
        assert!(matches!(
            p.validate(),
            Err(ProgramError::RegOutOfRange { at: 0, reg: 7, .. })
        ));
    }

    #[test]
    fn target_one_past_end_is_allowed_but_beyond_rejected() {
        let ok = Program::new(vec![Instr::Jump { target: 1 }], 1);
        assert_eq!(ok.validate(), Ok(()));
        let bad = Program::new(vec![Instr::Jump { target: 2 }], 1);
        assert!(matches!(
            bad.validate(),
            Err(ProgramError::TargetOutOfRange { at: 0, target: 2 })
        ));
        let bad_branch = Program::new(
            vec![Instr::Branch {
                cond: BranchCond::Eq,
                rs1: Reg(0),
                rs2: Reg(0),
                target: 9,
            }],
            1,
        );
        assert!(bad_branch.validate().is_err());
    }

    #[test]
    fn bad_reg_counts_rejected() {
        let mut p = Program::new(vec![Instr::Halt], 4);
        p.num_regs = 0;
        assert_eq!(p.validate(), Err(ProgramError::BadRegCount(0)));
        let mut p = Program::new(vec![Instr::Halt], 4);
        p.num_regs = 257;
        assert_eq!(p.validate(), Err(ProgramError::BadRegCount(257)));
    }

    #[test]
    fn init_regs_length_checked() {
        let mut p = Program::new(vec![Instr::Halt], 4);
        p.init_regs = vec![0; 3];
        assert!(matches!(
            p.validate(),
            Err(ProgramError::InitRegsLength { got: 3, want: 4 })
        ));
    }

    #[test]
    #[should_panic(expected = "init_regs length")]
    fn builder_checks_reg_length() {
        let _ = Program::new(vec![Instr::Halt], 4).with_init_regs(vec![1, 2]);
    }
}
