//! Instruction forms and execution semantics.
//!
//! Every instruction reads at most **two** registers and writes at most
//! **one** — the constraint the Ultrascalar II datapath (paper §4)
//! hard-wires into its two argument columns and one result row per
//! execution station. The accessors [`Instr::reads`] and
//! [`Instr::writes`] expose exactly those sets.

use std::fmt;

/// A logical register identifier.
///
/// The ISA is parametric in the number of logical registers `L` (the
/// paper's headline scaling parameter); a `Reg` is valid for a given
/// program iff `index < L`, which [`crate::program::Program::validate`]
/// checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u8);

impl Reg {
    /// The register index as a usize, for register-file indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Integer ALU operations (no floating point, per the paper's ISA).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left (by rs2 mod 32).
    Sll,
    /// Logical shift right (by rs2 mod 32).
    Srl,
    /// Arithmetic shift right (by rs2 mod 32).
    Sra,
    /// Set-less-than, signed: `rd = (rs1 <s rs2) ? 1 : 0`.
    Slt,
    /// Set-less-than, unsigned.
    Sltu,
    /// Wrapping multiplication (low 32 bits).
    Mul,
    /// Unsigned division; division by zero yields `u32::MAX`
    /// (RISC-V-style, so speculative wrong-path divides cannot trap).
    Div,
    /// Unsigned remainder; remainder by zero yields `rs1`.
    Rem,
}

impl AluOp {
    /// Every ALU operation, for iteration in tests and generators.
    pub const ALL: [AluOp; 13] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Sll,
        AluOp::Srl,
        AluOp::Sra,
        AluOp::Slt,
        AluOp::Sltu,
        AluOp::Mul,
        AluOp::Div,
        AluOp::Rem,
    ];

    /// Apply the operation to two 32-bit operands.
    ///
    /// Total (never traps): division/remainder by zero follow the
    /// RISC-V convention so that speculatively executed wrong-path
    /// instructions are harmless, as the paper's recovery model
    /// requires.
    #[inline]
    pub fn apply(self, a: u32, b: u32) -> u32 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Sll => a.wrapping_shl(b & 31),
            AluOp::Srl => a.wrapping_shr(b & 31),
            AluOp::Sra => (a as i32).wrapping_shr(b & 31) as u32,
            AluOp::Slt => ((a as i32) < (b as i32)) as u32,
            AluOp::Sltu => (a < b) as u32,
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Div => a.checked_div(b).unwrap_or(u32::MAX),
            AluOp::Rem => {
                if b == 0 {
                    a
                } else {
                    a % b
                }
            }
        }
    }

    /// Mnemonic stem used by the assembler (`add`, `sub`, …).
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Sll => "sll",
            AluOp::Srl => "srl",
            AluOp::Sra => "sra",
            AluOp::Slt => "slt",
            AluOp::Sltu => "sltu",
            AluOp::Mul => "mul",
            AluOp::Div => "div",
            AluOp::Rem => "rem",
        }
    }
}

/// Branch conditions (two register sources, like the ALU forms).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchCond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed greater-or-equal.
    Ge,
    /// Unsigned less-than.
    Ltu,
    /// Unsigned greater-or-equal.
    Geu,
}

impl BranchCond {
    /// Every branch condition.
    pub const ALL: [BranchCond; 6] = [
        BranchCond::Eq,
        BranchCond::Ne,
        BranchCond::Lt,
        BranchCond::Ge,
        BranchCond::Ltu,
        BranchCond::Geu,
    ];

    /// Evaluate the condition on two operands.
    #[inline]
    pub fn eval(self, a: u32, b: u32) -> bool {
        match self {
            BranchCond::Eq => a == b,
            BranchCond::Ne => a != b,
            BranchCond::Lt => (a as i32) < (b as i32),
            BranchCond::Ge => (a as i32) >= (b as i32),
            BranchCond::Ltu => a < b,
            BranchCond::Geu => a >= b,
        }
    }

    /// Assembler mnemonic (`beq`, `bne`, …).
    pub fn mnemonic(self) -> &'static str {
        match self {
            BranchCond::Eq => "beq",
            BranchCond::Ne => "bne",
            BranchCond::Lt => "blt",
            BranchCond::Ge => "bge",
            BranchCond::Ltu => "bltu",
            BranchCond::Geu => "bgeu",
        }
    }
}

/// One instruction. Branch and jump targets are absolute instruction
/// indices (resolved by the assembler).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instr {
    /// Three-register ALU operation: `rd = rs1 op rs2`.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// First source.
        rs1: Reg,
        /// Second source.
        rs2: Reg,
    },
    /// Register–immediate ALU operation: `rd = rs1 op imm`.
    AluImm {
        /// Operation.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// Source register.
        rs1: Reg,
        /// Immediate operand (sign-extended to 32 bits).
        imm: i32,
    },
    /// Load immediate: `rd = imm`. Reads no registers.
    LoadImm {
        /// Destination register.
        rd: Reg,
        /// Immediate value.
        imm: i32,
    },
    /// Word load: `rd = mem[rs(base) + offset]` (word-addressed).
    Load {
        /// Destination register.
        rd: Reg,
        /// Base address register.
        base: Reg,
        /// Word offset (sign-extended).
        offset: i32,
    },
    /// Word store: `mem[rs(base) + offset] = src`.
    Store {
        /// Register holding the value to store.
        src: Reg,
        /// Base address register.
        base: Reg,
        /// Word offset (sign-extended).
        offset: i32,
    },
    /// Conditional branch to an absolute instruction index.
    Branch {
        /// Condition on `rs1`, `rs2`.
        cond: BranchCond,
        /// First comparand.
        rs1: Reg,
        /// Second comparand.
        rs2: Reg,
        /// Absolute target instruction index.
        target: u32,
    },
    /// Unconditional jump to an absolute instruction index.
    Jump {
        /// Absolute target instruction index.
        target: u32,
    },
    /// Stop the machine.
    Halt,
    /// No operation.
    Nop,
}

impl Instr {
    /// The registers this instruction reads, in operand order.
    /// Always at most two (the paper's ISA constraint).
    #[inline]
    pub fn reads(&self) -> [Option<Reg>; 2] {
        match *self {
            Instr::Alu { rs1, rs2, .. } => [Some(rs1), Some(rs2)],
            Instr::AluImm { rs1, .. } => [Some(rs1), None],
            Instr::LoadImm { .. } => [None, None],
            Instr::Load { base, .. } => [Some(base), None],
            Instr::Store { src, base, .. } => [Some(base), Some(src)],
            Instr::Branch { rs1, rs2, .. } => [Some(rs1), Some(rs2)],
            Instr::Jump { .. } | Instr::Halt | Instr::Nop => [None, None],
        }
    }

    /// The register this instruction writes, if any.
    /// Always at most one (the paper's ISA constraint).
    #[inline]
    pub fn writes(&self) -> Option<Reg> {
        match *self {
            Instr::Alu { rd, .. }
            | Instr::AluImm { rd, .. }
            | Instr::LoadImm { rd, .. }
            | Instr::Load { rd, .. } => Some(rd),
            _ => None,
        }
    }

    /// Is this a load from memory?
    #[inline]
    pub fn is_load(&self) -> bool {
        matches!(self, Instr::Load { .. })
    }

    /// Is this a store to memory?
    #[inline]
    pub fn is_store(&self) -> bool {
        matches!(self, Instr::Store { .. })
    }

    /// Is this a control-flow instruction (branch or jump)?
    #[inline]
    pub fn is_control(&self) -> bool {
        matches!(self, Instr::Branch { .. } | Instr::Jump { .. })
    }

    /// Is this a conditional branch?
    #[inline]
    pub fn is_branch(&self) -> bool {
        matches!(self, Instr::Branch { .. })
    }

    /// The highest register index mentioned, if any — used to validate a
    /// program against a register-file size `L`.
    pub fn max_reg(&self) -> Option<u8> {
        let mut m: Option<u8> = None;
        for r in self.reads().into_iter().flatten() {
            m = Some(m.map_or(r.0, |x| x.max(r.0)));
        }
        if let Some(r) = self.writes() {
            m = Some(m.map_or(r.0, |x| x.max(r.0)));
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_semantics() {
        assert_eq!(AluOp::Add.apply(u32::MAX, 1), 0);
        assert_eq!(AluOp::Sub.apply(0, 1), u32::MAX);
        assert_eq!(AluOp::And.apply(0b1100, 0b1010), 0b1000);
        assert_eq!(AluOp::Or.apply(0b1100, 0b1010), 0b1110);
        assert_eq!(AluOp::Xor.apply(0b1100, 0b1010), 0b0110);
        assert_eq!(AluOp::Sll.apply(1, 4), 16);
        assert_eq!(AluOp::Srl.apply(0x8000_0000, 31), 1);
        assert_eq!(AluOp::Sra.apply(0x8000_0000, 31), u32::MAX);
        assert_eq!(AluOp::Slt.apply(u32::MAX, 0), 1); // -1 < 0 signed
        assert_eq!(AluOp::Sltu.apply(u32::MAX, 0), 0);
        assert_eq!(AluOp::Mul.apply(7, 6), 42);
        assert_eq!(AluOp::Div.apply(42, 6), 7);
        assert_eq!(AluOp::Rem.apply(43, 6), 1);
    }

    #[test]
    fn division_by_zero_is_total() {
        assert_eq!(AluOp::Div.apply(5, 0), u32::MAX);
        assert_eq!(AluOp::Rem.apply(5, 0), 5);
    }

    #[test]
    fn shifts_mask_their_amount() {
        assert_eq!(AluOp::Sll.apply(1, 32), 1);
        assert_eq!(AluOp::Sll.apply(1, 33), 2);
    }

    #[test]
    fn branch_semantics() {
        assert!(BranchCond::Eq.eval(3, 3));
        assert!(BranchCond::Ne.eval(3, 4));
        assert!(BranchCond::Lt.eval(u32::MAX, 0)); // signed
        assert!(!BranchCond::Ltu.eval(u32::MAX, 0)); // unsigned
        assert!(BranchCond::Ge.eval(0, u32::MAX)); // 0 >= -1 signed
        assert!(BranchCond::Geu.eval(u32::MAX, 0));
    }

    #[test]
    fn every_instruction_reads_at_most_two_and_writes_at_most_one() {
        // The accessors are typed to enforce this; spot-check the
        // densest forms.
        let st = Instr::Store {
            src: Reg(1),
            base: Reg(2),
            offset: 0,
        };
        assert_eq!(st.reads().iter().flatten().count(), 2);
        assert_eq!(st.writes(), None);

        let alu = Instr::Alu {
            op: AluOp::Add,
            rd: Reg(3),
            rs1: Reg(1),
            rs2: Reg(2),
        };
        assert_eq!(alu.reads().iter().flatten().count(), 2);
        assert_eq!(alu.writes(), Some(Reg(3)));
    }

    #[test]
    fn max_reg_scans_all_fields() {
        let i = Instr::Alu {
            op: AluOp::Add,
            rd: Reg(9),
            rs1: Reg(2),
            rs2: Reg(30),
        };
        assert_eq!(i.max_reg(), Some(30));
        assert_eq!(Instr::Halt.max_reg(), None);
        assert_eq!(Instr::Jump { target: 5 }.max_reg(), None);
    }

    #[test]
    fn classification_predicates() {
        assert!(Instr::Load {
            rd: Reg(0),
            base: Reg(1),
            offset: 0
        }
        .is_load());
        assert!(Instr::Store {
            src: Reg(0),
            base: Reg(1),
            offset: 0
        }
        .is_store());
        assert!(Instr::Jump { target: 0 }.is_control());
        assert!(!Instr::Jump { target: 0 }.is_branch());
        assert!(Instr::Branch {
            cond: BranchCond::Eq,
            rs1: Reg(0),
            rs2: Reg(0),
            target: 0
        }
        .is_branch());
    }
}
