//! A tiny object-file format (`.ubin`) for assembled programs: the
//! fixed-width instruction encoding of [`crate::encode`] plus the
//! initial register/memory images, with a magic header and length
//! checks so corrupted files are rejected rather than misread.
//!
//! Layout (all little-endian):
//!
//! ```text
//! offset  size  field
//! 0       8     magic  "USCLR\0\0\1"
//! 8       4     num_regs (u32)
//! 12      4     instruction count (u32)
//! 16      4     init_mem word count (u32)
//! 20      4     reserved (0)
//! 24      8·ni  instructions (u64 each, crate::encode)
//! …       4·nr  init_regs (u32 each, num_regs entries)
//! …       4·nm  init_mem  (u32 each)
//! ```

use crate::encode::{decode, encode};
use crate::program::Program;

const MAGIC: [u8; 8] = *b"USCLR\0\0\x01";

/// Errors from [`read_binary`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BinaryError {
    /// The header magic is wrong (not a `.ubin` or wrong version).
    BadMagic,
    /// The file is shorter than its header promises.
    Truncated,
    /// Trailing bytes after the promised content.
    TrailingBytes(usize),
    /// An instruction word failed to decode.
    BadInstruction {
        /// Instruction index.
        at: usize,
        /// Decoder message.
        msg: String,
    },
    /// The decoded program failed validation.
    Invalid(String),
}

impl std::fmt::Display for BinaryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BinaryError::BadMagic => write!(f, "not a .ubin file (bad magic)"),
            BinaryError::Truncated => write!(f, "file truncated"),
            BinaryError::TrailingBytes(n) => write!(f, "{n} trailing bytes"),
            BinaryError::BadInstruction { at, msg } => {
                write!(f, "instruction {at}: {msg}")
            }
            BinaryError::Invalid(m) => write!(f, "invalid program: {m}"),
        }
    }
}

impl std::error::Error for BinaryError {}

/// Serialise a program to the `.ubin` byte format.
pub fn write_binary(p: &Program) -> Vec<u8> {
    let mut out =
        Vec::with_capacity(24 + 8 * p.instrs.len() + 4 * p.init_regs.len() + 4 * p.init_mem.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&(p.num_regs as u32).to_le_bytes());
    out.extend_from_slice(&(p.instrs.len() as u32).to_le_bytes());
    out.extend_from_slice(&(p.init_mem.len() as u32).to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes());
    for i in &p.instrs {
        out.extend_from_slice(&encode(i).to_le_bytes());
    }
    for r in &p.init_regs {
        out.extend_from_slice(&r.to_le_bytes());
    }
    for w in &p.init_mem {
        out.extend_from_slice(&w.to_le_bytes());
    }
    out
}

/// Deserialise and validate a `.ubin` byte stream.
pub fn read_binary(bytes: &[u8]) -> Result<Program, BinaryError> {
    if bytes.len() < 24 {
        return Err(if bytes.starts_with(&MAGIC) || bytes.len() < 8 {
            BinaryError::Truncated
        } else {
            BinaryError::BadMagic
        });
    }
    if bytes[..8] != MAGIC {
        return Err(BinaryError::BadMagic);
    }
    let u32_at = |off: usize| -> u32 {
        u32::from_le_bytes(bytes[off..off + 4].try_into().expect("4 bytes"))
    };
    let num_regs = u32_at(8) as usize;
    let ni = u32_at(12) as usize;
    let nm = u32_at(16) as usize;
    let need = 24 + 8 * ni + 4 * num_regs + 4 * nm;
    if bytes.len() < need {
        return Err(BinaryError::Truncated);
    }
    if bytes.len() > need {
        return Err(BinaryError::TrailingBytes(bytes.len() - need));
    }
    let mut instrs = Vec::with_capacity(ni);
    for k in 0..ni {
        let off = 24 + 8 * k;
        let w = u64::from_le_bytes(bytes[off..off + 8].try_into().expect("8 bytes"));
        instrs.push(decode(w).map_err(|e| BinaryError::BadInstruction {
            at: k,
            msg: e.to_string(),
        })?);
    }
    let regs_off = 24 + 8 * ni;
    let init_regs: Vec<u32> = (0..num_regs).map(|k| u32_at(regs_off + 4 * k)).collect();
    let mem_off = regs_off + 4 * num_regs;
    let init_mem: Vec<u32> = (0..nm).map(|k| u32_at(mem_off + 4 * k)).collect();
    let program = Program {
        instrs,
        num_regs,
        init_regs,
        init_mem,
    };
    program
        .validate()
        .map_err(|e| BinaryError::Invalid(e.to_string()))?;
    Ok(program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload;

    #[test]
    fn roundtrip_every_suite_kernel() {
        for (name, p) in workload::standard_suite(5) {
            let bytes = write_binary(&p);
            let back = read_binary(&bytes).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(p, back, "{name}");
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let p = workload::fibonacci(5);
        let mut bytes = write_binary(&p);
        bytes[0] = b'X';
        assert_eq!(read_binary(&bytes), Err(BinaryError::BadMagic));
    }

    #[test]
    fn truncation_rejected() {
        let p = workload::fibonacci(5);
        let bytes = write_binary(&p);
        for cut in [4usize, 12, 30, bytes.len() - 1] {
            assert!(
                matches!(
                    read_binary(&bytes[..cut]),
                    Err(BinaryError::Truncated | BinaryError::BadMagic)
                ),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let p = workload::fibonacci(5);
        let mut bytes = write_binary(&p);
        bytes.push(0);
        assert_eq!(read_binary(&bytes), Err(BinaryError::TrailingBytes(1)));
    }

    #[test]
    fn corrupt_instruction_rejected() {
        let p = workload::fibonacci(5);
        let mut bytes = write_binary(&p);
        bytes[24 + 7] = 0xFF; // smash the first opcode byte
        assert!(matches!(
            read_binary(&bytes),
            Err(BinaryError::BadInstruction { at: 0, .. })
        ));
    }

    #[test]
    fn empty_program_roundtrips() {
        let p = crate::program::Program::new(vec![], 4);
        assert_eq!(read_binary(&write_binary(&p)), Ok(p));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The reader never panics on arbitrary bytes.
        #[test]
        fn reader_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
            let _ = read_binary(&bytes);
        }

        /// Random programs round-trip.
        #[test]
        fn random_programs_roundtrip(seed in 0u64..10_000) {
            let p = crate::workload::random_program(&crate::workload::RandomCfg {
                seed,
                len: 60,
                ..Default::default()
            });
            prop_assert_eq!(read_binary(&write_binary(&p)), Ok(p));
        }
    }
}
