//! A content-hash-keyed LRU cache of assembled [`Program`]s.
//!
//! Serving mode re-simulates the same few sources across many
//! configuration points (the design-space-exploration workload of the
//! related work), so repeated requests should skip the assembler
//! entirely. The key is an FNV-1a hash over the source text and the
//! register-file width; because hashes can collide, every entry also
//! keeps its source and a hit requires an exact match — a cache hit
//! can never return the wrong program, and the hit path allocates
//! nothing (hashing and comparison both run over borrowed bytes, and
//! the cached program is shared out as an [`Arc`] clone, a refcount
//! bump).
//!
//! Two forms are provided:
//!
//! * [`ProgramCache`] — a single small linear-scan LRU, like the engine
//!   pool in the core crate: request streams cycle through a handful of
//!   programs, so scanning a few entries beats maintaining a map.
//! * [`ShardedProgramCache`] — N independent [`ProgramCache`] shards,
//!   each behind its own lock, selected by the same content hash. The
//!   concurrent serving loop's worker threads hash straight to their
//!   shard, so two workers assembling different programs never contend
//!   on one LRU mutex (the NYU Ultracomputer lesson: shared-structure
//!   hot spots, not compute, bound scalable throughput). Per-shard
//!   hit/miss/eviction counters roll up through
//!   [`ShardedProgramCache::stats`].

use std::sync::{Arc, Mutex, MutexGuard};

use crate::asm::{assemble, AsmError};
use crate::program::Program;

/// FNV-1a over a byte string: tiny, dependency-free, and good enough
/// to make full-source comparisons rare.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Roll-up of cache counters (one shard's, or the whole sharded
/// cache's).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served without running the assembler.
    pub hits: u64,
    /// Lookups that ran the assembler (including failed assemblies).
    pub misses: u64,
    /// Entries dropped to make room at capacity.
    pub evictions: u64,
    /// Programs currently cached.
    pub entries: usize,
}

#[derive(Debug)]
struct CacheEntry {
    hash: u64,
    num_regs: usize,
    source: String,
    program: Arc<Program>,
    last_used: u64,
}

/// LRU cache of assembled programs keyed by (source text, register
/// count).
#[derive(Debug)]
pub struct ProgramCache {
    entries: Vec<CacheEntry>,
    capacity: usize,
    stamp: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl ProgramCache {
    /// Create a cache holding at most `capacity` assembled programs.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "program cache needs capacity");
        ProgramCache {
            entries: Vec::with_capacity(capacity),
            capacity,
            stamp: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Return the assembled program for `src` with `num_regs`
    /// registers, assembling (and caching) on first sight. Assembly
    /// errors are returned and cached nowhere — a later corrected
    /// request with the same hash cannot be poisoned.
    pub fn get_or_assemble(&mut self, src: &str, num_regs: usize) -> Result<&Program, AsmError> {
        let idx = self.lookup_index(src, num_regs)?;
        Ok(&self.entries[idx].program)
    }

    /// Like [`ProgramCache::get_or_assemble`], but hand out a shared
    /// handle: the concurrent serving loop clones the `Arc` (a
    /// refcount bump, no allocation) so the program can be simulated
    /// after the shard lock is released.
    pub fn get_or_assemble_shared(
        &mut self,
        src: &str,
        num_regs: usize,
    ) -> Result<Arc<Program>, AsmError> {
        let idx = self.lookup_index(src, num_regs)?;
        Ok(Arc::clone(&self.entries[idx].program))
    }

    fn lookup_index(&mut self, src: &str, num_regs: usize) -> Result<usize, AsmError> {
        self.stamp += 1;
        let hash = fnv1a(src.as_bytes());
        let found = self
            .entries
            .iter()
            .position(|e| e.hash == hash && e.num_regs == num_regs && e.source == src);
        match found {
            Some(i) => {
                self.hits += 1;
                self.entries[i].last_used = self.stamp;
                Ok(i)
            }
            None => {
                self.misses += 1;
                let program = Arc::new(assemble(src, num_regs)?);
                if self.entries.len() == self.capacity {
                    let lru = self
                        .entries
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, e)| e.last_used)
                        .map(|(i, _)| i)
                        .expect("cache non-empty at capacity");
                    self.entries.swap_remove(lru);
                    self.evictions += 1;
                }
                self.entries.push(CacheEntry {
                    hash,
                    num_regs,
                    source: src.to_string(),
                    program,
                    last_used: self.stamp,
                });
                Ok(self.entries.len() - 1)
            }
        }
    }

    /// Programs currently cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lookups served without running the assembler.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that ran the assembler (including ones whose assembly
    /// failed).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries dropped to make room at capacity.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            entries: self.entries.len(),
        }
    }
}

/// Lock a shard, recovering from poison: a shard holds only cache
/// state whose invariants every exit path maintains, so a panic in
/// some unrelated code on a thread holding the lock must not wedge the
/// whole server.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// N independent [`ProgramCache`] shards, each behind its own mutex,
/// selected by the FNV-1a content hash — the concurrent serving
/// loop's shared program cache.
#[derive(Debug)]
pub struct ShardedProgramCache {
    shards: Vec<Mutex<ProgramCache>>,
}

impl ShardedProgramCache {
    /// Create a sharded cache with `shards` shards holding at most
    /// `total_capacity` programs between them (each shard gets
    /// `ceil(total/shards)`, at least one).
    ///
    /// # Panics
    /// Panics if either argument is zero.
    pub fn new(total_capacity: usize, shards: usize) -> Self {
        assert!(total_capacity > 0, "program cache needs capacity");
        assert!(shards > 0, "program cache needs at least one shard");
        let per_shard = total_capacity.div_ceil(shards).max(1);
        ShardedProgramCache {
            shards: (0..shards)
                .map(|_| Mutex::new(ProgramCache::new(per_shard)))
                .collect(),
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Return the assembled program for `src`, locking only the shard
    /// the content hash selects. The returned `Arc` is usable after
    /// the shard lock is released; a hit performs no allocation.
    pub fn get_or_assemble(&self, src: &str, num_regs: usize) -> Result<Arc<Program>, AsmError> {
        let hash = fnv1a(src.as_bytes());
        let shard = &self.shards[(hash % self.shards.len() as u64) as usize];
        lock(shard).get_or_assemble_shared(src, num_regs)
    }

    /// Counters summed across all shards.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for shard in &self.shards {
            let s = lock(shard).stats();
            total.hits += s.hits;
            total.misses += s.misses;
            total.evictions += s.evictions;
            total.entries += s.entries;
        }
        total
    }

    /// Per-shard counter snapshots (for shard-balance observability).
    pub fn shard_stats(&self) -> Vec<CacheStats> {
        self.shards.iter().map(|s| lock(s).stats()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PROG: &str = "li r1, 6\nli r2, 7\nmul r3, r1, r2\nhalt\n";

    #[test]
    fn repeat_source_hits() {
        let mut c = ProgramCache::new(4);
        let p1 = c.get_or_assemble(PROG, 32).expect("assembles").clone();
        assert_eq!((c.hits(), c.misses()), (0, 1));
        let p2 = c.get_or_assemble(PROG, 32).expect("assembles").clone();
        assert_eq!((c.hits(), c.misses()), (1, 1));
        assert_eq!(p1, p2);
    }

    #[test]
    fn register_count_is_part_of_the_key() {
        let mut c = ProgramCache::new(4);
        c.get_or_assemble(PROG, 32).expect("assembles");
        let p = c.get_or_assemble(PROG, 8).expect("assembles");
        assert_eq!(p.num_regs, 8);
        assert_eq!((c.hits(), c.misses(), c.len()), (0, 2, 2));
    }

    #[test]
    fn errors_are_not_cached() {
        let mut c = ProgramCache::new(4);
        assert!(c.get_or_assemble("bogus r1", 32).is_err());
        assert_eq!(c.len(), 0);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn capacity_evicts_lru_and_counts() {
        let mut c = ProgramCache::new(2);
        let a = "li r1, 1\nhalt\n";
        let b = "li r1, 2\nhalt\n";
        let d = "li r1, 3\nhalt\n";
        c.get_or_assemble(a, 32).expect("assembles");
        c.get_or_assemble(b, 32).expect("assembles");
        c.get_or_assemble(a, 32).expect("assembles"); // refresh a
        assert_eq!(c.evictions(), 0);
        c.get_or_assemble(d, 32).expect("assembles"); // evicts b
        assert_eq!(c.len(), 2);
        assert_eq!(c.evictions(), 1);
        let misses = c.misses();
        c.get_or_assemble(a, 32).expect("assembles");
        assert_eq!(c.misses(), misses, "a still cached");
        c.get_or_assemble(b, 32).expect("assembles");
        assert_eq!(c.misses(), misses + 1, "b was evicted");
        assert_eq!(c.evictions(), 2);
        assert_eq!(c.stats().entries, 2);
    }

    #[test]
    fn shared_handle_survives_eviction() {
        let mut c = ProgramCache::new(1);
        let a = c.get_or_assemble_shared(PROG, 32).expect("assembles");
        c.get_or_assemble("li r1, 1\nhalt\n", 32).expect("evicts");
        assert_eq!(c.evictions(), 1);
        // The evicted program is still alive through the Arc.
        assert_eq!(a.num_regs, 32);
    }

    #[test]
    fn fnv1a_is_stable_and_spreads() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
        assert_ne!(fnv1a(b"ab"), fnv1a(b"ba"));
    }

    #[test]
    fn sharded_cache_serves_and_rolls_up() {
        let c = ShardedProgramCache::new(8, 4);
        assert_eq!(c.num_shards(), 4);
        let p1 = c.get_or_assemble(PROG, 32).expect("assembles");
        let p2 = c.get_or_assemble(PROG, 32).expect("assembles");
        assert_eq!(p1, p2);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        // Exactly one shard saw the traffic.
        let busy: Vec<_> = c
            .shard_stats()
            .into_iter()
            .filter(|s| s.hits + s.misses > 0)
            .collect();
        assert_eq!(busy.len(), 1);
    }

    #[test]
    fn sharded_cache_is_shareable_across_threads() {
        let c = std::sync::Arc::new(ShardedProgramCache::new(4, 2));
        let mut handles = Vec::new();
        for t in 0..4 {
            let c = std::sync::Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for i in 0..32 {
                    let src = format!("li r1, {}\nhalt\n", (t + i) % 6);
                    let p = c.get_or_assemble(&src, 32).expect("assembles");
                    assert_eq!(p.num_regs, 32);
                }
            }));
        }
        for h in handles {
            h.join().expect("no panics");
        }
        let s = c.stats();
        assert_eq!(s.hits + s.misses, 4 * 32);
        assert!(s.entries <= 4, "capacity respected: {}", s.entries);
    }
}
