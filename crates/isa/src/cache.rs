//! A content-hash-keyed LRU cache of assembled [`Program`]s.
//!
//! Serving mode re-simulates the same few sources across many
//! configuration points (the design-space-exploration workload of the
//! related work), so repeated requests should skip the assembler
//! entirely. The key is an FNV-1a hash over the source text and the
//! register-file width; because hashes can collide, every entry also
//! keeps its source and a hit requires an exact match — a cache hit
//! can never return the wrong program, and the hit path allocates
//! nothing (hashing and comparison both run over borrowed bytes).
//!
//! The cache is a small linear-scan LRU, like the engine pool in the
//! core crate: request streams cycle through a handful of programs, so
//! scanning a few entries beats maintaining a map.

use crate::asm::{assemble, AsmError};
use crate::program::Program;

/// FNV-1a over a byte string: tiny, dependency-free, and good enough
/// to make full-source comparisons rare.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[derive(Debug)]
struct CacheEntry {
    hash: u64,
    num_regs: usize,
    source: String,
    program: Program,
    last_used: u64,
}

/// LRU cache of assembled programs keyed by (source text, register
/// count).
#[derive(Debug)]
pub struct ProgramCache {
    entries: Vec<CacheEntry>,
    capacity: usize,
    stamp: u64,
    hits: u64,
    misses: u64,
}

impl ProgramCache {
    /// Create a cache holding at most `capacity` assembled programs.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "program cache needs capacity");
        ProgramCache {
            entries: Vec::with_capacity(capacity),
            capacity,
            stamp: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Return the assembled program for `src` with `num_regs`
    /// registers, assembling (and caching) on first sight. Assembly
    /// errors are returned and cached nowhere — a later corrected
    /// request with the same hash cannot be poisoned.
    pub fn get_or_assemble(&mut self, src: &str, num_regs: usize) -> Result<&Program, AsmError> {
        self.stamp += 1;
        let hash = fnv1a(src.as_bytes());
        let found = self
            .entries
            .iter()
            .position(|e| e.hash == hash && e.num_regs == num_regs && e.source == src);
        let idx = match found {
            Some(i) => {
                self.hits += 1;
                self.entries[i].last_used = self.stamp;
                i
            }
            None => {
                self.misses += 1;
                let program = assemble(src, num_regs)?;
                if self.entries.len() == self.capacity {
                    let lru = self
                        .entries
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, e)| e.last_used)
                        .map(|(i, _)| i)
                        .expect("cache non-empty at capacity");
                    self.entries.swap_remove(lru);
                }
                self.entries.push(CacheEntry {
                    hash,
                    num_regs,
                    source: src.to_string(),
                    program,
                    last_used: self.stamp,
                });
                self.entries.len() - 1
            }
        };
        Ok(&self.entries[idx].program)
    }

    /// Programs currently cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lookups served without running the assembler.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that ran the assembler (including ones whose assembly
    /// failed).
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PROG: &str = "li r1, 6\nli r2, 7\nmul r3, r1, r2\nhalt\n";

    #[test]
    fn repeat_source_hits() {
        let mut c = ProgramCache::new(4);
        let p1 = c.get_or_assemble(PROG, 32).expect("assembles").clone();
        assert_eq!((c.hits(), c.misses()), (0, 1));
        let p2 = c.get_or_assemble(PROG, 32).expect("assembles").clone();
        assert_eq!((c.hits(), c.misses()), (1, 1));
        assert_eq!(p1, p2);
    }

    #[test]
    fn register_count_is_part_of_the_key() {
        let mut c = ProgramCache::new(4);
        c.get_or_assemble(PROG, 32).expect("assembles");
        let p = c.get_or_assemble(PROG, 8).expect("assembles");
        assert_eq!(p.num_regs, 8);
        assert_eq!((c.hits(), c.misses(), c.len()), (0, 2, 2));
    }

    #[test]
    fn errors_are_not_cached() {
        let mut c = ProgramCache::new(4);
        assert!(c.get_or_assemble("bogus r1", 32).is_err());
        assert_eq!(c.len(), 0);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn capacity_evicts_lru() {
        let mut c = ProgramCache::new(2);
        let a = "li r1, 1\nhalt\n";
        let b = "li r1, 2\nhalt\n";
        let d = "li r1, 3\nhalt\n";
        c.get_or_assemble(a, 32).expect("assembles");
        c.get_or_assemble(b, 32).expect("assembles");
        c.get_or_assemble(a, 32).expect("assembles"); // refresh a
        c.get_or_assemble(d, 32).expect("assembles"); // evicts b
        assert_eq!(c.len(), 2);
        let misses = c.misses();
        c.get_or_assemble(a, 32).expect("assembles");
        assert_eq!(c.misses(), misses, "a still cached");
        c.get_or_assemble(b, 32).expect("assembles");
        assert_eq!(c.misses(), misses + 1, "b was evicted");
    }

    #[test]
    fn fnv1a_is_stable_and_spreads() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
        assert_ne!(fnv1a(b"ab"), fnv1a(b"ba"));
    }
}
