//! A small two-pass assembler and a disassembler.
//!
//! Syntax (one instruction or label per line; `;` and `#` start
//! comments):
//!
//! ```text
//! start:
//!     li   r1, 10          ; load immediate
//!     addi r2, r1, 5       ; register-immediate ALU
//!     add  r3, r1, r2      ; three-register ALU
//!     lw   r4, 8(r3)       ; load word,  rd, offset(base)
//!     sw   r4, -4(r3)      ; store word, src, offset(base)
//!     beq  r1, r2, done    ; branch to label (or absolute index)
//!     j    start
//! done:
//!     halt
//! ```
//!
//! ALU mnemonics: `add sub and or xor sll srl sra slt sltu mul div rem`
//! plus their `…i` immediate forms. Branches: `beq bne blt bge bltu
//! bgeu`. Also `nop`, `halt`, `li`, `lw`, `sw`, `j`.
//!
//! Data directives initialise machine state without executing code:
//!
//! ```text
//! .org  16            ; next .word lands at word address 16
//! .word 3, 5, 8, 13   ; initial data memory, consecutive words
//! .reg  r2, 42        ; initial register value
//! ```

use std::collections::HashMap;

use crate::instr::{AluOp, BranchCond, Instr, Reg};
use crate::program::Program;

/// Assembly error with a 1-based source line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line in the source text.
    pub line: usize,
    /// Human-readable description.
    pub msg: String,
}

impl std::fmt::Display for AsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for AsmError {}

fn err(line: usize, msg: impl Into<String>) -> AsmError {
    AsmError {
        line,
        msg: msg.into(),
    }
}

fn parse_reg(tok: &str, line: usize) -> Result<Reg, AsmError> {
    let rest = tok
        .strip_prefix('r')
        .or_else(|| tok.strip_prefix('R'))
        .ok_or_else(|| err(line, format!("expected register, got `{tok}`")))?;
    let idx: u16 = rest
        .parse()
        .map_err(|_| err(line, format!("bad register `{tok}`")))?;
    if idx > 255 {
        return Err(err(line, format!("register index {idx} exceeds 255")));
    }
    Ok(Reg(idx as u8))
}

fn parse_imm(tok: &str, line: usize) -> Result<i32, AsmError> {
    let (neg, body) = match tok.strip_prefix('-') {
        Some(b) => (true, b),
        None => (false, tok),
    };
    let v: i64 = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16).map_err(|_| err(line, format!("bad immediate `{tok}`")))?
    } else {
        body.parse()
            .map_err(|_| err(line, format!("bad immediate `{tok}`")))?
    };
    let v = if neg { -v } else { v };
    i32::try_from(v).map_err(|_| err(line, format!("immediate `{tok}` out of i32 range")))
}

/// Parse `offset(base)`, e.g. `8(r2)` or `-4(r0)`.
fn parse_mem_operand(tok: &str, line: usize) -> Result<(i32, Reg), AsmError> {
    let open = tok
        .find('(')
        .ok_or_else(|| err(line, format!("expected `offset(base)`, got `{tok}`")))?;
    let close = tok
        .strip_suffix(')')
        .ok_or_else(|| err(line, format!("missing `)` in `{tok}`")))?;
    let off_str = &tok[..open];
    let base_str = &close[open + 1..];
    let offset = if off_str.is_empty() {
        0
    } else {
        parse_imm(off_str, line)?
    };
    let base = parse_reg(base_str, line)?;
    Ok((offset, base))
}

fn alu_by_name(name: &str) -> Option<AluOp> {
    AluOp::ALL.iter().copied().find(|op| op.mnemonic() == name)
}

fn cond_by_name(name: &str) -> Option<BranchCond> {
    BranchCond::ALL
        .iter()
        .copied()
        .find(|c| c.mnemonic() == name)
}

enum PendingTarget {
    Resolved(u32),
    Label(String),
}

enum Pending {
    Done(Instr),
    Branch {
        cond: BranchCond,
        rs1: Reg,
        rs2: Reg,
        target: PendingTarget,
    },
    Jump {
        target: PendingTarget,
    },
}

fn parse_target(tok: &str) -> PendingTarget {
    match tok.parse::<u32>() {
        Ok(v) => PendingTarget::Resolved(v),
        Err(_) => PendingTarget::Label(tok.to_string()),
    }
}

/// Assemble source text into a [`Program`] with `num_regs` logical
/// registers. The resulting program is validated.
pub fn assemble(src: &str, num_regs: usize) -> Result<Program, AsmError> {
    let mut labels: HashMap<String, u32> = HashMap::new();
    let mut pendings: Vec<(usize, Pending)> = Vec::new();
    let mut init_mem: Vec<u32> = Vec::new();
    let mut mem_cursor: usize = 0;
    let mut init_regs: Vec<(Reg, u32)> = Vec::new();

    for (lineno0, raw) in src.lines().enumerate() {
        let line = lineno0 + 1;
        // Strip comments.
        let code = raw.split([';', '#']).next().unwrap_or("").trim();
        if code.is_empty() {
            continue;
        }
        // Data directives.
        if let Some(rest) = code.strip_prefix(".org") {
            let v = parse_imm(rest.trim(), line)?;
            if v < 0 {
                return Err(err(line, ".org address must be non-negative"));
            }
            mem_cursor = v as usize;
            continue;
        }
        if let Some(rest) = code.strip_prefix(".word") {
            for tok in rest.split(',').map(str::trim).filter(|t| !t.is_empty()) {
                let v = parse_imm(tok, line)? as u32;
                if init_mem.len() <= mem_cursor {
                    init_mem.resize(mem_cursor + 1, 0);
                }
                init_mem[mem_cursor] = v;
                mem_cursor += 1;
            }
            continue;
        }
        if let Some(rest) = code.strip_prefix(".reg") {
            let parts: Vec<&str> = rest.split(',').map(str::trim).collect();
            if parts.len() != 2 {
                return Err(err(line, ".reg takes `rN, value`"));
            }
            let r = parse_reg(parts[0], line)?;
            let v = parse_imm(parts[1], line)? as u32;
            init_regs.push((r, v));
            continue;
        }
        if code.starts_with('.') {
            return Err(err(line, format!("unknown directive `{code}`")));
        }
        // Labels (possibly followed by an instruction on the same line).
        let mut rest = code;
        while let Some(colon) = rest.find(':') {
            let (label, after) = rest.split_at(colon);
            let label = label.trim();
            if label.is_empty() || label.contains(char::is_whitespace) {
                return Err(err(line, format!("bad label `{label}`")));
            }
            if labels
                .insert(label.to_string(), pendings.len() as u32)
                .is_some()
            {
                return Err(err(line, format!("duplicate label `{label}`")));
            }
            rest = after[1..].trim();
            if rest.is_empty() {
                break;
            }
        }
        if rest.is_empty() {
            continue;
        }

        // Tokenise: mnemonic, then comma-separated operands.
        let (mnemonic, operands) = match rest.split_once(char::is_whitespace) {
            Some((m, rest)) => (m, rest.trim()),
            None => (rest, ""),
        };
        let ops: Vec<&str> = if operands.is_empty() {
            Vec::new()
        } else {
            operands.split(',').map(str::trim).collect()
        };
        let arity = |n: usize| -> Result<(), AsmError> {
            if ops.len() == n {
                Ok(())
            } else {
                Err(err(
                    line,
                    format!("`{mnemonic}` takes {n} operand(s), got {}", ops.len()),
                ))
            }
        };

        let m = mnemonic.to_ascii_lowercase();
        let pending = match m.as_str() {
            "nop" => {
                arity(0)?;
                Pending::Done(Instr::Nop)
            }
            "halt" => {
                arity(0)?;
                Pending::Done(Instr::Halt)
            }
            "li" => {
                arity(2)?;
                Pending::Done(Instr::LoadImm {
                    rd: parse_reg(ops[0], line)?,
                    imm: parse_imm(ops[1], line)?,
                })
            }
            "lw" => {
                arity(2)?;
                let (offset, base) = parse_mem_operand(ops[1], line)?;
                Pending::Done(Instr::Load {
                    rd: parse_reg(ops[0], line)?,
                    base,
                    offset,
                })
            }
            "sw" => {
                arity(2)?;
                let (offset, base) = parse_mem_operand(ops[1], line)?;
                Pending::Done(Instr::Store {
                    src: parse_reg(ops[0], line)?,
                    base,
                    offset,
                })
            }
            "j" | "jmp" => {
                arity(1)?;
                Pending::Jump {
                    target: parse_target(ops[0]),
                }
            }
            _ => {
                if let Some(cond) = cond_by_name(&m) {
                    arity(3)?;
                    Pending::Branch {
                        cond,
                        rs1: parse_reg(ops[0], line)?,
                        rs2: parse_reg(ops[1], line)?,
                        target: parse_target(ops[2]),
                    }
                } else if let Some(op) = m.strip_suffix('i').and_then(alu_by_name) {
                    arity(3)?;
                    Pending::Done(Instr::AluImm {
                        op,
                        rd: parse_reg(ops[0], line)?,
                        rs1: parse_reg(ops[1], line)?,
                        imm: parse_imm(ops[2], line)?,
                    })
                } else if let Some(op) = alu_by_name(&m) {
                    arity(3)?;
                    Pending::Done(Instr::Alu {
                        op,
                        rd: parse_reg(ops[0], line)?,
                        rs1: parse_reg(ops[1], line)?,
                        rs2: parse_reg(ops[2], line)?,
                    })
                } else {
                    return Err(err(line, format!("unknown mnemonic `{mnemonic}`")));
                }
            }
        };
        pendings.push((line, pending));
    }

    // Second pass: resolve labels.
    let resolve = |t: &PendingTarget, line: usize| -> Result<u32, AsmError> {
        match t {
            PendingTarget::Resolved(v) => Ok(*v),
            PendingTarget::Label(l) => labels
                .get(l)
                .copied()
                .ok_or_else(|| err(line, format!("undefined label `{l}`"))),
        }
    };
    let mut instrs = Vec::with_capacity(pendings.len());
    for (line, p) in &pendings {
        instrs.push(match p {
            Pending::Done(i) => *i,
            Pending::Branch {
                cond,
                rs1,
                rs2,
                target,
            } => Instr::Branch {
                cond: *cond,
                rs1: *rs1,
                rs2: *rs2,
                target: resolve(target, *line)?,
            },
            Pending::Jump { target } => Instr::Jump {
                target: resolve(target, *line)?,
            },
        });
    }

    let mut program = Program::new(instrs, num_regs).with_init_mem(init_mem);
    for (r, v) in init_regs {
        if r.index() >= num_regs {
            return Err(err(0, format!(".reg {r} exceeds register file")));
        }
        program.init_regs[r.index()] = v;
    }
    program
        .validate()
        .map_err(|e| err(0, format!("validation failed: {e}")))?;
    Ok(program)
}

/// Render one instruction in assembler syntax.
pub fn disassemble(i: &Instr) -> String {
    match *i {
        Instr::Nop => "nop".to_string(),
        Instr::Halt => "halt".to_string(),
        Instr::Jump { target } => format!("j    {target}"),
        Instr::LoadImm { rd, imm } => format!("li   {rd}, {imm}"),
        Instr::Load { rd, base, offset } => format!("lw   {rd}, {offset}({base})"),
        Instr::Store { src, base, offset } => format!("sw   {src}, {offset}({base})"),
        Instr::Alu { op, rd, rs1, rs2 } => {
            format!("{:<4} {rd}, {rs1}, {rs2}", op.mnemonic())
        }
        Instr::AluImm { op, rd, rs1, imm } => {
            format!("{:<4} {rd}, {rs1}, {imm}", format!("{}i", op.mnemonic()))
        }
        Instr::Branch {
            cond,
            rs1,
            rs2,
            target,
        } => format!("{:<4} {rs1}, {rs2}, {target}", cond.mnemonic()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Interp;

    #[test]
    fn assemble_and_run_countdown() {
        let src = r"
            ; count 10 down to 0 in r0
                li   r0, 10
            loop:
                subi r0, r0, 1
                bne  r0, r1, loop
                halt
        ";
        let p = assemble(src, 2).unwrap();
        let mut m = Interp::new(&p, 16);
        assert!(m.run(1000).halted());
        assert_eq!(m.regs[0], 0);
    }

    #[test]
    fn labels_on_own_line_and_inline() {
        let src = "a: b: nop\nc:\n j a";
        let p = assemble(src, 1).unwrap();
        assert_eq!(p.instrs[1], Instr::Jump { target: 0 });
    }

    #[test]
    fn numeric_targets_allowed() {
        let p = assemble("j 1\nhalt", 1).unwrap();
        assert_eq!(p.instrs[0], Instr::Jump { target: 1 });
    }

    #[test]
    fn memory_operands() {
        let p = assemble("lw r1, -4(r2)\nsw r1, (r3)\nhalt", 8).unwrap();
        assert_eq!(
            p.instrs[0],
            Instr::Load {
                rd: Reg(1),
                base: Reg(2),
                offset: -4
            }
        );
        assert_eq!(
            p.instrs[1],
            Instr::Store {
                src: Reg(1),
                base: Reg(3),
                offset: 0
            }
        );
    }

    #[test]
    fn hex_immediates() {
        let p = assemble("li r0, 0xff\nli r1, -0x10\nhalt", 2).unwrap();
        assert_eq!(
            p.instrs[0],
            Instr::LoadImm {
                rd: Reg(0),
                imm: 255
            }
        );
        assert_eq!(
            p.instrs[1],
            Instr::LoadImm {
                rd: Reg(1),
                imm: -16
            }
        );
    }

    #[test]
    fn comments_both_styles() {
        let p = assemble("nop ; trailing\n# whole line\nnop # another\nhalt", 1).unwrap();
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn error_unknown_mnemonic() {
        let e = assemble("frobnicate r1", 4).unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.msg.contains("frobnicate"));
    }

    #[test]
    fn error_undefined_label() {
        let e = assemble("j nowhere", 4).unwrap_err();
        assert!(e.msg.contains("nowhere"));
    }

    #[test]
    fn error_duplicate_label() {
        let e = assemble("x: nop\nx: nop", 4).unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn error_bad_arity() {
        let e = assemble("add r1, r2", 4).unwrap_err();
        assert!(e.msg.contains("takes 3"));
    }

    #[test]
    fn error_register_out_of_program_range() {
        let e = assemble("li r9, 1", 4).unwrap_err();
        assert!(e.msg.contains("validation failed"));
    }

    #[test]
    fn disassemble_roundtrips_through_assembler() {
        let src = r"
            li   r1, 10
            addi r2, r1, -3
            mul  r3, r1, r2
            lw   r4, 8(r3)
            sw   r4, -4(r3)
            beq  r1, r2, 6
            j    0
            nop
            halt
        ";
        let p = assemble(src, 8).unwrap();
        let redisasm: String = p.instrs.iter().map(|i| disassemble(i) + "\n").collect();
        let p2 = assemble(&redisasm, 8).unwrap();
        assert_eq!(p.instrs, p2.instrs);
    }

    #[test]
    fn all_alu_mnemonics_parse() {
        for op in crate::instr::AluOp::ALL {
            let src = format!("{} r1, r2, r3\n{}i r1, r2, 7", op.mnemonic(), op.mnemonic());
            let p = assemble(&src, 8).unwrap();
            assert_eq!(p.len(), 2, "{}", op.mnemonic());
        }
    }

    #[test]
    fn all_branch_mnemonics_parse() {
        for c in crate::instr::BranchCond::ALL {
            let src = format!("x: {} r1, r2, x", c.mnemonic());
            assert!(assemble(&src, 8).is_ok(), "{}", c.mnemonic());
        }
    }
}

#[cfg(test)]
mod directive_tests {
    use super::*;
    use crate::interp::Interp;

    #[test]
    fn word_directive_fills_memory() {
        let p = assemble(".word 10, 20, 30\nhalt", 4).unwrap();
        assert_eq!(p.init_mem, vec![10, 20, 30]);
    }

    #[test]
    fn org_places_words() {
        let p = assemble(".org 4\n.word 7\n.word 8\n.org 1\n.word 99\nhalt", 4).unwrap();
        assert_eq!(p.init_mem, vec![0, 99, 0, 0, 7, 8]);
    }

    #[test]
    fn reg_directive_sets_initial_registers() {
        let p = assemble(".reg r2, 42\n.reg r0, -1\nhalt", 4).unwrap();
        assert_eq!(p.init_regs, vec![u32::MAX, 0, 42, 0]);
    }

    #[test]
    fn directives_compose_with_code() {
        let src = "
            .word 5, 6
            .reg  r1, 0
            lw   r2, (r1)
            lw   r3, 1(r1)
            add  r4, r2, r3
            halt
        ";
        let p = assemble(src, 8).unwrap();
        let mut m = Interp::new(&p, 64);
        assert!(m.run(100).halted());
        assert_eq!(m.regs[4], 11);
    }

    #[test]
    fn directive_errors() {
        assert!(assemble(".org -1", 4).is_err());
        assert!(assemble(".word x", 4).is_err());
        assert!(assemble(".reg r1", 4).is_err());
        assert!(assemble(".reg r9, 1", 4).is_err());
        assert!(assemble(".bogus 3", 4).is_err());
    }

    #[test]
    fn hex_words() {
        let p = assemble(".word 0xff, -0x2\nhalt", 4).unwrap();
        assert_eq!(p.init_mem, vec![255, (-2i32) as u32]);
    }
}
