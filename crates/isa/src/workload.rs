//! Program generators: the paper's worked example, dependency-controlled
//! random kernels, and small realistic kernels.
//!
//! The paper motivates wide-issue machines with programs whose
//! instruction-level parallelism varies; these generators provide both
//! ends of the spectrum (a serial pointer chase has ILP ≈ 1, a vector
//! scale has ILP ≈ n) plus tunable random code in between.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::instr::{AluOp, BranchCond, Instr, Reg};
use crate::program::Program;

/// The paper's running example (Figures 1, 3, 4): eight instructions,
/// shown with Station 6 oldest. In *program order* the sequence is:
///
/// ```text
/// R3 = R1 / R2      (station 6)
/// R0 = R0 + R3      (station 7)
/// R1 = R5 + R6      (station 0)
/// R1 = R0 + R1      (station 1)
/// R2 = R5 * R6      (station 2)
/// R2 = R2 + R4      (station 3)
/// R0 = R5 - R6      (station 4)
/// R4 = R0 + R7      (station 5)
/// ```
///
/// Uses 8 logical registers; initial `R0 = 10` as in the Figure 1
/// snapshot (the ring at the forefront carries `R0` with initial value
/// 10). A `halt` is appended so the program runs to completion on every
/// model.
pub fn figure1_sequence() -> Program {
    use AluOp::*;
    let alu = |op, rd, rs1, rs2| Instr::Alu {
        op,
        rd: Reg(rd),
        rs1: Reg(rs1),
        rs2: Reg(rs2),
    };
    let instrs = vec![
        alu(Div, 3, 1, 2), // R3 = R1 / R2
        alu(Add, 0, 0, 3), // R0 = R0 + R3
        alu(Add, 1, 5, 6), // R1 = R5 + R6
        alu(Add, 1, 0, 1), // R1 = R0 + R1
        alu(Mul, 2, 5, 6), // R2 = R5 * R6
        alu(Add, 2, 2, 4), // R2 = R2 + R4
        alu(Sub, 0, 5, 6), // R0 = R5 - R6
        alu(Add, 4, 0, 7), // R4 = R0 + R7
        Instr::Halt,
    ];
    Program::new(instrs, 8).with_init_regs(vec![10, 84, 2, 3, 4, 9, 6, 7])
}

/// Configuration for [`random_program`].
#[derive(Debug, Clone)]
pub struct RandomCfg {
    /// Number of non-halt instructions to generate.
    pub len: usize,
    /// Logical register count `L`.
    pub num_regs: usize,
    /// Fraction of instructions that are loads or stores.
    pub mem_frac: f64,
    /// Of the memory instructions, the fraction that are stores.
    pub store_frac: f64,
    /// Fraction of instructions that are conditional forward branches.
    pub branch_frac: f64,
    /// Fraction of ALU instructions that are long-latency (`mul`/`div`).
    pub long_op_frac: f64,
    /// Fraction of ALU instructions using an immediate operand.
    pub imm_frac: f64,
    /// Geometric parameter for source-dependency distance: with
    /// probability `dep_geom_p` a source register is the destination of
    /// one of the few most recent writers (short dependency chains →
    /// low ILP); otherwise sources are uniform (high ILP).
    pub dep_geom_p: f64,
    /// Word range addressed by generated loads/stores.
    pub mem_span: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RandomCfg {
    fn default() -> Self {
        RandomCfg {
            len: 200,
            num_regs: 32,
            mem_frac: 0.2,
            store_frac: 0.35,
            branch_frac: 0.1,
            long_op_frac: 0.15,
            imm_frac: 0.3,
            dep_geom_p: 0.5,
            mem_span: 64,
            seed: 0,
        }
    }
}

/// Generate a random, always-terminating program.
///
/// Control flow is restricted to short *forward* branches (skipping
/// 1–4 instructions), so every generated program terminates regardless
/// of data values; a `halt` is appended. Memory operands use
/// register-indirect addressing over `mem_span` words initialised with
/// pseudo-random data.
///
/// # Panics
/// Panics if `num_regs < 4` (the generator reserves low registers for
/// address bases).
pub fn random_program(cfg: &RandomCfg) -> Program {
    assert!(
        cfg.num_regs >= 4,
        "random_program needs at least 4 registers"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let nr = cfg.num_regs as u8;
    let mut instrs: Vec<Instr> = Vec::with_capacity(cfg.len + 1);
    // Track recent destination registers for dependency shaping.
    let mut recent: Vec<u8> = Vec::new();

    let pick_src = |rng: &mut StdRng, recent: &[u8]| -> Reg {
        if !recent.is_empty() && rng.gen_bool(cfg.dep_geom_p) {
            // Prefer the most recent writers: geometric walk backwards.
            let mut idx = recent.len() - 1;
            while idx > 0 && rng.gen_bool(0.5) {
                idx -= 1;
            }
            Reg(recent[idx])
        } else {
            Reg(rng.gen_range(0..nr))
        }
    };

    while instrs.len() < cfg.len {
        let here = instrs.len();
        let roll: f64 = rng.gen();
        if roll < cfg.branch_frac && here + 2 < cfg.len {
            // Forward branch skipping 1..=4 instructions (clamped).
            let skip = rng.gen_range(1..=4usize);
            let target = (here + 1 + skip).min(cfg.len) as u32;
            let cond = BranchCond::ALL[rng.gen_range(0..BranchCond::ALL.len())];
            instrs.push(Instr::Branch {
                cond,
                rs1: pick_src(&mut rng, &recent),
                rs2: pick_src(&mut rng, &recent),
                target,
            });
        } else if roll < cfg.branch_frac + cfg.mem_frac {
            let base = Reg(rng.gen_range(0..4u8)); // low regs hold small values
            let offset = rng.gen_range(0..cfg.mem_span) as i32;
            if rng.gen_bool(cfg.store_frac) {
                instrs.push(Instr::Store {
                    src: pick_src(&mut rng, &recent),
                    base,
                    offset,
                });
            } else {
                let rd = Reg(rng.gen_range(0..nr));
                instrs.push(Instr::Load { rd, base, offset });
                recent.push(rd.0);
            }
        } else {
            let rd = Reg(rng.gen_range(0..nr));
            let op = if rng.gen_bool(cfg.long_op_frac) {
                if rng.gen_bool(0.5) {
                    AluOp::Mul
                } else {
                    AluOp::Div
                }
            } else {
                const SHORT: [AluOp; 8] = [
                    AluOp::Add,
                    AluOp::Sub,
                    AluOp::And,
                    AluOp::Or,
                    AluOp::Xor,
                    AluOp::Slt,
                    AluOp::Sltu,
                    AluOp::Sra,
                ];
                SHORT[rng.gen_range(0..SHORT.len())]
            };
            if rng.gen_bool(cfg.imm_frac) {
                instrs.push(Instr::AluImm {
                    op,
                    rd,
                    rs1: pick_src(&mut rng, &recent),
                    imm: rng.gen_range(-128..128),
                });
            } else {
                instrs.push(Instr::Alu {
                    op,
                    rd,
                    rs1: pick_src(&mut rng, &recent),
                    rs2: pick_src(&mut rng, &recent),
                });
            }
            recent.push(rd.0);
        }
        if recent.len() > 8 {
            recent.remove(0);
        }
    }
    instrs.push(Instr::Halt);

    let init_regs = (0..cfg.num_regs)
        .map(|i| {
            if i < 4 {
                i as u32
            } else {
                rng.gen_range(0..1000)
            }
        })
        .collect();
    let init_mem = (0..(cfg.mem_span as usize + 8))
        .map(|_| rng.gen_range(0..10_000u32))
        .collect();
    Program::new(instrs, cfg.num_regs)
        .with_init_regs(init_regs)
        .with_init_mem(init_mem)
}

/// Dot product of two `n`-element vectors stored at word addresses
/// `0..n` and `n..2n`; the result accumulates in `r4`.
/// Uses 8 registers.
pub fn dot_product(n: u32) -> Program {
    let src = format!(
        r"
            li   r1, 0          ; &a
            li   r2, {n}        ; &b
            li   r3, {n}        ; remaining
            li   r4, 0          ; acc
            li   r7, 0
        loop:
            lw   r5, (r1)
            lw   r6, (r2)
            mul  r5, r5, r6
            add  r4, r4, r5
            addi r1, r1, 1
            addi r2, r2, 1
            subi r3, r3, 1
            bne  r3, r7, loop
            halt
        "
    );
    let mut mem = Vec::with_capacity(2 * n as usize);
    for i in 0..n {
        mem.push(i + 1); // a[i] = i+1
    }
    for i in 0..n {
        mem.push(2 * i + 1); // b[i] = 2i+1
    }
    crate::asm::assemble(&src, 8)
        .expect("dot_product kernel assembles")
        .with_init_mem(mem)
}

/// Expected architectural result of [`dot_product`]: `Σ (i+1)(2i+1)`.
pub fn dot_product_expected(n: u32) -> u32 {
    (0..n).fold(0u32, |acc, i| {
        acc.wrapping_add((i + 1).wrapping_mul(2 * i + 1))
    })
}

/// Copy `n` words from address `0` to address `n`. Uses 8 registers.
pub fn memcpy(n: u32) -> Program {
    let src = format!(
        r"
            li   r1, 0
            li   r2, {n}
            li   r3, {n}
            li   r7, 0
        loop:
            lw   r4, (r1)
            sw   r4, (r2)
            addi r1, r1, 1
            addi r2, r2, 1
            subi r3, r3, 1
            bne  r3, r7, loop
            halt
        "
    );
    let mem: Vec<u32> = (0..n).map(|i| i * 3 + 7).collect();
    crate::asm::assemble(&src, 8)
        .expect("memcpy kernel assembles")
        .with_init_mem(mem)
}

/// Iterative Fibonacci: leaves `fib(k)` (mod 2³²) in `r2`.
/// A fully serial dependency chain — worst-case ILP. Uses 8 registers.
pub fn fibonacci(k: u32) -> Program {
    let src = format!(
        r"
            li   r1, 0          ; fib(i-1)
            li   r2, 1          ; fib(i)
            li   r3, {k}        ; remaining
            li   r7, 0
            beq  r3, r7, done
        loop:
            add  r4, r1, r2
            add  r1, r2, r7     ; r1 = r2
            add  r2, r4, r7     ; r2 = r4
            subi r3, r3, 1
            bne  r3, r7, loop
        done:
            halt
        "
    );
    crate::asm::assemble(&src, 8).expect("fibonacci kernel assembles")
}

/// Expected result of [`fibonacci`].
pub fn fibonacci_expected(k: u32) -> u32 {
    let (mut a, mut b) = (0u32, 1u32);
    for _ in 0..k {
        let c = a.wrapping_add(b);
        a = b;
        b = c;
    }
    b
}

/// Scale the `n`-word vector at address 0 by the constant `c` in place.
/// High ILP: every iteration is independent. Uses 8 registers.
pub fn vec_scale(n: u32, c: u32) -> Program {
    let src = format!(
        r"
            li   r1, 0
            li   r2, {n}
            li   r3, {c}
            li   r7, 0
        loop:
            lw   r4, (r1)
            mul  r4, r4, r3
            sw   r4, (r1)
            addi r1, r1, 1
            subi r2, r2, 1
            bne  r2, r7, loop
            halt
        "
    );
    let mem: Vec<u32> = (0..n).map(|i| i + 1).collect();
    crate::asm::assemble(&src, 8)
        .expect("vec_scale kernel assembles")
        .with_init_mem(mem)
}

/// Pointer chase: follow a linked list of `n` nodes starting at
/// address 0; each node is one word holding the address of the next.
/// Serial load-to-load dependency chain — the memory-latency analogue
/// of [`fibonacci`]. The final node index lands in `r1`.
pub fn pointer_chase(n: u32, seed: u64) -> Program {
    // Build a random permutation cycle over n nodes.
    let mut rng = StdRng::seed_from_u64(seed);
    let mut order: Vec<u32> = (0..n).collect();
    // Fisher–Yates.
    for i in (1..n as usize).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }
    let mut mem = vec![0u32; n as usize];
    for w in 0..n as usize {
        mem[order[w] as usize] = order[(w + 1) % n as usize];
    }
    let start = order[0];
    let src = format!(
        r"
            li   r1, {start}
            li   r2, {n}
            li   r7, 0
        loop:
            lw   r1, (r1)
            subi r2, r2, 1
            bne  r2, r7, loop
            halt
        "
    );
    crate::asm::assemble(&src, 8)
        .expect("pointer_chase kernel assembles")
        .with_init_mem(mem)
}

/// Dense matrix–vector product `y = A·x` with `rows × cols` matrix `A`
/// at address 0 (row-major), `x` at `rows*cols`, `y` at
/// `rows*cols + cols`. Uses 16 registers.
pub fn matvec(rows: u32, cols: u32) -> Program {
    let a_base = 0u32;
    let x_base = rows * cols;
    let y_base = x_base + cols;
    let src = format!(
        r"
            li   r1, {a_base}   ; &A walker
            li   r2, {y_base}   ; &y walker
            li   r3, {rows}     ; rows remaining
            li   r7, 0
        row:
            li   r4, {x_base}   ; &x walker
            li   r5, {cols}     ; cols remaining
            li   r6, 0          ; acc
        col:
            lw   r8, (r1)
            lw   r9, (r4)
            mul  r8, r8, r9
            add  r6, r6, r8
            addi r1, r1, 1
            addi r4, r4, 1
            subi r5, r5, 1
            bne  r5, r7, col
            sw   r6, (r2)
            addi r2, r2, 1
            subi r3, r3, 1
            bne  r3, r7, row
            halt
        "
    );
    let mut mem = Vec::new();
    for i in 0..rows * cols {
        mem.push(i % 7 + 1);
    }
    for i in 0..cols {
        mem.push(i % 5 + 1);
    }
    mem.extend(std::iter::repeat_n(0, rows as usize));
    crate::asm::assemble(&src, 16)
        .expect("matvec kernel assembles")
        .with_init_mem(mem)
}

/// Expected `y` vector for [`matvec`].
pub fn matvec_expected(rows: u32, cols: u32) -> Vec<u32> {
    let a = |r: u32, c: u32| (r * cols + c) % 7 + 1;
    let x = |c: u32| c % 5 + 1;
    (0..rows)
        .map(|r| (0..cols).fold(0u32, |acc, c| acc.wrapping_add(a(r, c).wrapping_mul(x(c)))))
        .collect()
}

/// Bubble sort the `n` words at address 0, ascending, in place.
/// Branch-heavy and data-dependent — stresses misprediction recovery.
pub fn bubble_sort(n: u32, seed: u64) -> Program {
    let src = format!(
        r"
            li   r1, {n}        ; outer remaining
            li   r7, 0
            subi r1, r1, 1
            beq  r1, r7, done
        outer:
            li   r2, 0          ; index
            li   r3, {n}
            subi r3, r3, 1      ; inner limit
        inner:
            lw   r4, (r2)
            lw   r5, 1(r2)
            bltu r4, r5, noswap
            sw   r5, (r2)
            sw   r4, 1(r2)
        noswap:
            addi r2, r2, 1
            bne  r2, r3, inner
            subi r1, r1, 1
            bne  r1, r7, outer
        done:
            halt
        "
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mem: Vec<u32> = (0..n).map(|_| rng.gen_range(0..1000)).collect();
    crate::asm::assemble(&src, 8)
        .expect("bubble_sort kernel assembles")
        .with_init_mem(mem)
}

/// Sum-reduce the `n` words at address 0 into `r4`.
pub fn sum_reduction(n: u32) -> Program {
    let src = format!(
        r"
            li   r1, 0
            li   r2, {n}
            li   r4, 0
            li   r7, 0
        loop:
            lw   r5, (r1)
            add  r4, r4, r5
            addi r1, r1, 1
            subi r2, r2, 1
            bne  r2, r7, loop
            halt
        "
    );
    let mem: Vec<u32> = (0..n).map(|i| i * i + 1).collect();
    crate::asm::assemble(&src, 8)
        .expect("sum_reduction kernel assembles")
        .with_init_mem(mem)
}

/// Sieve of Eratosthenes over `0..n`: `mem[i] = 1` iff `i` is prime
/// (for `i ≥ 2`). Nested data-dependent loops with stores.
pub fn sieve(n: u32) -> Program {
    let src = format!(
        r"
            ; initialise mem[2..n) = 1
            li   r1, 2
            li   r2, {n}
            li   r6, 1
            li   r7, 0
        init:
            sw   r6, (r1)
            addi r1, r1, 1
            bne  r1, r2, init
            ; sieve
            li   r1, 2          ; candidate p
        outer:
            mul  r3, r1, r1     ; p*p
            bgeu r3, r2, done   ; p*p >= n: finished
            lw   r4, (r1)
            beq  r4, r7, next   ; not prime: skip
        mark:
            sw   r7, (r3)       ; mem[multiple] = 0
            add  r3, r3, r1
            bltu r3, r2, mark
        next:
            addi r1, r1, 1
            j    outer
        done:
            halt
        "
    );
    crate::asm::assemble(&src, 8).expect("sieve kernel assembles")
}

/// Expected sieve output.
pub fn sieve_expected(n: u32) -> Vec<u32> {
    let mut v = vec![0u32; n as usize];
    v.iter_mut().skip(2).for_each(|x| *x = 1);
    let mut p = 2usize;
    while p * p < n as usize {
        if v[p] == 1 {
            let mut m = p * p;
            while m < n as usize {
                v[m] = 0;
                m += p;
            }
        }
        p += 1;
    }
    v
}

/// Histogram: count occurrences of each value `0..buckets` in the
/// `n`-word array at address 0; counts land at address `n`.
/// Data-dependent store addresses — an aliasing stress for memory
/// renaming and the distributed caches.
pub fn histogram(n: u32, buckets: u32, seed: u64) -> Program {
    let src = format!(
        r"
            li   r1, 0          ; &data
            li   r2, {n}        ; remaining
            li   r3, {n}        ; &counts
            li   r7, 0
        loop:
            lw   r4, (r1)
            add  r4, r4, r3     ; &counts[value]
            lw   r5, (r4)
            addi r5, r5, 1
            sw   r5, (r4)
            addi r1, r1, 1
            subi r2, r2, 1
            bne  r2, r7, loop
            halt
        "
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mem: Vec<u32> = (0..n).map(|_| rng.gen_range(0..buckets)).collect();
    crate::asm::assemble(&src, 8)
        .expect("histogram kernel assembles")
        .with_init_mem(mem)
}

/// Binary search for `needle` in the sorted `n`-word array at address
/// 0; leaves the found index (or `n`) in `r5`. Branch-heavy with
/// data-dependent, hard-to-predict directions.
pub fn binary_search(n: u32, needle: u32) -> Program {
    let src = format!(
        r"
            li   r1, 0          ; lo
            li   r2, {n}        ; hi
            li   r3, {needle}
            li   r5, {n}        ; result
            li   r7, 0
        loop:
            bgeu r1, r2, done
            add  r4, r1, r2
            srli r4, r4, 1      ; mid
            lw   r6, (r4)
            beq  r6, r3, found
            bltu r6, r3, right
            add  r2, r4, r7     ; hi = mid
            j    loop
        right:
            addi r1, r4, 1      ; lo = mid + 1
            j    loop
        found:
            add  r5, r4, r7
        done:
            halt
        "
    );
    let mem: Vec<u32> = (0..n).map(|i| i * 3 + 1).collect(); // sorted
    crate::asm::assemble(&src, 8)
        .expect("binary_search kernel assembles")
        .with_init_mem(mem)
}

/// CRC-style rolling checksum of the `n` words at address 0 (shift,
/// xor, conditional feedback) — long serial dependency with bit ops.
pub fn checksum(n: u32) -> Program {
    let src = format!(
        r"
            li   r1, 0
            li   r2, {n}
            li   r3, -1         ; acc = 0xFFFFFFFF
            li   r6, 0x04c1     ; poly (truncated)
            li   r7, 0
        loop:
            lw   r4, (r1)
            xor  r3, r3, r4
            srli r5, r3, 1
            andi r4, r3, 1
            beq  r4, r7, nofb
            xor  r5, r5, r6
        nofb:
            add  r3, r5, r7
            addi r1, r1, 1
            subi r2, r2, 1
            bne  r2, r7, loop
            halt
        "
    );
    let mem: Vec<u32> = (0..n).map(|i| i.wrapping_mul(2654435761)).collect();
    crate::asm::assemble(&src, 8)
        .expect("checksum kernel assembles")
        .with_init_mem(mem)
}

/// Expected checksum value (mirrors the assembly).
pub fn checksum_expected(n: u32) -> u32 {
    let mut acc = u32::MAX;
    for i in 0..n {
        let w = i.wrapping_mul(2654435761);
        acc ^= w;
        let mut next = acc >> 1;
        if acc & 1 == 1 {
            next ^= 0x04c1;
        }
        acc = next;
    }
    acc
}

/// In-place insertion sort of `n` words at address 0 — inner loop with
/// a data-dependent trip count and moves through memory.
pub fn insertion_sort(n: u32, seed: u64) -> Program {
    let src = format!(
        r"
            li   r1, 1          ; i
            li   r2, {n}
            li   r7, 0
        outer:
            bgeu r1, r2, done
            lw   r3, (r1)       ; key
            add  r4, r1, r7     ; j = i
        inner:
            beq  r4, r7, place
            subi r5, r4, 1
            lw   r6, (r5)
            bgeu r3, r6, place  ; key >= a[j-1]: stop
            sw   r6, (r4)       ; shift right
            add  r4, r5, r7
            j    inner
        place:
            sw   r3, (r4)
            addi r1, r1, 1
            j    outer
        done:
            halt
        "
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mem: Vec<u32> = (0..n).map(|_| rng.gen_range(0..10_000)).collect();
    crate::asm::assemble(&src, 8)
        .expect("insertion_sort kernel assembles")
        .with_init_mem(mem)
}

/// All the named kernels with small default sizes, for sweep harnesses:
/// `(name, program)` pairs.
pub fn standard_suite(seed: u64) -> Vec<(&'static str, Program)> {
    vec![
        ("figure1", figure1_sequence()),
        ("dot_product", dot_product(32)),
        ("memcpy", memcpy(32)),
        ("fibonacci", fibonacci(24)),
        ("vec_scale", vec_scale(32, 3)),
        ("pointer_chase", pointer_chase(32, seed)),
        ("matvec", matvec(6, 6)),
        ("bubble_sort", bubble_sort(12, seed)),
        ("sum_reduction", sum_reduction(32)),
        ("sieve", sieve(48)),
        ("histogram", histogram(32, 8, seed)),
        ("binary_search", binary_search(32, 46)),
        ("checksum", checksum(24)),
        ("insertion_sort", insertion_sort(16, seed)),
    ]
}

/// SplitMix64 — the tiny deterministic generator used to spread lane
/// seeds (self-contained so lane populations are reproducible across
/// harnesses without threading an `Rng`).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic per-lane initial registers: lane `lane` of a batch
/// population seeded with `seed`. Register 0 is left at zero (many
/// kernels use a low register as a hard-wired zero/base); the rest get
/// independent pseudo-random values.
pub fn lane_init_regs(num_regs: usize, seed: u64, lane: usize) -> Vec<u32> {
    let mut state = seed ^ (lane as u64).wrapping_mul(0xA076_1D64_78BD_642F);
    let mut regs = vec![0u32; num_regs];
    for r in regs.iter_mut().skip(1) {
        *r = splitmix64(&mut state) as u32;
    }
    regs
}

/// Vectorize a program over `n` lanes: `n` copies sharing the same
/// instruction stream and memory image but each with its own
/// pseudo-random initial registers (lane 0's derived from `seed`, lane
/// `l`'s from `seed` ⊕ a lane spread). This is the input shape the
/// lane-parallel batch engine consumes: *same program, different
/// inputs*. Registers the program initializes itself (`li` before
/// first read) are unaffected by construction; seed-sensitive kernels
/// should read their inputs from registers they do not write first.
pub fn lane_variants(base: &Program, n: usize, seed: u64) -> Vec<Program> {
    (0..n)
        .map(|lane| {
            base.clone()
                .with_init_regs(lane_init_regs(base.num_regs, seed, lane))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Interp;

    fn run(p: &Program) -> Interp {
        let mut m = Interp::new(p, 1 << 12);
        let out = m.run(2_000_000);
        assert!(out.halted(), "kernel must halt");
        m
    }

    #[test]
    fn lane_variants_share_code_and_differ_in_inputs() {
        let base = fibonacci(8);
        let pop = lane_variants(&base, 16, 42);
        assert_eq!(pop.len(), 16);
        for p in &pop {
            assert_eq!(p.instrs, base.instrs);
            assert_eq!(p.num_regs, base.num_regs);
            assert_eq!(p.init_mem, base.init_mem);
            assert_eq!(p.init_regs[0], 0, "r0 stays a hard-wired zero");
            p.validate().expect("variants stay valid");
        }
        assert_ne!(pop[0].init_regs, pop[1].init_regs);
        // Deterministic: same seed reproduces the same population.
        assert_eq!(lane_variants(&base, 16, 42), pop);
        assert_ne!(lane_variants(&base, 16, 43)[1].init_regs, pop[1].init_regs);
    }

    #[test]
    fn figure1_architectural_result() {
        let m = run(&figure1_sequence());
        // R1=84, R2=2 → R3 = 42; R0 = 10+42 = 52; R1 = 9+6 = 15 then
        // R1 = 52+15 = 67; R2 = 54 then 58; R0 = 3; R4 = 3+7 = 10.
        assert_eq!(m.regs[3], 42);
        assert_eq!(m.regs[1], 67);
        assert_eq!(m.regs[2], 58);
        assert_eq!(m.regs[0], 3);
        assert_eq!(m.regs[4], 10);
    }

    #[test]
    fn dot_product_matches_closed_form() {
        for n in [1u32, 2, 7, 32] {
            let m = run(&dot_product(n));
            assert_eq!(m.regs[4], dot_product_expected(n), "n={n}");
        }
    }

    #[test]
    fn memcpy_copies() {
        let n = 17;
        let m = run(&memcpy(n));
        for i in 0..n as usize {
            assert_eq!(m.mem[n as usize + i], m.mem[i]);
            assert_eq!(m.mem[i], i as u32 * 3 + 7);
        }
    }

    #[test]
    fn fibonacci_matches_closed_form() {
        for k in [0u32, 1, 2, 10, 30, 50] {
            let m = run(&fibonacci(k));
            assert_eq!(m.regs[2], fibonacci_expected(k), "k={k}");
        }
    }

    #[test]
    fn vec_scale_scales() {
        let m = run(&vec_scale(9, 5));
        for i in 0..9u32 {
            assert_eq!(m.mem[i as usize], (i + 1) * 5);
        }
    }

    #[test]
    fn pointer_chase_traverses_whole_cycle() {
        let n = 13;
        let p = pointer_chase(n, 42);
        let m = run(&p);
        // After n hops around an n-cycle we are back at the start node.
        let start = match p.instrs[0] {
            Instr::LoadImm { imm, .. } => imm as u32,
            _ => unreachable!(),
        };
        assert_eq!(m.regs[1], start);
    }

    #[test]
    fn matvec_matches_closed_form() {
        let (r, c) = (5, 4);
        let m = run(&matvec(r, c));
        let y_base = (r * c + c) as usize;
        assert_eq!(
            &m.mem[y_base..y_base + r as usize],
            &matvec_expected(r, c)[..]
        );
    }

    #[test]
    fn bubble_sort_sorts() {
        let n = 20;
        let m = run(&bubble_sort(n, 7));
        for i in 1..n as usize {
            assert!(m.mem[i - 1] <= m.mem[i], "position {i}");
        }
    }

    #[test]
    fn sum_reduction_matches_closed_form() {
        let n = 25u32;
        let m = run(&sum_reduction(n));
        let expect = (0..n).fold(0u32, |a, i| a.wrapping_add(i * i + 1));
        assert_eq!(m.regs[4], expect);
    }

    #[test]
    fn sieve_finds_primes() {
        let n = 60;
        let m = run(&sieve(n));
        assert_eq!(&m.mem[..n as usize], &sieve_expected(n)[..]);
        // Spot-check: 53 prime, 57 = 3·19 not.
        assert_eq!(m.mem[53], 1);
        assert_eq!(m.mem[57], 0);
    }

    #[test]
    fn histogram_counts_sum_to_n() {
        let (n, buckets) = (40, 8);
        let p = histogram(n, buckets, 9);
        let data = p.init_mem.clone();
        let m = run(&p);
        let mut expect = vec![0u32; buckets as usize];
        for &v in &data {
            expect[v as usize] += 1;
        }
        assert_eq!(&m.mem[n as usize..(n + buckets) as usize], &expect[..],);
        assert_eq!(expect.iter().sum::<u32>(), n);
    }

    #[test]
    fn binary_search_finds_and_misses() {
        // Present: value 3i+1.
        let m = run(&binary_search(32, 3 * 20 + 1));
        assert_eq!(m.regs[5], 20);
        // Absent value: result = n.
        let m = run(&binary_search(32, 2));
        assert_eq!(m.regs[5], 32);
        // Edges.
        let m = run(&binary_search(32, 1));
        assert_eq!(m.regs[5], 0);
        let m = run(&binary_search(32, 3 * 31 + 1));
        assert_eq!(m.regs[5], 31);
    }

    #[test]
    fn checksum_matches_closed_form() {
        for n in [1u32, 7, 24, 100] {
            let m = run(&checksum(n));
            assert_eq!(m.regs[3], checksum_expected(n), "n={n}");
        }
    }

    #[test]
    fn insertion_sort_sorts() {
        let n = 24;
        let m = run(&insertion_sort(n, 11));
        for i in 1..n as usize {
            assert!(m.mem[i - 1] <= m.mem[i], "position {i}");
        }
    }

    #[test]
    fn random_programs_validate_and_terminate() {
        for seed in 0..20 {
            let cfg = RandomCfg {
                seed,
                len: 300,
                ..RandomCfg::default()
            };
            let p = random_program(&cfg);
            assert_eq!(p.validate(), Ok(()), "seed {seed}");
            let mut m = Interp::new(&p, 1 << 10);
            let out = m.run(10_000);
            assert!(out.halted(), "seed {seed} must halt");
        }
    }

    #[test]
    fn random_programs_are_deterministic_per_seed() {
        let cfg = RandomCfg::default();
        assert_eq!(random_program(&cfg), random_program(&cfg));
        let cfg2 = RandomCfg {
            seed: 1,
            ..RandomCfg::default()
        };
        assert_ne!(random_program(&cfg), random_program(&cfg2));
    }

    #[test]
    fn random_program_respects_mix_extremes() {
        // Pure ALU.
        let p = random_program(&RandomCfg {
            mem_frac: 0.0,
            branch_frac: 0.0,
            ..RandomCfg::default()
        });
        assert!(p
            .instrs
            .iter()
            .all(|i| !i.is_load() && !i.is_store() && !i.is_control()));
        // Memory-heavy.
        let p = random_program(&RandomCfg {
            mem_frac: 1.0,
            branch_frac: 0.0,
            ..RandomCfg::default()
        });
        let mems = p
            .instrs
            .iter()
            .filter(|i| i.is_load() || i.is_store())
            .count();
        assert!(mems >= p.len() - 1);
    }

    #[test]
    fn standard_suite_all_halt() {
        for (name, p) in standard_suite(3) {
            let mut m = Interp::new(&p, 1 << 12);
            assert!(m.run(5_000_000).halted(), "{name}");
        }
    }
}
