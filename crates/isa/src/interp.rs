//! The golden sequential interpreter — the architectural oracle.
//!
//! Every processor model in `ultrascalar` must produce exactly the
//! architectural state (registers, memory, committed instruction
//! stream) that this interpreter produces. The integration tests
//! property-check that equivalence over random programs.
//!
//! Memory is word-addressed and **wraps modulo the memory size**, so
//! every instruction is total: speculatively executed wrong-path loads
//! and stores in the processor models can never trap, matching the
//! paper's requirement that misprediction recovery needs no clean-up
//! ("nothing needs to be done to recover from misprediction except to
//! fetch new instructions from the correct program path").

use crate::instr::Instr;
use crate::program::Program;

/// One committed instruction in the dynamic execution trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecRecord {
    /// Dynamic sequence number (0-based).
    pub seq: usize,
    /// Static instruction index executed.
    pub pc: usize,
    /// The instruction itself.
    pub instr: Instr,
    /// Value written to the destination register, if any.
    pub result: Option<u32>,
    /// Word address touched, for loads and stores.
    pub mem_addr: Option<usize>,
    /// For branches: was it taken?
    pub taken: Option<bool>,
    /// The next pc after this instruction.
    pub next_pc: usize,
}

/// Why a run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// A `halt` executed, or the pc fell off the end of the program.
    Halted {
        /// Committed dynamic instruction count.
        steps: usize,
    },
    /// The step budget ran out first.
    OutOfFuel {
        /// Committed dynamic instruction count.
        steps: usize,
    },
}

impl RunOutcome {
    /// Dynamic instructions committed.
    pub fn steps(&self) -> usize {
        match *self {
            RunOutcome::Halted { steps } | RunOutcome::OutOfFuel { steps } => steps,
        }
    }

    /// Did the program halt cleanly?
    pub fn halted(&self) -> bool {
        matches!(self, RunOutcome::Halted { .. })
    }
}

/// Interpreter state.
#[derive(Debug, Clone)]
pub struct Interp {
    program: Program,
    /// Current program counter (instruction index).
    pub pc: usize,
    /// Register file, length `program.num_regs`.
    pub regs: Vec<u32>,
    /// Word-addressed data memory.
    pub mem: Vec<u32>,
    /// Has a `halt` executed (or the pc fallen off the end)?
    pub halted: bool,
    steps: usize,
}

/// Default data-memory size in words when the program's image is
/// smaller: large enough for every kernel in [`crate::workload`].
pub const DEFAULT_MEM_WORDS: usize = 1 << 16;

impl Interp {
    /// Create an interpreter over a validated program.
    ///
    /// Memory is sized `max(mem_words, program.init_mem.len(), 1)` and
    /// initialised from the program's image (zero-filled beyond it).
    ///
    /// # Panics
    /// Panics if the program fails [`Program::validate`].
    pub fn new(program: &Program, mem_words: usize) -> Self {
        program
            .validate()
            .expect("program must validate before execution");
        let size = mem_words.max(program.init_mem.len()).max(1);
        let mut mem = vec![0u32; size];
        mem[..program.init_mem.len()].copy_from_slice(&program.init_mem);
        Interp {
            program: program.clone(),
            pc: 0,
            regs: program.init_regs.clone(),
            mem,
            halted: false,
            steps: 0,
        }
    }

    /// Dynamic instructions committed so far.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Resolve an effective word address (wrapping modulo memory size).
    #[inline]
    pub fn effective_addr(&self, base: u32, offset: i32) -> usize {
        (base.wrapping_add(offset as u32) as usize) % self.mem.len()
    }

    /// Execute one instruction; returns its record, or `None` if the
    /// machine is already halted.
    pub fn step(&mut self) -> Option<ExecRecord> {
        if self.halted {
            return None;
        }
        let Some(&instr) = self.program.instrs.get(self.pc) else {
            // Fell off the end: implicit halt.
            self.halted = true;
            return None;
        };
        let pc = self.pc;
        let mut result = None;
        let mut mem_addr = None;
        let mut taken = None;
        let mut next_pc = pc + 1;
        match instr {
            Instr::Nop => {}
            Instr::Halt => {
                self.halted = true;
            }
            Instr::Jump { target } => {
                next_pc = target as usize;
            }
            Instr::LoadImm { rd, imm } => {
                let v = imm as u32;
                self.regs[rd.index()] = v;
                result = Some(v);
            }
            Instr::Alu { op, rd, rs1, rs2 } => {
                let v = op.apply(self.regs[rs1.index()], self.regs[rs2.index()]);
                self.regs[rd.index()] = v;
                result = Some(v);
            }
            Instr::AluImm { op, rd, rs1, imm } => {
                let v = op.apply(self.regs[rs1.index()], imm as u32);
                self.regs[rd.index()] = v;
                result = Some(v);
            }
            Instr::Load { rd, base, offset } => {
                let addr = self.effective_addr(self.regs[base.index()], offset);
                let v = self.mem[addr];
                self.regs[rd.index()] = v;
                result = Some(v);
                mem_addr = Some(addr);
            }
            Instr::Store { src, base, offset } => {
                let addr = self.effective_addr(self.regs[base.index()], offset);
                self.mem[addr] = self.regs[src.index()];
                mem_addr = Some(addr);
            }
            Instr::Branch {
                cond,
                rs1,
                rs2,
                target,
            } => {
                let t = cond.eval(self.regs[rs1.index()], self.regs[rs2.index()]);
                taken = Some(t);
                if t {
                    next_pc = target as usize;
                }
            }
        }
        if next_pc >= self.program.instrs.len() {
            // Next fetch would fall off the end; treat as a clean halt
            // after this instruction commits.
            self.halted = true;
        }
        self.pc = next_pc;
        let rec = ExecRecord {
            seq: self.steps,
            pc,
            instr,
            result,
            mem_addr,
            taken,
            next_pc,
        };
        self.steps += 1;
        Some(rec)
    }

    /// Run until halt or until `max_steps` instructions have committed.
    pub fn run(&mut self, max_steps: usize) -> RunOutcome {
        while self.steps < max_steps {
            if self.step().is_none() {
                return RunOutcome::Halted { steps: self.steps };
            }
            if self.halted {
                return RunOutcome::Halted { steps: self.steps };
            }
        }
        RunOutcome::OutOfFuel { steps: self.steps }
    }

    /// Run like [`Interp::run`], collecting the full dynamic trace.
    pub fn run_traced(&mut self, max_steps: usize) -> (RunOutcome, Vec<ExecRecord>) {
        let mut trace = Vec::new();
        while self.steps < max_steps {
            match self.step() {
                None => return (RunOutcome::Halted { steps: self.steps }, trace),
                Some(rec) => trace.push(rec),
            }
            if self.halted {
                return (RunOutcome::Halted { steps: self.steps }, trace);
            }
        }
        (RunOutcome::OutOfFuel { steps: self.steps }, trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{AluOp, BranchCond, Instr, Reg};

    fn prog(instrs: Vec<Instr>, num_regs: usize) -> Program {
        Program::new(instrs, num_regs)
    }

    #[test]
    fn straight_line_arithmetic() {
        let p = prog(
            vec![
                Instr::LoadImm { rd: Reg(0), imm: 6 },
                Instr::LoadImm { rd: Reg(1), imm: 7 },
                Instr::Alu {
                    op: AluOp::Mul,
                    rd: Reg(2),
                    rs1: Reg(0),
                    rs2: Reg(1),
                },
                Instr::Halt,
            ],
            3,
        );
        let mut m = Interp::new(&p, 16);
        let out = m.run(100);
        assert!(out.halted());
        assert_eq!(out.steps(), 4);
        assert_eq!(m.regs[2], 42);
    }

    #[test]
    fn falling_off_the_end_halts() {
        let p = prog(vec![Instr::Nop, Instr::Nop], 1);
        let mut m = Interp::new(&p, 16);
        let out = m.run(100);
        assert!(out.halted());
        assert_eq!(out.steps(), 2);
    }

    #[test]
    fn loop_counts_down() {
        // r0 = 5; loop: r0 = r0 - 1; bne r0, r1, loop; halt
        let p = prog(
            vec![
                Instr::LoadImm { rd: Reg(0), imm: 5 },
                Instr::AluImm {
                    op: AluOp::Sub,
                    rd: Reg(0),
                    rs1: Reg(0),
                    imm: 1,
                },
                Instr::Branch {
                    cond: BranchCond::Ne,
                    rs1: Reg(0),
                    rs2: Reg(1),
                    target: 1,
                },
                Instr::Halt,
            ],
            2,
        );
        let mut m = Interp::new(&p, 16);
        let out = m.run(1000);
        assert!(out.halted());
        assert_eq!(m.regs[0], 0);
        // 1 li + 5×(sub+branch) + halt
        assert_eq!(out.steps(), 1 + 10 + 1);
    }

    #[test]
    fn memory_roundtrip_and_wrapping() {
        let p = prog(
            vec![
                Instr::LoadImm {
                    rd: Reg(0),
                    imm: 99,
                },
                Instr::LoadImm { rd: Reg(1), imm: 3 },
                Instr::Store {
                    src: Reg(0),
                    base: Reg(1),
                    offset: 1,
                },
                Instr::Load {
                    rd: Reg(2),
                    base: Reg(1),
                    offset: 1,
                },
                // Wrapping access: base 3 + offset 13 = 16 ≡ 0 (mod 16).
                Instr::Load {
                    rd: Reg(3),
                    base: Reg(1),
                    offset: 13,
                },
                Instr::Halt,
            ],
            4,
        );
        let mut m = Interp::new(&p, 16);
        m.mem[0] = 1234;
        let out = m.run(100);
        assert!(out.halted());
        assert_eq!(m.mem[4], 99);
        assert_eq!(m.regs[2], 99);
        assert_eq!(m.regs[3], 1234);
    }

    #[test]
    fn negative_offsets() {
        let p = prog(
            vec![
                Instr::LoadImm { rd: Reg(0), imm: 5 },
                Instr::Load {
                    rd: Reg(1),
                    base: Reg(0),
                    offset: -2,
                },
                Instr::Halt,
            ],
            2,
        );
        let mut m = Interp::new(&p, 16);
        m.mem[3] = 77;
        m.run(100);
        assert_eq!(m.regs[1], 77);
    }

    #[test]
    fn fuel_exhaustion_reports_out_of_fuel() {
        let p = prog(vec![Instr::Jump { target: 0 }], 1);
        let mut m = Interp::new(&p, 16);
        let out = m.run(50);
        assert!(!out.halted());
        assert_eq!(out.steps(), 50);
    }

    #[test]
    fn trace_records_branches_and_memory() {
        let p = prog(
            vec![
                Instr::LoadImm { rd: Reg(0), imm: 1 },
                Instr::Branch {
                    cond: BranchCond::Eq,
                    rs1: Reg(0),
                    rs2: Reg(0),
                    target: 3,
                },
                Instr::Nop, // skipped
                Instr::Store {
                    src: Reg(0),
                    base: Reg(0),
                    offset: 0,
                },
                Instr::Halt,
            ],
            1,
        );
        let mut m = Interp::new(&p, 16);
        let (out, trace) = m.run_traced(100);
        assert!(out.halted());
        let pcs: Vec<usize> = trace.iter().map(|r| r.pc).collect();
        assert_eq!(pcs, vec![0, 1, 3, 4]);
        assert_eq!(trace[1].taken, Some(true));
        assert_eq!(trace[2].mem_addr, Some(1));
        assert_eq!(trace[0].result, Some(1));
    }

    #[test]
    fn initial_state_comes_from_program() {
        let p = prog(vec![Instr::Halt], 2)
            .with_init_regs(vec![11, 22])
            .with_init_mem(vec![5, 6, 7]);
        let m = Interp::new(&p, 2);
        assert_eq!(m.regs, vec![11, 22]);
        assert_eq!(&m.mem[..3], &[5, 6, 7]);
        assert!(m.mem.len() >= 3);
    }

    #[test]
    fn step_after_halt_returns_none() {
        let p = prog(vec![Instr::Halt], 1);
        let mut m = Interp::new(&p, 4);
        assert!(m.step().is_some());
        assert!(m.step().is_none());
        assert!(m.step().is_none());
    }
}
