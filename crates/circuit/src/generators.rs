//! Gate-level generators for the paper's circuit structures.
//!
//! | Generator | Paper figure | Expected depth |
//! |---|---|---|
//! | [`MuxRing`] | Figure 1 (linear US-I datapath) | `Θ(n)` |
//! | [`CsppTree`] | Figure 4/5 (log US-I datapath) | `Θ(log n)` |
//! | [`UsiiColumn`] (linear) | Figure 7 (US-II grid column) | `Θ(rows)` |
//! | [`UsiiColumn`] (tree) | Figure 8 (mesh-of-trees column) | `Θ(log rows + log width)` |
//! | [`UsiiDatapath`] | Figure 7/8 (full US-II register network) | per column |
//!
//! Every generator exposes its input nodes so tests can drive arbitrary
//! vectors, and is property-tested against the algorithmic models in
//! `ultrascalar-prefix`.

// Index-based loops are deliberate where node ids are predicted or
// multiple parallel vectors are built in lockstep.
#![allow(clippy::needless_range_loop)]

use crate::build::{self, Bus};
use crate::netlist::{Netlist, NodeId};

/// Which associative operator a tree circuit implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CombineOp {
    /// The register-forwarding operator `a ⊗ b = a` (bus payload).
    First,
    /// Bitwise AND (`a ⊗ b = a ∧ b`); with a 1-bit payload this is the
    /// paper's Figure 5 sequencing operator.
    BitAnd,
}

impl CombineOp {
    /// Build the *segmented* combination of two interval summaries
    /// `(va, sa)` and `(vb, sb)` (B follows A in ring order):
    /// `value = sb ? vb : (va ⊗ vb)`, `seg = sa ∨ sb`.
    fn combine(
        self,
        nl: &mut Netlist,
        va: &[NodeId],
        sa: NodeId,
        vb: &[NodeId],
        sb: NodeId,
    ) -> (Bus, NodeId) {
        let merged: Bus = match self {
            // First: va ⊗ vb = va, so value = sb ? vb : va.
            CombineOp::First => build::mux_bus(nl, sb, va, vb),
            // BitAnd: value = sb ? vb : (va & vb).
            CombineOp::BitAnd => {
                let anded: Bus = va.iter().zip(vb).map(|(&x, &y)| nl.and(x, y)).collect();
                build::mux_bus(nl, sb, &anded, vb)
            }
        };
        let seg = nl.or(sa, sb);
        (merged, seg)
    }
}

/// The linear mux-ring datapath of Figure 1, for one logical register.
///
/// Station `i` drives `modified[i]` and `inserted[i]`; it receives
/// `incoming[i]`, the output of station `i-1`'s multiplexer (wrapping).
/// The ring is a genuine combinational cycle; evaluation settles iff at
/// least one modified bit is raised (the oldest station always raises
/// all of its modified bits, so the processor always settles).
#[derive(Debug)]
pub struct MuxRing {
    /// Per-station modified bit (input).
    pub modified: Vec<NodeId>,
    /// Per-station inserted value bus (input).
    pub inserted: Vec<Bus>,
    /// Per-station incoming value bus (output of the ring).
    pub incoming: Vec<Bus>,
}

impl MuxRing {
    /// Build an `n`-station ring carrying a `width`-bit payload.
    ///
    /// # Panics
    /// Panics if `n == 0` or `width == 0`.
    pub fn build(nl: &mut Netlist, n: usize, width: usize) -> Self {
        assert!(n > 0 && width > 0, "MuxRing needs n, width >= 1");
        let modified: Vec<NodeId> = (0..n).map(|_| nl.input()).collect();
        let inserted: Vec<Bus> = (0..n).map(|_| build::input_bus(nl, width)).collect();

        // The muxes are cyclic; predict their ids. They are pushed
        // consecutively starting at the current netlist length, station
        // by station, bit by bit.
        let first = nl.len() as u32;
        let mux_id = |station: usize, bit: usize| NodeId(first + (station * width + bit) as u32);

        for i in 0..n {
            let prev = if i == 0 { n - 1 } else { i - 1 };
            for b in 0..width {
                let m = nl.mux(modified[prev], mux_id(prev, b), inserted[prev][b]);
                debug_assert_eq!(m, mux_id(i, b));
                nl.mark_output(m);
            }
        }
        let incoming: Vec<Bus> = (0..n)
            .map(|i| (0..width).map(|b| mux_id(i, b)).collect())
            .collect();
        MuxRing {
            modified,
            inserted,
            incoming,
        }
    }
}

/// The cyclic segmented parallel-prefix tree of Figures 4/5.
///
/// Station `i` drives `values[i]` (payload) and `seg[i]` (segment /
/// modified bit); it receives `out_value[i]` and `out_seg[i]`: the
/// segmented combination of the cyclically preceding stations back to
/// the nearest raised segment bit. Depth `Θ(log n)`.
#[derive(Debug)]
pub struct CsppTree {
    /// Per-station payload bus (input).
    pub values: Vec<Bus>,
    /// Per-station segment bit (input).
    pub seg: Vec<NodeId>,
    /// Per-station incoming payload (output).
    pub out_value: Vec<Bus>,
    /// Per-station incoming segment flag: does any boundary precede?
    pub out_seg: Vec<NodeId>,
}

impl CsppTree {
    /// Build an `n`-leaf CSPP tree with a `width`-bit payload and the
    /// given operator.
    ///
    /// # Panics
    /// Panics if `n == 0` or `width == 0`.
    pub fn build(nl: &mut Netlist, n: usize, width: usize, op: CombineOp) -> Self {
        assert!(n > 0 && width > 0, "CsppTree needs n, width >= 1");
        let values: Vec<Bus> = (0..n).map(|_| build::input_bus(nl, width)).collect();
        let seg: Vec<NodeId> = (0..n).map(|_| nl.input()).collect();

        // Up-sweep + root-tied down-sweep over the left-packed heap
        // layout, shared with the algorithmic substrate: "combining"
        // two interval summaries emits the combine block's gates into
        // the netlist. The arena walk skips unoccupied nodes, so
        // non-power-of-two widths generate no dead combine blocks.
        let leaves: Vec<(Bus, NodeId)> = values
            .iter()
            .zip(&seg)
            .map(|(v, &s)| (v.clone(), s))
            .collect();
        let prefixes = ultrascalar_prefix::cspp_heap_with(&leaves, |(va, sa), (vb, sb)| {
            op.combine(nl, va, *sa, vb, *sb)
        });

        let mut out_value = Vec::with_capacity(n);
        let mut out_seg = Vec::with_capacity(n);
        for (v, s) in prefixes {
            for &b in &v {
                nl.mark_output(b);
            }
            nl.mark_output(s);
            out_value.push(v);
            out_seg.push(s);
        }
        CsppTree {
            values,
            seg,
            out_value,
            out_seg,
        }
    }
}

/// One Ultrascalar II argument column (Figures 7/8): search `rows`
/// register bindings, ordered oldest first, for the *last* one whose
/// register number matches the request; return its value.
#[derive(Debug)]
pub struct UsiiColumn {
    /// Per-row register-number bus (input).
    pub row_regnum: Vec<Bus>,
    /// Per-row binding-valid bit (input; low for stations that write no
    /// register).
    pub row_valid: Vec<NodeId>,
    /// Per-row value payload (input).
    pub row_value: Vec<Bus>,
    /// Requested register number (input).
    pub request: Bus,
    /// Selected value (output; the last matching row's payload).
    pub out_value: Bus,
    /// Did any row match? (output)
    pub found: NodeId,
}

impl UsiiColumn {
    /// Build a column over `rows` bindings with `regnum_width`-bit
    /// register numbers and `width`-bit payloads.
    ///
    /// `tree == false` builds the linear chain of Figure 7 (depth
    /// `Θ(rows)`); `tree == true` builds the fan-out + comparator +
    /// reduction-tree column of Figure 8 (depth `Θ(log rows + log
    /// regnum_width)`).
    ///
    /// # Panics
    /// Panics if any dimension is zero.
    pub fn build(
        nl: &mut Netlist,
        rows: usize,
        regnum_width: usize,
        width: usize,
        tree: bool,
    ) -> Self {
        assert!(
            rows > 0 && regnum_width > 0 && width > 0,
            "UsiiColumn needs positive dimensions"
        );
        let row_regnum: Vec<Bus> = (0..rows)
            .map(|_| build::input_bus(nl, regnum_width))
            .collect();
        let row_valid: Vec<NodeId> = (0..rows).map(|_| nl.input()).collect();
        let row_value: Vec<Bus> = (0..rows).map(|_| build::input_bus(nl, width)).collect();
        let request = build::input_bus(nl, regnum_width);

        // Fan the request out (physically significant in the tree
        // version; harmless in the linear one).
        let requests: Vec<Bus> = if tree {
            build::fanout_bus(nl, &request, rows)
        } else {
            vec![request.clone(); rows]
        };

        // Per-row match bit.
        let matches: Vec<NodeId> = (0..rows)
            .map(|r| {
                let eq = build::eq_comparator(nl, &row_regnum[r], &requests[r]);
                nl.and(eq, row_valid[r])
            })
            .collect();

        let (out_value, found) = if tree {
            // Segmented-First reduction: last matching row wins.
            let mut layer: Vec<(Bus, NodeId)> = (0..rows)
                .map(|r| (row_value[r].clone(), matches[r]))
                .collect();
            while layer.len() > 1 {
                let mut next = Vec::with_capacity(layer.len().div_ceil(2));
                let mut it = layer.chunks(2);
                for pair in &mut it {
                    next.push(if pair.len() == 2 {
                        let (va, sa) = &pair[0];
                        let (vb, sb) = &pair[1];
                        CombineOp::First.combine(nl, va, *sa, vb, *sb)
                    } else {
                        pair[0].clone()
                    });
                }
                layer = next;
            }
            layer.pop().expect("non-empty reduction")
        } else {
            // Linear chain, oldest row first: acc = match ? value : acc.
            let zeros = build::const_bus(nl, 0, width);
            let fls = nl.constant(false);
            let mut acc: (Bus, NodeId) = (zeros, fls);
            for r in 0..rows {
                let v = build::mux_bus(nl, matches[r], &acc.0, &row_value[r]);
                let f = nl.or(acc.1, matches[r]);
                acc = (v, f);
            }
            acc
        };
        for &b in &out_value {
            nl.mark_output(b);
        }
        nl.mark_output(found);
        UsiiColumn {
            row_regnum,
            row_valid,
            row_value,
            request,
            out_value,
            found,
        }
    }
}

/// A complete (small) Ultrascalar II register datapath: `l` initial
/// register rows followed by `n` station result rows; two argument
/// columns per station seeing only the rows above them, plus `l`
/// outgoing register columns seeing every row (Figure 7).
#[derive(Debug)]
pub struct UsiiDatapath {
    /// Initial register values (inputs), indexed by register.
    pub init_value: Vec<Bus>,
    /// Station result register numbers (inputs).
    pub st_regnum: Vec<Bus>,
    /// Station writes-a-register bits (inputs).
    pub st_valid: Vec<NodeId>,
    /// Station result payloads (inputs).
    pub st_value: Vec<Bus>,
    /// Per-station argument-request register numbers (inputs), two per
    /// station.
    pub arg_request: Vec<[Bus; 2]>,
    /// Per-station argument values (outputs), two per station.
    pub arg_value: Vec<[Bus; 2]>,
    /// Outgoing (final) register values (outputs), indexed by register.
    pub out_value: Vec<Bus>,
}

impl UsiiDatapath {
    /// Build the datapath for `n` stations, `l` logical registers and a
    /// `width`-bit payload (callers typically use `width = bits + 1` to
    /// carry a ready bit). `tree` selects Figure 7 (linear) vs Figure 8
    /// (mesh-of-trees) column structure.
    ///
    /// # Panics
    /// Panics if any dimension is zero or `l > 2^16`.
    pub fn build(nl: &mut Netlist, n: usize, l: usize, width: usize, tree: bool) -> Self {
        assert!(n > 0 && l > 0 && width > 0, "UsiiDatapath dimensions");
        assert!(l <= 1 << 16, "register count too large");
        let rw = (usize::BITS - (l - 1).leading_zeros()).max(1) as usize;

        let init_value: Vec<Bus> = (0..l).map(|_| build::input_bus(nl, width)).collect();
        let st_regnum: Vec<Bus> = (0..n).map(|_| build::input_bus(nl, rw)).collect();
        let st_valid: Vec<NodeId> = (0..n).map(|_| nl.input()).collect();
        let st_value: Vec<Bus> = (0..n).map(|_| build::input_bus(nl, width)).collect();
        let arg_request: Vec<[Bus; 2]> = (0..n)
            .map(|_| [build::input_bus(nl, rw), build::input_bus(nl, rw)])
            .collect();

        // Constant regnum buses and always-valid bits for the initial rows.
        let tru = nl.constant(true);
        let init_regnum: Vec<Bus> = (0..l).map(|r| build::const_bus(nl, r as u64, rw)).collect();

        // Helper: build one column over the first `vis` station rows.
        let column = |nl: &mut Netlist, request: &Bus, vis: usize| -> (Bus, NodeId) {
            let rows = l + vis;
            // Match bits.
            let requests: Vec<Bus> = if tree {
                build::fanout_bus(nl, request, rows)
            } else {
                vec![request.clone(); rows]
            };
            let mut entries: Vec<(Bus, NodeId)> = Vec::with_capacity(rows);
            for r in 0..l {
                let eq = build::eq_comparator(nl, &init_regnum[r], &requests[r]);
                let m = nl.and(eq, tru);
                entries.push((init_value[r].clone(), m));
            }
            for s in 0..vis {
                let eq = build::eq_comparator(nl, &st_regnum[s], &requests[l + s]);
                let m = nl.and(eq, st_valid[s]);
                entries.push((st_value[s].clone(), m));
            }
            if tree {
                while entries.len() > 1 {
                    let mut next = Vec::with_capacity(entries.len().div_ceil(2));
                    for pair in entries.chunks(2) {
                        next.push(if pair.len() == 2 {
                            let (va, sa) = &pair[0];
                            let (vb, sb) = &pair[1];
                            CombineOp::First.combine(nl, va, *sa, vb, *sb)
                        } else {
                            pair[0].clone()
                        });
                    }
                    entries = next;
                }
                entries.pop().expect("non-empty")
            } else {
                let zeros = build::const_bus(nl, 0, width);
                let fls = nl.constant(false);
                let mut acc = (zeros, fls);
                for (v, m) in entries {
                    let nv = build::mux_bus(nl, m, &acc.0, &v);
                    let nf = nl.or(acc.1, m);
                    acc = (nv, nf);
                }
                acc
            }
        };

        let mut arg_value = Vec::with_capacity(n);
        for s in 0..n {
            let a0 = column(nl, &arg_request[s][0].clone(), s).0;
            let a1 = column(nl, &arg_request[s][1].clone(), s).0;
            for &b in a0.iter().chain(&a1) {
                nl.mark_output(b);
            }
            arg_value.push([a0, a1]);
        }
        let mut out_value = Vec::with_capacity(l);
        for r in 0..l {
            let req = init_regnum[r].clone();
            let v = column(nl, &req, n).0;
            for &b in &v {
                nl.mark_output(b);
            }
            out_value.push(v);
        }
        UsiiDatapath {
            init_value,
            st_regnum,
            st_valid,
            st_value,
            arg_request,
            arg_value,
            out_value,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::bus_value;
    use ultrascalar_prefix::{cspp_ring, First};

    /// Drive a netlist whose inputs were created in a known order.
    struct Driver {
        inputs: Vec<bool>,
    }

    impl Driver {
        fn new(n: usize) -> Self {
            Driver {
                inputs: vec![false; n],
            }
        }
        fn set(&mut self, id: NodeId, v: bool) {
            // Input nodes are allocated before any logic in all
            // generators here, so node id == input index.
            self.inputs[id.0 as usize] = v;
        }
        fn set_bus(&mut self, bus: &[NodeId], v: u64) {
            for (i, &b) in bus.iter().enumerate() {
                self.set(b, v >> i & 1 == 1);
            }
        }
    }

    #[test]
    fn mux_ring_forwards_nearest_writer() {
        let n = 8;
        let width = 8;
        let mut nl = Netlist::new();
        let ring = MuxRing::build(&mut nl, n, width);
        // Writers at stations 2 (value 0xAA) and 5 (value 0x55).
        let mut d = Driver::new(nl.num_inputs());
        d.set(ring.modified[2], true);
        d.set_bus(&ring.inserted[2], 0xAA);
        d.set(ring.modified[5], true);
        d.set_bus(&ring.inserted[5], 0x55);
        let e = nl.evaluate(&d.inputs, &[]).unwrap();
        // Stations 3,4,5 see 0xAA; stations 6,7,0,1,2 see 0x55.
        for i in [3usize, 4, 5] {
            assert_eq!(bus_value(&e, &ring.incoming[i]), 0xAA, "station {i}");
        }
        for i in [6usize, 7, 0, 1, 2] {
            assert_eq!(bus_value(&e, &ring.incoming[i]), 0x55, "station {i}");
        }
    }

    #[test]
    fn mux_ring_depth_is_linear() {
        for n in [4usize, 8, 16, 32] {
            let mut nl = Netlist::new();
            let ring = MuxRing::build(&mut nl, n, 1);
            // One writer: the worst-case signal traverses n-1 muxes.
            let mut d = Driver::new(nl.num_inputs());
            d.set(ring.modified[0], true);
            d.set(ring.inserted[0][0], true);
            let e = nl.evaluate(&d.inputs, &[]).unwrap();
            let lvl = e.max_level() as usize;
            assert!(lvl >= n - 1 && lvl <= n + 1, "n={n} level={lvl}");
        }
    }

    #[test]
    fn mux_ring_uncut_cycle_fails_constructively() {
        let mut nl = Netlist::new();
        let _ring = MuxRing::build(&mut nl, 4, 2);
        let d = Driver::new(nl.num_inputs());
        assert!(matches!(
            nl.evaluate(&d.inputs, &[]),
            Err(crate::netlist::EvalError::NotConstructive { .. })
        ));
    }

    #[test]
    fn cspp_tree_matches_algorithm_bus() {
        let n = 8;
        let width = 8;
        let mut nl = Netlist::new();
        let tree = CsppTree::build(&mut nl, n, width, CombineOp::First);
        let vals: Vec<u64> = vec![10, 20, 30, 40, 50, 60, 70, 80];
        let segs = [false, true, false, false, true, false, false, true];
        let mut d = Driver::new(nl.num_inputs());
        for i in 0..n {
            d.set_bus(&tree.values[i], vals[i]);
            d.set(tree.seg[i], segs[i]);
        }
        let e = nl.evaluate(&d.inputs, &[]).unwrap();
        let model = cspp_ring::<u64, First>(&vals, &segs);
        for i in 0..n {
            assert_eq!(
                bus_value(&e, &tree.out_value[i]),
                model[i].value,
                "station {i}"
            );
            assert_eq!(e.value(tree.out_seg[i]), model[i].seg, "station {i} seg");
        }
    }

    #[test]
    fn cspp_tree_depth_is_logarithmic() {
        let mut prev = 0;
        for k in [2usize, 3, 4, 5, 6, 7] {
            let n = 1usize << k;
            let mut nl = Netlist::new();
            let tree = CsppTree::build(&mut nl, n, 1, CombineOp::BitAnd);
            let mut d = Driver::new(nl.num_inputs());
            d.set(tree.seg[0], true);
            for i in 0..n {
                d.set(tree.values[i][0], true);
            }
            let e = nl.evaluate(&d.inputs, &[]).unwrap();
            let lvl = e.max_level();
            // Each tree level costs O(1) gates; total ≈ 2·log2(n)·c.
            assert!(
                lvl as usize <= 4 * k + 4,
                "n={n}: level {lvl} not logarithmic"
            );
            assert!(lvl >= prev, "depth should grow with n");
            prev = lvl;
        }
    }

    #[test]
    fn cspp_tree_figure5_semantics() {
        // The Figure 5 example through the gate-level circuit.
        let n = 8;
        let mut nl = Netlist::new();
        let tree = CsppTree::build(&mut nl, n, 1, CombineOp::BitAnd);
        let mut d = Driver::new(nl.num_inputs());
        d.set(tree.seg[6], true); // oldest
        for i in [6usize, 7, 0, 1, 3] {
            d.set(tree.values[i][0], true);
        }
        let e = nl.evaluate(&d.inputs, &[]).unwrap();
        for i in 0..n {
            let expected = matches!(i, 7 | 0 | 1 | 2);
            if i != 6 {
                assert_eq!(e.value(tree.out_value[i][0]), expected, "station {i}");
            }
        }
    }

    #[test]
    fn usii_column_linear_and_tree_agree_and_pick_last_match() {
        for tree in [false, true] {
            let rows = 6;
            let mut nl = Netlist::new();
            let col = UsiiColumn::build(&mut nl, rows, 3, 8, tree);
            let mut d = Driver::new(nl.num_inputs());
            // Rows bind: r2=11, r5=22 (invalid), r2=33, r1=44.
            let bindings = [
                (2u64, 11u64, true),
                (5, 22, false),
                (2, 33, true),
                (1, 44, true),
                (7, 55, true),
                (2, 66, false),
            ];
            for (r, (num, val, valid)) in bindings.iter().enumerate() {
                d.set_bus(&col.row_regnum[r], *num);
                d.set_bus(&col.row_value[r], *val);
                d.set(col.row_valid[r], *valid);
            }
            d.set_bus(&col.request, 2);
            let e = nl.evaluate(&d.inputs, &[]).unwrap();
            // Last *valid* row binding r2 is row 2 (value 33).
            assert_eq!(bus_value(&e, &col.out_value), 33, "tree={tree}");
            assert!(e.value(col.found));

            // Request an unbound register.
            d.set_bus(&col.request, 6);
            let e = nl.evaluate(&d.inputs, &[]).unwrap();
            assert!(!e.value(col.found), "tree={tree}");
        }
    }

    #[test]
    fn usii_column_tree_depth_is_logarithmic_linear_is_linear() {
        let mut lin_depths = Vec::new();
        let mut tree_depths = Vec::new();
        for rows in [8usize, 16, 32, 64] {
            for tree in [false, true] {
                let mut nl = Netlist::new();
                let col = UsiiColumn::build(&mut nl, rows, 6, 4, tree);
                let mut d = Driver::new(nl.num_inputs());
                // Only row 0 matches the request: in the linear chain
                // its value must then ripple through every younger mux
                // (the worst case; with ternary short-circuiting, rows
                // that match settle their mux locally).
                for r in 0..rows {
                    d.set_bus(&col.row_regnum[r], if r == 0 { 1 } else { 0 });
                    d.set_bus(&col.row_value[r], (r % 16) as u64);
                    d.set(col.row_valid[r], true);
                }
                d.set_bus(&col.request, 1);
                let e = nl.evaluate(&d.inputs, &[]).unwrap();
                assert_eq!(bus_value(&e, &col.out_value), 0);
                if tree {
                    tree_depths.push(e.max_level());
                } else {
                    lin_depths.push(e.max_level());
                }
            }
        }
        // Linear column depth grows ~linearly (x8 rows → ≥4x depth);
        // tree column depth grows ~logarithmically (x8 rows → ≤ +13).
        assert!(lin_depths[3] >= lin_depths[0] * 4, "{lin_depths:?}");
        assert!(tree_depths[3] <= tree_depths[0] + 13, "{tree_depths:?}");
    }

    #[test]
    fn usii_datapath_resolves_figure7_example() {
        // 4 stations, 4 registers, as in Figure 7. Program (paper §4):
        //   station 0: writes R2 (unfinished), reads …
        //   station 1: writes R1 = 7 (finished)
        //   station 2: writes R2 = 9 (finished)
        //   station 3: reads R2 and R1
        // Station 3's R2 argument must come from station 2 (value 9,
        // ignoring station 0's earlier unfinished write — here "not
        // ready" is a payload bit), and its R1 argument from station 1.
        let n = 4;
        let l = 4;
        let width = 9; // 8 value bits + ready bit at bit 8
        for tree in [false, true] {
            let mut nl = Netlist::new();
            let dp = UsiiDatapath::build(&mut nl, n, l, width, tree);
            let mut d = Driver::new(nl.num_inputs());
            let ready = 1u64 << 8;
            // Initial registers r0..r3 = 1..4, all ready.
            for r in 0..l {
                d.set_bus(&dp.init_value[r], (r as u64 + 1) | ready);
            }
            // Station 0 writes R2, not finished (ready bit low).
            d.set_bus(&dp.st_regnum[0], 2);
            d.set(dp.st_valid[0], true);
            d.set_bus(&dp.st_value[0], 0); // value unknown, not ready
                                           // Station 1 writes R1 = 7, ready.
            d.set_bus(&dp.st_regnum[1], 1);
            d.set(dp.st_valid[1], true);
            d.set_bus(&dp.st_value[1], 7 | ready);
            // Station 2 writes R2 = 9, ready.
            d.set_bus(&dp.st_regnum[2], 2);
            d.set(dp.st_valid[2], true);
            d.set_bus(&dp.st_value[2], 9 | ready);
            // Station 3 writes nothing.
            d.set(dp.st_valid[3], false);
            // Station 3 requests R2 and R1.
            d.set_bus(&dp.arg_request[3][0], 2);
            d.set_bus(&dp.arg_request[3][1], 1);
            // Station 1 requests R3 (initial) and R0 (initial).
            d.set_bus(&dp.arg_request[1][0], 3);
            d.set_bus(&dp.arg_request[1][1], 0);

            let e = nl.evaluate(&d.inputs, &[]).unwrap();
            assert_eq!(bus_value(&e, &dp.arg_value[3][0]), 9 | ready, "tree={tree}");
            assert_eq!(bus_value(&e, &dp.arg_value[3][1]), 7 | ready, "tree={tree}");
            assert_eq!(bus_value(&e, &dp.arg_value[1][0]), 4 | ready);
            assert_eq!(bus_value(&e, &dp.arg_value[1][1]), 1 | ready);
            // Station 0's arguments see only initial registers.
            // (requests default to register 0)
            assert_eq!(bus_value(&e, &dp.arg_value[0][0]), 1 | ready);
            // Outgoing registers: R0,R3 initial; R1 = 7; R2 = station
            // 2's (latest) write = 9… but station 0's write is *earlier*
            // than station 2's, so the final R2 is station 2's.
            assert_eq!(bus_value(&e, &dp.out_value[0]), 1 | ready);
            assert_eq!(bus_value(&e, &dp.out_value[1]), 7 | ready);
            assert_eq!(bus_value(&e, &dp.out_value[2]), 9 | ready);
            assert_eq!(bus_value(&e, &dp.out_value[3]), 4 | ready);
        }
    }

    #[test]
    fn usii_datapath_arguments_ignore_younger_writers() {
        // Station 1 requests a register written only by station 2:
        // it must fall back to the initial register file.
        let mut nl = Netlist::new();
        let dp = UsiiDatapath::build(&mut nl, 3, 4, 5, true);
        let mut d = Driver::new(nl.num_inputs());
        for r in 0..4 {
            d.set_bus(&dp.init_value[r], r as u64);
        }
        d.set(dp.st_valid[0], false);
        d.set(dp.st_valid[1], false);
        d.set_bus(&dp.st_regnum[2], 3);
        d.set(dp.st_valid[2], true);
        d.set_bus(&dp.st_value[2], 31);
        d.set_bus(&dp.arg_request[1][0], 3);
        let e = nl.evaluate(&d.inputs, &[]).unwrap();
        assert_eq!(bus_value(&e, &dp.arg_value[1][0]), 3); // initial R3
        assert_eq!(bus_value(&e, &dp.out_value[3]), 31); // final R3
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::build::bus_value;
    use proptest::prelude::*;
    use ultrascalar_prefix::{cspp_ring, BoolAnd, First};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Gate-level CSPP tree ≡ algorithmic CSPP (bus payload, First).
        #[test]
        fn cspp_tree_gates_match_model(
            n in 1usize..24,
            data in proptest::collection::vec((0u64..256, any::<bool>()), 24),
        ) {
            let vals: Vec<u64> = data.iter().take(n).map(|&(v, _)| v).collect();
            let segs: Vec<bool> = data.iter().take(n).map(|&(_, s)| s).collect();
            let mut nl = Netlist::new();
            let tree = CsppTree::build(&mut nl, n, 8, CombineOp::First);
            let mut inputs = vec![false; nl.num_inputs()];
            for i in 0..n {
                for (b, &w) in tree.values[i].iter().enumerate() {
                    inputs[w.0 as usize] = vals[i] >> b & 1 == 1;
                }
                inputs[tree.seg[i].0 as usize] = segs[i];
            }
            let e = nl.evaluate(&inputs, &[]).unwrap();
            let model = cspp_ring::<u64, First>(&vals, &segs);
            for i in 0..n {
                prop_assert_eq!(bus_value(&e, &tree.out_value[i]), model[i].value);
                prop_assert_eq!(e.value(tree.out_seg[i]), model[i].seg);
            }
        }

        /// Gate-level 1-bit AND CSPP ≡ algorithmic model.
        #[test]
        fn cspp_tree_and_gates_match_model(
            n in 1usize..32,
            data in proptest::collection::vec((any::<bool>(), any::<bool>()), 32),
        ) {
            let vals: Vec<bool> = data.iter().take(n).map(|&(v, _)| v).collect();
            let segs: Vec<bool> = data.iter().take(n).map(|&(_, s)| s).collect();
            let mut nl = Netlist::new();
            let tree = CsppTree::build(&mut nl, n, 1, CombineOp::BitAnd);
            let mut inputs = vec![false; nl.num_inputs()];
            for i in 0..n {
                inputs[tree.values[i][0].0 as usize] = vals[i];
                inputs[tree.seg[i].0 as usize] = segs[i];
            }
            let e = nl.evaluate(&inputs, &[]).unwrap();
            let model = cspp_ring::<bool, BoolAnd>(&vals, &segs);
            for i in 0..n {
                prop_assert_eq!(e.value(tree.out_value[i][0]), model[i].value);
            }
        }

        /// Mux ring ≡ CSPP model whenever at least one modified bit is
        /// raised.
        #[test]
        fn mux_ring_gates_match_model(
            n in 1usize..16,
            data in proptest::collection::vec((0u64..16, any::<bool>()), 16),
            force in 0usize..16,
        ) {
            let vals: Vec<u64> = data.iter().take(n).map(|&(v, _)| v).collect();
            let mut segs: Vec<bool> = data.iter().take(n).map(|&(_, s)| s).collect();
            segs[force % n] = true; // ensure the ring is cut
            let mut nl = Netlist::new();
            let ring = MuxRing::build(&mut nl, n, 4);
            let mut inputs = vec![false; nl.num_inputs()];
            for i in 0..n {
                inputs[ring.modified[i].0 as usize] = segs[i];
                for (b, &w) in ring.inserted[i].iter().enumerate() {
                    inputs[w.0 as usize] = vals[i] >> b & 1 == 1;
                }
            }
            let e = nl.evaluate(&inputs, &[]).unwrap();
            let model = cspp_ring::<u64, First>(&vals, &segs);
            for i in 0..n {
                prop_assert_eq!(bus_value(&e, &ring.incoming[i]), model[i].value);
            }
        }

        /// US-II column ≡ "last valid matching row" specification.
        #[test]
        fn usii_column_matches_spec(
            rows in 1usize..12,
            data in proptest::collection::vec((0u64..8, 0u64..256, any::<bool>()), 12),
            req in 0u64..8,
            tree in any::<bool>(),
        ) {
            let data = &data[..rows];
            let mut nl = Netlist::new();
            let col = UsiiColumn::build(&mut nl, rows, 3, 8, tree);
            let mut inputs = vec![false; nl.num_inputs()];
            let setb = |bus: &[NodeId], v: u64, inputs: &mut Vec<bool>| {
                for (i, &w) in bus.iter().enumerate() {
                    inputs[w.0 as usize] = v >> i & 1 == 1;
                }
            };
            for (r, &(num, val, valid)) in data.iter().enumerate() {
                setb(&col.row_regnum[r], num, &mut inputs);
                setb(&col.row_value[r], val, &mut inputs);
                inputs[col.row_valid[r].0 as usize] = valid;
            }
            setb(&col.request, req, &mut inputs);
            let e = nl.evaluate(&inputs, &[]).unwrap();
            let expect = data
                .iter()
                .rev()
                .find(|&&(num, _, valid)| valid && num == req)
                .map(|&(_, val, _)| val);
            prop_assert_eq!(e.value(col.found), expect.is_some());
            if let Some(v) = expect {
                prop_assert_eq!(bus_value(&e, &col.out_value), v);
            }
        }
    }
}

/// The Ultrascalar I's complete window-sequencing logic (paper §2): the
/// four 1-bit CSPP instances that, every cycle, tell each station
/// whether it may deallocate, whether it becomes the oldest, and
/// whether its memory operation may proceed.
///
/// * deallocate: "if a station has finished executing and so have all
///   the preceding stations, the station becomes deallocated";
/// * oldest-next: "if a station has not yet finished executing and all
///   preceding stations have, it becomes the oldest station on the next
///   clock cycle";
/// * may-load: "a station cannot load from memory until all preceding
///   stores have finished";
/// * may-store: "a station cannot store to memory until all preceding
///   loads and stores have finished" and "until all preceding stations
///   have committed" (confirmed their branches).
#[derive(Debug)]
pub struct WindowController {
    /// Per-station finished bit (input).
    pub finished: Vec<NodeId>,
    /// Per-station "my stores are done" bit (input; high for
    /// non-stores).
    pub store_done: Vec<NodeId>,
    /// Per-station "my loads are done" bit (input; high for non-loads).
    pub load_done: Vec<NodeId>,
    /// Per-station "my branch is confirmed" bit (input; high for
    /// non-branches).
    pub branch_ok: Vec<NodeId>,
    /// One-hot oldest-station marker (input).
    pub oldest: Vec<NodeId>,
    /// Station may deallocate this cycle (output).
    pub dealloc: Vec<NodeId>,
    /// Station becomes the oldest next cycle (output).
    pub becomes_oldest: Vec<NodeId>,
    /// Station may issue its load (output).
    pub may_load: Vec<NodeId>,
    /// Station may issue its store (output).
    pub may_store: Vec<NodeId>,
}

impl WindowController {
    /// Build the controller for `n` stations: four AND-CSPP trees plus
    /// a few glue gates per station. Depth `Θ(log n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn build(nl: &mut Netlist, n: usize) -> Self {
        assert!(n > 0, "WindowController needs stations");
        let finished: Vec<NodeId> = (0..n).map(|_| nl.input()).collect();
        let store_done: Vec<NodeId> = (0..n).map(|_| nl.input()).collect();
        let load_done: Vec<NodeId> = (0..n).map(|_| nl.input()).collect();
        let branch_ok: Vec<NodeId> = (0..n).map(|_| nl.input()).collect();
        let oldest: Vec<NodeId> = (0..n).map(|_| nl.input()).collect();

        // Shared helper: a 1-bit AND-CSPP whose per-station payload is
        // `cond[i]` and whose segment bits are the oldest marker.
        let cspp = |nl: &mut Netlist, cond: &[NodeId]| -> Vec<NodeId> {
            // Reusing CsppTree by wiring our nodes into fresh buffers
            // is not possible (CsppTree declares its own inputs), so
            // run the shared heap walk over (value, seg) pairs with a
            // gate-emitting combine.
            let leaves: Vec<(NodeId, NodeId)> =
                cond.iter().zip(&oldest).map(|(&c, &o)| (c, o)).collect();
            ultrascalar_prefix::cspp_heap_with(&leaves, |&(va, sa), &(vb, sb)| {
                let anded = nl.and(va, vb);
                let v = nl.mux(sb, anded, vb);
                let s = nl.or(sa, sb);
                (v, s)
            })
            .into_iter()
            .map(|(v, _)| v)
            .collect()
        };

        // "All earlier finished", "all earlier stores done", "all
        // earlier loads done", "all earlier branches confirmed".
        let earlier_finished = cspp(nl, &finished);
        let earlier_stores = cspp(nl, &store_done);
        let earlier_loads = cspp(nl, &load_done);
        let earlier_branches = cspp(nl, &branch_ok);

        let mut dealloc = Vec::with_capacity(n);
        let mut becomes_oldest = Vec::with_capacity(n);
        let mut may_load = Vec::with_capacity(n);
        let mut may_store = Vec::with_capacity(n);
        for i in 0..n {
            // The oldest station ignores the wrapped prefix: its
            // "all earlier" is vacuously true.
            let ef = nl.or(earlier_finished[i], oldest[i]);
            let es = nl.or(earlier_stores[i], oldest[i]);
            let el = nl.or(earlier_loads[i], oldest[i]);
            let eb = nl.or(earlier_branches[i], oldest[i]);
            let d = nl.and(finished[i], ef);
            dealloc.push(d);
            let nf = nl.not(finished[i]);
            becomes_oldest.push(nl.and(nf, ef));
            may_load.push(es);
            let lo_st = nl.and(el, es);
            may_store.push(nl.and(lo_st, eb));
            for &o in [dealloc[i], becomes_oldest[i], may_load[i], may_store[i]].iter() {
                nl.mark_output(o);
            }
        }
        WindowController {
            finished,
            store_done,
            load_done,
            branch_ok,
            oldest,
            dealloc,
            becomes_oldest,
            may_load,
            may_store,
        }
    }
}

#[cfg(test)]
mod controller_tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Reference semantics: walk from the oldest station.
    struct Ref {
        dealloc: Vec<bool>,
        becomes_oldest: Vec<bool>,
        may_load: Vec<bool>,
        may_store: Vec<bool>,
    }

    fn reference(
        finished: &[bool],
        store_done: &[bool],
        load_done: &[bool],
        branch_ok: &[bool],
        oldest: usize,
    ) -> Ref {
        let n = finished.len();
        let mut r = Ref {
            dealloc: vec![false; n],
            becomes_oldest: vec![false; n],
            may_load: vec![false; n],
            may_store: vec![false; n],
        };
        let mut all_f = true;
        let mut all_s = true;
        let mut all_l = true;
        let mut all_b = true;
        for step in 0..n {
            let i = (oldest + step) % n;
            r.dealloc[i] = finished[i] && all_f;
            r.becomes_oldest[i] = !finished[i] && all_f;
            r.may_load[i] = all_s;
            r.may_store[i] = all_l && all_s && all_b;
            all_f &= finished[i];
            all_s &= store_done[i];
            all_l &= load_done[i];
            all_b &= branch_ok[i];
        }
        r
    }

    #[test]
    fn controller_matches_reference_on_random_states() {
        let mut rng = StdRng::seed_from_u64(99);
        for n in [1usize, 2, 5, 8, 13, 16] {
            let mut nl = Netlist::new();
            let wc = WindowController::build(&mut nl, n);
            for trial in 0..40 {
                let finished: Vec<bool> = (0..n).map(|_| rng.gen()).collect();
                let store_done: Vec<bool> = (0..n).map(|_| rng.gen()).collect();
                let load_done: Vec<bool> = (0..n).map(|_| rng.gen()).collect();
                let branch_ok: Vec<bool> = (0..n).map(|_| rng.gen()).collect();
                let oldest = rng.gen_range(0..n);
                let mut inputs = vec![false; nl.num_inputs()];
                for i in 0..n {
                    inputs[wc.finished[i].0 as usize] = finished[i];
                    inputs[wc.store_done[i].0 as usize] = store_done[i];
                    inputs[wc.load_done[i].0 as usize] = load_done[i];
                    inputs[wc.branch_ok[i].0 as usize] = branch_ok[i];
                    inputs[wc.oldest[i].0 as usize] = i == oldest;
                }
                let e = nl.evaluate(&inputs, &[]).expect("controller settles");
                let want = reference(&finished, &store_done, &load_done, &branch_ok, oldest);
                for i in 0..n {
                    assert_eq!(
                        e.value(wc.dealloc[i]),
                        want.dealloc[i],
                        "dealloc n={n} trial={trial} station={i}"
                    );
                    assert_eq!(
                        e.value(wc.becomes_oldest[i]),
                        want.becomes_oldest[i],
                        "oldest-next n={n} trial={trial} station={i}"
                    );
                    assert_eq!(
                        e.value(wc.may_load[i]),
                        want.may_load[i],
                        "may_load n={n} trial={trial} station={i}"
                    );
                    assert_eq!(
                        e.value(wc.may_store[i]),
                        want.may_store[i],
                        "may_store n={n} trial={trial} station={i}"
                    );
                }
            }
        }
    }

    #[test]
    fn at_most_one_station_becomes_oldest() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 8;
        let mut nl = Netlist::new();
        let wc = WindowController::build(&mut nl, n);
        for _ in 0..100 {
            let mut inputs = vec![false; nl.num_inputs()];
            let oldest = rng.gen_range(0..n);
            for i in 0..n {
                inputs[wc.finished[i].0 as usize] = rng.gen();
                inputs[wc.store_done[i].0 as usize] = true;
                inputs[wc.load_done[i].0 as usize] = true;
                inputs[wc.branch_ok[i].0 as usize] = true;
                inputs[wc.oldest[i].0 as usize] = i == oldest;
            }
            let e = nl.evaluate(&inputs, &[]).unwrap();
            let count = (0..n).filter(|&i| e.value(wc.becomes_oldest[i])).count();
            assert!(count <= 1, "{count} stations claim oldest");
        }
    }

    #[test]
    fn controller_depth_is_logarithmic() {
        let mut depths = Vec::new();
        for k in [3u32, 5, 7] {
            let n = 1usize << k;
            let mut nl = Netlist::new();
            let wc = WindowController::build(&mut nl, n);
            let mut inputs = vec![false; nl.num_inputs()];
            inputs[wc.oldest[0].0 as usize] = true;
            for i in 0..n {
                inputs[wc.finished[i].0 as usize] = true;
                inputs[wc.store_done[i].0 as usize] = true;
                inputs[wc.load_done[i].0 as usize] = true;
                inputs[wc.branch_ok[i].0 as usize] = true;
            }
            let e = nl.evaluate(&inputs, &[]).unwrap();
            depths.push(e.max_level());
        }
        // 16x more stations: bounded extra depth.
        assert!(depths[2] <= depths[0] + 18, "{depths:?}");
    }
}
