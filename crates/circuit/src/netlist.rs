//! Structural netlists with constructive three-valued evaluation.
//!
//! # Evaluation model
//!
//! Every node carries `Unknown` until its value is *forced* by its
//! fan-in. Controlling values short-circuit exactly as real gates do:
//! an AND with one settled-`false` input settles `false` regardless of
//! the other input, an OR with a settled-`true` input settles `true`,
//! and a mux whose select is settled passes only the selected leg.
//! This is the standard constructive (ternary) semantics; a circuit
//! containing combinational cycles evaluates successfully iff the cycle
//! is cut by a controlling value — which is exactly how the
//! Ultrascalar's cyclic datapaths behave (the oldest station's raised
//! modified/segment bits cut every ring).
//!
//! Each node records the unit-delay **level** at which it settled
//! (`level = 1 + max(level of the fan-ins that forced it)`), so
//! [`Evaluation::max_level`] reports the critical-path gate delay of
//! the run, and per-output levels expose which outputs settle early
//! (the paper's §7 self-timing discussion).

/// Index of a node in a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    #[inline]
    fn idx(self) -> usize {
        self.0 as usize
    }
}

/// One gate in the netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Gate {
    /// An external input; value supplied per evaluation.
    Input,
    /// A constant.
    Const(bool),
    /// A clocked state element. Its *output* is the latched state; its
    /// data input is connected with [`Netlist::connect_latch`].
    Latch {
        /// Data input node (`NodeId(u32::MAX)` until connected).
        d: NodeId,
        /// Power-on state.
        init: bool,
    },
    /// Inverter.
    Not(NodeId),
    /// Two-input AND.
    And(NodeId, NodeId),
    /// Two-input OR.
    Or(NodeId, NodeId),
    /// Two-input XOR.
    Xor(NodeId, NodeId),
    /// Two-to-one multiplexer: output = `sel ? b : a`.
    Mux {
        /// Select line (`true` picks `b`).
        sel: NodeId,
        /// Leg selected when `sel` is `false`.
        a: NodeId,
        /// Leg selected when `sel` is `true`.
        b: NodeId,
    },
}

const UNCONNECTED: NodeId = NodeId(u32::MAX);

/// A netlist under construction or evaluation.
#[derive(Debug, Clone, Default)]
pub struct Netlist {
    gates: Vec<Gate>,
    inputs: Vec<NodeId>,
    latches: Vec<NodeId>,
    outputs: Vec<NodeId>,
}

/// Why an evaluation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// The wrong number of input values was supplied.
    InputCount {
        /// Values supplied.
        got: usize,
        /// Inputs declared.
        want: usize,
    },
    /// The wrong number of latch states was supplied.
    LatchCount {
        /// States supplied.
        got: usize,
        /// Latches declared.
        want: usize,
    },
    /// A latch's data input was never connected.
    UnconnectedLatch(NodeId),
    /// The circuit did not settle: a combinational cycle was not cut by
    /// any controlling value.
    NotConstructive {
        /// Number of nodes still unknown at fixpoint.
        unresolved: usize,
    },
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::InputCount { got, want } => {
                write!(f, "supplied {got} input values, circuit has {want} inputs")
            }
            EvalError::LatchCount { got, want } => {
                write!(f, "supplied {got} latch states, circuit has {want} latches")
            }
            EvalError::UnconnectedLatch(n) => write!(f, "latch {n:?} has no data input"),
            EvalError::NotConstructive { unresolved } => write!(
                f,
                "circuit did not settle: {unresolved} node(s) unresolved (uncut cycle)"
            ),
        }
    }
}

impl std::error::Error for EvalError {}

/// The result of a settled evaluation.
#[derive(Debug, Clone)]
pub struct Evaluation {
    values: Vec<bool>,
    levels: Vec<u32>,
    outputs: Vec<NodeId>,
    next_latch_state: Vec<bool>,
}

impl Evaluation {
    /// Settled value of a node.
    #[inline]
    pub fn value(&self, n: NodeId) -> bool {
        self.values[n.idx()]
    }

    /// Unit-delay level at which a node settled (inputs, constants and
    /// latch outputs are level 0).
    #[inline]
    pub fn level(&self, n: NodeId) -> u32 {
        self.levels[n.idx()]
    }

    /// Values of the declared outputs, in declaration order.
    pub fn output_values(&self) -> Vec<bool> {
        self.outputs.iter().map(|&n| self.value(n)).collect()
    }

    /// Critical-path gate delay of this evaluation: the maximum settle
    /// level over the declared outputs (or over all nodes if no outputs
    /// were declared).
    pub fn max_level(&self) -> u32 {
        if self.outputs.is_empty() {
            self.levels.iter().copied().max().unwrap_or(0)
        } else {
            self.outputs
                .iter()
                .map(|&n| self.level(n))
                .max()
                .unwrap_or(0)
        }
    }

    /// Latch data-input values sampled by this evaluation — the latch
    /// state for the next clock cycle.
    pub fn next_latch_state(&self) -> &[bool] {
        &self.next_latch_state
    }
}

impl Netlist {
    /// An empty netlist.
    pub fn new() -> Self {
        Netlist::default()
    }

    fn push(&mut self, g: Gate) -> NodeId {
        let id = NodeId(u32::try_from(self.gates.len()).expect("netlist too large"));
        self.gates.push(g);
        id
    }

    /// Declare an external input.
    pub fn input(&mut self) -> NodeId {
        let id = self.push(Gate::Input);
        self.inputs.push(id);
        id
    }

    /// A constant node.
    pub fn constant(&mut self, v: bool) -> NodeId {
        self.push(Gate::Const(v))
    }

    /// Declare a latch with the given power-on state; connect its data
    /// input later with [`Netlist::connect_latch`].
    pub fn latch(&mut self, init: bool) -> NodeId {
        let id = self.push(Gate::Latch {
            d: UNCONNECTED,
            init,
        });
        self.latches.push(id);
        id
    }

    /// Connect a latch's data input.
    ///
    /// # Panics
    /// Panics if `l` is not a latch.
    pub fn connect_latch(&mut self, l: NodeId, d: NodeId) {
        match &mut self.gates[l.idx()] {
            Gate::Latch { d: slot, .. } => *slot = d,
            g => panic!("connect_latch on non-latch gate {g:?}"),
        }
    }

    /// Inverter.
    pub fn not(&mut self, a: NodeId) -> NodeId {
        self.push(Gate::Not(a))
    }

    /// Two-input AND.
    pub fn and(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(Gate::And(a, b))
    }

    /// Two-input OR.
    pub fn or(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(Gate::Or(a, b))
    }

    /// Two-input XOR.
    pub fn xor(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(Gate::Xor(a, b))
    }

    /// XNOR (equality of two bits), built from XOR + NOT.
    pub fn xnor(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let x = self.xor(a, b);
        self.not(x)
    }

    /// Two-to-one mux: `sel ? b : a`.
    pub fn mux(&mut self, sel: NodeId, a: NodeId, b: NodeId) -> NodeId {
        self.push(Gate::Mux { sel, a, b })
    }

    /// Declare a node as a circuit output (affects
    /// [`Evaluation::max_level`] and [`Evaluation::output_values`]).
    pub fn mark_output(&mut self, n: NodeId) {
        self.outputs.push(n);
    }

    /// Total gate count (including inputs/constants/latches).
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// True iff the netlist has no nodes.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Number of *logic* gates (excluding inputs, constants, latches) —
    /// the paper's area-relevant count.
    pub fn logic_gate_count(&self) -> usize {
        self.gates
            .iter()
            .filter(|g| !matches!(g, Gate::Input | Gate::Const(_) | Gate::Latch { .. }))
            .count()
    }

    /// Number of declared inputs.
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of declared latches.
    pub fn num_latches(&self) -> usize {
        self.latches.len()
    }

    /// Initial latch state vector (power-on values).
    pub fn initial_latch_state(&self) -> Vec<bool> {
        self.latches
            .iter()
            .map(|&l| match self.gates[l.idx()] {
                Gate::Latch { init, .. } => init,
                _ => unreachable!("latches list holds only latches"),
            })
            .collect()
    }

    /// Structural worst-case depth via longest path, for *acyclic*
    /// netlists; `None` if the combinational graph has a cycle.
    pub fn structural_depth(&self) -> Option<u32> {
        // Kahn's algorithm over combinational edges (latch outputs are
        // sources; latch data inputs are sinks, not edges).
        let n = self.gates.len();
        let mut indeg = vec![0u32; n];
        let mut fanout: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (i, g) in self.gates.iter().enumerate() {
            for f in comb_fanins(g) {
                indeg[i] += 1;
                fanout[f.idx()].push(i as u32);
            }
        }
        let mut depth = vec![0u32; n];
        let mut queue: Vec<u32> = (0..n as u32).filter(|&i| indeg[i as usize] == 0).collect();
        let mut seen = queue.len();
        while let Some(i) = queue.pop() {
            for &j in &fanout[i as usize] {
                let j = j as usize;
                let cand = depth[i as usize] + 1;
                depth[j] = depth[j].max(cand);
                indeg[j] -= 1;
                if indeg[j] == 0 {
                    queue.push(j as u32);
                    seen += 1;
                }
            }
        }
        if seen < n {
            None // cycle
        } else if self.outputs.is_empty() {
            depth.iter().copied().max()
        } else {
            self.outputs.iter().map(|&o| depth[o.idx()]).max()
        }
    }

    /// Evaluate the combinational logic for one cycle.
    ///
    /// `input_values` are matched to inputs in declaration order;
    /// `latch_state` to latches in declaration order (use
    /// [`Netlist::initial_latch_state`] for cycle 0 and
    /// [`Evaluation::next_latch_state`] thereafter).
    pub fn evaluate(
        &self,
        input_values: &[bool],
        latch_state: &[bool],
    ) -> Result<Evaluation, EvalError> {
        if input_values.len() != self.inputs.len() {
            return Err(EvalError::InputCount {
                got: input_values.len(),
                want: self.inputs.len(),
            });
        }
        if latch_state.len() != self.latches.len() {
            return Err(EvalError::LatchCount {
                got: latch_state.len(),
                want: self.latches.len(),
            });
        }
        for &l in &self.latches {
            if let Gate::Latch { d, .. } = self.gates[l.idx()] {
                if d == UNCONNECTED {
                    return Err(EvalError::UnconnectedLatch(l));
                }
            }
        }

        let n = self.gates.len();
        let mut value: Vec<Option<bool>> = vec![None; n];
        let mut level: Vec<u32> = vec![0; n];

        // Fan-out lists for event-driven propagation.
        let mut fanout: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (i, g) in self.gates.iter().enumerate() {
            for f in comb_fanins(g) {
                fanout[f.idx()].push(i as u32);
            }
        }

        let mut worklist: Vec<u32> = Vec::with_capacity(n);
        // Seed: inputs, constants, latch outputs.
        for (i, g) in self.gates.iter().enumerate() {
            if let Gate::Const(v) = g {
                value[i] = Some(*v);
                worklist.push(i as u32);
            }
        }
        for (k, &id) in self.inputs.iter().enumerate() {
            value[id.idx()] = Some(input_values[k]);
            worklist.push(id.0);
        }
        for (k, &id) in self.latches.iter().enumerate() {
            value[id.idx()] = Some(latch_state[k]);
            worklist.push(id.0);
        }

        let mut resolved = worklist.len();
        while let Some(i) = worklist.pop() {
            for &jj in &fanout[i as usize] {
                let j = jj as usize;
                if value[j].is_some() {
                    continue;
                }
                if let Some((v, lvl)) = try_settle(&self.gates[j], &value, &level) {
                    value[j] = Some(v);
                    level[j] = lvl;
                    worklist.push(jj);
                    resolved += 1;
                }
            }
        }

        if resolved < n {
            return Err(EvalError::NotConstructive {
                unresolved: n - resolved,
            });
        }

        let values: Vec<bool> = value.into_iter().map(|v| v.expect("all settled")).collect();
        let next_latch_state = self
            .latches
            .iter()
            .map(|&l| match self.gates[l.idx()] {
                Gate::Latch { d, .. } => values[d.idx()],
                _ => unreachable!(),
            })
            .collect();
        Ok(Evaluation {
            values,
            levels: level,
            outputs: self.outputs.clone(),
            next_latch_state,
        })
    }
}

/// Combinational fan-ins of a gate (latch data inputs are *not*
/// combinational edges — they are sampled at the clock edge).
fn comb_fanins(g: &Gate) -> impl Iterator<Item = NodeId> {
    let v: [Option<NodeId>; 3] = match *g {
        Gate::Input | Gate::Const(_) | Gate::Latch { .. } => [None, None, None],
        Gate::Not(a) => [Some(a), None, None],
        Gate::And(a, b) | Gate::Or(a, b) | Gate::Xor(a, b) => [Some(a), Some(b), None],
        Gate::Mux { sel, a, b } => [Some(sel), Some(a), Some(b)],
    };
    v.into_iter().flatten()
}

/// Attempt to settle a gate from the currently known values, with
/// controlling-value short-circuits. Returns `(value, level)`.
fn try_settle(g: &Gate, value: &[Option<bool>], level: &[u32]) -> Option<(bool, u32)> {
    let val = |n: NodeId| value[n.idx()];
    let lvl = |n: NodeId| level[n.idx()];
    match *g {
        Gate::Input | Gate::Const(_) | Gate::Latch { .. } => None, // seeded, never here
        Gate::Not(a) => val(a).map(|v| (!v, lvl(a) + 1)),
        Gate::And(a, b) => match (val(a), val(b)) {
            (Some(false), _) => Some((false, lvl(a) + 1)),
            (_, Some(false)) => Some((false, lvl(b) + 1)),
            (Some(true), Some(true)) => Some((true, lvl(a).max(lvl(b)) + 1)),
            _ => None,
        },
        Gate::Or(a, b) => match (val(a), val(b)) {
            (Some(true), _) => Some((true, lvl(a) + 1)),
            (_, Some(true)) => Some((true, lvl(b) + 1)),
            (Some(false), Some(false)) => Some((false, lvl(a).max(lvl(b)) + 1)),
            _ => None,
        },
        Gate::Xor(a, b) => match (val(a), val(b)) {
            (Some(x), Some(y)) => Some((x ^ y, lvl(a).max(lvl(b)) + 1)),
            _ => None,
        },
        Gate::Mux { sel, a, b } => match val(sel) {
            Some(false) => val(a).map(|v| (v, lvl(sel).max(lvl(a)) + 1)),
            Some(true) => val(b).map(|v| (v, lvl(sel).max(lvl(b)) + 1)),
            None => None,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_gates() {
        let mut nl = Netlist::new();
        let a = nl.input();
        let b = nl.input();
        let and = nl.and(a, b);
        let or = nl.or(a, b);
        let xor = nl.xor(a, b);
        let not = nl.not(a);
        for (av, bv) in [(false, false), (false, true), (true, false), (true, true)] {
            let e = nl.evaluate(&[av, bv], &[]).unwrap();
            assert_eq!(e.value(and), av && bv);
            assert_eq!(e.value(or), av || bv);
            assert_eq!(e.value(xor), av ^ bv);
            assert_eq!(e.value(not), !av);
        }
    }

    #[test]
    fn mux_selects() {
        let mut nl = Netlist::new();
        let s = nl.input();
        let a = nl.input();
        let b = nl.input();
        let m = nl.mux(s, a, b);
        let e = nl.evaluate(&[false, true, false], &[]).unwrap();
        assert!(e.value(m)); // sel=0 → a=1
        let e = nl.evaluate(&[true, true, false], &[]).unwrap();
        assert!(!e.value(m)); // sel=1 → b=0
    }

    #[test]
    fn levels_count_unit_delays() {
        let mut nl = Netlist::new();
        let a = nl.input();
        let mut x = a;
        for _ in 0..10 {
            x = nl.not(x);
        }
        nl.mark_output(x);
        let e = nl.evaluate(&[true], &[]).unwrap();
        assert_eq!(e.max_level(), 10);
        assert_eq!(e.level(a), 0);
    }

    #[test]
    fn short_circuit_levels_settle_early() {
        // AND(false-input-at-level-0, deep-chain): settles at level 1.
        let mut nl = Netlist::new();
        let zero = nl.constant(false);
        let a = nl.input();
        let mut deep = a;
        for _ in 0..20 {
            deep = nl.not(deep);
        }
        let g = nl.and(zero, deep);
        let e = nl.evaluate(&[true], &[]).unwrap();
        assert!(!e.value(g));
        assert_eq!(e.level(g), 1);
    }

    #[test]
    fn cyclic_ring_cut_by_mux_select() {
        // A 4-stage cyclic mux ring: out_i = sel_i ? ins_i : out_{i-1}.
        // With one select high the ring settles; with none it must fail.
        let n = 4;
        let mut nl = Netlist::new();
        let sels: Vec<NodeId> = (0..n).map(|_| nl.input()).collect();
        let inss: Vec<NodeId> = (0..n).map(|_| nl.input()).collect();
        // Create mux placeholders via latch-free forward refs: build
        // muxes referencing a vector of yet-unknown nodes is impossible
        // with plain combinators, so use the standard two-pass trick:
        // allocate "wire" inputs?  Instead: chain is cyclic, so build
        // muxes in order, then the first mux's `a` leg must reference
        // the last mux. We achieve this by constructing the last mux
        // first using a dummy that we can't rewire — so instead build
        // with explicit gate surgery: push muxes with a placeholder and
        // fix up. Netlist doesn't expose surgery; emulate a cycle using
        // a latchless trick: mux_0 references mux_{n-1} by id, which we
        // can compute because ids are sequential.
        let first_mux = NodeId(nl.len() as u32);
        let last_mux = NodeId(first_mux.0 + (n as u32) - 1);
        let mut prev = last_mux;
        let mut muxes = Vec::new();
        for i in 0..n {
            let m = nl.mux(sels[i], prev, inss[i]);
            muxes.push(m);
            prev = m;
        }
        assert_eq!(muxes[0], first_mux);
        assert_eq!(muxes[n - 1], last_mux);

        // sel_2 high, insert true there: every station sees true.
        let mut inputs = vec![false; 2 * n];
        inputs[2] = true; // sel_2
        inputs[n + 2] = true; // ins_2
        let e = nl.evaluate(&inputs, &[]).unwrap();
        for &m in &muxes {
            assert!(e.value(m));
        }

        // No select high: uncut cycle must be reported, not looped.
        let e = nl.evaluate(&vec![false; 2 * n], &[]);
        assert!(matches!(e, Err(EvalError::NotConstructive { .. })));
    }

    #[test]
    fn structural_depth_acyclic_and_cyclic() {
        let mut nl = Netlist::new();
        let a = nl.input();
        let b = nl.not(a);
        let c = nl.not(b);
        nl.mark_output(c);
        assert_eq!(nl.structural_depth(), Some(2));

        // Add a cycle.
        let mut nl = Netlist::new();
        let s = nl.input();
        let first = NodeId(nl.len() as u32 + 1);
        let _x = nl.input();
        let m = nl.mux(s, first, s);
        assert_eq!(m, first);
        assert_eq!(nl.structural_depth(), None);
    }

    #[test]
    fn latch_sequential_counter() {
        // 1-bit toggler: latch feeding an inverter feeding the latch.
        let mut nl = Netlist::new();
        let l = nl.latch(false);
        let inv = nl.not(l);
        nl.connect_latch(l, inv);
        let mut state = nl.initial_latch_state();
        let mut seen = Vec::new();
        for _ in 0..4 {
            let e = nl.evaluate(&[], &state).unwrap();
            seen.push(e.value(l));
            state = e.next_latch_state().to_vec();
        }
        assert_eq!(seen, vec![false, true, false, true]);
    }

    #[test]
    fn unconnected_latch_rejected() {
        let mut nl = Netlist::new();
        let _l = nl.latch(false);
        assert!(matches!(
            nl.evaluate(&[], &[false]),
            Err(EvalError::UnconnectedLatch(_))
        ));
    }

    #[test]
    fn input_count_checked() {
        let mut nl = Netlist::new();
        let _ = nl.input();
        assert!(matches!(
            nl.evaluate(&[], &[]),
            Err(EvalError::InputCount { got: 0, want: 1 })
        ));
    }

    #[test]
    fn gate_counts() {
        let mut nl = Netlist::new();
        let a = nl.input();
        let c = nl.constant(true);
        let l = nl.latch(false);
        let g = nl.and(a, c);
        nl.connect_latch(l, g);
        assert_eq!(nl.len(), 4);
        assert_eq!(nl.logic_gate_count(), 1);
        assert_eq!(nl.num_inputs(), 1);
        assert_eq!(nl.num_latches(), 1);
    }
}

impl Netlist {
    /// Inventory by gate kind: `(inputs, constants, latches, not, and,
    /// or, xor, mux)` — the area-relevant census the VLSI models use.
    pub fn census(&self) -> GateCensus {
        let mut c = GateCensus::default();
        for g in &self.gates {
            match g {
                Gate::Input => c.inputs += 1,
                Gate::Const(_) => c.constants += 1,
                Gate::Latch { .. } => c.latches += 1,
                Gate::Not(_) => c.nots += 1,
                Gate::And(..) => c.ands += 1,
                Gate::Or(..) => c.ors += 1,
                Gate::Xor(..) => c.xors += 1,
                Gate::Mux { .. } => c.muxes += 1,
            }
        }
        c
    }
}

/// Gate counts by kind (see [`Netlist::census`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GateCensus {
    /// External inputs.
    pub inputs: usize,
    /// Constant nodes.
    pub constants: usize,
    /// State elements.
    pub latches: usize,
    /// Inverters.
    pub nots: usize,
    /// AND gates.
    pub ands: usize,
    /// OR gates.
    pub ors: usize,
    /// XOR gates.
    pub xors: usize,
    /// 2:1 multiplexers.
    pub muxes: usize,
}

impl GateCensus {
    /// Total logic gates (everything but inputs/constants/latches).
    pub fn logic(&self) -> usize {
        self.nots + self.ands + self.ors + self.xors + self.muxes
    }
}

#[cfg(test)]
mod census_tests {
    use super::*;

    #[test]
    fn census_counts_each_kind() {
        let mut nl = Netlist::new();
        let a = nl.input();
        let b = nl.input();
        let c = nl.constant(true);
        let l = nl.latch(false);
        let n = nl.not(a);
        let x = nl.and(a, b);
        let o = nl.or(x, c);
        let e = nl.xor(o, n);
        let m = nl.mux(a, e, o);
        nl.connect_latch(l, m);
        let census = nl.census();
        assert_eq!(
            census,
            GateCensus {
                inputs: 2,
                constants: 1,
                latches: 1,
                nots: 1,
                ands: 1,
                ors: 1,
                xors: 1,
                muxes: 1,
            }
        );
        assert_eq!(census.logic(), 5);
        assert_eq!(census.logic(), nl.logic_gate_count());
    }
}

#[cfg(test)]
mod random_netlist_proptests {
    use super::*;
    use proptest::prelude::*;

    /// Naive reference: recursively evaluate an acyclic netlist.
    fn reference_eval(nl_gates: &[Gate], values: &mut Vec<Option<bool>>, n: NodeId) -> bool {
        if let Some(v) = values[n.idx()] {
            return v;
        }
        let v = match nl_gates[n.idx()] {
            Gate::Input | Gate::Const(_) | Gate::Latch { .. } => {
                unreachable!("sources are pre-seeded")
            }
            Gate::Not(a) => !reference_eval(nl_gates, values, a),
            Gate::And(a, b) => {
                reference_eval(nl_gates, values, a) & reference_eval(nl_gates, values, b)
            }
            Gate::Or(a, b) => {
                reference_eval(nl_gates, values, a) | reference_eval(nl_gates, values, b)
            }
            Gate::Xor(a, b) => {
                reference_eval(nl_gates, values, a) ^ reference_eval(nl_gates, values, b)
            }
            Gate::Mux { sel, a, b } => {
                if reference_eval(nl_gates, values, sel) {
                    reference_eval(nl_gates, values, b)
                } else {
                    reference_eval(nl_gates, values, a)
                }
            }
        };
        values[n.idx()] = Some(v);
        v
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The event-driven constructive evaluator agrees with a naive
        /// recursive evaluation on arbitrary random acyclic netlists.
        #[test]
        fn event_driven_matches_reference(
            ops in proptest::collection::vec((0u8..5, any::<u32>(), any::<u32>(), any::<u32>()), 1..120),
            inputs in proptest::collection::vec(any::<bool>(), 8),
        ) {
            let mut nl = Netlist::new();
            let mut nodes: Vec<NodeId> = (0..8).map(|_| nl.input()).collect();
            for (kind, x, y, z) in &ops {
                let pick = |v: u32| nodes[v as usize % nodes.len()];
                let (a, b, c) = (pick(*x), pick(*y), pick(*z));
                let id = match kind {
                    0 => nl.not(a),
                    1 => nl.and(a, b),
                    2 => nl.or(a, b),
                    3 => nl.xor(a, b),
                    _ => nl.mux(a, b, c),
                };
                nodes.push(id);
            }
            let last = *nodes.last().unwrap();
            nl.mark_output(last);
            let eval = nl.evaluate(&inputs, &[]).unwrap();

            // Reference: rebuild the same gate list as a shadow
            // structure and evaluate it recursively.
            let mut shadow = vec![Gate::Input; 8];
            shadow.reserve(ops.len());
            let mut ids: Vec<NodeId> = (0..8).map(|i| NodeId(i as u32)).collect();
            for (kind, x, y, z) in &ops {
                let pick = |v: u32| ids[v as usize % ids.len()];
                let (a, b, c) = (pick(*x), pick(*y), pick(*z));
                let g = match kind {
                    0 => Gate::Not(a),
                    1 => Gate::And(a, b),
                    2 => Gate::Or(a, b),
                    3 => Gate::Xor(a, b),
                    _ => Gate::Mux { sel: a, a: b, b: c },
                };
                ids.push(NodeId(shadow.len() as u32));
                shadow.push(g);
            }
            let mut vals: Vec<Option<bool>> = vec![None; shadow.len()];
            for (i, &v) in inputs.iter().enumerate() {
                vals[i] = Some(v);
            }
            let want = reference_eval(&shadow, &mut vals, *ids.last().unwrap());
            prop_assert_eq!(eval.value(last), want);
        }
    }
}
