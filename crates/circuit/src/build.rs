//! Bus-level combinators: word muxes, comparators, reduction and
//! fan-out trees.
//!
//! A *bus* is simply an ordered slice of nodes (LSB first). All
//! combinators are balanced-tree constructions where the paper requires
//! logarithmic depth (comparators fan in through an AND tree, Figure 8
//! fans requests out through buffer trees).

use crate::netlist::{Netlist, NodeId};

/// An ordered bundle of wires, least-significant bit first.
pub type Bus = Vec<NodeId>;

/// Declare a `width`-bit input bus.
pub fn input_bus(nl: &mut Netlist, width: usize) -> Bus {
    (0..width).map(|_| nl.input()).collect()
}

/// A constant bus holding `value` (LSB first, truncated to `width`).
pub fn const_bus(nl: &mut Netlist, value: u64, width: usize) -> Bus {
    (0..width)
        .map(|i| nl.constant(value >> i & 1 == 1))
        .collect()
}

/// Bitwise two-to-one mux over buses: `sel ? b : a`.
///
/// # Panics
/// Panics if the buses differ in width.
pub fn mux_bus(nl: &mut Netlist, sel: NodeId, a: &[NodeId], b: &[NodeId]) -> Bus {
    assert_eq!(a.len(), b.len(), "mux_bus width mismatch");
    a.iter().zip(b).map(|(&x, &y)| nl.mux(sel, x, y)).collect()
}

/// Balanced AND reduction tree; depth `ceil(log2 n)`.
///
/// # Panics
/// Panics on an empty input slice.
pub fn and_tree(nl: &mut Netlist, xs: &[NodeId]) -> NodeId {
    reduce_tree(xs, &mut |a, b| nl.and(a, b))
}

/// Balanced OR reduction tree; depth `ceil(log2 n)`.
///
/// # Panics
/// Panics on an empty input slice.
pub fn or_tree(nl: &mut Netlist, xs: &[NodeId]) -> NodeId {
    reduce_tree(xs, &mut |a, b| nl.or(a, b))
}

fn reduce_tree(xs: &[NodeId], combine: &mut impl FnMut(NodeId, NodeId) -> NodeId) -> NodeId {
    assert!(!xs.is_empty(), "reduction over empty slice");
    let mut layer: Vec<NodeId> = xs.to_vec();
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        for pair in layer.chunks(2) {
            next.push(if pair.len() == 2 {
                combine(pair[0], pair[1])
            } else {
                pair[0]
            });
        }
        layer = next;
    }
    layer[0]
}

/// Bus equality comparator: XNOR per bit feeding an AND tree.
/// Depth `1 + ceil(log2 width) + 1` gates — the paper's
/// `Θ(log log L)`-after-fan-out comparator (width = `ceil(log2 L)` when
/// comparing register numbers).
///
/// # Panics
/// Panics if the buses differ in width or are empty.
pub fn eq_comparator(nl: &mut Netlist, a: &[NodeId], b: &[NodeId]) -> NodeId {
    assert_eq!(a.len(), b.len(), "comparator width mismatch");
    assert!(!a.is_empty(), "comparator over empty bus");
    let bits: Vec<NodeId> = a.iter().zip(b).map(|(&x, &y)| nl.xnor(x, y)).collect();
    and_tree(nl, &bits)
}

/// Fan a single wire out through a balanced buffer tree to `copies`
/// leaves (paper Figure 8's `F` nodes). Buffers are modelled as
/// identity gates (two serial inverters would double the constant; the
/// asymptotics are identical), implemented as OR(x, x).
pub fn fanout_tree(nl: &mut Netlist, x: NodeId, copies: usize) -> Vec<NodeId> {
    assert!(copies > 0, "fanout to zero copies");
    // Build a balanced binary tree of buffer stages: each level doubles
    // the number of drivers.
    let mut layer = vec![x];
    while layer.len() < copies {
        let mut next = Vec::with_capacity(layer.len() * 2);
        for &w in &layer {
            let b1 = nl.or(w, w);
            let b2 = nl.or(w, w);
            next.push(b1);
            next.push(b2);
            if next.len() >= copies {
                break;
            }
        }
        layer = next;
    }
    layer.truncate(copies);
    layer
}

/// Fan a whole bus out to `copies` bus replicas.
pub fn fanout_bus(nl: &mut Netlist, bus: &[NodeId], copies: usize) -> Vec<Bus> {
    let per_bit: Vec<Vec<NodeId>> = bus.iter().map(|&w| fanout_tree(nl, w, copies)).collect();
    (0..copies)
        .map(|c| per_bit.iter().map(|bits| bits[c]).collect())
        .collect()
}

/// Read a bus value from an evaluation as an integer (LSB first).
pub fn bus_value(eval: &crate::netlist::Evaluation, bus: &[NodeId]) -> u64 {
    bus.iter()
        .enumerate()
        .fold(0u64, |acc, (i, &n)| acc | (eval.value(n) as u64) << i)
}

/// Bind a bus's input values into an input-vector under construction.
///
/// `slots` must be the positions of `bus`'s wires in the netlist input
/// order; in practice buses are created with [`input_bus`] so their
/// wires are consecutive. This helper writes `value`'s bits into
/// `inputs` at the positions corresponding to `bus`'s wires, given the
/// id of the first input node of the netlist.
pub fn set_bus_value(inputs: &mut [bool], bus_first_input_index: usize, width: usize, value: u64) {
    for i in 0..width {
        inputs[bus_first_input_index + i] = value >> i & 1 == 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn const_bus_and_bus_value_roundtrip() {
        let mut nl = Netlist::new();
        let b = const_bus(&mut nl, 0b1011_0010, 8);
        let e = nl.evaluate(&[], &[]).unwrap();
        assert_eq!(bus_value(&e, &b), 0b1011_0010);
    }

    #[test]
    fn mux_bus_selects_word() {
        let mut nl = Netlist::new();
        let sel = nl.input();
        let a = const_bus(&mut nl, 0xA5, 8);
        let b = const_bus(&mut nl, 0x3C, 8);
        let m = mux_bus(&mut nl, sel, &a, &b);
        let e = nl.evaluate(&[false], &[]).unwrap();
        assert_eq!(bus_value(&e, &m), 0xA5);
        let e = nl.evaluate(&[true], &[]).unwrap();
        assert_eq!(bus_value(&e, &m), 0x3C);
    }

    #[test]
    fn and_or_trees_match_folds() {
        for n in 1..=17usize {
            for pattern in [0u32, !0u32, 0b1_1010_1010_1010_1010, 7] {
                let mut nl = Netlist::new();
                let xs: Vec<NodeId> = (0..n)
                    .map(|i| nl.constant(pattern >> (i % 32) & 1 == 1))
                    .collect();
                let at = and_tree(&mut nl, &xs);
                let ot = or_tree(&mut nl, &xs);
                let e = nl.evaluate(&[], &[]).unwrap();
                let bits: Vec<bool> = (0..n).map(|i| pattern >> (i % 32) & 1 == 1).collect();
                assert_eq!(e.value(at), bits.iter().all(|&b| b), "and n={n}");
                assert_eq!(e.value(ot), bits.iter().any(|&b| b), "or n={n}");
            }
        }
    }

    #[test]
    fn reduction_tree_depth_is_logarithmic() {
        for k in 0..8u32 {
            let n = 1usize << k;
            let mut nl = Netlist::new();
            let xs: Vec<NodeId> = (0..n).map(|_| nl.input()).collect();
            let root = and_tree(&mut nl, &xs);
            nl.mark_output(root);
            let e = nl.evaluate(&vec![true; n], &[]).unwrap();
            assert_eq!(e.max_level(), k, "n={n}");
        }
    }

    #[test]
    fn comparator_equality() {
        let mut nl = Netlist::new();
        let a = input_bus(&mut nl, 6);
        let b = input_bus(&mut nl, 6);
        let eq = eq_comparator(&mut nl, &a, &b);
        for (x, y) in [(0u64, 0u64), (5, 5), (5, 4), (63, 63), (63, 31)] {
            let mut inputs = vec![false; 12];
            set_bus_value(&mut inputs, 0, 6, x);
            set_bus_value(&mut inputs, 6, 6, y);
            let e = nl.evaluate(&inputs, &[]).unwrap();
            assert_eq!(e.value(eq), x == y, "{x} vs {y}");
        }
    }

    #[test]
    fn fanout_tree_replicates_and_has_log_depth() {
        for copies in [1usize, 2, 3, 7, 16, 33] {
            let mut nl = Netlist::new();
            let x = nl.input();
            let leaves = fanout_tree(&mut nl, x, copies);
            assert_eq!(leaves.len(), copies);
            for v in [false, true] {
                let e = nl.evaluate(&[v], &[]).unwrap();
                for &l in &leaves {
                    assert_eq!(e.value(l), v);
                    assert!(
                        e.level(l) as usize
                            <= copies.next_power_of_two().trailing_zeros() as usize + 1
                    );
                }
            }
        }
    }

    #[test]
    fn fanout_bus_replicates_words() {
        let mut nl = Netlist::new();
        let b = const_bus(&mut nl, 0x2A, 6);
        let copies = fanout_bus(&mut nl, &b, 5);
        let e = nl.evaluate(&[], &[]).unwrap();
        for c in &copies {
            assert_eq!(bus_value(&e, c), 0x2A);
        }
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_reduction_panics() {
        let mut nl = Netlist::new();
        let _ = and_tree(&mut nl, &[]);
    }
}
