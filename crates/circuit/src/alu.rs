//! Gate-level integer ALU — the datapath inside each execution station
//! (paper Figure 2: "each station includes its own functional units").
//!
//! Two adder implementations make the prefix theme concrete: the
//! carry chain of addition is itself an associative prefix computation
//! over (generate, propagate) pairs, so the same tree construction that
//! gives the CSPP datapath its `Θ(log n)` delay gives the station a
//! `Θ(log b)` adder ([`add_prefix`], Kogge–Stone style) versus the
//! `Θ(b)` ripple chain ([`add_ripple`]).
//!
//! Single-cycle operations (`add sub and or xor sll srl sra slt sltu`)
//! are built here and property-verified against the ISA semantics
//! ([`ultrascalar_isa::AluOp::apply`]); the multi-cycle multiplier and
//! divider are modelled behaviourally by the processor's latency model,
//! as the paper models them by their cycle counts.

use crate::build::{self, Bus};
use crate::netlist::{Netlist, NodeId};

/// Result of an adder: sum bits plus the carry out.
#[derive(Debug, Clone)]
pub struct AddOut {
    /// Sum bits, LSB first.
    pub sum: Bus,
    /// Carry out of the top bit.
    pub carry: NodeId,
}

/// Ripple-carry adder: `a + b + cin`, depth `Θ(bits)`.
///
/// # Panics
/// Panics if the buses differ in width or are empty.
pub fn add_ripple(nl: &mut Netlist, a: &[NodeId], b: &[NodeId], cin: NodeId) -> AddOut {
    assert_eq!(a.len(), b.len(), "adder width mismatch");
    assert!(!a.is_empty(), "adder needs at least one bit");
    let mut carry = cin;
    let mut sum = Vec::with_capacity(a.len());
    for (&x, &y) in a.iter().zip(b) {
        let xy = nl.xor(x, y);
        sum.push(nl.xor(xy, carry));
        // carry' = (x & y) | (carry & (x ^ y))
        let g = nl.and(x, y);
        let p = nl.and(carry, xy);
        carry = nl.or(g, p);
    }
    AddOut { sum, carry }
}

/// Parallel-prefix (Kogge–Stone) adder: `a + b + cin`, depth
/// `Θ(log bits)`.
///
/// The carry into bit `i` is the prefix combination of the
/// (generate, propagate) pairs of bits `0..i` under the associative
/// operator `(g₂,p₂) ∘ (g₁,p₁) = (g₂ ∨ p₂g₁, p₂p₁)` — the same
/// segmented-scan machinery as the register datapath, instantiated in
/// gates.
///
/// # Panics
/// Panics if the buses differ in width or are empty.
pub fn add_prefix(nl: &mut Netlist, a: &[NodeId], b: &[NodeId], cin: NodeId) -> AddOut {
    assert_eq!(a.len(), b.len(), "adder width mismatch");
    assert!(!a.is_empty(), "adder needs at least one bit");
    let bits = a.len();
    // Per-bit generate/propagate.
    let mut g: Vec<NodeId> = Vec::with_capacity(bits);
    let mut p: Vec<NodeId> = Vec::with_capacity(bits);
    for (&x, &y) in a.iter().zip(b) {
        g.push(nl.and(x, y));
        p.push(nl.xor(x, y));
    }
    let p_orig = p.clone();
    // Kogge–Stone inclusive scan over (g, p).
    let mut dist = 1usize;
    while dist < bits {
        let (mut g2, mut p2) = (g.clone(), p.clone());
        for i in dist..bits {
            // (g,p)[i] ∘ (g,p)[i-dist]
            let t = nl.and(p[i], g[i - dist]);
            g2[i] = nl.or(g[i], t);
            p2[i] = nl.and(p[i], p[i - dist]);
        }
        g = g2;
        p = p2;
        dist *= 2;
    }
    // carry into bit i = G[i-1] | (P[i-1] & cin); carry into bit 0 = cin.
    let mut carries = Vec::with_capacity(bits + 1);
    carries.push(cin);
    for i in 0..bits {
        let t = nl.and(p[i], cin);
        carries.push(nl.or(g[i], t));
    }
    let sum: Bus = (0..bits).map(|i| nl.xor(p_orig[i], carries[i])).collect();
    AddOut {
        sum,
        carry: carries[bits],
    }
}

/// Two's-complement subtractor `a - b` via `a + !b + 1`, prefix carry
/// chain. The carry out is the *not-borrow* (i.e. `a >= b` unsigned).
pub fn sub_prefix(nl: &mut Netlist, a: &[NodeId], b: &[NodeId]) -> AddOut {
    let nb: Bus = b.iter().map(|&x| nl.not(x)).collect();
    let one = nl.constant(true);
    add_prefix(nl, a, &nb, one)
}

/// Logarithmic barrel shifter. `amount` is a bus of
/// `ceil(log2 bits)` select lines (the ISA masks shift amounts to the
/// word size, so higher bits of the amount are ignored by callers).
///
/// `right` selects direction; `arith` (only meaningful with `right`)
/// fills with the sign bit.
pub fn barrel_shift(
    nl: &mut Netlist,
    value: &[NodeId],
    amount: &[NodeId],
    right: bool,
    arith: bool,
) -> Bus {
    assert!(!value.is_empty(), "shifter needs at least one bit");
    let bits = value.len();
    let fill_sign = *value.last().expect("non-empty");
    let zero = nl.constant(false);
    let mut cur: Bus = value.to_vec();
    for (stage, &sel) in amount.iter().enumerate() {
        let shift = 1usize << stage;
        if shift >= bits {
            // Shifting by >= bits: result all-fill if selected.
            let fill = if right && arith { fill_sign } else { zero };
            cur = cur.iter().map(|&w| nl.mux(sel, w, fill)).collect();
            continue;
        }
        let mut shifted = Vec::with_capacity(bits);
        for i in 0..bits {
            let src = if right {
                if i + shift < bits {
                    cur[i + shift]
                } else if arith {
                    fill_sign
                } else {
                    zero
                }
            } else if i >= shift {
                cur[i - shift]
            } else {
                zero
            };
            shifted.push(src);
        }
        cur = (0..bits).map(|i| nl.mux(sel, cur[i], shifted[i])).collect();
    }
    cur
}

/// The station ALU's single-cycle operation selector, mirroring
/// [`ultrascalar_isa::AluOp`] for the non-multiplicative ops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateAluOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Shift left logical.
    Sll,
    /// Shift right logical.
    Srl,
    /// Shift right arithmetic.
    Sra,
    /// Set-less-than signed.
    Slt,
    /// Set-less-than unsigned.
    Sltu,
}

impl GateAluOp {
    /// All single-cycle ops.
    pub const ALL: [GateAluOp; 10] = [
        GateAluOp::Add,
        GateAluOp::Sub,
        GateAluOp::And,
        GateAluOp::Or,
        GateAluOp::Xor,
        GateAluOp::Sll,
        GateAluOp::Srl,
        GateAluOp::Sra,
        GateAluOp::Slt,
        GateAluOp::Sltu,
    ];

    /// The corresponding ISA operation.
    pub fn isa_op(self) -> ultrascalar_isa::AluOp {
        use ultrascalar_isa::AluOp as I;
        match self {
            GateAluOp::Add => I::Add,
            GateAluOp::Sub => I::Sub,
            GateAluOp::And => I::And,
            GateAluOp::Or => I::Or,
            GateAluOp::Xor => I::Xor,
            GateAluOp::Sll => I::Sll,
            GateAluOp::Srl => I::Srl,
            GateAluOp::Sra => I::Sra,
            GateAluOp::Slt => I::Slt,
            GateAluOp::Sltu => I::Sltu,
        }
    }
}

/// A complete single-cycle station ALU: fixed operation, two input
/// buses, one output bus. (The station's decode logic selects which
/// unit drives the result; building one unit per op keeps depth
/// measurements per-op.)
pub fn alu(nl: &mut Netlist, op: GateAluOp, a: &[NodeId], b: &[NodeId]) -> Bus {
    assert_eq!(a.len(), b.len(), "ALU width mismatch");
    let bits = a.len();
    let log_bits = (usize::BITS - (bits.max(2) - 1).leading_zeros()) as usize;
    match op {
        GateAluOp::Add => {
            let zero = nl.constant(false);
            add_prefix(nl, a, b, zero).sum
        }
        GateAluOp::Sub => sub_prefix(nl, a, b).sum,
        GateAluOp::And => a.iter().zip(b).map(|(&x, &y)| nl.and(x, y)).collect(),
        GateAluOp::Or => a.iter().zip(b).map(|(&x, &y)| nl.or(x, y)).collect(),
        GateAluOp::Xor => a.iter().zip(b).map(|(&x, &y)| nl.xor(x, y)).collect(),
        GateAluOp::Sll | GateAluOp::Srl | GateAluOp::Sra => {
            let amount: Bus = b[..log_bits.min(bits)].to_vec();
            barrel_shift(
                nl,
                a,
                &amount,
                !matches!(op, GateAluOp::Sll),
                matches!(op, GateAluOp::Sra),
            )
        }
        GateAluOp::Slt | GateAluOp::Sltu => {
            // a < b  ⇔  borrow out of a - b, with sign correction for
            // the signed compare: signed_lt = (a<b unsigned) ^ sa ^ sb.
            let diff = sub_prefix(nl, a, b);
            let ltu = nl.not(diff.carry); // borrow
            let bit = match op {
                GateAluOp::Sltu => ltu,
                _ => {
                    let sa = a[bits - 1];
                    let sb = b[bits - 1];
                    let x = nl.xor(sa, sb);
                    nl.xor(ltu, x)
                }
            };
            let zero = nl.constant(false);
            let mut out = vec![zero; bits];
            out[0] = bit;
            out
        }
    }
}

/// Convenience: measure the settled depth of one ALU op at a width,
/// over a given pair of operands.
pub fn measure_depth(op: GateAluOp, bits: usize, a: u64, b: u64) -> u32 {
    let mut nl = Netlist::new();
    let ab = build::input_bus(&mut nl, bits);
    let bb = build::input_bus(&mut nl, bits);
    let out = alu(&mut nl, op, &ab, &bb);
    for &w in &out {
        nl.mark_output(w);
    }
    let mut inputs = vec![false; nl.num_inputs()];
    for i in 0..bits {
        inputs[i] = a >> i & 1 == 1;
        inputs[bits + i] = b >> i & 1 == 1;
    }
    nl.evaluate(&inputs, &[]).expect("ALU settles").max_level()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{bus_value, input_bus};

    fn run_alu(op: GateAluOp, bits: usize, a: u64, b: u64) -> u64 {
        let mut nl = Netlist::new();
        let ab = input_bus(&mut nl, bits);
        let bb = input_bus(&mut nl, bits);
        let out = alu(&mut nl, op, &ab, &bb);
        let mut inputs = vec![false; 2 * bits];
        for i in 0..bits {
            inputs[i] = a >> i & 1 == 1;
            inputs[bits + i] = b >> i & 1 == 1;
        }
        let e = nl.evaluate(&inputs, &[]).unwrap();
        bus_value(&e, &out)
    }

    #[test]
    fn adders_agree_with_arithmetic() {
        for (a, b) in [(0u64, 0u64), (1, 1), (255, 1), (170, 85), (200, 99)] {
            for cin in [false, true] {
                let mut nl = Netlist::new();
                let ab = input_bus(&mut nl, 8);
                let bb = input_bus(&mut nl, 8);
                let c = nl.constant(cin);
                let r = add_ripple(&mut nl, &ab, &bb, c);
                let p = add_prefix(&mut nl, &ab, &bb, c);
                let mut inputs = vec![false; 16];
                for i in 0..8 {
                    inputs[i] = a >> i & 1 == 1;
                    inputs[8 + i] = b >> i & 1 == 1;
                }
                let e = nl.evaluate(&inputs, &[]).unwrap();
                let expect = a + b + cin as u64;
                assert_eq!(bus_value(&e, &r.sum), expect & 0xFF, "ripple {a}+{b}");
                assert_eq!(e.value(r.carry), expect > 0xFF, "ripple carry");
                assert_eq!(bus_value(&e, &p.sum), expect & 0xFF, "prefix {a}+{b}");
                assert_eq!(e.value(p.carry), expect > 0xFF, "prefix carry");
            }
        }
    }

    #[test]
    fn prefix_adder_is_logarithmic_ripple_linear() {
        // Worst-case carry propagation: a = all ones, b = 1.
        let depth = |bits: usize, prefix: bool| -> u32 {
            let mut nl = Netlist::new();
            let ab = input_bus(&mut nl, bits);
            let bb = input_bus(&mut nl, bits);
            let c = nl.constant(false);
            let out = if prefix {
                add_prefix(&mut nl, &ab, &bb, c)
            } else {
                add_ripple(&mut nl, &ab, &bb, c)
            };
            for &w in &out.sum {
                nl.mark_output(w);
            }
            nl.mark_output(out.carry);
            let mut inputs = vec![false; 2 * bits];
            inputs[..bits].fill(true); // a = all ones
            inputs[bits] = true; // b = 1
            nl.evaluate(&inputs, &[]).unwrap().max_level()
        };
        let r16 = depth(16, false);
        let r64 = depth(64, false);
        assert!(r64 >= r16 + 80, "ripple must be linear: {r16} → {r64}");
        let p16 = depth(16, true);
        let p64 = depth(64, true);
        assert!(p64 <= p16 + 8, "prefix must be logarithmic: {p16} → {p64}");
        assert!(p64 < r64 / 4, "prefix beats ripple at 64 bits");
    }

    #[test]
    fn all_ops_match_isa_semantics_samples() {
        let samples = [
            (0u32, 0u32),
            (1, 2),
            (u32::MAX, 1),
            (0x8000_0000, 31),
            (0xDEAD_BEEF, 0xFEED_FACE),
            (7, 32),
            (u32::MAX, u32::MAX),
        ];
        for op in GateAluOp::ALL {
            for &(a, b) in &samples {
                let got = run_alu(op, 32, a as u64, b as u64) as u32;
                let want = op.isa_op().apply(a, b);
                assert_eq!(got, want, "{op:?}({a:#x}, {b:#x})");
            }
        }
    }

    #[test]
    fn shifts_at_small_widths() {
        // 4-bit shifts exercise the amount-overflow stage.
        for a in 0..16u64 {
            for b in 0..4u64 {
                assert_eq!(run_alu(GateAluOp::Sll, 4, a, b), (a << b) & 0xF, "{a}<<{b}");
                assert_eq!(run_alu(GateAluOp::Srl, 4, a, b), a >> b, "{a}>>{b}");
            }
        }
    }

    #[test]
    fn comparisons_exhaustive_4bit() {
        for a in 0..16u64 {
            for b in 0..16u64 {
                let sa = ((a as i64) << 60) >> 60; // sign-extend 4 bits
                let sb = ((b as i64) << 60) >> 60;
                assert_eq!(run_alu(GateAluOp::Sltu, 4, a, b) != 0, a < b, "{a} ltu {b}");
                assert_eq!(run_alu(GateAluOp::Slt, 4, a, b) != 0, sa < sb, "{a} lt {b}");
            }
        }
    }

    #[test]
    fn measure_depth_reports_positive_depths() {
        let d = measure_depth(GateAluOp::Add, 32, u32::MAX as u64, 1);
        assert!(d > 0 && d < 40, "32-bit prefix add depth {d}");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::build::{bus_value, input_bus};
    use proptest::prelude::*;

    fn eval_op(op: GateAluOp, a: u32, b: u32) -> u32 {
        let mut nl = Netlist::new();
        let ab = input_bus(&mut nl, 32);
        let bb = input_bus(&mut nl, 32);
        let out = alu(&mut nl, op, &ab, &bb);
        let mut inputs = vec![false; 64];
        for i in 0..32 {
            inputs[i] = a >> i & 1 == 1;
            inputs[32 + i] = b >> i & 1 == 1;
        }
        let e = nl.evaluate(&inputs, &[]).unwrap();
        bus_value(&e, &out) as u32
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn gate_alu_matches_isa(a in any::<u32>(), b in any::<u32>(), opi in 0usize..10) {
            let op = GateAluOp::ALL[opi];
            prop_assert_eq!(eval_op(op, a, b), op.isa_op().apply(a, b));
        }

        #[test]
        fn adders_agree_with_each_other(a in any::<u32>(), b in any::<u32>()) {
            let mut nl = Netlist::new();
            let ab = input_bus(&mut nl, 32);
            let bb = input_bus(&mut nl, 32);
            let z = nl.constant(false);
            let r = add_ripple(&mut nl, &ab, &bb, z);
            let p = add_prefix(&mut nl, &ab, &bb, z);
            let mut inputs = vec![false; 64];
            for i in 0..32 {
                inputs[i] = a >> i & 1 == 1;
                inputs[32 + i] = b >> i & 1 == 1;
            }
            let e = nl.evaluate(&inputs, &[]).unwrap();
            prop_assert_eq!(bus_value(&e, &r.sum), bus_value(&e, &p.sum));
            prop_assert_eq!(e.value(r.carry), e.value(p.carry));
        }
    }
}
