//! Gate-level substrate: netlists, constructive evaluation, unit-delay
//! timing, and generators for the paper's circuit structures.
//!
//! The paper's scalability claims are *gate-depth* claims — `Θ(n)` for
//! the mux-ring datapath of Figure 1, `Θ(log n)` for the CSPP tree of
//! Figure 4, `Θ(n + L)` for the linear Ultrascalar II grid of Figure 7,
//! `Θ(log(n + L))` for its mesh-of-trees refinement (Figure 8). This
//! crate makes those claims *measurable*: it builds the actual gate
//! networks and reports the settled depth of every evaluation.
//!
//! * [`netlist`] — a structural netlist of two-input gates, muxes and
//!   latches, with a **constructive three-valued, event-driven
//!   evaluator**. Combinational *cycles are allowed* (the Ultrascalar
//!   mux rings and the tied-together tree tops are genuinely cyclic);
//!   an evaluation succeeds iff every node settles monotonically, which
//!   is exactly the condition under which the real hardware settles.
//!   Each node records the unit-delay *level* at which it settled, so
//!   `max_level` is the critical-path gate delay for that input vector.
//! * [`build`] — bus-level combinators (word muxes, equality
//!   comparators, AND/OR reduction trees, fan-out trees).
//! * [`generators`] — the paper's structures: per-register mux ring,
//!   CSPP tree (bool and bus), the Ultrascalar II column search in both
//!   linear and tree form, and a complete small Ultrascalar II register
//!   datapath.
//!
//! Property tests pin every generator to its algorithmic model in
//! `ultrascalar-prefix`.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod alu;
pub mod build;
pub mod generators;
pub mod netlist;

pub use netlist::{EvalError, Evaluation, Gate, Netlist, NodeId};
