//! Interleaved memory banks.
//!
//! Words are interleaved across banks by low address bits (word `a`
//! lives in bank `a mod banks`), the classic layout that spreads
//! sequential accesses evenly. Each bank accepts one access per
//! `bank_occupancy` cycles.

/// Banked, word-addressed storage with per-bank occupancy tracking.
#[derive(Debug, Clone)]
pub struct BankedMemory {
    words: Vec<u32>,
    banks: usize,
    /// The first cycle at which each bank is free again.
    free_at: Vec<u64>,
    /// Cycles a bank stays busy per access.
    occupancy: u64,
    /// Total accesses performed.
    pub accesses: u64,
    /// Accesses that found their bank busy (retried by the caller).
    pub bank_conflicts: u64,
}

impl BankedMemory {
    /// Create `words` words of zeroed storage across `banks` banks.
    ///
    /// # Panics
    /// Panics if `banks == 0` or `words == 0`.
    pub fn new(words: usize, banks: usize, occupancy: u64) -> Self {
        assert!(banks > 0, "need at least one bank");
        assert!(words > 0, "need at least one word");
        BankedMemory {
            words: vec![0; words],
            banks,
            free_at: vec![0; banks],
            occupancy: occupancy.max(1),
            accesses: 0,
            bank_conflicts: 0,
        }
    }

    /// Rewind to the as-constructed state in place (no allocation):
    /// storage re-zeroed then loaded with `image`, every bank free at
    /// cycle 0, counters cleared. Word and bank counts are unchanged.
    ///
    /// # Panics
    /// Panics if the image exceeds the memory size.
    pub fn reset(&mut self, image: &[u32]) {
        self.words.fill(0);
        self.load_image(image);
        self.free_at.fill(0);
        self.accesses = 0;
        self.bank_conflicts = 0;
    }

    /// Load an initial image starting at word 0.
    ///
    /// # Panics
    /// Panics if the image exceeds the memory size.
    pub fn load_image(&mut self, image: &[u32]) {
        assert!(image.len() <= self.words.len(), "image larger than memory");
        self.words[..image.len()].copy_from_slice(image);
    }

    /// Number of words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True iff the memory has no words (never; the constructor forbids
    /// it).
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Number of banks.
    pub fn banks(&self) -> usize {
        self.banks
    }

    /// The bank holding word `addr`.
    #[inline]
    pub fn bank_of(&self, addr: usize) -> usize {
        addr % self.banks
    }

    /// Is `addr`'s bank free at `now`?
    #[inline]
    pub fn bank_free(&self, addr: usize, now: u64) -> bool {
        self.free_at[self.bank_of(addr % self.words.len())] <= now
    }

    /// Perform an access at `now`: returns the loaded value (for loads)
    /// and occupies the bank. The caller must have checked
    /// [`BankedMemory::bank_free`]; a busy bank is counted as a conflict
    /// and the access is refused with `None`… except stores, which the
    /// caller must only issue when free.
    pub fn access(&mut self, addr: usize, store: Option<u32>, now: u64) -> Option<u32> {
        let addr = addr % self.words.len();
        let bank = self.bank_of(addr);
        if self.free_at[bank] > now {
            self.bank_conflicts += 1;
            return None;
        }
        self.free_at[bank] = now + self.occupancy;
        self.accesses += 1;
        match store {
            Some(v) => {
                self.words[addr] = v;
                Some(v)
            }
            None => Some(self.words[addr]),
        }
    }

    /// Debug/architectural read without occupying a bank.
    #[inline]
    pub fn peek(&self, addr: usize) -> u32 {
        self.words[addr % self.words.len()]
    }

    /// Debug/architectural write without occupying a bank.
    #[inline]
    pub fn poke(&mut self, addr: usize, v: u32) {
        let n = self.words.len();
        self.words[addr % n] = v;
    }

    /// The full architectural contents (for end-of-run comparison with
    /// the golden interpreter).
    pub fn snapshot(&self) -> &[u32] {
        &self.words
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interleaving_maps_addresses_round_robin() {
        let m = BankedMemory::new(64, 8, 1);
        for a in 0..64 {
            assert_eq!(m.bank_of(a), a % 8);
        }
    }

    #[test]
    fn read_write_roundtrip() {
        let mut m = BankedMemory::new(16, 4, 1);
        assert_eq!(m.access(5, Some(42), 0), Some(42));
        assert_eq!(m.access(5, None, 1), Some(42));
        assert_eq!(m.peek(5), 42);
    }

    #[test]
    fn bank_occupancy_blocks_same_bank() {
        let mut m = BankedMemory::new(16, 4, 3);
        assert!(m.access(0, None, 0).is_some());
        // Same bank (addr 4 ≡ 0 mod 4) is busy for 3 cycles.
        assert!(m.access(4, None, 0).is_none());
        assert!(m.access(4, None, 2).is_none());
        assert!(m.access(4, None, 3).is_some());
        // A different bank is unaffected.
        let mut m = BankedMemory::new(16, 4, 3);
        assert!(m.access(0, None, 0).is_some());
        assert!(m.access(1, None, 0).is_some());
        assert_eq!(m.bank_conflicts, 0);
    }

    #[test]
    fn conflicts_are_counted() {
        let mut m = BankedMemory::new(16, 1, 2);
        assert!(m.access(0, None, 0).is_some());
        assert!(m.access(7, None, 0).is_none());
        assert!(m.access(3, None, 1).is_none());
        assert_eq!(m.bank_conflicts, 2);
        assert_eq!(m.accesses, 1);
    }

    #[test]
    fn addresses_wrap() {
        let mut m = BankedMemory::new(8, 2, 1);
        m.poke(9, 77); // wraps to 1
        assert_eq!(m.peek(1), 77);
        assert_eq!(m.access(17, None, 0), Some(77)); // 17 mod 8 = 1
    }

    #[test]
    fn image_loading() {
        let mut m = BankedMemory::new(8, 2, 1);
        m.load_image(&[1, 2, 3]);
        assert_eq!(&m.snapshot()[..3], &[1, 2, 3]);
        assert_eq!(m.snapshot()[3], 0);
    }

    #[test]
    #[should_panic(expected = "image larger")]
    fn oversized_image_rejected() {
        let mut m = BankedMemory::new(2, 1, 1);
        m.load_image(&[0; 3]);
    }
}
