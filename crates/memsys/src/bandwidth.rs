//! The paper's memory-bandwidth family `M(n) = c · n^p`.
//!
//! The complexity results of Figure 11 split on the exponent:
//!
//! * `M(n) = O(n^(1/2−ε))` — bandwidth is asymptotically free (Case 1);
//! * `M(n) = Θ(n^(1/2))`  — the knife edge (Case 2);
//! * `M(n) = Ω(n^(1/2+ε))` — bandwidth dominates the layout (Case 3);
//!
//! with the regularity requirement `M(n/4) ≤ c·M(n)/2` for Case 3.

/// A bandwidth function `M(s) = coeff · s^exponent`, clamped to
/// `[1, s]` (a subtree always gets at least one port, and it is
/// pointless to provide more ports than stations — the paper assumes
/// `M(n) = O(n)`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bandwidth {
    /// Multiplier `c`.
    pub coeff: f64,
    /// Exponent `p` (0 ≤ p ≤ 1).
    pub exponent: f64,
}

impl Bandwidth {
    /// `M(n) = c · n^p`.
    ///
    /// # Panics
    /// Panics unless `c > 0` and `0 ≤ p ≤ 1`.
    pub fn new(coeff: f64, exponent: f64) -> Self {
        assert!(coeff > 0.0, "bandwidth coefficient must be positive");
        assert!(
            (0.0..=1.0).contains(&exponent),
            "bandwidth exponent must lie in [0, 1] (the paper assumes M(n) = O(n))"
        );
        Bandwidth { coeff, exponent }
    }

    /// Constant bandwidth `M(n) = c` (the paper's Magic layout left
    /// space for `M(n) = Θ(1)`).
    pub fn constant(c: f64) -> Self {
        Bandwidth::new(c, 0.0)
    }

    /// Case 1: `M(n) = n^(1/2 − ε)`.
    pub fn sublinear_sqrt(eps: f64) -> Self {
        Bandwidth::new(1.0, (0.5 - eps).max(0.0))
    }

    /// Case 2: `M(n) = n^(1/2)`.
    pub fn sqrt() -> Self {
        Bandwidth::new(1.0, 0.5)
    }

    /// Case 3: `M(n) = n^(1/2 + ε)`.
    pub fn superlinear_sqrt(eps: f64) -> Self {
        Bandwidth::new(1.0, (0.5 + eps).min(1.0))
    }

    /// Full bandwidth `M(n) = n`.
    pub fn full() -> Self {
        Bandwidth::new(1.0, 1.0)
    }

    /// Raw value `c · s^p` before clamping.
    pub fn raw(&self, s: f64) -> f64 {
        self.coeff * s.powf(self.exponent)
    }

    /// `M(s)` clamped to `[1, s]`, as a float.
    pub fn eval(&self, s: usize) -> f64 {
        self.raw(s as f64).clamp(1.0, s as f64)
    }

    /// Integer link capacity `⌈M(s)⌉` for a subtree of `s` leaves.
    pub fn capacity(&self, s: usize) -> usize {
        if s == 0 {
            return 0;
        }
        (self.eval(s).ceil() as usize).clamp(1, s)
    }

    /// Which of the paper's Figure 11 regimes this function falls in.
    pub fn regime(&self) -> Regime {
        if self.exponent < 0.5 {
            Regime::BelowSqrt
        } else if self.exponent == 0.5 {
            Regime::Sqrt
        } else {
            Regime::AboveSqrt
        }
    }

    /// The paper's regularity requirement for Case 3:
    /// `M(n/4) ≤ c · M(n)/2` for some constant `c` and all large `n`.
    /// For `M(n) = c·n^p` this holds with constant `4^{-p}·2 ≤ 2`, i.e.
    /// always; the check is exposed (numerically, at a given `n`) for
    /// documentation and tests.
    pub fn is_regular_at(&self, n: usize, c: f64) -> bool {
        if n < 4 {
            return true;
        }
        self.raw((n / 4) as f64) <= c * self.raw(n as f64) / 2.0
    }
}

/// The paper's three bandwidth regimes (rows of Figure 11).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Regime {
    /// `M(n) = O(n^(1/2−ε))`.
    BelowSqrt,
    /// `M(n) = Θ(n^(1/2))`.
    Sqrt,
    /// `M(n) = Ω(n^(1/2+ε))`.
    AboveSqrt,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_and_capacity_clamped() {
        let b = Bandwidth::sqrt();
        assert_eq!(b.capacity(16), 4);
        assert_eq!(b.capacity(1), 1);
        assert_eq!(b.capacity(0), 0);
        // Clamp above: huge coefficient cannot exceed s.
        let b = Bandwidth::new(100.0, 0.5);
        assert_eq!(b.capacity(16), 16);
        // Clamp below: tiny coefficient still gets one port.
        let b = Bandwidth::new(0.001, 0.0);
        assert_eq!(b.capacity(64), 1);
    }

    #[test]
    fn full_bandwidth_is_identity() {
        let b = Bandwidth::full();
        for s in [1usize, 4, 16, 256] {
            assert_eq!(b.capacity(s), s);
        }
    }

    #[test]
    fn regimes_classified() {
        assert_eq!(Bandwidth::sublinear_sqrt(0.1).regime(), Regime::BelowSqrt);
        assert_eq!(Bandwidth::sqrt().regime(), Regime::Sqrt);
        assert_eq!(Bandwidth::superlinear_sqrt(0.1).regime(), Regime::AboveSqrt);
        assert_eq!(Bandwidth::constant(2.0).regime(), Regime::BelowSqrt);
        assert_eq!(Bandwidth::full().regime(), Regime::AboveSqrt);
    }

    #[test]
    fn power_laws_are_regular() {
        for b in [
            Bandwidth::sublinear_sqrt(0.2),
            Bandwidth::sqrt(),
            Bandwidth::superlinear_sqrt(0.2),
            Bandwidth::full(),
        ] {
            for n in [4usize, 64, 1024, 1 << 16] {
                assert!(b.is_regular_at(n, 2.0), "{b:?} at {n}");
            }
        }
    }

    #[test]
    fn monotone_in_subtree_size() {
        let b = Bandwidth::sqrt();
        let mut prev = 0;
        for s in 1..200usize {
            let c = b.capacity(s);
            assert!(c >= prev);
            prev = c;
        }
    }

    #[test]
    #[should_panic(expected = "exponent")]
    fn superlinear_rejected() {
        let _ = Bandwidth::new(1.0, 1.5);
    }
}
