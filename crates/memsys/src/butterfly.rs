//! Butterfly network contention model — the paper's alternative to the
//! fat tree ("we propose to connect the Ultrascalar I datapath to an
//! interleaved data cache and to an instruction trace cache via two
//! fat-tree or butterfly networks \[Leiserson\]").
//!
//! A radix-2 butterfly over `n` padded positions: `log₂ n` stages of
//! 2×2 switches, destination-bit steering (at stage `s` the path sets
//! bit `s` of the current position to bit `s` of the destination).
//! Every stage wire carries at most one request per cycle, so the
//! network offers full aggregate bandwidth but *blocks* on conflicting
//! paths — the classic trade-off against the fat tree's guaranteed
//! (but pre-provisioned) subtree capacities.
//!
//! Memory ports sit on the far side: a request's destination position
//! is its target bank's port, `port · (n / ports)`, where the port
//! count is the bandwidth profile's root capacity `⌈M(n)⌉`.

use crate::bandwidth::Bandwidth;
use ultrascalar_prefix::packed::BitWords;

/// Per-cycle butterfly admission control.
#[derive(Debug, Clone)]
pub struct Butterfly {
    /// Padded position count (power of two ≥ leaves).
    n: usize,
    stages: usize,
    ports: usize,
    /// `used[s]` bit `q`: the wire entering position `q` after stage
    /// `s` is taken this cycle. Packed so `begin_cycle` clears 64
    /// wires per word instead of one `bool` at a time.
    used: Vec<BitWords>,
    /// Requests admitted in total.
    pub admitted: u64,
    /// Requests refused because a stage wire was taken.
    pub conflicts: u64,
}

impl Butterfly {
    /// Build a butterfly for `n_leaves` stations with far-side port
    /// count `⌈M(n)⌉` from the bandwidth profile.
    ///
    /// # Panics
    /// Panics if `n_leaves == 0`.
    pub fn new(n_leaves: usize, bw: Bandwidth) -> Self {
        assert!(n_leaves > 0, "butterfly needs at least one leaf");
        let n = n_leaves.next_power_of_two();
        let stages = n.trailing_zeros() as usize;
        let ports = bw.capacity(n_leaves).max(1);
        Butterfly {
            n,
            stages,
            ports,
            used: vec![BitWords::new(n); stages.max(1)],
            admitted: 0,
            conflicts: 0,
        }
    }

    /// Switching stages a request traverses.
    pub fn stages(&self) -> usize {
        self.stages
    }

    /// Far-side memory ports.
    pub fn ports(&self) -> usize {
        self.ports
    }

    /// Far-side position serving a given word address.
    pub fn dest_of(&self, addr: usize) -> usize {
        let port = addr % self.ports;
        port * (self.n / self.ports.min(self.n))
    }

    /// Reset per-cycle wire usage (one word write per 64 wires).
    pub fn begin_cycle(&mut self) {
        for stage in &mut self.used {
            stage.clear();
        }
    }

    /// Rewind to the as-constructed state for a new run: wires freed,
    /// statistics cleared. Allocation-free.
    pub fn reset(&mut self) {
        self.begin_cycle();
        self.admitted = 0;
        self.conflicts = 0;
    }

    /// Try to route from `leaf` to the port serving `addr` this cycle.
    /// Consumes the path's stage wires on success; consumes nothing on
    /// failure.
    ///
    /// # Panics
    /// Panics if `leaf >= n` (padded size).
    pub fn try_route(&mut self, leaf: usize, addr: usize) -> bool {
        assert!(leaf < self.n, "leaf out of range");
        let dest = self.dest_of(addr);
        // Compute the path: after stage s, bit s of the position equals
        // bit s of the destination. The position count is a usize, so
        // a stack array of one slot per possible stage covers every
        // network — this sits on the per-request hot path and must not
        // allocate.
        let mut pos = leaf;
        let mut path = [0usize; usize::BITS as usize];
        for (s, slot) in path[..self.stages].iter_mut().enumerate() {
            let bit = 1usize << s;
            pos = (pos & !bit) | (dest & bit);
            *slot = pos;
        }
        debug_assert!(self.stages == 0 || pos == dest);
        for (s, &q) in path[..self.stages].iter().enumerate() {
            if self.used[s].get(q) {
                self.conflicts += 1;
                return false;
            }
        }
        for (s, &q) in path[..self.stages].iter().enumerate() {
            self.used[s].set(q);
        }
        self.admitted += 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_routing_all_pass() {
        // Each leaf to its own position's port: with full bandwidth the
        // identity permutation is conflict-free.
        let mut b = Butterfly::new(8, Bandwidth::full());
        b.begin_cycle();
        for leaf in 0..8 {
            assert!(b.try_route(leaf, leaf), "leaf {leaf}");
        }
        assert_eq!(b.admitted, 8);
        assert_eq!(b.conflicts, 0);
    }

    #[test]
    fn single_port_serialises() {
        // Everyone to the same address: one admission per cycle.
        let mut b = Butterfly::new(8, Bandwidth::full());
        b.begin_cycle();
        let admitted = (0..8).filter(|&l| b.try_route(l, 5)).count();
        assert_eq!(admitted, 1);
        assert!(b.conflicts > 0);
        b.begin_cycle();
        assert!(b.try_route(7, 5));
    }

    #[test]
    fn failed_route_consumes_nothing() {
        let mut b = Butterfly::new(4, Bandwidth::full());
        b.begin_cycle();
        assert!(b.try_route(0, 0));
        assert!(!b.try_route(1, 0)); // same dest: paths collide en route
                                     // A different destination from leaf 1 still works if its path
                                     // is clear.
        assert!(b.try_route(1, 1));
    }

    #[test]
    fn ports_follow_bandwidth_profile() {
        let b = Butterfly::new(16, Bandwidth::sqrt());
        assert_eq!(b.ports(), 4);
        // Destinations spread across the far side.
        let dests: std::collections::HashSet<usize> = (0..16).map(|a| b.dest_of(a)).collect();
        assert_eq!(dests.len(), 4);
    }

    #[test]
    fn distinct_ports_mostly_parallel() {
        // 8 leaves to 8 distinct ports in a permutation that the
        // butterfly can realise: leaf i → port i (identity) works; the
        // bit-reversal permutation famously blocks — check both
        // behaviours exist.
        let mut b = Butterfly::new(8, Bandwidth::full());
        b.begin_cycle();
        let ok = (0..8).filter(|&l| b.try_route(l, l)).count();
        assert_eq!(ok, 8);

        let mut b = Butterfly::new(8, Bandwidth::full());
        b.begin_cycle();
        let rev = |x: usize| ((x & 1) << 2) | (x & 2) | ((x & 4) >> 2);
        let ok = (0..8).filter(|&l| b.try_route(l, rev(l))).count();
        assert!(ok < 8, "bit reversal must block a radix-2 butterfly");
        assert!(ok >= 2);
    }

    #[test]
    fn single_leaf_degenerate() {
        let mut b = Butterfly::new(1, Bandwidth::full());
        assert_eq!(b.stages(), 0);
        b.begin_cycle();
        assert!(b.try_route(0, 99));
    }

    #[test]
    #[should_panic(expected = "leaf out of range")]
    fn leaf_bounds_checked() {
        let mut b = Butterfly::new(4, Bandwidth::full());
        b.begin_cycle();
        let _ = b.try_route(9, 0);
    }
}
