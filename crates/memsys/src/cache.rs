//! Distributed per-cluster caches (§7): "One way to reduce the
//! bandwidth requirements may be to use a cache distributed among the
//! clusters."
//!
//! Each group of stations (a cluster) owns a small direct-mapped,
//! word-granular cache in front of the fat-tree/butterfly network.
//! Loads that hit are served locally and never enter the network;
//! stores are write-through with *write-update* of every group's
//! matching line. Because the processors only issue stores
//! non-speculatively and in order, updates are architectural and the
//! invariant "a cached word always equals memory" holds at every
//! cycle — which is what makes the speculative wrong-path loads that
//! fill the cache harmless.

/// Configuration of the distributed caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of cache groups (one per cluster).
    pub groups: usize,
    /// Direct-mapped lines per group (one word per line).
    pub lines: usize,
    /// Cycles from a hit to the response.
    pub hit_latency: u64,
}

impl CacheConfig {
    /// A small default: `groups` caches of 64 words, 1-cycle hits.
    pub fn small(groups: usize) -> Self {
        CacheConfig {
            groups: groups.max(1),
            lines: 64,
            hit_latency: 1,
        }
    }
}

/// The distributed cache state.
#[derive(Debug, Clone)]
pub struct ClusterCaches {
    cfg: CacheConfig,
    /// `tags[g][line]` = cached word address.
    tags: Vec<Vec<Option<usize>>>,
    data: Vec<Vec<u32>>,
    /// Load hits served locally.
    pub hits: u64,
    /// Load misses that went to the network.
    pub misses: u64,
}

impl ClusterCaches {
    /// Build empty caches.
    ///
    /// # Panics
    /// Panics if `groups == 0` or `lines == 0`.
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(cfg.groups > 0, "need at least one cache group");
        assert!(cfg.lines > 0, "need at least one line");
        ClusterCaches {
            cfg,
            tags: vec![vec![None; cfg.lines]; cfg.groups],
            data: vec![vec![0; cfg.lines]; cfg.groups],
            hits: 0,
            misses: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Rewind to the as-constructed state in place (no allocation):
    /// every line invalidated, counters cleared. Data words may keep
    /// stale values — a `None` tag makes them unreachable.
    pub fn reset(&mut self) {
        for group in &mut self.tags {
            group.fill(None);
        }
        self.hits = 0;
        self.misses = 0;
    }

    /// Which group serves a station leaf, given the total leaf count.
    pub fn group_of(&self, leaf: usize, n_leaves: usize) -> usize {
        if n_leaves == 0 {
            return 0;
        }
        (leaf * self.cfg.groups / n_leaves.max(1)).min(self.cfg.groups - 1)
    }

    /// Probe without touching the statistics (for retried requests).
    pub fn probe(&self, group: usize, addr: usize) -> Option<u32> {
        let line = addr % self.cfg.lines;
        if self.tags[group][line] == Some(addr) {
            Some(self.data[group][line])
        } else {
            None
        }
    }

    /// Look a word up in one group's cache, counting hit/miss.
    pub fn lookup(&mut self, group: usize, addr: usize) -> Option<u32> {
        match self.probe(group, addr) {
            Some(v) => {
                self.hits += 1;
                Some(v)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Count a miss explicitly (used by the system once a missing load
    /// is actually admitted into the network, so retries don't inflate
    /// the count).
    pub fn count_miss(&mut self) {
        self.misses += 1;
    }

    /// Count a hit explicitly.
    pub fn count_hit(&mut self) {
        self.hits += 1;
    }

    /// Fill a line after a miss response.
    pub fn fill(&mut self, group: usize, addr: usize, value: u32) {
        let line = addr % self.cfg.lines;
        self.tags[group][line] = Some(addr);
        self.data[group][line] = value;
    }

    /// Write-through update: every group holding `addr` gets the new
    /// value (no invalidations needed — the caches can never go stale).
    pub fn write_update(&mut self, addr: usize, value: u32) {
        let line = addr % self.cfg.lines;
        for g in 0..self.cfg.groups {
            if self.tags[g][line] == Some(addr) {
                self.data[g][line] = value;
            }
        }
    }

    /// Hit rate over all lookups so far.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_fill_hit() {
        let mut c = ClusterCaches::new(CacheConfig::small(2));
        assert_eq!(c.lookup(0, 100), None);
        c.fill(0, 100, 42);
        assert_eq!(c.lookup(0, 100), Some(42));
        // The other group is independent.
        assert_eq!(c.lookup(1, 100), None);
        assert_eq!(c.hits, 1);
        assert_eq!(c.misses, 2);
    }

    #[test]
    fn direct_mapped_conflict_evicts() {
        let cfg = CacheConfig {
            groups: 1,
            lines: 8,
            hit_latency: 1,
        };
        let mut c = ClusterCaches::new(cfg);
        c.fill(0, 3, 10);
        c.fill(0, 11, 20); // 11 % 8 == 3: evicts
        assert_eq!(c.lookup(0, 3), None);
        assert_eq!(c.lookup(0, 11), Some(20));
    }

    #[test]
    fn write_update_reaches_all_groups() {
        let mut c = ClusterCaches::new(CacheConfig::small(3));
        c.fill(0, 7, 1);
        c.fill(2, 7, 1);
        c.write_update(7, 99);
        assert_eq!(c.lookup(0, 7), Some(99));
        assert_eq!(c.lookup(2, 7), Some(99));
        // A group without the line is unaffected (still a miss).
        assert_eq!(c.lookup(1, 7), None);
    }

    #[test]
    fn write_update_ignores_aliased_lines() {
        let cfg = CacheConfig {
            groups: 1,
            lines: 8,
            hit_latency: 1,
        };
        let mut c = ClusterCaches::new(cfg);
        c.fill(0, 3, 10);
        c.write_update(11, 99); // same line index, different address
        assert_eq!(c.lookup(0, 3), Some(10));
    }

    #[test]
    fn group_mapping_partitions_leaves() {
        let c = ClusterCaches::new(CacheConfig::small(4));
        let groups: Vec<usize> = (0..16).map(|l| c.group_of(l, 16)).collect();
        assert_eq!(groups[0], 0);
        assert_eq!(groups[15], 3);
        // Monotone, balanced partition.
        for w in groups.windows(2) {
            assert!(w[1] >= w[0]);
        }
        for g in 0..4 {
            assert_eq!(groups.iter().filter(|&&x| x == g).count(), 4);
        }
    }

    #[test]
    fn hit_rate() {
        let mut c = ClusterCaches::new(CacheConfig::small(1));
        c.fill(0, 1, 5);
        let _ = c.lookup(0, 1);
        let _ = c.lookup(0, 2);
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
    }
}
