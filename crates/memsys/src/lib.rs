//! Memory subsystem: an interleaved (banked) data cache reached through
//! a fat-tree network of configurable fatness.
//!
//! The paper (§2, §3) connects the execution stations to "an
//! interleaved data cache via fat-tree or butterfly networks … this
//! allows one to choose how much bandwidth to implement by adjusting
//! the fatness of the trees", and its headline complexity results are
//! parameterised by the provided memory bandwidth `M(n)`. This crate
//! provides:
//!
//! * [`bandwidth`] — the `M(n) = c·n^p` family with the paper's three
//!   regimes (`p < ½`, `p = ½`, `p > ½`) and its regularity condition;
//! * [`fattree`] — a cycle-accurate fat-tree contention model: each
//!   subtree of `s` leaves owns `⌈M(s)⌉` upward links, requests are
//!   granted oldest-first (the hardware arbitrates with prefix
//!   circuits), and blocked requests retry next cycle;
//! * [`banked`] — the interleaved memory banks behind the tree, with
//!   per-bank occupancy;
//! * [`system`] — [`system::MemSystem`], the synchronous request/
//!   response interface the processor models drive.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod bandwidth;
pub mod banked;
pub mod butterfly;
pub mod cache;
pub mod fattree;
pub mod system;

pub use bandwidth::Bandwidth;
pub use cache::{CacheConfig, ClusterCaches};
pub use system::{MemConfig, MemRequest, MemResponse, MemStats, MemSystem, NetworkKind, ReqKind};
