//! The synchronous memory interface driven by the processor models.
//!
//! Per cycle the processor submits the memory operations whose
//! serialisation conditions (the CSPP circuits) are met, oldest first.
//! [`MemSystem::tick`] arbitrates them through the fat tree and the
//! banks, applies accepted operations, and delivers responses after
//! the configured latency (`base + 2·hops·hop_latency + bank`).
//! Rejected requests simply retry next cycle — the processor keeps the
//! station waiting, exactly as the hardware would.

use crate::bandwidth::Bandwidth;
use crate::banked::BankedMemory;
use crate::butterfly::Butterfly;
use crate::cache::{CacheConfig, ClusterCaches};
use crate::fattree::FatTree;

/// Which interconnect carries requests to the banks (the paper's §2:
/// "via two fat-tree or butterfly networks").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NetworkKind {
    /// Fat tree with per-subtree capacities `⌈M(s)⌉` (guaranteed
    /// bandwidth, pre-provisioned fatness).
    #[default]
    FatTree,
    /// Radix-2 butterfly with `⌈M(n)⌉` far-side ports (full wire
    /// parallelism, but conflicting paths block).
    Butterfly,
}

/// Memory system configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct MemConfig {
    /// Number of stations (network leaves).
    pub n_leaves: usize,
    /// Bandwidth profile `M(s)`.
    pub bandwidth: Bandwidth,
    /// Number of interleaved banks.
    pub banks: usize,
    /// Cycles a bank is occupied per access.
    pub bank_occupancy: u64,
    /// Cycles per network hop, each direction.
    pub hop_latency: u64,
    /// Fixed pipeline latency added to every access.
    pub base_latency: u64,
    /// Memory size in words.
    pub words: usize,
    /// Interconnect topology.
    pub network: NetworkKind,
    /// Optional distributed per-cluster caches in front of the network
    /// (§7's bandwidth-reduction suggestion).
    pub cluster_cache: Option<CacheConfig>,
}

impl MemConfig {
    /// An idealised memory: full bandwidth, single-cycle, as many banks
    /// as stations. Useful as the "perfect memory" baseline.
    pub fn ideal(n_leaves: usize, words: usize) -> Self {
        MemConfig {
            n_leaves,
            bandwidth: Bandwidth::full(),
            banks: n_leaves.max(1),
            bank_occupancy: 1,
            hop_latency: 0,
            base_latency: 0,
            words,
            network: NetworkKind::FatTree,
            cluster_cache: None,
        }
    }

    /// A realistic default: √n bandwidth, n/2 banks, 1-cycle hops.
    pub fn realistic(n_leaves: usize, words: usize) -> Self {
        MemConfig {
            n_leaves,
            bandwidth: Bandwidth::sqrt(),
            banks: (n_leaves / 2).max(1),
            bank_occupancy: 1,
            hop_latency: 1,
            base_latency: 1,
            words,
            network: NetworkKind::FatTree,
            cluster_cache: None,
        }
    }

    /// Builder: switch the interconnect topology.
    pub fn with_network(mut self, network: NetworkKind) -> Self {
        self.network = network;
        self
    }

    /// Builder: add distributed per-cluster caches.
    pub fn with_cluster_cache(mut self, cache: CacheConfig) -> Self {
        self.cluster_cache = Some(cache);
        self
    }
}

/// What a request does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReqKind {
    /// Read a word.
    Load,
    /// Write a word.
    Store(u32),
}

/// A memory request from a station.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRequest {
    /// Caller-chosen identifier returned in the response.
    pub id: u64,
    /// Fat-tree leaf (station index) issuing the request.
    pub leaf: usize,
    /// Word address.
    pub addr: usize,
    /// Load or store.
    pub kind: ReqKind,
}

/// A completed memory operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemResponse {
    /// The request's identifier.
    pub id: u64,
    /// Loaded value (`None` for stores).
    pub value: Option<u32>,
}

/// Aggregate statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Requests admitted into the tree.
    pub admitted: u64,
    /// Admission failures due to link capacity.
    pub link_rejections: u64,
    /// Admission failures due to bank occupancy.
    pub bank_conflicts: u64,
    /// Completed loads.
    pub loads: u64,
    /// Completed stores.
    pub stores: u64,
    /// Loads served by a distributed cluster cache (never entered the
    /// network).
    pub cache_hits: u64,
    /// Loads that missed the cluster cache and went to memory.
    pub cache_misses: u64,
}

/// The interconnect instance.
#[derive(Debug, Clone)]
enum Network {
    Tree(FatTree),
    Fly(Butterfly),
}

impl Network {
    fn begin_cycle(&mut self) {
        match self {
            Network::Tree(t) => t.begin_cycle(),
            Network::Fly(b) => b.begin_cycle(),
        }
    }

    fn try_route(&mut self, leaf: usize, addr: usize) -> bool {
        match self {
            Network::Tree(t) => t.try_route(leaf),
            Network::Fly(b) => b.try_route(leaf, addr),
        }
    }

    fn hops(&self) -> usize {
        match self {
            Network::Tree(t) => t.hops(),
            Network::Fly(b) => b.stages(),
        }
    }

    fn admitted(&self) -> u64 {
        match self {
            Network::Tree(t) => t.admitted,
            Network::Fly(b) => b.admitted,
        }
    }

    fn reset(&mut self) {
        match self {
            Network::Tree(t) => t.reset(),
            Network::Fly(b) => b.reset(),
        }
    }

    fn rejections(&self) -> u64 {
        match self {
            Network::Tree(t) => t.link_rejections,
            Network::Fly(b) => b.conflicts,
        }
    }
}

/// The memory system: interconnect + banks + in-flight completion
/// queue.
#[derive(Debug, Clone)]
pub struct MemSystem {
    cfg: MemConfig,
    net: Network,
    banks: BankedMemory,
    /// In-flight accesses: (completion_cycle, response), kept sorted by
    /// completion cycle (binary heap semantics via sorted insertion is
    /// unnecessary; we scan — traffic per cycle is small).
    in_flight: Vec<(u64, MemResponse)>,
    caches: Option<ClusterCaches>,
    stats: MemStats,
}

impl MemSystem {
    /// Build a memory system and load the initial image.
    pub fn new(cfg: MemConfig, image: &[u32]) -> Self {
        let words = cfg.words.max(image.len()).max(1);
        let mut banks = BankedMemory::new(words, cfg.banks.max(1), cfg.bank_occupancy);
        banks.load_image(image);
        let net = match cfg.network {
            NetworkKind::FatTree => Network::Tree(FatTree::new(cfg.n_leaves.max(1), cfg.bandwidth)),
            NetworkKind::Butterfly => {
                Network::Fly(Butterfly::new(cfg.n_leaves.max(1), cfg.bandwidth))
            }
        };
        let caches = cfg.cluster_cache.map(ClusterCaches::new);
        MemSystem {
            cfg,
            net,
            banks,
            in_flight: Vec::new(),
            caches,
            stats: MemStats::default(),
        }
    }

    /// The configuration this system was built from.
    pub fn config(&self) -> &MemConfig {
        &self.cfg
    }

    /// Rewind to the freshly-constructed state for a new run, reusing
    /// every retained buffer: storage is re-zeroed and reloaded with
    /// `image`, network capacities and caches are cleared, in-flight
    /// accesses are dropped, and statistics return to zero. After this,
    /// the system is observationally identical to
    /// `MemSystem::new(cfg, image)` — the reuse-equivalence tests in
    /// `ultrascalar` pin that cycle-exactly. Allocation-free unless the
    /// image forces a different word count than the previous run.
    pub fn reset(&mut self, image: &[u32]) {
        let words = self.cfg.words.max(image.len()).max(1);
        if words == self.banks.len() {
            self.banks.reset(image);
        } else {
            self.banks = BankedMemory::new(words, self.cfg.banks.max(1), self.cfg.bank_occupancy);
            self.banks.load_image(image);
        }
        self.net.reset();
        if let Some(caches) = &mut self.caches {
            caches.reset();
        }
        self.in_flight.clear();
        self.stats = MemStats::default();
    }

    /// Total access latency for an admitted request.
    pub fn latency(&self) -> u64 {
        self.cfg.base_latency
            + 2 * self.cfg.hop_latency * self.net.hops() as u64
            + self.cfg.bank_occupancy
    }

    /// Memory size in words.
    pub fn words(&self) -> usize {
        self.banks.len()
    }

    /// One cycle: offer `requests` (oldest first — the offered order is
    /// the grant priority), return the set accepted this cycle, and
    /// deliver responses for accesses completing *this* cycle.
    ///
    /// Accepted stores take architectural effect immediately (the
    /// processor guarantees ordering before submitting); accepted loads
    /// snapshot their value immediately and deliver it at completion.
    pub fn tick(&mut self, now: u64, requests: &[MemRequest]) -> (Vec<u64>, Vec<MemResponse>) {
        let mut accepted = Vec::new();
        let mut done = Vec::new();
        self.tick_into(now, requests, &mut accepted, &mut done);
        (accepted, done)
    }

    /// [`MemSystem::tick`] writing into caller-owned buffers (cleared
    /// first), so a processor's cycle loop can reuse the same two
    /// vectors across millions of cycles instead of allocating a fresh
    /// pair whenever there is traffic.
    pub fn tick_into(
        &mut self,
        now: u64,
        requests: &[MemRequest],
        accepted: &mut Vec<u64>,
        done: &mut Vec<MemResponse>,
    ) {
        accepted.clear();
        done.clear();
        self.net.begin_cycle();
        for req in requests {
            // Distributed cluster cache: a hitting load is served
            // locally and never enters the network.
            if let (Some(caches), ReqKind::Load) = (&mut self.caches, req.kind) {
                let group = caches.group_of(req.leaf, self.cfg.n_leaves);
                if let Some(v) = caches.probe(group, req.addr) {
                    caches.count_hit();
                    self.stats.loads += 1;
                    let done = now + caches.config().hit_latency;
                    self.in_flight.push((
                        done,
                        MemResponse {
                            id: req.id,
                            value: Some(v),
                        },
                    ));
                    accepted.push(req.id);
                    continue;
                }
            }
            if !self.banks.bank_free(req.addr, now) {
                self.stats.bank_conflicts += 1;
                continue;
            }
            if !self.net.try_route(req.leaf, req.addr) {
                continue;
            }
            let store = match req.kind {
                ReqKind::Load => None,
                ReqKind::Store(v) => Some(v),
            };
            let value = self
                .banks
                .access(req.addr, store, now)
                .expect("bank checked free");
            if let Some(caches) = &mut self.caches {
                match req.kind {
                    ReqKind::Load => {
                        caches.count_miss();
                        let group = caches.group_of(req.leaf, self.cfg.n_leaves);
                        caches.fill(group, req.addr, value);
                    }
                    ReqKind::Store(v) => caches.write_update(req.addr, v),
                }
            }
            let resp = MemResponse {
                id: req.id,
                value: match req.kind {
                    ReqKind::Load => {
                        self.stats.loads += 1;
                        Some(value)
                    }
                    ReqKind::Store(_) => {
                        self.stats.stores += 1;
                        None
                    }
                },
            };
            self.in_flight.push((now + self.latency(), resp));
            accepted.push(req.id);
        }
        self.stats.admitted = self.net.admitted();
        self.stats.link_rejections = self.net.rejections();
        if let Some(caches) = &self.caches {
            self.stats.cache_hits = caches.hits;
            self.stats.cache_misses = caches.misses;
        }

        self.in_flight.retain(|&(t, r)| {
            if t <= now {
                done.push(r);
                false
            } else {
                true
            }
        });
    }

    /// Are any accesses still in flight?
    pub fn quiescent(&self) -> bool {
        self.in_flight.is_empty()
    }

    /// The earliest cycle at which an in-flight access will deliver its
    /// response, if any. Event-driven processor models use this to jump
    /// straight to the next memory event instead of ticking through
    /// quiet cycles: skipping a [`MemSystem::tick`] whose `requests` are
    /// empty and whose `now` is before this cycle is observationally
    /// free (per-cycle network capacity resets are idempotent and banks
    /// compare absolute busy times).
    pub fn next_completion_at(&self) -> Option<u64> {
        self.in_flight.iter().map(|&(t, _)| t).min()
    }

    /// Statistics so far.
    pub fn stats(&self) -> MemStats {
        self.stats
    }

    /// Architectural memory contents.
    pub fn snapshot(&self) -> &[u32] {
        self.banks.snapshot()
    }

    /// Architectural read (no timing effects).
    pub fn peek(&self, addr: usize) -> u32 {
        self.banks.peek(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, leaf: usize, addr: usize, kind: ReqKind) -> MemRequest {
        MemRequest {
            id,
            leaf,
            addr,
            kind,
        }
    }

    #[test]
    fn ideal_memory_is_single_cycle() {
        let mut m = MemSystem::new(MemConfig::ideal(4, 16), &[7, 8, 9]);
        assert_eq!(m.latency(), 1);
        let (acc, done) = m.tick(0, &[req(1, 0, 2, ReqKind::Load)]);
        assert_eq!(acc, vec![1]);
        assert!(done.is_empty());
        let (_, done) = m.tick(1, &[]);
        assert_eq!(
            done,
            vec![MemResponse {
                id: 1,
                value: Some(9)
            }]
        );
        assert!(m.quiescent());
    }

    #[test]
    fn stores_apply_immediately_loads_snapshot() {
        let mut m = MemSystem::new(MemConfig::ideal(2, 8), &[]);
        // Store at cycle 0; peek sees it at once.
        m.tick(0, &[req(1, 0, 3, ReqKind::Store(55))]);
        assert_eq!(m.peek(3), 55);
        // A load offered the same address next cycle returns 55.
        m.tick(1, &[req(2, 1, 3, ReqKind::Load)]);
        let (_, done) = m.tick(2, &[]);
        assert_eq!(done[0].value, Some(55));
    }

    #[test]
    fn bandwidth_limits_acceptance_and_requests_retry() {
        // 16 leaves, √ bandwidth → root accepts 4/cycle.
        let cfg = MemConfig {
            n_leaves: 16,
            bandwidth: Bandwidth::sqrt(),
            banks: 16,
            bank_occupancy: 1,
            hop_latency: 0,
            base_latency: 0,
            words: 64,
            network: NetworkKind::FatTree,
            cluster_cache: None,
        };
        let mut m = MemSystem::new(cfg, &[]);
        let reqs: Vec<MemRequest> = (0..16)
            .map(|i| req(i as u64, i, i, ReqKind::Load))
            .collect();
        let (acc, _) = m.tick(0, &reqs);
        assert_eq!(acc.len(), 4);
        // The rejected 12 retry next cycle; again 4 admitted.
        let rest: Vec<MemRequest> = reqs
            .iter()
            .filter(|r| !acc.contains(&r.id))
            .copied()
            .collect();
        let (acc2, _) = m.tick(1, &rest);
        assert_eq!(acc2.len(), 4);
        assert!(m.stats().link_rejections > 0);
    }

    #[test]
    fn oldest_first_priority() {
        let cfg = MemConfig {
            n_leaves: 4,
            bandwidth: Bandwidth::constant(1.0),
            banks: 4,
            bank_occupancy: 1,
            hop_latency: 0,
            base_latency: 0,
            words: 16,
            network: NetworkKind::FatTree,
            cluster_cache: None,
        };
        let mut m = MemSystem::new(cfg, &[]);
        // Two requests; only one slot. The first offered (oldest) wins.
        let (acc, _) = m.tick(
            0,
            &[req(10, 0, 0, ReqKind::Load), req(11, 1, 1, ReqKind::Load)],
        );
        assert_eq!(acc, vec![10]);
    }

    #[test]
    fn bank_conflicts_block_second_access() {
        let cfg = MemConfig {
            n_leaves: 4,
            bandwidth: Bandwidth::full(),
            banks: 2,
            bank_occupancy: 4,
            hop_latency: 0,
            base_latency: 0,
            words: 16,
            network: NetworkKind::FatTree,
            cluster_cache: None,
        };
        let mut m = MemSystem::new(cfg, &[]);
        // Addresses 0 and 2 share bank 0.
        let (acc, _) = m.tick(
            0,
            &[req(1, 0, 0, ReqKind::Load), req(2, 1, 2, ReqKind::Load)],
        );
        assert_eq!(acc, vec![1]);
        assert_eq!(m.stats().bank_conflicts, 1);
        // After occupancy expires the second succeeds.
        let (acc, _) = m.tick(4, &[req(2, 1, 2, ReqKind::Load)]);
        assert_eq!(acc, vec![2]);
    }

    #[test]
    fn latency_accounts_for_hops() {
        let cfg = MemConfig {
            n_leaves: 16, // 2 levels of 4-ary tree
            bandwidth: Bandwidth::full(),
            banks: 16,
            bank_occupancy: 1,
            hop_latency: 3,
            base_latency: 2,
            words: 16,
            network: NetworkKind::FatTree,
            cluster_cache: None,
        };
        let m = MemSystem::new(cfg, &[]);
        assert_eq!(m.latency(), 2 + 2 * 3 * 2 + 1);
    }

    #[test]
    fn responses_arrive_exactly_at_latency() {
        let cfg = MemConfig {
            n_leaves: 4,
            bandwidth: Bandwidth::full(),
            banks: 4,
            bank_occupancy: 1,
            hop_latency: 1,
            base_latency: 0,
            words: 8,
            network: NetworkKind::FatTree,
            cluster_cache: None,
        };
        let mut m = MemSystem::new(cfg, &[1, 2, 3, 4]);
        let lat = m.latency(); // 0 + 2*1*1 + 1 = 3
        m.tick(10, &[req(9, 2, 1, ReqKind::Load)]);
        for t in 11..10 + lat {
            let (_, done) = m.tick(t, &[]);
            assert!(done.is_empty(), "t={t}");
        }
        let (_, done) = m.tick(10 + lat, &[]);
        assert_eq!(
            done,
            vec![MemResponse {
                id: 9,
                value: Some(2)
            }]
        );
    }

    #[test]
    fn snapshot_reflects_all_stores() {
        let mut m = MemSystem::new(MemConfig::ideal(2, 8), &[]);
        m.tick(0, &[req(1, 0, 1, ReqKind::Store(10))]);
        m.tick(1, &[req(2, 1, 2, ReqKind::Store(20))]);
        assert_eq!(&m.snapshot()[..3], &[0, 10, 20]);
    }
}

#[cfg(test)]
mod butterfly_tests {
    use super::*;

    fn req(id: u64, leaf: usize, addr: usize) -> MemRequest {
        MemRequest {
            id,
            leaf,
            addr,
            kind: ReqKind::Load,
        }
    }

    #[test]
    fn butterfly_system_delivers_loads() {
        let cfg = MemConfig::ideal(8, 32).with_network(NetworkKind::Butterfly);
        let mut m = MemSystem::new(cfg, &[10, 11, 12, 13]);
        let (acc, _) = m.tick(0, &[req(1, 3, 2)]);
        assert_eq!(acc, vec![1]);
        let (_, done) = m.tick(m.latency(), &[]);
        assert_eq!(
            done,
            vec![MemResponse {
                id: 1,
                value: Some(12)
            }]
        );
    }

    #[test]
    fn butterfly_conflicts_block_and_retry() {
        // All leaves to the same address: the butterfly admits one per
        // cycle (single far-side port path).
        let cfg = MemConfig {
            n_leaves: 8,
            bandwidth: Bandwidth::full(),
            banks: 8,
            bank_occupancy: 1,
            hop_latency: 0,
            base_latency: 0,
            words: 32,
            network: NetworkKind::Butterfly,
            cluster_cache: None,
        };
        let mut m = MemSystem::new(cfg, &[]);
        let reqs: Vec<MemRequest> = (0..8).map(|i| req(i as u64, i, 5)).collect();
        let (acc, _) = m.tick(0, &reqs);
        // Bank occupancy also limits to one — either way exactly one.
        assert_eq!(acc.len(), 1);
        assert!(m.stats().link_rejections + m.stats().bank_conflicts >= 7);
    }

    #[test]
    fn butterfly_parallel_disjoint_traffic() {
        // Identity traffic (leaf i → address i) passes in one cycle.
        let cfg = MemConfig {
            n_leaves: 8,
            bandwidth: Bandwidth::full(),
            banks: 8,
            bank_occupancy: 1,
            hop_latency: 0,
            base_latency: 0,
            words: 32,
            network: NetworkKind::Butterfly,
            cluster_cache: None,
        };
        let mut m = MemSystem::new(cfg, &[]);
        let reqs: Vec<MemRequest> = (0..8).map(|i| req(i as u64, i, i)).collect();
        let (acc, _) = m.tick(0, &reqs);
        assert_eq!(acc.len(), 8);
    }

    #[test]
    fn butterfly_latency_counts_stages() {
        let cfg = MemConfig {
            n_leaves: 16,
            bandwidth: Bandwidth::full(),
            banks: 16,
            bank_occupancy: 1,
            hop_latency: 2,
            base_latency: 1,
            words: 32,
            network: NetworkKind::Butterfly,
            cluster_cache: None,
        };
        let m = MemSystem::new(cfg, &[]);
        // 16 leaves → 4 stages → 1 + 2·2·4 + 1.
        assert_eq!(m.latency(), 1 + 16 + 1);
    }
}

#[cfg(test)]
mod cache_tests {
    use super::*;

    fn cached_cfg(n: usize) -> MemConfig {
        MemConfig {
            n_leaves: n,
            bandwidth: Bandwidth::constant(1.0), // tight network
            banks: 4,
            bank_occupancy: 1,
            hop_latency: 1,
            base_latency: 0,
            words: 256,
            network: NetworkKind::FatTree,
            cluster_cache: Some(CacheConfig::small(2)),
        }
    }

    fn load(id: u64, leaf: usize, addr: usize) -> MemRequest {
        MemRequest {
            id,
            leaf,
            addr,
            kind: ReqKind::Load,
        }
    }

    #[test]
    fn second_load_hits_and_skips_network() {
        let mut m = MemSystem::new(cached_cfg(8), &[9, 8, 7]);
        // Miss: goes through the network.
        let (acc, _) = m.tick(0, &[load(1, 0, 2)]);
        assert_eq!(acc, vec![1]);
        // Drain the response (fill happens at acceptance).
        let lat = m.latency();
        let (_, done) = m.tick(lat, &[]);
        assert_eq!(done[0].value, Some(7));
        // Hit: served in hit_latency cycles, no network admission.
        let before = m.stats().admitted;
        let (acc, _) = m.tick(lat + 1, &[load(2, 1, 2)]);
        assert_eq!(acc, vec![2]);
        assert_eq!(m.stats().admitted, before, "hit must not enter the network");
        let (_, done) = m.tick(lat + 2, &[]);
        assert_eq!(
            done,
            vec![MemResponse {
                id: 2,
                value: Some(7)
            }]
        );
        assert_eq!(m.stats().cache_hits, 1);
        assert_eq!(m.stats().cache_misses, 1);
    }

    #[test]
    fn stores_update_cached_copies() {
        let mut m = MemSystem::new(cached_cfg(8), &[0; 16]);
        // Load addr 5 into leaf 0's group cache.
        m.tick(0, &[load(1, 0, 5)]);
        // Store a new value.
        let (acc, _) = m.tick(
            1,
            &[MemRequest {
                id: 2,
                leaf: 7,
                addr: 5,
                kind: ReqKind::Store(77),
            }],
        );
        assert_eq!(acc, vec![2]);
        // A subsequent hit must see the stored value, not the stale one.
        let (acc, _) = m.tick(2, &[load(3, 0, 5)]);
        assert_eq!(acc, vec![3]);
        let mut got = None;
        for t in 3..20 {
            let (_, done) = m.tick(t, &[]);
            for d in done {
                if d.id == 3 {
                    got = d.value;
                }
            }
        }
        assert_eq!(got, Some(77));
    }

    #[test]
    fn caches_are_per_group() {
        let mut m = MemSystem::new(cached_cfg(8), &[1, 2, 3, 4]);
        // Leaf 0 (group 0) loads addr 3; leaf 7 (group 1) misses on the
        // same address.
        m.tick(0, &[load(1, 0, 3)]);
        let lat = m.latency();
        m.tick(lat, &[]);
        let (acc, _) = m.tick(lat + 1, &[load(2, 7, 3)]);
        assert_eq!(acc.len(), 1);
        assert_eq!(m.stats().cache_hits, 0, "different group must miss");
    }
}
