//! Fat-tree network contention model.
//!
//! The stations sit at the leaves of a 4-ary tree (matching the paper's
//! H-tree floorplan, which recurses into quadrants); the interleaved
//! cache hangs off the root. A subtree of `s` leaves owns `⌈M(s)⌉`
//! upward links — the fat-tree fatness profile the paper prescribes —
//! so per cycle at most `⌈M(s)⌉` requests may leave any subtree of `s`
//! stations.
//!
//! [`FatTree::begin_cycle`] resets the per-cycle link usage counters;
//! [`FatTree::try_route`] then greedily admits requests in the order
//! offered (callers offer oldest-first, which is what the hardware's
//! prefix-arbitration implements).

use crate::bandwidth::Bandwidth;

/// Arity of the tree: quadrants, as in the H-tree floorplan.
pub const ARITY: usize = 4;

/// Per-cycle fat-tree admission control.
#[derive(Debug, Clone)]
pub struct FatTree {
    n_leaves: usize,
    levels: usize,
    /// `caps[l]` is the per-subtree capacity at level `l` (level 0 =
    /// leaves themselves, level `levels` = root).
    caps: Vec<usize>,
    /// Usage counters per level, indexed by subtree id at that level.
    /// Each entry is `(generation, count)`; a stale generation reads as
    /// zero, so `begin_cycle` is an O(1) generation bump rather than an
    /// O(n log n) sweep over every counter.
    used: Vec<Vec<(u64, usize)>>,
    /// Current cycle's generation stamp.
    generation: u64,
    /// Total requests admitted.
    pub admitted: u64,
    /// Requests refused for lack of link capacity.
    pub link_rejections: u64,
}

impl FatTree {
    /// Build admission control for `n_leaves` stations under bandwidth
    /// profile `bw`.
    ///
    /// # Panics
    /// Panics if `n_leaves == 0`.
    pub fn new(n_leaves: usize, bw: Bandwidth) -> Self {
        assert!(n_leaves > 0, "fat tree needs at least one leaf");
        // levels = ceil(log4 n)
        let mut levels = 0usize;
        let mut span = 1usize;
        while span < n_leaves {
            span *= ARITY;
            levels += 1;
        }
        // Capacity of a subtree at level l (containing up to 4^l leaves,
        // clamped to n): M(subtree size).
        let mut caps = Vec::with_capacity(levels + 1);
        let mut used = Vec::with_capacity(levels + 1);
        for l in 0..=levels {
            let size = (ARITY.pow(l as u32)).min(n_leaves);
            caps.push(bw.capacity(size));
            let groups = n_leaves.div_ceil(ARITY.pow(l as u32));
            used.push(vec![(0u64, 0usize); groups]);
        }
        FatTree {
            n_leaves,
            levels,
            caps,
            used,
            generation: 0,
            admitted: 0,
            link_rejections: 0,
        }
    }

    /// Number of tree levels between a leaf and the root.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Root (total) bandwidth per cycle.
    pub fn root_capacity(&self) -> usize {
        *self.caps.last().expect("at least one level")
    }

    /// Link capacity of a subtree at `level` (0 = single leaf).
    pub fn capacity_at(&self, level: usize) -> usize {
        self.caps[level]
    }

    /// Reset per-cycle usage. Call once per simulated cycle. O(1): the
    /// generation stamp advances and every counter lazily reads as zero
    /// until touched again.
    pub fn begin_cycle(&mut self) {
        self.generation += 1;
    }

    /// Rewind to the as-constructed state for a new run: statistics
    /// cleared and every per-cycle counter back to zero. O(1) — the
    /// generation stamp advances, so stale counters lazily read as
    /// zero exactly as in [`FatTree::begin_cycle`].
    pub fn reset(&mut self) {
        self.generation += 1;
        self.admitted = 0;
        self.link_rejections = 0;
    }

    /// Try to admit a request from `leaf` this cycle. On success the
    /// capacity is consumed along the whole root path and `true` is
    /// returned; on failure nothing is consumed.
    ///
    /// # Panics
    /// Panics if `leaf >= n_leaves`.
    pub fn try_route(&mut self, leaf: usize) -> bool {
        assert!(leaf < self.n_leaves, "leaf out of range");
        // Check every level first (levels 1..=levels are real links;
        // level 0 is the leaf's own port, capacity M(1) = 1).
        for l in 0..=self.levels {
            let group = leaf / ARITY.pow(l as u32);
            let (stamp, count) = self.used[l][group];
            let count = if stamp == self.generation { count } else { 0 };
            if count >= self.caps[l] {
                self.link_rejections += 1;
                return false;
            }
        }
        for l in 0..=self.levels {
            let group = leaf / ARITY.pow(l as u32);
            let slot = &mut self.used[l][group];
            let count = if slot.0 == self.generation { slot.1 } else { 0 };
            *slot = (self.generation, count + 1);
        }
        self.admitted += 1;
        true
    }

    /// One-way hop count from a leaf to the root.
    pub fn hops(&self) -> usize {
        self.levels
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_log4() {
        for (n, l) in [
            (1usize, 0usize),
            (2, 1),
            (4, 1),
            (5, 2),
            (16, 2),
            (17, 3),
            (64, 3),
        ] {
            assert_eq!(FatTree::new(n, Bandwidth::full()).levels(), l, "n={n}");
        }
    }

    #[test]
    fn full_bandwidth_admits_everything() {
        let mut t = FatTree::new(16, Bandwidth::full());
        t.begin_cycle();
        for leaf in 0..16 {
            assert!(t.try_route(leaf), "leaf {leaf}");
        }
        assert_eq!(t.admitted, 16);
        assert_eq!(t.link_rejections, 0);
    }

    #[test]
    fn root_capacity_limits_total_admissions() {
        // M(n) = √n: with 16 leaves, the root admits 4 per cycle.
        let mut t = FatTree::new(16, Bandwidth::sqrt());
        assert_eq!(t.root_capacity(), 4);
        t.begin_cycle();
        let admitted = (0..16).filter(|&l| t.try_route(l)).count();
        assert_eq!(admitted, 4);
        // Next cycle the capacity is back.
        t.begin_cycle();
        assert!(t.try_route(0));
    }

    #[test]
    fn subtree_capacity_limits_local_bursts() {
        // 16 leaves, √ bandwidth: a level-1 quadrant (4 leaves) has
        // capacity M(4) = 2. All four requests from one quadrant: only
        // 2 admitted even though the root could take 4.
        let mut t = FatTree::new(16, Bandwidth::sqrt());
        t.begin_cycle();
        let admitted = (0..4).filter(|&l| t.try_route(l)).count();
        assert_eq!(admitted, 2);
        // Requests from other quadrants still get through.
        assert!(t.try_route(4));
        assert!(t.try_route(8));
        // Root is now full (capacity 4).
        assert!(!t.try_route(12));
    }

    #[test]
    fn failed_route_consumes_nothing() {
        let mut t = FatTree::new(4, Bandwidth::constant(1.0));
        t.begin_cycle();
        assert!(t.try_route(0));
        assert!(!t.try_route(1)); // root full
        assert_eq!(t.link_rejections, 1);
        t.begin_cycle();
        // leaf 1's own port was not consumed by the failed attempt.
        assert!(t.try_route(1));
    }

    #[test]
    fn single_leaf_tree() {
        let mut t = FatTree::new(1, Bandwidth::sqrt());
        assert_eq!(t.levels(), 0);
        t.begin_cycle();
        assert!(t.try_route(0));
        assert!(!t.try_route(0));
    }

    #[test]
    #[should_panic(expected = "leaf out of range")]
    fn leaf_bounds_checked() {
        let mut t = FatTree::new(4, Bandwidth::full());
        t.begin_cycle();
        let _ = t.try_route(4);
    }
}
