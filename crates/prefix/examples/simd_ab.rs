//! In-process A/B of the AVX2 substrate against its forced-SWAR twin.
//!
//! ```text
//! cargo run --release -p ultrascalar-prefix --example simd_ab
//! ```
//!
//! Cross-process comparisons on a shared host are dominated by noise
//! (identical-code rows drift by ±25% between runs), so this harness
//! interleaves the two dispatch modes round-robin inside one process
//! and reports the median ratio across rounds — the same protocol the
//! `step_ab` engine benchmark uses.

use std::time::Instant;
use ultrascalar_prefix::lanes::{self, LaneValue};
use ultrascalar_prefix::{
    active_simd_level, detected_simd_level, AndWords, ForceSwarGuard, PackedCsppScratchW,
    SlicedCsppScratch, SlicedPair,
};

const ROUNDS: usize = 9;

/// Seconds per call, adaptively doubling until a batch runs >= 5 ms.
fn time_per_call<F: FnMut() -> u64>(mut f: F) -> f64 {
    for _ in 0..3 {
        std::hint::black_box(f());
    }
    let mut iters = 1u32;
    loop {
        let start = Instant::now();
        let mut acc = 0u64;
        for _ in 0..iters {
            acc = acc.wrapping_add(f());
        }
        let dt = start.elapsed();
        std::hint::black_box(acc);
        if dt.as_secs_f64() >= 0.005 || iters >= 1 << 24 {
            return dt.as_secs_f64() / iters as f64;
        }
        iters *= 2;
    }
}

/// Interleaved rounds: (median native s/call, median swar s/call).
fn ab<F: FnMut() -> u64>(mut f: F) -> (f64, f64) {
    let mut native = Vec::with_capacity(ROUNDS);
    let mut swar = Vec::with_capacity(ROUNDS);
    for _ in 0..ROUNDS {
        native.push(time_per_call(&mut f));
        let _guard = ForceSwarGuard::force();
        swar.push(time_per_call(&mut f));
    }
    (median(&mut native), median(&mut swar))
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

fn row(label: &str, (native, swar): (f64, f64)) {
    println!(
        "{label:<26} native {:>8.1} ns   swar {:>8.1} ns   speedup {:>5.2}x",
        native * 1e9,
        swar * 1e9,
        swar / native
    );
}

fn main() {
    println!(
        "detected={} active={}\n",
        detected_simd_level(),
        active_simd_level()
    );

    for &n in &[64usize, 256] {
        let vals: Vec<bool> = (0..n).map(|i| i % 3 != 1).collect();
        let seg: Vec<bool> = (0..n).map(|i| i % 17 == 4).collect();

        {
            let vw: Vec<u64> = vals.iter().map(|&v| if v { !0 } else { 0 }).collect();
            let sw: Vec<u64> = seg.iter().map(|&s| if s { !0 } else { 0 }).collect();
            let mut scratch = ultrascalar_prefix::PackedCsppScratch::new();
            let mut out = Vec::new();
            row(
                &format!("packed W=1 n={n}"),
                ab(|| {
                    scratch.cspp_into::<AndWords>(&vw, &sw, &mut out);
                    out.len() as u64
                }),
            );
        }
        {
            let vw: Vec<[u64; 2]> = vals.iter().map(|&v| [if v { !0 } else { 0 }; 2]).collect();
            let sw: Vec<[u64; 2]> = seg.iter().map(|&s| [if s { !0 } else { 0 }; 2]).collect();
            let mut scratch = PackedCsppScratchW::<2>::new();
            let mut out = Vec::new();
            row(
                &format!("packed W=2 n={n}"),
                ab(|| {
                    scratch.cspp_into::<AndWords>(&vw, &sw, &mut out);
                    out.len() as u64
                }),
            );
        }
        {
            let vw: Vec<[u64; 4]> = vals.iter().map(|&v| [if v { !0 } else { 0 }; 4]).collect();
            let sw: Vec<[u64; 4]> = seg.iter().map(|&s| [if s { !0 } else { 0 }; 4]).collect();
            let mut scratch = PackedCsppScratchW::<4>::new();
            let mut out = Vec::new();
            row(
                &format!("packed W=4 n={n}"),
                ab(|| {
                    scratch.cspp_into::<AndWords>(&vw, &sw, &mut out);
                    out.len() as u64
                }),
            );
        }
        {
            let leaves: Vec<SlicedPair<32, 1>> = (0..n)
                .map(|i| {
                    let mut leaf = SlicedPair::identity();
                    for lane in 0..64usize {
                        leaf.set_lane(
                            lane,
                            (i as u64 * 0x9E37 + lane as u64) & 0xFFFF_FFFF,
                            (i + lane) % 17 == 4,
                        );
                    }
                    leaf
                })
                .collect();
            let mut scratch = SlicedCsppScratch::<32, 1>::new();
            let mut out = Vec::new();
            row(
                &format!("sliced 32x1 n={n}"),
                ab(|| {
                    scratch.cspp_into(&leaves, &mut out);
                    out.len() as u64
                }),
            );
        }
    }

    // Raw combine-kernel throughput: pairwise combines over an array
    // large enough to defeat loop-invariant hoisting but small enough
    // to stay L1-resident, the same regime the tree sweeps run in.
    {
        const M: usize = 32;
        let mut pairs: Vec<SlicedPair<32, 1>> = Vec::new();
        for i in 0..M {
            let mut p = SlicedPair::identity();
            for lane in 0..64usize {
                p.set_lane(
                    lane,
                    ((i as u64 * 31 + lane as u64 * 7 + 1) * 0x9E37) & 0xFFFF_FFFF,
                    (i + lane) % 5 == 0,
                );
            }
            pairs.push(p);
        }
        let mut out = pairs.clone();
        row(
            "sliced combine (raw)",
            ab(|| {
                let src = std::hint::black_box(&pairs);
                for i in 0..M - 1 {
                    out[i] = src[i].combine(&src[i + 1]);
                }
                out[M - 2].seg[0]
            }),
        );
    }

    // Lane-parallel ALU kernels.
    let mut av = [0u32; 64];
    let mut bv = [0u32; 64];
    for i in 0..64 {
        av[i] = (i as u32).wrapping_mul(0x9E37_79B9);
        bv[i] = (i as u32).wrapping_mul(0x85EB_CA6B) ^ 0xFFFF;
    }
    let a: LaneValue = lanes::deposit(&av);
    let b: LaneValue = lanes::deposit(&bv);
    row(
        "lanes add",
        ab(|| {
            let s = lanes::add(std::hint::black_box(&a), std::hint::black_box(&b));
            lanes::lane(&s, 0) as u64
        }),
    );
    row(
        "lanes ltu_mask",
        ab(|| lanes::ltu_mask(std::hint::black_box(&a), std::hint::black_box(&b))),
    );
    row(
        "lanes xor",
        ab(|| {
            let s = lanes::xor(std::hint::black_box(&a), std::hint::black_box(&b));
            lanes::lane(&s, 2) as u64
        }),
    );
    row(
        "lanes eq_mask",
        ab(|| lanes::eq_mask(std::hint::black_box(&a), std::hint::black_box(&b))),
    );
    row(
        "lanes map2 (transpose)",
        ab(|| {
            let s = lanes::map2(
                std::hint::black_box(&a),
                std::hint::black_box(&b),
                |x, y| x.wrapping_mul(y),
            );
            lanes::lane(&s, 1) as u64
        }),
    );
}
