//! Property tests pinning the bit-sliced value CSPP (`sliced` module)
//! against a linear ring oracle and the generic per-lane reference —
//! every ring size `n ∈ 1..=130`, mixed segment densities, wrap-only
//! lanes and the seeded register-file form.
//!
//! Unlike the boolean packed forms, the value select operator has no
//! left identity, so tree and ring both seed the whole-ring fold from
//! leaf 0 and the comparison is **bit-for-bit exact**, wrap-around
//! artefact lanes included.

use proptest::prelude::*;
use ultrascalar_prefix::cspp::{cspp_ring, segmented_prefix_ring};
use ultrascalar_prefix::op::{First, SegPair};
use ultrascalar_prefix::sliced::{
    pack_value_lane, sliced_cspp_ring, unpack_value_lane, SlicedCsppScratch, SlicedPair,
};

/// Deterministic xorshift for the exhaustive sweeps.
struct XorShift(u64);
impl XorShift {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

fn random_leaf<const B: usize, const W: usize>(
    rng: &mut XorShift,
    density: u32,
) -> SlicedPair<B, W> {
    let mut leaf = SlicedPair::identity();
    for p in 0..B {
        for j in 0..W {
            leaf.planes[p][j] = rng.next();
        }
    }
    for j in 0..W {
        // AND together `density` random words: higher density value
        // makes segment bits sparser, exercising longer propagation
        // runs and more all-low wrap lanes.
        let mut s = rng.next();
        for _ in 1..density {
            s &= rng.next();
        }
        leaf.seg[j] = s;
    }
    leaf
}

/// Tree vs linear ring oracle at **every** ring size `n ∈ 1..=130` —
/// deterministic coverage of the word-boundary sizes 63/64/65/127/128/
/// 129 and every non-power-of-two padding shape in between. One
/// scratch is reused across all sizes and fills, so the sweep also
/// exercises the shape-change path (`ensure_shape` re-padding between
/// every size). Segment patterns are mixed per fill: dense, sparse and
/// very sparse.
fn sweep_tree_vs_ring<const B: usize, const W: usize>(seed: u64) {
    let mut rng = XorShift(seed);
    let mut scratch = SlicedCsppScratch::<B, W>::new();
    let mut out = Vec::new();
    for n in 1..=130usize {
        for density in 1..=3u32 {
            let leaves: Vec<SlicedPair<B, W>> =
                (0..n).map(|_| random_leaf(&mut rng, density)).collect();
            let ring = sliced_cspp_ring(&leaves);
            scratch.cspp_into(&leaves, &mut out);
            assert_eq!(out, ring, "B={B} W={W} n={n} density={density}");
        }
    }
}

#[test]
fn ring_oracle_sweep_every_n_1_to_130() {
    // The engine's shape (32-bit values, one lane word) plus a narrow
    // and a multi-word width to cover the const-generic axes.
    sweep_tree_vs_ring::<32, 1>(0x51CE_D001_1357_9BDF);
    sweep_tree_vs_ring::<8, 2>(0xFACE_0FF5_2468_ACE0);
    sweep_tree_vs_ring::<16, 4>(0x0DDB_A115_DEAD_BEEF);
}

/// Dispatch consistency: the sliced tree under native dispatch (the
/// AVX2 combine where detected) and with the portable SWAR substrate
/// pinned must produce byte-identical outputs on the same leaves.
/// Both passes run inside one `#[test]` because the force-SWAR pin is
/// process-global and libtest runs tests concurrently.
#[test]
fn dispatch_forced_swar_is_byte_identical() {
    fn both_modes<const B: usize, const W: usize>(seed: u64) {
        let mut rng = XorShift(seed);
        let mut scratch = SlicedCsppScratch::<B, W>::new();
        for n in 1..=130usize {
            let leaves: Vec<SlicedPair<B, W>> = (0..n).map(|_| random_leaf(&mut rng, 2)).collect();
            let mut native = Vec::new();
            scratch.cspp_into(&leaves, &mut native);
            let mut swar = Vec::new();
            {
                let _pin = ultrascalar_prefix::ForceSwarGuard::force();
                scratch.cspp_into(&leaves, &mut swar);
            }
            assert_eq!(native, swar, "B={B} W={W} n={n}: dispatch changed a result");
        }
    }
    both_modes::<32, 1>(0xD15B_A7C4_0000_0001);
    both_modes::<8, 2>(0xD15B_A7C4_0000_0002);
    both_modes::<16, 4>(0xD15B_A7C4_0000_0003);
}

/// The sliced ring against the generic `u64` ring under `First`, lane
/// by lane at the word-boundary lanes — bit-for-bit, artefact lanes
/// included (both forms fold from leaf 0).
#[test]
fn ring_oracle_sweep_boundary_lanes_vs_generic() {
    let mut rng = XorShift(0xB16B_00B5_0000_1337);
    for n in 1..=130usize {
        let mut leaves = vec![SlicedPair::<32, 2>::identity(); n];
        let mut lane_inputs = Vec::new();
        for lane in [0usize, 1, 62, 63, 64, 65, 126, 127] {
            let values: Vec<u64> = (0..n).map(|_| rng.next() & 0xFFFF_FFFF).collect();
            let seg: Vec<bool> = (0..n)
                .map(|_| rng.next() & rng.next() & rng.next() & 1 == 1)
                .collect();
            pack_value_lane(&mut leaves, lane, &values, &seg);
            lane_inputs.push((lane, values, seg));
        }
        let out = sliced_cspp_ring(&leaves);
        for (lane, values, seg) in &lane_inputs {
            let generic = cspp_ring::<u64, First>(values, seg);
            let got = unpack_value_lane(&out, *lane);
            for i in 0..n {
                assert_eq!(
                    got[i], generic[i].value,
                    "n={n} lane {lane} station {i}: value"
                );
                assert_eq!(
                    out[i].lane_seg(*lane),
                    generic[i].seg,
                    "n={n} lane {lane} station {i}: seg"
                );
            }
        }
    }
}

/// The seeded exclusive form — the committed-register-file view — vs
/// the generic serial reference at every `n ∈ 1..=130`. The seed
/// carries each lane's committed value with its segment flag raised,
/// so there are no wrap artefacts at all and every output value is
/// contractual.
#[test]
fn seeded_register_view_sweep_every_n_1_to_130() {
    let mut rng = XorShift(0xC0FF_EE00_DDEE_FF11);
    let mut scratch = SlicedCsppScratch::<32, 1>::new();
    let mut out = Vec::new();
    for n in 1..=130usize {
        let mut leaves = vec![SlicedPair::<32, 1>::identity(); n];
        let mut init = SlicedPair::<32, 1>::identity();
        let mut lane_inputs = Vec::new();
        for lane in [0usize, 7, 31, 32, 33, 63] {
            let values: Vec<u64> = (0..n).map(|_| rng.next() & 0xFFFF_FFFF).collect();
            let seg: Vec<bool> = (0..n).map(|_| rng.next() & rng.next() & 1 == 1).collect();
            let committed = rng.next() & 0xFFFF_FFFF;
            pack_value_lane(&mut leaves, lane, &values, &seg);
            init.set_lane(lane, committed, true);
            lane_inputs.push((lane, values, seg, committed));
        }
        scratch.segmented_exclusive_into(&leaves, &init, &mut out);
        for (lane, values, seg, committed) in &lane_inputs {
            let generic =
                segmented_prefix_ring::<u64, First>(values, seg, SegPair::leaf(*committed, true));
            for i in 0..n {
                assert_eq!(
                    out[i].lane_value(*lane),
                    generic[i].value,
                    "n={n} lane {lane} station {i}"
                );
                assert!(out[i].lane_seg(*lane), "n={n} lane {lane} station {i}");
            }
        }
    }
}

proptest! {
    /// Log-depth sliced tree vs the linear ring oracle — exact
    /// equality including wrap-around artefacts, on random widths with
    /// random dense planes.
    #[test]
    fn sliced_tree_matches_sliced_ring(
        raw in proptest::collection::vec(any::<u64>(), 9..=1170),
    ) {
        // 9 words per leaf: 8 value planes + 1 segment word (B=8, W=1).
        let n = raw.len() / 9;
        let leaves: Vec<SlicedPair<8, 1>> = (0..n)
            .map(|i| {
                let mut leaf = SlicedPair::identity();
                for p in 0..8 {
                    leaf.planes[p][0] = raw[9 * i + p];
                }
                // Thin the segment bits so propagation crosses leaves.
                leaf.seg[0] = raw[9 * i + 8] & raw[9 * i];
                leaf
            })
            .collect();
        let mut scratch = SlicedCsppScratch::new();
        let mut out = Vec::new();
        scratch.cspp_into(&leaves, &mut out);
        prop_assert_eq!(&out, &sliced_cspp_ring(&leaves));
    }

    /// Zero-segment inputs: every lane wraps. The sliced forms must
    /// report seg = 0 everywhere and still agree with each other.
    #[test]
    fn sliced_zero_segment_inputs_wrap(
        raw in proptest::collection::vec(any::<u64>(), 8..=512),
    ) {
        let n = raw.len() / 8;
        let leaves: Vec<SlicedPair<8, 1>> = (0..n)
            .map(|i| {
                let mut leaf = SlicedPair::identity();
                for p in 0..8 {
                    leaf.planes[p][0] = raw[8 * i + p];
                }
                leaf
            })
            .collect();
        let ring = sliced_cspp_ring(&leaves);
        for (i, p) in ring.iter().enumerate() {
            prop_assert_eq!(p.seg[0], 0, "station {}", i);
        }
        let mut scratch = SlicedCsppScratch::new();
        let mut out = Vec::new();
        scratch.cspp_into(&leaves, &mut out);
        prop_assert_eq!(&out, &ring);
    }

    /// One random lane of a sliced ring vs the generic reference on
    /// arbitrary values/segments (proptest chooses everything,
    /// including lane position and ring size).
    #[test]
    fn sliced_lane_matches_generic_reference(
        values in proptest::collection::vec(any::<u32>(), 1..=130),
        segs in proptest::collection::vec(any::<bool>(), 1..=130),
        lane_raw in any::<usize>(),
    ) {
        let n = values.len().min(segs.len());
        let values: Vec<u64> = values[..n].iter().map(|&v| v as u64).collect();
        let seg = &segs[..n];
        let lane = lane_raw % 64;
        let mut leaves = vec![SlicedPair::<32, 1>::identity(); n];
        pack_value_lane(&mut leaves, lane, &values, seg);
        let out = sliced_cspp_ring(&leaves);
        let generic = cspp_ring::<u64, First>(&values, seg);
        for i in 0..n {
            prop_assert_eq!(
                out[i].lane_value(lane), generic[i].value,
                "lane {} station {}", lane, i
            );
            prop_assert_eq!(
                out[i].lane_seg(lane), generic[i].seg,
                "lane {} station {}", lane, i
            );
        }
    }
}
