//! Steady-state allocation probe for the packed/arena substrate.
//!
//! A counting global allocator wraps the system allocator; after a
//! warm-up pass that sizes every retained buffer, repeated packed CSPP
//! evaluations, arena rebuilds/scans and incremental leaf updates must
//! perform **zero** allocations. This is the whole point of the arena
//! design: the simulator's cycle loop evaluates these networks millions
//! of times. The measured loop runs under native dispatch *and* with
//! the portable SWAR substrate pinned, so the AVX2 kernels' scratch is
//! covered too — both forms share the same retained buffers.
//!
//! Counting is gated on a const-initialised thread-local so only the
//! probe thread's allocations register: the libtest harness thread
//! lazily initialises its mpmc channel context while the test runs,
//! and that ambient allocation would otherwise land on a random
//! iteration of the measured loop.
//!
//! Single `#[test]` on purpose: the counter is process-global and the
//! default test harness runs tests concurrently.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

struct Counting;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Raised only on the probe thread, only around the measured loop.
    static PROBING: Cell<bool> = const { Cell::new(false) };
}

fn probing() -> bool {
    PROBING.try_with(Cell::get).unwrap_or(false)
}

/// RAII arm/disarm of the probe flag: disarms on drop, so a panicking
/// measured body (a failed assertion inside the loop) unwinds through
/// the guard and cannot leave the thread-local armed to count ambient
/// allocations — e.g. libtest's panic-message formatting — against
/// whatever runs next on this thread.
struct ProbeGuard;

impl ProbeGuard {
    fn arm() -> Self {
        PROBING.with(|p| p.set(true));
        ProbeGuard
    }
}

impl Drop for ProbeGuard {
    fn drop(&mut self) {
        PROBING.with(|p| p.set(false));
    }
}

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if probing() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if probing() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static A: Counting = Counting;

use ultrascalar_prefix::arena::ArenaScan;
use ultrascalar_prefix::op::{SegOp, SegPair, Sum};
use ultrascalar_prefix::packed::{
    AndWords, BitWords, PackedCsppScratch, PackedCsppScratchW, PackedPair, PackedPairW,
};
use ultrascalar_prefix::sliced::{SlicedCsppScratch, SlicedPair};

#[test]
fn substrate_steady_state_allocates_nothing() {
    const N: usize = 1024;
    let values: Vec<u64> = (0..N as u64).map(|i| i.wrapping_mul(0x9E37_79B9)).collect();
    let seg: Vec<u64> = (0..N as u64).map(|i| i.wrapping_mul(0x85EB_CA6B)).collect();
    let values_w: Vec<[u64; 4]> = (0..N as u64)
        .map(|i| std::array::from_fn(|j| (i + j as u64).wrapping_mul(0x9E37_79B9)))
        .collect();
    let seg_w: Vec<[u64; 4]> = (0..N as u64)
        .map(|i| std::array::from_fn(|j| (i + j as u64).wrapping_mul(0x85EB_CA6B)))
        .collect();
    let leaves: Vec<SegPair<u32>> = (0..N as u32)
        .map(|i| SegPair::leaf(i * 7 + 1, i % 5 == 2))
        .collect();
    let sliced_leaves: Vec<SlicedPair<32, 1>> = (0..N as u64)
        .map(|i| {
            let mut leaf = SlicedPair::identity();
            for lane in 0..64 {
                leaf.set_lane(
                    lane,
                    (i * 64 + lane as u64).wrapping_mul(0x9E37_79B9) & 0xFFFF_FFFF,
                    (i + lane as u64).is_multiple_of(3),
                );
            }
            leaf
        })
        .collect();
    let mut sliced_init = SlicedPair::<32, 1>::identity();
    for lane in 0..64 {
        sliced_init.set_lane(lane, lane as u64 * 5 + 1, true);
    }

    let mut packed = PackedCsppScratch::new();
    let mut packed_out = Vec::new();
    let mut flags_out = Vec::new();
    let mut packed_w = PackedCsppScratchW::<4>::new();
    let mut packed_w_out: Vec<PackedPairW<4>> = Vec::new();
    let mut arena = ArenaScan::new();
    let mut arena_out = Vec::new();
    let mut bits = BitWords::new(N);
    let mut sliced = SlicedCsppScratch::<32, 1>::new();
    let mut sliced_out: Vec<SlicedPair<32, 1>> = Vec::new();

    let steady = |packed: &mut PackedCsppScratch,
                  packed_out: &mut Vec<PackedPair>,
                  flags_out: &mut Vec<u64>,
                  packed_w: &mut PackedCsppScratchW<4>,
                  packed_w_out: &mut Vec<PackedPairW<4>>,
                  arena: &mut ArenaScan<SegPair<u32>>,
                  arena_out: &mut Vec<SegPair<u32>>,
                  bits: &mut BitWords,
                  sliced: &mut SlicedCsppScratch<32, 1>,
                  sliced_out: &mut Vec<SlicedPair<32, 1>>| {
        packed.cspp_into::<AndWords>(&values, &seg, packed_out);
        packed.all_earlier_into(&values, 17, flags_out);
        packed_w.cspp_into::<AndWords>(&values_w, &seg_w, packed_w_out);
        arena.build::<SegOp<Sum>>(&leaves);
        let root = *arena.root();
        arena.scan_exclusive_into::<SegOp<Sum>>(root, arena_out);
        for i in (0..N).step_by(97) {
            arena.update_leaf::<SegOp<Sum>>(i, SegPair::leaf(i as u32, i % 2 == 0));
        }
        bits.clear();
        for i in (0..N).step_by(13) {
            bits.set(i);
        }
        assert!(bits.any());
        // Bit-sliced value network: both the ring form (tree +
        // whole-ring fold) and the seeded register-file form must run
        // out of the same retained scratch.
        sliced.cspp_into(&sliced_leaves, sliced_out);
        sliced.segmented_exclusive_into(&sliced_leaves, &sliced_init, sliced_out);
    };

    // Warm-up under both dispatch modes: sizes every retained buffer
    // on the native (AVX2 where detected) and the forced-SWAR path, so
    // the measured loops below must stay allocation-free regardless of
    // which kernel dispatch selects.
    steady(
        &mut packed,
        &mut packed_out,
        &mut flags_out,
        &mut packed_w,
        &mut packed_w_out,
        &mut arena,
        &mut arena_out,
        &mut bits,
        &mut sliced,
        &mut sliced_out,
    );
    {
        let _swar = ultrascalar_prefix::ForceSwarGuard::force();
        steady(
            &mut packed,
            &mut packed_out,
            &mut flags_out,
            &mut packed_w,
            &mut packed_w_out,
            &mut arena,
            &mut arena_out,
            &mut bits,
            &mut sliced,
            &mut sliced_out,
        );
    }

    let guard = ProbeGuard::arm();
    let before = ALLOCS.load(Ordering::SeqCst);
    for _ in 0..50 {
        steady(
            &mut packed,
            &mut packed_out,
            &mut flags_out,
            &mut packed_w,
            &mut packed_w_out,
            &mut arena,
            &mut arena_out,
            &mut bits,
            &mut sliced,
            &mut sliced_out,
        );
    }
    // The same warm loop with dispatch pinned to the portable SWAR
    // kernels: the AVX2 and SWAR forms share every retained buffer, so
    // neither mode may allocate once warm (the guard swap itself is
    // two atomic stores, allocation-free).
    {
        let _swar = ultrascalar_prefix::ForceSwarGuard::force();
        for _ in 0..50 {
            steady(
                &mut packed,
                &mut packed_out,
                &mut flags_out,
                &mut packed_w,
                &mut packed_w_out,
                &mut arena,
                &mut arena_out,
                &mut bits,
                &mut sliced,
                &mut sliced_out,
            );
        }
    }
    let after = ALLOCS.load(Ordering::SeqCst);
    drop(guard);
    assert_eq!(
        after - before,
        0,
        "packed/arena substrate allocated in steady state"
    );
}
