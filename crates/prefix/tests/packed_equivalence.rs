//! Property tests pinning the packed SWAR CSPP (`packed` module)
//! against the generic ring reference, lane by lane, on random ring
//! sizes `n ∈ [1, 256]` — including non-power-of-two widths and
//! zero-segment (all-wrap) inputs.

use proptest::prelude::*;
use ultrascalar_prefix::cspp::{cspp_all_earlier, cspp_ring, segmented_prefix_ring};
use ultrascalar_prefix::op::{BoolAnd, BoolOr, SegPair};
use ultrascalar_prefix::packed::{
    packed_cspp_ring, unpack_lane, AndWords, OrWords, PackedCsppScratch, PackedPair,
};

/// Check every lane of a packed CSPP result against the generic ring
/// reference run on that lane's booleans.
fn assert_lanes_match_and(values: &[u64], seg: &[u64], packed: &[PackedPair]) {
    let n = values.len();
    for lane in 0..64 {
        let lane_v = unpack_lane(values, lane);
        let lane_s = unpack_lane(seg, lane);
        let generic = cspp_ring::<bool, BoolAnd>(&lane_v, &lane_s);
        for i in 0..n {
            let gs = generic[i].seg;
            assert_eq!(
                packed[i].seg >> lane & 1 == 1,
                gs,
                "AND lane {lane} station {i}: seg mismatch"
            );
            // Lanes with no boundary anywhere carry wrap-around
            // artefact values in both forms; only compare values when
            // the segment flag marks them meaningful. (The artefacts
            // agree too, but only the flagged ones are contractual.)
            if gs {
                assert_eq!(
                    packed[i].value >> lane & 1 == 1,
                    generic[i].value,
                    "AND lane {lane} station {i}: value mismatch"
                );
            }
        }
    }
}

proptest! {
    /// Packed ring reference vs 64 generic rings, AND lanes.
    #[test]
    fn packed_ring_matches_generic_per_lane_and(
        values in proptest::collection::vec(any::<u64>(), 1..=256),
        segbits in proptest::collection::vec(any::<u64>(), 1..=256),
    ) {
        let n = values.len().min(segbits.len());
        let values = &values[..n];
        let seg = &segbits[..n];
        let packed = packed_cspp_ring::<AndWords>(values, seg);
        assert_lanes_match_and(values, seg, &packed);
    }

    /// Packed ring reference vs 64 generic rings, OR lanes.
    #[test]
    fn packed_ring_matches_generic_per_lane_or(
        values in proptest::collection::vec(any::<u64>(), 1..=256),
        segbits in proptest::collection::vec(any::<u64>(), 1..=256),
    ) {
        let n = values.len().min(segbits.len());
        let values = &values[..n];
        let seg = &segbits[..n];
        let packed = packed_cspp_ring::<OrWords>(values, seg);
        for lane in 0..64 {
            let lane_v = unpack_lane(values, lane);
            let lane_s = unpack_lane(seg, lane);
            let generic = cspp_ring::<bool, BoolOr>(&lane_v, &lane_s);
            for i in 0..n {
                prop_assert_eq!(
                    packed[i].seg >> lane & 1 == 1,
                    generic[i].seg,
                    "OR lane {} station {}", lane, i
                );
                if generic[i].seg {
                    prop_assert_eq!(
                        packed[i].value >> lane & 1 == 1,
                        generic[i].value,
                        "OR lane {} station {}", lane, i
                    );
                }
            }
        }
    }

    /// Log-depth packed tree vs packed ring reference — exact equality
    /// including wrap-around artefact values, on random widths.
    #[test]
    fn packed_tree_matches_packed_ring(
        values in proptest::collection::vec(any::<u64>(), 1..=256),
        segbits in proptest::collection::vec(any::<u64>(), 1..=256),
    ) {
        let n = values.len().min(segbits.len());
        let values = &values[..n];
        let seg = &segbits[..n];
        let mut scratch = PackedCsppScratch::new();
        let mut out = Vec::new();
        scratch.cspp_into::<AndWords>(values, seg, &mut out);
        prop_assert_eq!(&out, &packed_cspp_ring::<AndWords>(values, seg));
        scratch.cspp_into::<OrWords>(values, seg, &mut out);
        prop_assert_eq!(&out, &packed_cspp_ring::<OrWords>(values, seg));
    }

    /// Zero-segment inputs: every lane wraps. The packed forms must
    /// report seg = 0 everywhere and still agree with each other.
    #[test]
    fn packed_zero_segment_inputs_wrap(
        values in proptest::collection::vec(any::<u64>(), 1..=256),
    ) {
        let seg = vec![0u64; values.len()];
        let ring = packed_cspp_ring::<AndWords>(&values, &seg);
        for (i, p) in ring.iter().enumerate() {
            prop_assert_eq!(p.seg, 0, "station {}", i);
        }
        let mut scratch = PackedCsppScratch::new();
        let mut out = Vec::new();
        scratch.cspp_into::<AndWords>(&values, &seg, &mut out);
        prop_assert_eq!(&out, &ring);
        assert_lanes_match_and(&values, &seg, &ring);
    }

    /// Seeded non-cyclic exclusive prefix vs the generic segmented
    /// ring, lane by lane (exact: the seed provides the lane history,
    /// so there are no wrap artefacts).
    #[test]
    fn packed_seeded_exclusive_matches_generic_per_lane(
        values in proptest::collection::vec(any::<u64>(), 1..=256),
        segbits in proptest::collection::vec(any::<u64>(), 1..=256),
        init_v in any::<u64>(),
        init_s in any::<u64>(),
    ) {
        let n = values.len().min(segbits.len());
        let values = &values[..n];
        let seg = &segbits[..n];
        let init = PackedPair::leaf(init_v, init_s);
        let mut scratch = PackedCsppScratch::new();
        let mut out = Vec::new();
        scratch.segmented_exclusive_into::<AndWords>(values, seg, init, &mut out);
        for lane in 0..64 {
            let lane_v = unpack_lane(values, lane);
            let lane_s = unpack_lane(seg, lane);
            let lane_init = SegPair::leaf(init_v >> lane & 1 == 1, init_s >> lane & 1 == 1);
            let generic = segmented_prefix_ring::<bool, BoolAnd>(&lane_v, &lane_s, lane_init);
            for i in 0..n {
                prop_assert_eq!(
                    out[i].value >> lane & 1 == 1,
                    generic[i].value,
                    "lane {} station {}", lane, i
                );
                prop_assert_eq!(
                    out[i].seg >> lane & 1 == 1,
                    generic[i].seg,
                    "lane {} station {}", lane, i
                );
            }
        }
    }

    /// Figure 5 convenience form vs the generic one, lane by lane.
    #[test]
    fn packed_all_earlier_matches_generic(
        conds in proptest::collection::vec(any::<u64>(), 1..=256),
        oldest_raw in any::<usize>(),
    ) {
        let oldest = oldest_raw % conds.len();
        let mut scratch = PackedCsppScratch::new();
        let mut out = Vec::new();
        scratch.all_earlier_into(&conds, oldest, &mut out);
        for lane in 0..64 {
            let lane_c = unpack_lane(&conds, lane);
            let generic = cspp_all_earlier(&lane_c, oldest);
            prop_assert_eq!(
                &unpack_lane(&out, lane),
                &generic,
                "lane {}", lane
            );
        }
    }
}
