//! Property tests pinning the packed SWAR CSPP (`packed` module)
//! against the generic ring reference, lane by lane, on random ring
//! sizes `n ∈ [1, 256]` — including non-power-of-two widths and
//! zero-segment (all-wrap) inputs.

use proptest::prelude::*;
use ultrascalar_prefix::cspp::{cspp_all_earlier, cspp_ring, segmented_prefix_ring};
use ultrascalar_prefix::op::{BoolAnd, BoolOr, SegPair};
use ultrascalar_prefix::packed::{
    packed_cspp_ring, packed_cspp_ring_w, unpack_lane, unpack_lane_w, AndWords, OrWords,
    PackedCsppScratch, PackedCsppScratchW, PackedPair, WordOp,
};

/// Check every lane of a packed CSPP result against the generic ring
/// reference run on that lane's booleans.
fn assert_lanes_match_and(values: &[u64], seg: &[u64], packed: &[PackedPair]) {
    let n = values.len();
    for lane in 0..64 {
        let lane_v = unpack_lane(values, lane);
        let lane_s = unpack_lane(seg, lane);
        let generic = cspp_ring::<bool, BoolAnd>(&lane_v, &lane_s);
        for i in 0..n {
            let gs = generic[i].seg;
            assert_eq!(
                packed[i].seg >> lane & 1 == 1,
                gs,
                "AND lane {lane} station {i}: seg mismatch"
            );
            // Lanes with no boundary anywhere carry wrap-around
            // artefact values in both forms; only compare values when
            // the segment flag marks them meaningful. (The artefacts
            // agree too, but only the flagged ones are contractual.)
            if gs {
                assert_eq!(
                    packed[i].value >> lane & 1 == 1,
                    generic[i].value,
                    "AND lane {lane} station {i}: value mismatch"
                );
            }
        }
    }
}

proptest! {
    /// Packed ring reference vs 64 generic rings, AND lanes.
    #[test]
    fn packed_ring_matches_generic_per_lane_and(
        values in proptest::collection::vec(any::<u64>(), 1..=256),
        segbits in proptest::collection::vec(any::<u64>(), 1..=256),
    ) {
        let n = values.len().min(segbits.len());
        let values = &values[..n];
        let seg = &segbits[..n];
        let packed = packed_cspp_ring::<AndWords>(values, seg);
        assert_lanes_match_and(values, seg, &packed);
    }

    /// Packed ring reference vs 64 generic rings, OR lanes.
    #[test]
    fn packed_ring_matches_generic_per_lane_or(
        values in proptest::collection::vec(any::<u64>(), 1..=256),
        segbits in proptest::collection::vec(any::<u64>(), 1..=256),
    ) {
        let n = values.len().min(segbits.len());
        let values = &values[..n];
        let seg = &segbits[..n];
        let packed = packed_cspp_ring::<OrWords>(values, seg);
        for lane in 0..64 {
            let lane_v = unpack_lane(values, lane);
            let lane_s = unpack_lane(seg, lane);
            let generic = cspp_ring::<bool, BoolOr>(&lane_v, &lane_s);
            for i in 0..n {
                prop_assert_eq!(
                    packed[i].seg >> lane & 1 == 1,
                    generic[i].seg,
                    "OR lane {} station {}", lane, i
                );
                if generic[i].seg {
                    prop_assert_eq!(
                        packed[i].value >> lane & 1 == 1,
                        generic[i].value,
                        "OR lane {} station {}", lane, i
                    );
                }
            }
        }
    }

    /// Log-depth packed tree vs packed ring reference — exact equality
    /// including wrap-around artefact values, on random widths.
    #[test]
    fn packed_tree_matches_packed_ring(
        values in proptest::collection::vec(any::<u64>(), 1..=256),
        segbits in proptest::collection::vec(any::<u64>(), 1..=256),
    ) {
        let n = values.len().min(segbits.len());
        let values = &values[..n];
        let seg = &segbits[..n];
        let mut scratch = PackedCsppScratch::new();
        let mut out = Vec::new();
        scratch.cspp_into::<AndWords>(values, seg, &mut out);
        prop_assert_eq!(&out, &packed_cspp_ring::<AndWords>(values, seg));
        scratch.cspp_into::<OrWords>(values, seg, &mut out);
        prop_assert_eq!(&out, &packed_cspp_ring::<OrWords>(values, seg));
    }

    /// Zero-segment inputs: every lane wraps. The packed forms must
    /// report seg = 0 everywhere and still agree with each other.
    #[test]
    fn packed_zero_segment_inputs_wrap(
        values in proptest::collection::vec(any::<u64>(), 1..=256),
    ) {
        let seg = vec![0u64; values.len()];
        let ring = packed_cspp_ring::<AndWords>(&values, &seg);
        for (i, p) in ring.iter().enumerate() {
            prop_assert_eq!(p.seg, 0, "station {}", i);
        }
        let mut scratch = PackedCsppScratch::new();
        let mut out = Vec::new();
        scratch.cspp_into::<AndWords>(&values, &seg, &mut out);
        prop_assert_eq!(&out, &ring);
        assert_lanes_match_and(&values, &seg, &ring);
    }

    /// Seeded non-cyclic exclusive prefix vs the generic segmented
    /// ring, lane by lane (exact: the seed provides the lane history,
    /// so there are no wrap artefacts).
    #[test]
    fn packed_seeded_exclusive_matches_generic_per_lane(
        values in proptest::collection::vec(any::<u64>(), 1..=256),
        segbits in proptest::collection::vec(any::<u64>(), 1..=256),
        init_v in any::<u64>(),
        init_s in any::<u64>(),
    ) {
        let n = values.len().min(segbits.len());
        let values = &values[..n];
        let seg = &segbits[..n];
        let init = PackedPair::leaf(init_v, init_s);
        let mut scratch = PackedCsppScratch::new();
        let mut out = Vec::new();
        scratch.segmented_exclusive_into::<AndWords>(values, seg, init, &mut out);
        for lane in 0..64 {
            let lane_v = unpack_lane(values, lane);
            let lane_s = unpack_lane(seg, lane);
            let lane_init = SegPair::leaf(init_v >> lane & 1 == 1, init_s >> lane & 1 == 1);
            let generic = segmented_prefix_ring::<bool, BoolAnd>(&lane_v, &lane_s, lane_init);
            for i in 0..n {
                prop_assert_eq!(
                    out[i].value >> lane & 1 == 1,
                    generic[i].value,
                    "lane {} station {}", lane, i
                );
                prop_assert_eq!(
                    out[i].seg >> lane & 1 == 1,
                    generic[i].seg,
                    "lane {} station {}", lane, i
                );
            }
        }
    }

    /// Figure 5 convenience form vs the generic one, lane by lane.
    #[test]
    fn packed_all_earlier_matches_generic(
        conds in proptest::collection::vec(any::<u64>(), 1..=256),
        oldest_raw in any::<usize>(),
    ) {
        let oldest = oldest_raw % conds.len();
        let mut scratch = PackedCsppScratch::new();
        let mut out = Vec::new();
        scratch.all_earlier_into(&conds, oldest, &mut out);
        for lane in 0..64 {
            let lane_c = unpack_lane(&conds, lane);
            let generic = cspp_all_earlier(&lane_c, oldest);
            prop_assert_eq!(
                &unpack_lane(&out, lane),
                &generic,
                "lane {}", lane
            );
        }
    }

    /// Multi-word (W = 4, 256 lanes) log-depth tree vs multi-word ring
    /// oracle — exact equality including wrap artefacts.
    #[test]
    fn multiword_tree_matches_multiword_ring(
        raw in proptest::collection::vec(any::<u64>(), 8..=520),
    ) {
        let n = raw.len() / 8;
        let values: Vec<[u64; 4]> =
            (0..n).map(|i| [raw[8 * i], raw[8 * i + 1], raw[8 * i + 2], raw[8 * i + 3]]).collect();
        let seg: Vec<[u64; 4]> = (0..n)
            .map(|i| {
                [
                    raw[8 * i + 4] & raw[8 * i],
                    raw[8 * i + 5] & raw[8 * i + 1],
                    raw[8 * i + 6] & raw[8 * i + 2],
                    raw[8 * i + 7] & raw[8 * i + 3],
                ]
            })
            .collect();
        let mut scratch = PackedCsppScratchW::<4>::new();
        let mut out = Vec::new();
        scratch.cspp_into::<AndWords>(&values, &seg, &mut out);
        prop_assert_eq!(&out, &packed_cspp_ring_w::<AndWords, 4>(&values, &seg));
        scratch.cspp_into::<OrWords>(&values, &seg, &mut out);
        prop_assert_eq!(&out, &packed_cspp_ring_w::<OrWords, 4>(&values, &seg));
    }

    /// Multi-word all-earlier vs the generic form, at the word-boundary
    /// lanes of a W = 2 (128-lane) problem.
    #[test]
    fn multiword_all_earlier_matches_generic(
        raw in proptest::collection::vec(any::<u64>(), 2..=260),
        oldest_raw in any::<usize>(),
    ) {
        let n = raw.len() / 2;
        let conds: Vec<[u64; 2]> = (0..n).map(|i| [raw[2 * i], raw[2 * i + 1]]).collect();
        let oldest = oldest_raw % n;
        let mut scratch = PackedCsppScratchW::<2>::new();
        let mut out = Vec::new();
        scratch.all_earlier_into(&conds, oldest, &mut out);
        for lane in [0usize, 1, 62, 63, 64, 65, 126, 127] {
            let lane_c = unpack_lane_w(&conds, lane);
            let generic = cspp_all_earlier(&lane_c, oldest);
            prop_assert_eq!(
                &unpack_lane_w(&out, lane),
                &generic,
                "lane {}", lane
            );
        }
    }
}

/// Deterministic xorshift for the exhaustive sweeps below.
struct XorShift(u64);
impl XorShift {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

/// Tree vs ring for one operator/width at every ring size `n` in
/// `1..=130`, with several random word fills per size. One scratch is
/// reused across all sizes, so the sweep also exercises the
/// shape-change path (`ensure_shape` re-padding between every size).
fn sweep_tree_vs_ring_single<O: WordOp>(seed: u64) {
    let mut rng = XorShift(seed);
    let mut scratch = PackedCsppScratch::new();
    let mut out = Vec::new();
    for n in 1..=130usize {
        for _fill in 0..4 {
            let values: Vec<u64> = (0..n).map(|_| rng.next()).collect();
            // Sparse-ish segments so some lanes wrap (all-low columns).
            let seg: Vec<u64> = (0..n)
                .map(|_| rng.next() & rng.next() & rng.next())
                .collect();
            let ring = packed_cspp_ring::<O>(&values, &seg);
            scratch.cspp_into::<O>(&values, &seg, &mut out);
            assert_eq!(out, ring, "single-word n={n}");
        }
    }
}

fn sweep_tree_vs_ring_multi<O: WordOp, const W: usize>(seed: u64) {
    let mut rng = XorShift(seed);
    let mut scratch = PackedCsppScratchW::<W>::new();
    let mut out = Vec::new();
    for n in 1..=130usize {
        let values: Vec<[u64; W]> = (0..n)
            .map(|_| std::array::from_fn(|_| rng.next()))
            .collect();
        let seg: Vec<[u64; W]> = (0..n)
            .map(|_| std::array::from_fn(|_| rng.next() & rng.next() & rng.next()))
            .collect();
        let ring = packed_cspp_ring_w::<O, W>(&values, &seg);
        scratch.cspp_into::<O>(&values, &seg, &mut out);
        assert_eq!(out, ring, "W={W} n={n}");
    }
}

/// Exhaustive differential sweep of the packed CSPP tree against the
/// ring oracle for **every** ring size `n ∈ 1..=130` — deterministic
/// coverage of the word-boundary sizes 63/64/65/127/128/129 and every
/// non-power-of-two padding shape in between, for both operators and
/// lane widths W ∈ {1, 2, 4}.
#[test]
fn ring_oracle_sweep_every_n_1_to_130() {
    sweep_tree_vs_ring_single::<AndWords>(0x1357_9BDF_2468_ACE0);
    sweep_tree_vs_ring_single::<OrWords>(0x0FED_CBA9_8765_4321);
    sweep_tree_vs_ring_multi::<AndWords, 2>(0xA5A5_5A5A_C3C3_3C3C);
    sweep_tree_vs_ring_multi::<OrWords, 2>(0x1111_2222_3333_4444);
    sweep_tree_vs_ring_multi::<AndWords, 4>(0xDEAD_BEEF_CAFE_F00D);
    sweep_tree_vs_ring_multi::<OrWords, 4>(0x9876_5432_10AB_CDEF);
}

/// Dispatch consistency: the same inputs through the log-depth trees
/// under whatever dispatch the host selects (AVX2 where detected) and
/// again with the portable SWAR substrate pinned must produce
/// **byte-identical** outputs — dispatch may change cost, never a
/// result. Both passes live inside one `#[test]` because the
/// force-SWAR pin is process-global and libtest runs tests
/// concurrently: pinning here must not silently downgrade a
/// neighbouring test's native pass mid-measurement.
#[test]
fn dispatch_forced_swar_is_byte_identical() {
    fn both_modes<O: WordOp, const W: usize>(seed: u64) {
        let mut rng = XorShift(seed);
        let mut scratch = PackedCsppScratchW::<W>::new();
        for n in 1..=130usize {
            let values: Vec<[u64; W]> = (0..n)
                .map(|_| std::array::from_fn(|_| rng.next()))
                .collect();
            let seg: Vec<[u64; W]> = (0..n)
                .map(|_| std::array::from_fn(|_| rng.next() & rng.next()))
                .collect();
            let mut native = Vec::new();
            scratch.cspp_into::<O>(&values, &seg, &mut native);
            let mut swar = Vec::new();
            {
                let _pin = ultrascalar_prefix::ForceSwarGuard::force();
                scratch.cspp_into::<O>(&values, &seg, &mut swar);
            }
            assert_eq!(native, swar, "W={W} n={n}: dispatch changed a result");
        }
    }
    both_modes::<AndWords, 1>(0x00D1_5A7C_0000_0001);
    both_modes::<OrWords, 1>(0x1111_AAAA_BBBB_0001);
    both_modes::<AndWords, 2>(0x2222_CCCC_DDDD_0002);
    both_modes::<OrWords, 2>(0x3333_EEEE_FFFF_0003);
    both_modes::<AndWords, 4>(0x4444_9999_8888_0004);
    both_modes::<OrWords, 4>(0x5555_7777_6666_0005);
}

/// The same sweep against the *generic* per-lane tree at the lane-word
/// boundaries: the packed form is contractually a stack of 64·W
/// independent boolean networks, so lanes 63/64/65 (and 127/128/129
/// for W = 4) must reproduce `cspp_ring` on their booleans exactly.
#[test]
fn ring_oracle_sweep_boundary_lanes_vs_generic() {
    let mut rng = XorShift(0xB16B_00B5_0000_1337);
    for n in 1..=130usize {
        let values: Vec<[u64; 4]> = (0..n)
            .map(|_| std::array::from_fn(|_| rng.next()))
            .collect();
        let seg: Vec<[u64; 4]> = (0..n)
            .map(|_| std::array::from_fn(|_| rng.next() & rng.next()))
            .collect();
        let packed = packed_cspp_ring_w::<AndWords, 4>(&values, &seg);
        for lane in [0usize, 63, 64, 65, 127, 128, 129, 255] {
            let lane_v = unpack_lane_w(&values, lane);
            let lane_s = unpack_lane_w(&seg, lane);
            let generic = cspp_ring::<bool, BoolAnd>(&lane_v, &lane_s);
            for i in 0..n {
                assert_eq!(
                    packed[i].seg[lane / 64] >> (lane % 64) & 1 == 1,
                    generic[i].seg,
                    "n={n} lane {lane} station {i}: seg"
                );
                if generic[i].seg {
                    assert_eq!(
                        packed[i].value[lane / 64] >> (lane % 64) & 1 == 1,
                        generic[i].value,
                        "n={n} lane {lane} station {i}: value"
                    );
                }
            }
        }
    }
}

/// Hop-band bookkeeping: the per-lane `assign_lane` column write must
/// produce nested bands (`bands[d] ⊆ bands[d+1]`), `test` must agree
/// with the assigned first-unready level (saturating past the top
/// band), and re-assignment ("promotion" as horizons pass) must fully
/// overwrite the previous column.
#[test]
fn hop_bands_nest_and_promote() {
    use ultrascalar_prefix::packed::{hop_band_count, hop_level, HopBands};
    // Level geometry: bit-length of XOR, zero on the diagonal.
    assert_eq!(hop_level(5, 5), 0);
    assert_eq!(hop_level(4, 5), 1);
    assert_eq!(hop_level(0, 7), 3);
    assert_eq!(hop_band_count(1), 1);
    assert_eq!(hop_band_count(8), 4);
    assert_eq!(hop_band_count(64), 7);

    let mut rng = XorShift(0x0BAD_5EED_0000_0001);
    let mut bands: HopBands<4> = HopBands::new();
    for num_bands in 1..=7usize {
        bands.prepare(num_bands);
        let mut expect = vec![num_bands; 256]; // ready everywhere
        for _ in 0..200 {
            let lane = (rng.next() % 256) as usize;
            let first = (rng.next() % (num_bands as u64 + 2)) as usize;
            bands.assign_lane(lane, first);
            expect[lane] = first;
            for (lane, &first) in expect.iter().enumerate() {
                for d in 0..num_bands + 2 {
                    assert_eq!(
                        bands.test(d, lane),
                        d.min(num_bands - 1) >= first.min(num_bands),
                        "bands={num_bands} lane={lane} level={d} first={first}"
                    );
                }
            }
            // Nesting: a lane unready at level d is unready at d+1.
            for d in 0..num_bands.saturating_sub(1) {
                for lane in 0..256 {
                    assert!(
                        !bands.test(d, lane) || bands.test(d + 1, lane),
                        "band {d} not nested in {} (lane {lane})",
                        d + 1
                    );
                }
            }
            // The top band is the union.
            for lane in 0..256 {
                let any = (0..num_bands).any(|d| bands.test(d, lane));
                assert_eq!(bands.top()[lane / 64] >> (lane % 64) & 1 == 1, any);
            }
        }
        bands.clear();
        for lane in 0..256 {
            assert!(!bands.test(num_bands - 1, lane), "clear left lane {lane}");
        }
    }
}

/// The division-free horizon assignment must agree with
/// `assign_lane` fed the closed-form first-unready level
/// `⌊(t − horizon)/step⌋ + 1` — across the zero-step and saturating
/// extremes where the closed form needs its special cases.
#[test]
fn hop_bands_horizon_assignment_matches_closed_form() {
    use ultrascalar_prefix::packed::HopBands;
    let mut rng = XorShift(0xD1F1_5103_0000_0001);
    let mut by_horizon: HopBands<4> = HopBands::new();
    let mut by_level: HopBands<4> = HopBands::new();
    for num_bands in 1..=7usize {
        by_horizon.prepare(num_bands);
        by_level.prepare(num_bands);
        for iter in 0..400 {
            let lane = (rng.next() % 256) as usize;
            let t = rng.next() % 1000;
            let (horizon, step) = match iter % 5 {
                0 => (rng.next() % 1200, rng.next() % 8), // dense
                1 => (rng.next() % 1200, 0),              // step 0
                2 => (u64::MAX, rng.next()),              // MAX sentinel
                3 => (rng.next() % 1200, u64::MAX / 2 + rng.next() % 64), // saturating step
                _ => (rng.next(), rng.next()),            // arbitrary
            };
            by_horizon.assign_lane_horizon(lane, horizon, step, t);
            let first = if horizon > t {
                0
            } else {
                match (t - horizon).checked_div(step) {
                    None => num_bands, // step 0: ready at every distance
                    Some(q) => (q + 1).min(num_bands as u64) as usize,
                }
            };
            by_level.assign_lane(lane, first);
            for d in 0..num_bands {
                assert_eq!(
                    by_horizon.test(d, lane),
                    by_level.test(d, lane),
                    "bands={num_bands} lane={lane} d={d} horizon={horizon} step={step} t={t}"
                );
            }
        }
    }
}
