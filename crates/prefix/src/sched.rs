//! Prioritised resource allocation by cyclic prefix sums — the shared-
//! ALU scheduler of Henry & Kuszmaul's Ultrascalar Memo 2, referenced
//! by the paper's §1 ("We know how to separate the two parameters by
//! issuing instructions to a smaller pool of shared ALUs. Our ALU
//! scheduling circuitry is described elsewhere \[6\] and fits within the
//! bounds described here") and §7 ("a hybrid Ultrascalar with a
//! window-size of 128 and 16 shared ALUs").
//!
//! The circuit is one more CSPP instance: each station raises a request
//! bit; a cyclic *prefix count* starting at the oldest station numbers
//! the requests in age order; station `i` is granted iff it requests
//! and fewer than `k` older stations request. Gate delay `Θ(log n)`
//! (a log-width counting prefix), the same bound as the rest of the
//! datapath.

use crate::cspp::cspp_tree;
use crate::op::PrefixOp;

/// Saturating counter addition — the prefix operator for request
/// counting. Saturation keeps the counter width at `⌈log₂(k+1)⌉` bits
/// in hardware; counts above `k` are equivalent for grant purposes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SatCount<const MAX: u32>;

impl<const MAX: u32> PrefixOp<u32> for SatCount<MAX> {
    #[inline]
    fn combine(a: &u32, b: &u32) -> u32 {
        (a + b).min(MAX)
    }
}

/// Grant up to `k` of the raised `requests`, oldest first, where age
/// order starts at `oldest` and proceeds cyclically — the Memo 2
/// scheduler's semantics, evaluated through the actual cyclic prefix.
///
/// Returns the grant bit per station.
///
/// # Panics
/// Panics if `oldest >= requests.len()` or the ring is empty.
pub fn allocate_oldest_first(requests: &[bool], k: usize, oldest: usize) -> Vec<bool> {
    assert!(!requests.is_empty(), "allocation over an empty ring");
    assert!(oldest < requests.len(), "oldest station out of range");
    if k == 0 {
        return vec![false; requests.len()];
    }
    // Cap the saturation at a value safely above any practical k; the
    // const generic mirrors the fixed counter width of the circuit.
    const CAP: u32 = 1 << 16;
    let k = k.min(CAP as usize - 1);
    let xs: Vec<u32> = requests.iter().map(|&r| r as u32).collect();
    let mut seg = vec![false; requests.len()];
    seg[oldest] = true;
    // prefix[i] = number of requests among stations strictly older
    // than i (cyclic, from the oldest station). Tree form: the slow
    // ring reference is reserved for test oracles.
    let prefix = cspp_tree::<u32, SatCount<CAP>>(&xs, &seg);
    requests
        .iter()
        .enumerate()
        .map(|(i, &req)| {
            let older = if i == oldest { 0 } else { prefix[i].value };
            req && (older as usize) < k
        })
        .collect()
}

/// Reference implementation: walk the ring in age order granting the
/// first `k` requesters. Used by the property tests to pin
/// [`allocate_oldest_first`].
pub fn allocate_reference(requests: &[bool], k: usize, oldest: usize) -> Vec<bool> {
    assert!(oldest < requests.len(), "oldest station out of range");
    let n = requests.len();
    let mut grants = vec![false; n];
    let mut left = k;
    for step in 0..n {
        let i = (oldest + step) % n;
        if requests[i] && left > 0 {
            grants[i] = true;
            left -= 1;
        }
    }
    grants
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_oldest_first() {
        // Ring of 8, oldest = 5, requests at {6, 0, 2, 4}; k = 2 grants
        // the two oldest requesters: 6 and 0.
        let mut req = vec![false; 8];
        for i in [6usize, 0, 2, 4] {
            req[i] = true;
        }
        let g = allocate_oldest_first(&req, 2, 5);
        let granted: Vec<usize> = (0..8).filter(|&i| g[i]).collect();
        assert_eq!(granted, vec![0, 6]);
    }

    #[test]
    fn k_zero_grants_nothing_k_large_grants_all() {
        let req = vec![true; 6];
        assert!(allocate_oldest_first(&req, 0, 3).iter().all(|&g| !g));
        assert!(allocate_oldest_first(&req, 6, 3).iter().all(|&g| g));
        assert!(allocate_oldest_first(&req, 100, 3).iter().all(|&g| g));
    }

    #[test]
    fn grants_never_exceed_k_and_only_requesters() {
        let req = [true, false, true, true, true, false, true, true];
        for k in 0..=8 {
            for oldest in 0..8 {
                let g = allocate_oldest_first(&req, k, oldest);
                assert!(g.iter().filter(|&&x| x).count() <= k);
                for i in 0..8 {
                    assert!(!g[i] || req[i]);
                }
            }
        }
    }

    #[test]
    fn matches_reference_exhaustively_small() {
        for n in 1..=6usize {
            for pattern in 0..(1u32 << n) {
                let req: Vec<bool> = (0..n).map(|i| pattern >> i & 1 == 1).collect();
                for k in 0..=n {
                    for oldest in 0..n {
                        assert_eq!(
                            allocate_oldest_first(&req, k, oldest),
                            allocate_reference(&req, k, oldest),
                            "n={n} pattern={pattern:b} k={k} oldest={oldest}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oldest_bounds_checked() {
        let _ = allocate_oldest_first(&[true], 1, 3);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn prefix_allocator_matches_reference(
            req in proptest::collection::vec(any::<bool>(), 1..64),
            k in 0usize..70,
            oldest_raw in 0usize..64,
        ) {
            let oldest = oldest_raw % req.len();
            prop_assert_eq!(
                allocate_oldest_first(&req, k, oldest),
                allocate_reference(&req, k, oldest)
            );
        }
    }
}
