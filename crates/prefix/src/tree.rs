//! Tree-structured scans with circuit-depth accounting.
//!
//! A parallel-prefix *tree* evaluates a scan in `Θ(log n)` combining
//! depth instead of the `Θ(n)` of a serial chain — this is exactly the
//! transformation the paper applies to go from the linear mux-ring
//! datapath (Figure 1) to the logarithmic CSPP datapath (Figure 4).
//!
//! [`TreeScan`] materialises the binary tree so that, besides computing
//! the scan, it can *report the number of operator applications on the
//! critical path* ([`TreeScan::depth`]). The `ultrascalar-vlsi` crate
//! cross-checks its closed-form gate-delay expressions against these
//! measured depths, and the benches for the paper's Figure 11 use them
//! as the "gate delay" measurements.

use crate::op::PrefixOp;

/// An up-sweep/down-sweep scan over an explicit binary tree.
///
/// The tree is the canonical layout used by hardware parallel-prefix
/// networks: leaves in order, internal nodes combining contiguous
/// intervals, left-balanced for arbitrary (non-power-of-two) widths.
#[derive(Debug, Clone)]
pub struct TreeScan<T> {
    n: usize,
    /// `summaries[k]` holds the interval summary of node `k` in a heap
    /// layout over `2*ceil_pow2(n)` slots; `None` outside the tree.
    summaries: Vec<Option<T>>,
    size: usize,
    /// Operator applications on the longest root-to-leaf path
    /// (up-sweep + down-sweep).
    depth: usize,
    /// Total operator applications (work).
    work: usize,
}

fn ceil_pow2(n: usize) -> usize {
    n.next_power_of_two()
}

impl<T: Clone> TreeScan<T> {
    /// Build the up-sweep phase: compute interval summaries for every
    /// tree node from the leaf values.
    ///
    /// # Panics
    /// Panics on empty input.
    pub fn build<O: PrefixOp<T>>(xs: &[T]) -> Self {
        assert!(!xs.is_empty(), "TreeScan requires at least one element");
        let n = xs.len();
        let size = ceil_pow2(n);
        let mut summaries: Vec<Option<T>> = vec![None; 2 * size];
        for (i, x) in xs.iter().enumerate() {
            summaries[size + i] = Some(x.clone());
        }
        let mut work = 0usize;
        for k in (1..size).rev() {
            let l = summaries[2 * k].clone();
            let r = summaries[2 * k + 1].clone();
            summaries[k] = match (l, r) {
                (Some(a), Some(b)) => {
                    work += 1;
                    Some(O::combine(&a, &b))
                }
                (Some(a), None) => Some(a),
                (None, Some(b)) => Some(b),
                (None, None) => None,
            };
        }
        // Up-sweep contributes ceil(log2 n) levels; the down-sweep the
        // same again. Depth is finalised in the scan methods.
        let levels = size.trailing_zeros() as usize;
        TreeScan {
            n,
            summaries,
            size,
            depth: levels,
            work,
        }
    }

    /// Number of leaves.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True iff the tree has no leaves (never: `build` rejects empty).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Total reduction of all leaves (the root summary).
    pub fn root(&self) -> &T {
        self.summaries[1]
            .as_ref()
            .expect("non-empty tree has a root summary")
    }

    /// Operator applications on the critical path of a full
    /// up-sweep + down-sweep evaluation: `2 * ceil(log2 n)`.
    pub fn depth(&self) -> usize {
        2 * self.depth
    }

    /// Operator applications performed by the up-sweep (`build`).
    pub fn work(&self) -> usize {
        self.work
    }

    /// Down-sweep producing the *exclusive* scan. `before_all` is the
    /// value flowing into the leftmost leaf — the committed state in the
    /// processor datapath, or the wrapped-around root summary in a
    /// cyclic circuit. Read-only: the summaries are not modified, so a
    /// built tree can be scanned repeatedly (and concurrently) with
    /// different seeds.
    pub fn scan_exclusive<O: PrefixOp<T>>(&self, before_all: T) -> Vec<T> {
        // prefix[k] = combination of everything strictly before node k's
        // interval, seeded with `before_all`.
        let mut prefix: Vec<Option<T>> = vec![None; 2 * self.size];
        prefix[1] = Some(before_all);
        for k in 1..self.size {
            let p = match prefix[k].clone() {
                Some(p) => p,
                None => continue,
            };
            // Left child sees the same prefix.
            prefix[2 * k] = Some(p.clone());
            // Right child sees prefix ⊗ left-summary.
            if 2 * k + 1 < 2 * self.size {
                prefix[2 * k + 1] = match &self.summaries[2 * k] {
                    Some(ls) => Some(O::combine(&p, ls)),
                    None => Some(p),
                };
            }
        }
        (0..self.n)
            .map(|i| {
                prefix[self.size + i]
                    .clone()
                    .expect("every leaf receives a prefix")
            })
            .collect()
    }
}

/// Convenience: inclusive tree scan of `xs` (depth `Θ(log n)`).
///
/// `inclusive[0] = x0` and `inclusive[i] = exclusive[i] ⊗ x[i]`, where
/// the exclusive scan over `xs[1..]` is seeded with `x0` — this avoids
/// requiring an identity element for `O`.
pub fn tree_scan_inclusive<T: Clone, O: PrefixOp<T>>(xs: &[T]) -> Vec<T> {
    let Some((first, tail)) = xs.split_first() else {
        return Vec::new();
    };
    let mut out = Vec::with_capacity(xs.len());
    out.push(first.clone());
    if tail.is_empty() {
        return out;
    }
    let tail_tree = TreeScan::build::<O>(tail);
    let ex = tail_tree.scan_exclusive::<O>(first.clone());
    for (e, x) in ex.iter().zip(tail) {
        out.push(O::combine(e, x));
    }
    out
}

/// Convenience: exclusive tree scan with an explicit identity/seed.
pub fn tree_scan_exclusive<T: Clone, O: PrefixOp<T>>(xs: &[T], identity: T) -> Vec<T> {
    if xs.is_empty() {
        return Vec::new();
    }
    let tree = TreeScan::build::<O>(xs);
    tree.scan_exclusive::<O>(identity)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{First, Max, Sum};
    use crate::scan;

    #[test]
    fn matches_serial_inclusive_all_small_sizes() {
        for n in 1..70usize {
            let xs: Vec<u64> = (0..n as u64).map(|i| i * 7 + 3).collect();
            assert_eq!(
                tree_scan_inclusive::<_, Sum>(&xs),
                scan::scan_inclusive::<_, Sum>(&xs),
                "width {n}"
            );
        }
    }

    #[test]
    fn matches_serial_exclusive_all_small_sizes() {
        for n in 1..70usize {
            let xs: Vec<u64> = (0..n as u64).map(|i| i * 3 + 1).collect();
            assert_eq!(
                tree_scan_exclusive::<_, Sum>(&xs, 0),
                scan::scan_exclusive::<_, Sum>(&xs, 0),
                "width {n}"
            );
        }
    }

    #[test]
    fn depth_is_logarithmic() {
        for k in 0..12u32 {
            let n = 1usize << k;
            let xs = vec![1u32; n];
            let tree = TreeScan::build::<Sum>(&xs);
            assert_eq!(tree.depth(), 2 * k as usize, "n = {n}");
        }
        // Non-power-of-two widths round up.
        let tree = TreeScan::build::<Sum>(&vec![1u32; 100]);
        assert_eq!(tree.depth(), 2 * 7);
    }

    #[test]
    fn work_is_linear() {
        // Up-sweep of a power-of-two width performs exactly n-1 combines.
        for k in 1..10u32 {
            let n = 1usize << k;
            let tree = TreeScan::build::<Sum>(&vec![1u32; n]);
            assert_eq!(tree.work(), n - 1, "n = {n}");
        }
    }

    #[test]
    fn root_is_total_reduction() {
        let xs: Vec<u32> = (1..=10).collect();
        let tree = TreeScan::build::<Sum>(&xs);
        assert_eq!(*tree.root(), 55);
        let tree = TreeScan::build::<Max>(&xs);
        assert_eq!(*tree.root(), 10);
    }

    #[test]
    fn first_scan_propagates_oldest_value() {
        let xs = [42u32, 1, 2, 3];
        assert_eq!(tree_scan_inclusive::<_, First>(&xs), vec![42; 4]);
    }

    #[test]
    fn exclusive_seed_flows_to_first_leaf() {
        let xs = [5u32, 6];
        assert_eq!(tree_scan_exclusive::<_, Sum>(&xs, 100), vec![100, 105]);
    }

    #[test]
    #[should_panic(expected = "at least one element")]
    fn empty_build_panics() {
        let _ = TreeScan::<u32>::build::<Sum>(&[]);
    }
}
