//! Runtime-dispatched AVX2 implementations of the substrate's hot
//! combine kernels.
//!
//! The SWAR substrate packs 64 boolean lanes per `u64` and `64·W`
//! lanes per `[u64; W]`; the inner combine loops (the per-plane value
//! multiplexer in [`crate::sliced`], the packed flag select in
//! [`crate::packed`], the 64×64 block-swap transpose in
//! [`crate::lanes`]) are natural 256-bit vector ops. This module
//! holds `std::arch` AVX2 forms of those kernels behind **runtime
//! feature detection**
//! (`is_x86_feature_detected!`): both paths are always compiled, the
//! portable SWAR form stays the dispatch fallback on non-AVX2 hosts
//! *and* the differential oracle (the ring references never dispatch),
//! and every AVX2 kernel is bit-for-bit identical to its SWAR twin —
//! dispatch may never change an observable result, only its cost.
//!
//! Dispatch is observable and forceable: [`set_force_swar`] (or the
//! `USIM_FORCE_SWAR` environment variable, read once) pins the
//! fallback so a suspect AVX2 codepath can be ruled out in the field,
//! [`ForceSwarGuard`] scopes the same pin for A/B measurement, and
//! [`detected_simd_level`]/[`active_simd_level`] report the host
//! capability and the path actually taken (recorded into bench
//! artifacts so numbers from different hosts are comparable).
//!
//! This is the only module in the crate allowed to use `unsafe`: the
//! intrinsic calls live behind safe wrappers that return `None`/`false`
//! whenever the shape is unsupported or AVX2 is unavailable, so
//! callers keep their SWAR loops as the one true fallback.
//!
//! Not everything that *could* be vectorized is: a Kogge–Stone AVX2
//! carry network for [`crate::lanes::add`] measured ~0.3× of the
//! scalar ripple (its per-round load/store traffic loses to four
//! inlined scalar ops per plane), and planewise vector ALU/compare
//! forms lost to their inlined scalar twins on call overhead alone.
//! Both were rejected on measurement (`examples/simd_ab.rs`); only
//! kernels that win on an AVX2 host are dispatched.
#![allow(unsafe_code)]

use crate::packed::{PackedPairW, WordOp};
use crate::sliced::SlicedPair;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Dispatch override: 0 = follow the `USIM_FORCE_SWAR` environment
/// default, 1 = forced SWAR, 2 = forced native.
static OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Cached dispatch decision: 0 = uninitialised, 1 = SWAR, 2 = AVX2.
/// Invalidated (back to 0) whenever the override changes.
static ACTIVE: AtomicU8 = AtomicU8::new(0);

/// `USIM_FORCE_SWAR` environment escape hatch, read once per process:
/// any non-empty value other than `"0"` forces the portable path.
fn env_forces_swar() -> bool {
    static ENV: OnceLock<bool> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var_os("USIM_FORCE_SWAR").is_some_and(|v| !v.is_empty() && v != "0")
    })
}

/// Does the host CPU support AVX2 (ignoring any force-SWAR override)?
fn avx2_detected() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// The host's detected SIMD capability, ignoring overrides: `"avx2"`
/// or `"swar"`. Recorded into bench artifacts next to
/// [`active_simd_level`].
pub fn detected_simd_level() -> &'static str {
    if avx2_detected() {
        "avx2"
    } else {
        "swar"
    }
}

/// The SIMD level dispatch will actually use right now (detection
/// combined with any force-SWAR override): `"avx2"` or `"swar"`.
pub fn active_simd_level() -> &'static str {
    if avx2_active() {
        "avx2"
    } else {
        "swar"
    }
}

/// Is the force-SWAR escape hatch currently pinning the portable path?
pub fn force_swar_active() -> bool {
    match OVERRIDE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => env_forces_swar(),
    }
}

/// Force (or un-force) the portable SWAR path process-wide. `true`
/// pins SWAR; `false` pins native dispatch, overriding even a
/// `USIM_FORCE_SWAR` environment default. Dispatch never changes
/// results — both paths are bit-for-bit identical — so flipping this
/// at any time, even concurrently with running sweeps, is safe; it
/// only changes which code executes. Prefer [`ForceSwarGuard`] for
/// scoped A/B toggles.
pub fn set_force_swar(force: bool) {
    OVERRIDE.store(if force { 1 } else { 2 }, Ordering::Relaxed);
    ACTIVE.store(0, Ordering::Relaxed);
}

/// RAII pin of the force-SWAR override: [`ForceSwarGuard::force`]
/// pins the portable path, dropping the guard restores whatever
/// override was in effect before. Used by the engine's per-run
/// `force_swar` config knob and by the A/B benches.
#[derive(Debug)]
pub struct ForceSwarGuard {
    prev: u8,
}

impl ForceSwarGuard {
    /// Pin the portable SWAR path until the guard drops.
    pub fn force() -> Self {
        let prev = OVERRIDE.swap(1, Ordering::Relaxed);
        ACTIVE.store(0, Ordering::Relaxed);
        ForceSwarGuard { prev }
    }
}

impl Drop for ForceSwarGuard {
    fn drop(&mut self) {
        OVERRIDE.store(self.prev, Ordering::Relaxed);
        ACTIVE.store(0, Ordering::Relaxed);
    }
}

/// Hot-path dispatch check: one relaxed atomic load once initialised.
#[inline]
pub(crate) fn avx2_active() -> bool {
    match ACTIVE.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => init_active(),
    }
}

#[cold]
fn init_active() -> bool {
    let active = avx2_detected() && !force_swar_active();
    ACTIVE.store(if active { 2 } else { 1 }, Ordering::Relaxed);
    active
}

/// Can the AVX2 sliced-combine kernel handle this `(B, W)` shape? The
/// kernel steers groups of four contiguous plane words with one take
/// vector, which needs the seg pattern to be 4-periodic across the
/// flattened planes (`W ∈ {1, 2, 4}`) and the plane array to be a
/// whole number of 256-bit groups.
#[inline]
pub(crate) const fn sliced_avx2_shape(b: usize, w: usize) -> bool {
    (w == 1 || w == 2 || w == 4) && (b * w).is_multiple_of(4)
}

/// AVX2 form of [`SlicedPair::combine`], or `None` when the shape is
/// unsupported or AVX2 dispatch is off — callers fall back to the
/// SWAR twin. Bit-for-bit identical to the portable form.
#[inline]
pub(crate) fn sliced_combine_avx2<const B: usize, const W: usize>(
    lhs: &SlicedPair<B, W>,
    rhs: &SlicedPair<B, W>,
) -> Option<SlicedPair<B, W>> {
    #[cfg(target_arch = "x86_64")]
    if sliced_avx2_shape(B, W) && avx2_active() {
        // SAFETY: `avx2_active` only reports true when the CPU
        // supports AVX2, and the shape predicate guarantees the
        // kernel's layout preconditions.
        return Some(unsafe { x86::sliced_combine(lhs, rhs) });
    }
    let _ = (lhs, rhs);
    None
}

/// AVX2 up-sweep (`summaries[k] = summaries[2k] ⊗ summaries[2k+1]`,
/// `k` descending) over a packed tree, returning `false` (untouched
/// buffer) when the width is unsupported or dispatch is off.
#[inline]
pub(crate) fn packed_up_sweep_avx2<O: WordOp, const W: usize>(
    summaries: &mut [PackedPairW<W>],
    size: usize,
) -> bool {
    #[cfg(target_arch = "x86_64")]
    if (W == 2 || W == 4) && avx2_active() {
        // SAFETY: AVX2 availability checked; W restricted to the
        // widths the kernel specialises.
        unsafe { x86::packed_up_sweep::<O, W>(summaries, size) };
        return true;
    }
    let _ = (summaries, size);
    false
}

/// AVX2 down-sweep (`prefix[2k] = prefix[k]`,
/// `prefix[2k+1] = prefix[k] ⊗ summaries[2k]`, `k` ascending) over a
/// packed tree, returning `false` when unsupported or dispatch is off.
#[inline]
pub(crate) fn packed_down_sweep_avx2<O: WordOp, const W: usize>(
    prefix: &mut [PackedPairW<W>],
    summaries: &[PackedPairW<W>],
    size: usize,
) -> bool {
    #[cfg(target_arch = "x86_64")]
    if (W == 2 || W == 4) && avx2_active() {
        // SAFETY: as in `packed_up_sweep_avx2`.
        unsafe { x86::packed_down_sweep::<O, W>(prefix, summaries, size) };
        return true;
    }
    let _ = (prefix, summaries, size);
    false
}

/// Word-array intersection test `any(a[j] & b[j] != 0)` — the packed
/// gate's top-band AND.
///
/// Deliberately **not** runtime-dispatched to `vptest`: a
/// `#[target_feature]` function can never inline into the engine's
/// generic scan loop, and the call overhead costs more than the seven
/// scalar ops it would replace (~2% of whole-simulation time measured
/// via `gprofng` on the pipelined step_ab cells). The branchless fold
/// below autovectorizes to two 128-bit `pand`/`por` pairs anyway.
#[inline(always)]
pub fn mask_and_any<const W: usize>(a: &[u64; W], b: &[u64; W]) -> bool {
    let mut acc = 0u64;
    for j in 0..W {
        acc |= a[j] & b[j];
    }
    acc != 0
}

/// AVX2 form of the lane-parallel 64×64 bit transpose, returning
/// `false` (matrix untouched) when dispatch is off.
#[inline]
pub(crate) fn transpose64_avx2(a: &mut [u64; 64]) -> bool {
    #[cfg(target_arch = "x86_64")]
    if avx2_active() {
        // SAFETY: AVX2 availability checked.
        unsafe { x86::transpose64(a) };
        return true;
    }
    let _ = a;
    false
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{PackedPairW, SlicedPair, WordOp};
    use core::arch::x86_64::*;
    use core::mem::MaybeUninit;

    /// `(rhs & take) | (lhs & !take)` as the 3-op xor-blend form.
    #[inline]
    #[target_feature(enable = "avx2")]
    fn mux(lhs: __m256i, rhs: __m256i, take: __m256i) -> __m256i {
        _mm256_xor_si256(lhs, _mm256_and_si256(_mm256_xor_si256(lhs, rhs), take))
    }

    /// The right-hand seg words replicated into the 4-periodic take
    /// pattern the flattened-planes loop steers with (`W ∈ {1, 2, 4}`).
    #[inline]
    #[target_feature(enable = "avx2")]
    fn take_pattern<const W: usize>(seg: &[u64; W]) -> __m256i {
        match W {
            1 => _mm256_set1_epi64x(seg[0] as i64),
            2 => _mm256_setr_epi64x(seg[0] as i64, seg[1] as i64, seg[0] as i64, seg[1] as i64),
            // SAFETY: this arm is only reached for W == 4 (shape
            // predicate), one whole 256-bit load of the seg array.
            _ => unsafe { _mm256_loadu_si256(seg.as_ptr().cast()) },
        }
    }

    /// AVX2 sliced combine: every group of four contiguous plane words
    /// shares the 4-periodic take pattern, so the whole `B × W` plane
    /// array is one strided xor-blend stream.
    #[target_feature(enable = "avx2")]
    pub(super) fn sliced_combine<const B: usize, const W: usize>(
        lhs: &SlicedPair<B, W>,
        rhs: &SlicedPair<B, W>,
    ) -> SlicedPair<B, W> {
        debug_assert!(super::sliced_avx2_shape(B, W));
        let take = take_pattern::<W>(&rhs.seg);
        let mut out = MaybeUninit::<SlicedPair<B, W>>::uninit();
        // SAFETY: plane arrays are contiguous `B * W` u64s; the shape
        // predicate makes that a whole number of 4-word groups, and
        // the loops below initialise every plane and seg word of
        // `out` before `assume_init`.
        unsafe {
            let lp = lhs.planes.as_ptr().cast::<u64>();
            let rp = rhs.planes.as_ptr().cast::<u64>();
            let op = (&raw mut (*out.as_mut_ptr()).planes).cast::<u64>();
            let mut i = 0;
            while i < B * W {
                let l = _mm256_loadu_si256(lp.add(i).cast());
                let r = _mm256_loadu_si256(rp.add(i).cast());
                _mm256_storeu_si256(op.add(i).cast(), mux(l, r, take));
                i += 4;
            }
            let os = (&raw mut (*out.as_mut_ptr()).seg).cast::<u64>();
            for j in 0..W {
                os.add(j).write(lhs.seg[j] | rhs.seg[j]);
            }
            out.assume_init()
        }
    }

    /// The lifted combine's value word: `sb ? vb : (va ⊗ vb)`, with
    /// the operator selected at monomorphisation time via
    /// [`WordOp::IS_AND`].
    #[inline]
    #[target_feature(enable = "avx2")]
    fn combine_value<O: WordOp>(va: __m256i, vb: __m256i, sb: __m256i) -> __m256i {
        if O::IS_AND {
            // vb & (sb | va)
            _mm256_and_si256(vb, _mm256_or_si256(sb, va))
        } else {
            // (va & !sb) | vb
            _mm256_or_si256(_mm256_andnot_si256(sb, va), vb)
        }
    }

    /// AVX2 packed combine, W = 4: one 256-bit register per field.
    #[inline]
    #[target_feature(enable = "avx2")]
    fn packed_combine_w4<O: WordOp>(lhs: &PackedPairW<4>, rhs: &PackedPairW<4>) -> PackedPairW<4> {
        // SAFETY: `[u64; 4]` fields are exactly one 256-bit load each,
        // and both output fields are fully written before
        // `assume_init`.
        unsafe {
            let va = _mm256_loadu_si256(lhs.value.as_ptr().cast());
            let sa = _mm256_loadu_si256(lhs.seg.as_ptr().cast());
            let vb = _mm256_loadu_si256(rhs.value.as_ptr().cast());
            let sb = _mm256_loadu_si256(rhs.seg.as_ptr().cast());
            let mut out = MaybeUninit::<PackedPairW<4>>::uninit();
            let p = out.as_mut_ptr();
            _mm256_storeu_si256((&raw mut (*p).value).cast(), combine_value::<O>(va, vb, sb));
            _mm256_storeu_si256((&raw mut (*p).seg).cast(), _mm256_or_si256(sa, sb));
            out.assume_init()
        }
    }

    /// AVX2 packed combine, W = 2: the whole `#[repr(C)]` pair is one
    /// 256-bit register `[v0, v1, s0, s1]`; the value half applies the
    /// lifted combine steered by a broadcast of the seg half, the seg
    /// half is the plain OR, blended back together.
    #[inline]
    #[target_feature(enable = "avx2")]
    fn packed_combine_w2<O: WordOp>(lhs: &PackedPairW<2>, rhs: &PackedPairW<2>) -> PackedPairW<2> {
        // SAFETY: `PackedPairW` is `#[repr(C)]` with `value` before
        // `seg`, so the 32-byte struct is one 256-bit lane group; the
        // single store writes the whole output.
        unsafe {
            let a = _mm256_loadu_si256((lhs as *const PackedPairW<2>).cast());
            let b = _mm256_loadu_si256((rhs as *const PackedPairW<2>).cast());
            // [sb0, sb1, sb0, sb1]
            let sbv = _mm256_permute4x64_epi64::<0xEE>(b);
            let value = combine_value::<O>(a, b, sbv);
            let seg = _mm256_or_si256(a, b);
            let mut out = MaybeUninit::<PackedPairW<2>>::uninit();
            _mm256_storeu_si256(
                out.as_mut_ptr().cast(),
                _mm256_blend_epi32::<0xF0>(value, seg),
            );
            out.assume_init()
        }
    }

    /// Width-dispatched packed combine (W checked by the caller).
    #[inline]
    #[target_feature(enable = "avx2")]
    fn packed_combine<O: WordOp, const W: usize>(
        lhs: &PackedPairW<W>,
        rhs: &PackedPairW<W>,
    ) -> PackedPairW<W> {
        // SAFETY: the W matches verified by the callers make the
        // reference casts identity conversions.
        unsafe {
            match W {
                4 => {
                    let l = &*(lhs as *const PackedPairW<W>).cast::<PackedPairW<4>>();
                    let r = &*(rhs as *const PackedPairW<W>).cast::<PackedPairW<4>>();
                    let out = packed_combine_w4::<O>(l, r);
                    *(&out as *const PackedPairW<4>).cast::<PackedPairW<W>>()
                }
                _ => {
                    let l = &*(lhs as *const PackedPairW<W>).cast::<PackedPairW<2>>();
                    let r = &*(rhs as *const PackedPairW<W>).cast::<PackedPairW<2>>();
                    let out = packed_combine_w2::<O>(l, r);
                    *(&out as *const PackedPairW<2>).cast::<PackedPairW<W>>()
                }
            }
        }
    }

    /// Whole up-sweep under one AVX2 `target_feature` region so the
    /// per-node combine inlines into the loop.
    #[target_feature(enable = "avx2")]
    pub(super) fn packed_up_sweep<O: WordOp, const W: usize>(
        summaries: &mut [PackedPairW<W>],
        size: usize,
    ) {
        for k in (1..size).rev() {
            summaries[k] = packed_combine::<O, W>(&summaries[2 * k], &summaries[2 * k + 1]);
        }
    }

    /// Whole down-sweep under one AVX2 `target_feature` region.
    #[target_feature(enable = "avx2")]
    pub(super) fn packed_down_sweep<O: WordOp, const W: usize>(
        prefix: &mut [PackedPairW<W>],
        summaries: &[PackedPairW<W>],
        size: usize,
    ) {
        for k in 1..size {
            let p = prefix[k];
            prefix[2 * k] = p;
            prefix[2 * k + 1] = packed_combine::<O, W>(&p, &summaries[2 * k]);
        }
    }

    /// AVX2 64×64 bit transpose. Levels `j ≥ 4` exchange 4-row runs
    /// with plain vector loads; levels 2 and 1 pair rows inside one
    /// 256-bit register via lane permutes.
    #[target_feature(enable = "avx2")]
    pub(super) fn transpose64(a: &mut [u64; 64]) {
        // SAFETY: all loads/stores stay inside the 64-row array; the
        // index walks mirror the scalar block-swap exactly.
        unsafe {
            let p = a.as_mut_ptr();
            let mut j = 32usize;
            let mut m: u64 = 0x0000_0000_FFFF_FFFF;
            while j >= 4 {
                let mv = _mm256_set1_epi64x(m as i64);
                let jc = _mm_cvtsi64_si128(j as i64);
                let mut k = 0usize;
                while k < 64 {
                    let lo = _mm256_loadu_si256(p.add(k).cast());
                    let hi = _mm256_loadu_si256(p.add(k + j).cast());
                    let t = _mm256_and_si256(_mm256_xor_si256(_mm256_srl_epi64(lo, jc), hi), mv);
                    _mm256_storeu_si256(
                        p.add(k).cast(),
                        _mm256_xor_si256(lo, _mm256_sll_epi64(t, jc)),
                    );
                    _mm256_storeu_si256(p.add(k + j).cast(), _mm256_xor_si256(hi, t));
                    k = ((k | j) + 4) & !j;
                }
                j >>= 1;
                m ^= m << j.max(1);
            }
            // j = 2: pairs (k, k+2) inside each 4-row register.
            let m2 = _mm256_set1_epi64x(0x3333_3333_3333_3333u64 as i64);
            for k in (0..64).step_by(4) {
                let v = _mm256_loadu_si256(p.add(k).cast());
                let w = _mm256_permute4x64_epi64::<0x4E>(v); // [a2, a3, a0, a1]
                let t = _mm256_and_si256(_mm256_xor_si256(_mm256_srli_epi64::<2>(v), w), m2);
                let t2 = _mm256_permute4x64_epi64::<0x44>(t); // [t0, t1, t0, t1]
                let delta = _mm256_blend_epi32::<0xF0>(_mm256_slli_epi64::<2>(t2), t2);
                _mm256_storeu_si256(p.add(k).cast(), _mm256_xor_si256(v, delta));
            }
            // j = 1: pairs (k, k+1) inside each 4-row register.
            let m1 = _mm256_set1_epi64x(0x5555_5555_5555_5555u64 as i64);
            for k in (0..64).step_by(4) {
                let v = _mm256_loadu_si256(p.add(k).cast());
                let w = _mm256_permute4x64_epi64::<0xB1>(v); // [a1, a0, a3, a2]
                let t = _mm256_and_si256(_mm256_xor_si256(_mm256_srli_epi64::<1>(v), w), m1);
                let t2 = _mm256_permute4x64_epi64::<0xA0>(t); // [t0, t0, t2, t2]
                let delta = _mm256_blend_epi32::<0xCC>(_mm256_slli_epi64::<1>(t2), t2);
                _mm256_storeu_si256(p.add(k).cast(), _mm256_xor_si256(v, delta));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_consistent() {
        // Whatever the host, the reported levels come from the fixed
        // vocabulary and forcing SWAR drops the active level.
        assert!(["avx2", "swar"].contains(&detected_simd_level()));
        {
            let _guard = ForceSwarGuard::force();
            assert_eq!(active_simd_level(), "swar");
            assert!(force_swar_active());
        }
        // Nested guards restore the outer state.
        set_force_swar(false);
        assert!(!force_swar_active());
        {
            let _guard = ForceSwarGuard::force();
            assert!(force_swar_active());
            {
                let _inner = ForceSwarGuard::force();
                assert!(force_swar_active());
            }
            assert!(force_swar_active());
        }
        assert!(!force_swar_active());
        assert_eq!(
            active_simd_level() == "avx2",
            detected_simd_level() == "avx2"
        );
    }

    #[test]
    fn mask_and_any_matches_scalar() {
        let cases: [([u64; 4], [u64; 4]); 4] = [
            ([0; 4], [!0; 4]),
            ([1, 0, 0, 0], [1, 0, 0, 0]),
            ([0, 0, 0, 1 << 63], [0, 0, 0, 1 << 63]),
            ([0xF0, 0, 0, 0], [0x0F, !0, 0, 0]),
        ];
        for (a, b) in cases {
            let want = a.iter().zip(b.iter()).any(|(&x, &y)| x & y != 0);
            assert_eq!(mask_and_any(&a, &b), want, "{a:?} {b:?}");
            let _guard = ForceSwarGuard::force();
            assert_eq!(mask_and_any(&a, &b), want, "swar {a:?} {b:?}");
        }
    }
}
