//! Segmented and **cyclic segmented** parallel prefix (CSPP).
//!
//! The CSPP circuit (Henry & Kuszmaul, Ultrascalar Memo 1; paper
//! Figures 4–5) is the workhorse of the Ultrascalar: for each position
//! `i` of a ring of `n` stations it computes the combination of the
//! inputs of the stations *preceding* `i`, going backwards (cyclically)
//! up to and including the nearest station whose **segment bit** is
//! raised.
//!
//! Two views of the same computation:
//!
//! * with the register-forwarding operator `a ⊗ b = a` and the segment
//!   bit meaning "this station writes the register", position `i`
//!   receives *the value inserted by the nearest preceding writer* —
//!   register renaming, bypass and forwarding in one circuit;
//! * with `a ⊗ b = a ∧ b` and the segment bit raised only at the oldest
//!   station, position `i` receives *whether every older station meets
//!   a condition* — instruction deallocation, memory serialisation and
//!   branch-commit logic.
//!
//! Both a quadratic-work reference evaluation ([`cspp_ring`]) and the
//! hardware's `Θ(log n)`-depth tree evaluation ([`cspp_tree`]) are
//! provided; property tests pin them together.

use crate::op::{PrefixOp, SegOp, SegPair};
use crate::tree::TreeScan;

/// Non-cyclic segmented *exclusive* backward-looking prefix, linear
/// reference implementation.
///
/// `out[i]` summarises `init ⊗ x[0] ⊗ … ⊗ x[i-1]` under the segmented
/// combination rule: accumulation restarts at every raised segment bit,
/// so `out[i].value` is the combination of the inputs since (and
/// including) the nearest preceding segment start, and `out[i].seg`
/// reports whether any boundary precedes `i` at all. `init` flows in
/// before element 0 (e.g. the committed register file in a processor
/// datapath).
///
/// # Panics
/// Panics if `xs.len() != seg.len()`.
pub fn segmented_prefix_ring<T: Clone, O: PrefixOp<T>>(
    xs: &[T],
    seg: &[bool],
    init: SegPair<T>,
) -> Vec<SegPair<T>> {
    assert_eq!(xs.len(), seg.len(), "value/segment length mismatch");
    let mut out = Vec::with_capacity(xs.len());
    let mut acc = init;
    for (x, &s) in xs.iter().zip(seg) {
        out.push(acc.clone());
        acc = SegOp::<O>::combine(&acc, &SegPair::leaf(x.clone(), s));
    }
    out
}

/// Non-cyclic segmented exclusive prefix via a `Θ(log n)`-depth tree.
///
/// Semantics identical to [`segmented_prefix_ring`]; returns the same
/// vector for every input (property-tested).
pub fn segmented_prefix_tree<T: Clone, O: PrefixOp<T>>(
    xs: &[T],
    seg: &[bool],
    init: SegPair<T>,
) -> Vec<SegPair<T>> {
    assert_eq!(xs.len(), seg.len(), "value/segment length mismatch");
    if xs.is_empty() {
        return Vec::new();
    }
    let leaves: Vec<SegPair<T>> = xs
        .iter()
        .zip(seg)
        .map(|(x, &s)| SegPair::leaf(x.clone(), s))
        .collect();
    let tree = TreeScan::build::<SegOp<O>>(&leaves);
    tree.scan_exclusive::<SegOp<O>>(init)
}

/// Cyclic segmented parallel prefix, quadratic reference evaluation.
///
/// `out[i]` combines the inputs of the ring positions preceding `i` in
/// cyclic order — `i-1, i-2, …` wrapping around — back to the nearest
/// raised segment bit (inclusive). If the nearest boundary is at `i`
/// itself the summary covers the entire ring (this is the oldest
/// station's wrapped-around view, which the hardware ignores).
///
/// `out[i].seg == false` iff **no** segment bit is raised anywhere. In
/// that case the value is an artefact of the wrap-around (the hardware
/// ties the tree's top data lines together, so without a boundary the
/// ring's total fold leaks into every prefix) and callers must treat it
/// as *don't-care* — processor datapaths guarantee at least one boundary
/// because the oldest station raises all its modified bits.
///
/// Formally, `out[i] = fold(x[0..n]) ⊗ fold(x[0..i])` under the
/// segmented combination rule; whenever any segment bit is raised this
/// equals the fold of exactly the `n` cyclically-preceding elements.
///
/// This is the slow reference form, kept as the oracle for property
/// tests; production paths (benches, the allocator in
/// [`crate::sched`]) use [`cspp_tree`] or the packed/arena forms. A
/// debug assertion rejects rings beyond 4096 stations to catch the
/// reference form sneaking into a sized sweep.
///
/// # Panics
/// Panics if `xs.len() != seg.len()` or the ring is empty.
pub fn cspp_ring<T: Clone, O: PrefixOp<T>>(xs: &[T], seg: &[bool]) -> Vec<SegPair<T>> {
    assert_eq!(xs.len(), seg.len(), "value/segment length mismatch");
    assert!(!xs.is_empty(), "CSPP ring must be non-empty");
    debug_assert!(
        xs.len() <= 4096,
        "cspp_ring is the slow reference form; use cspp_tree (or the \
         packed/arena forms) for rings beyond 4096 stations"
    );
    let n = xs.len();
    let leaf = |j: usize| SegPair::leaf(xs[j].clone(), seg[j]);
    // Summary of the whole ring: what the tied-together tree top feeds
    // back into position 0.
    let mut whole = leaf(0);
    for j in 1..n {
        whole = SegOp::<O>::combine(&whole, &leaf(j));
    }
    let mut out = Vec::with_capacity(n);
    let mut acc = whole;
    for j in 0..n {
        out.push(acc.clone());
        acc = SegOp::<O>::combine(&acc, &leaf(j));
    }
    out
}

/// Cyclic segmented parallel prefix via the hardware's tree evaluation:
/// one up-sweep, the data lines tied together at the root (the root's
/// own summary becomes the seed), one down-sweep. Depth `Θ(log n)`.
///
/// Semantics identical to [`cspp_ring`] (property-tested).
///
/// # Panics
/// Panics on empty input or if `xs.len() != seg.len()`.
pub fn cspp_tree<T: Clone, O: PrefixOp<T>>(xs: &[T], seg: &[bool]) -> Vec<SegPair<T>> {
    assert_eq!(xs.len(), seg.len(), "value/segment length mismatch");
    assert!(!xs.is_empty(), "CSPP ring must be non-empty");
    let leaves: Vec<SegPair<T>> = xs
        .iter()
        .zip(seg)
        .map(|(x, &s)| SegPair::leaf(x.clone(), s))
        .collect();
    let tree = TreeScan::build::<SegOp<O>>(&leaves);
    let root = tree.root().clone();
    // Tying the top of the tree: what flows into leaf 0 "from before" is
    // the summary of the whole ring, i.e. the accumulation since the
    // *last* raised segment bit — exactly the wrap-around.
    tree.scan_exclusive::<SegOp<O>>(root)
}

/// Paper Figure 5 convenience: the 1-bit CSPP with the AND operator.
///
/// Returns, for every station `i`, whether all stations *older* than `i`
/// (from the oldest station, inclusive, to `i-1`, cyclically) have their
/// `condition` input raised. The output at `oldest` itself wraps the
/// whole ring and is ignored by the hardware; it is returned as-is.
///
/// # Panics
/// Panics if `oldest >= conditions.len()` or the ring is empty.
pub fn cspp_all_earlier(conditions: &[bool], oldest: usize) -> Vec<bool> {
    assert!(!conditions.is_empty(), "CSPP ring must be non-empty");
    assert!(oldest < conditions.len(), "oldest station out of range");
    let mut seg = vec![false; conditions.len()];
    seg[oldest] = true;
    cspp_tree::<bool, crate::op::BoolAnd>(conditions, &seg)
        .into_iter()
        .map(|p| p.value)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{BoolAnd, First, Sum};

    /// The worked example of paper Figure 5: station 6 is oldest (seg
    /// raised); stations {6, 7, 0, 1, 3} have met the condition; the
    /// circuit outputs high to stations {7, 0, 1, 2}.
    #[test]
    fn figure5_example() {
        let n = 8;
        let mut cond = vec![false; n];
        for i in [6, 7, 0, 1, 3] {
            cond[i] = true;
        }
        let out = cspp_all_earlier(&cond, 6);
        for (i, &o) in out.iter().enumerate() {
            let expected = matches!(i, 7 | 0 | 1 | 2);
            if i == 6 {
                // Oldest wraps the full ring; stations 2, 4, 5 are low,
                // so the wrapped AND is false. The hardware ignores it.
                assert!(!o);
            } else {
                assert_eq!(o, expected, "station {i}");
            }
        }
    }

    /// Register-forwarding semantics of paper Figures 1/4: the ring
    /// carries register R0; station 6 (oldest) inserts the initial
    /// value 10, station 7 has not finished (inserts "not ready"),
    /// station 4 inserts 42. Stations 0–4 must see station 7's pending
    /// write; stations 5 and 6 must see 42.
    #[test]
    fn figure4_register_forwarding() {
        // Value = (value, ready); operator First propagates the nearest
        // preceding writer's insertion.
        type V = (u32, bool);
        let n = 8;
        let mut vals: Vec<V> = vec![(0, false); n];
        let mut seg = vec![false; n];
        // Oldest station 6 inserts initial R0 = 10, ready.
        vals[6] = (10, true);
        seg[6] = true;
        // Station 7 writes R0 but hasn't computed: not ready.
        vals[7] = (0, false);
        seg[7] = true;
        // Station 4 wrote R0 = 42, ready.
        vals[4] = (42, true);
        seg[4] = true;

        let out = cspp_tree::<V, First>(&vals, &seg);
        // Stations 0..=4 read station 7's not-ready insertion.
        for (i, o) in out.iter().enumerate().take(5) {
            assert_eq!(o.value, (0, false), "station {i}");
            assert!(o.seg);
        }
        // Stations 5 and 6 read station 4's 42 (6 ignores, being oldest).
        assert_eq!(out[5].value, (42, true));
        assert_eq!(out[6].value, (42, true));
        // Station 7 reads the oldest station's initial value 10.
        assert_eq!(out[7].value, (10, true));
    }

    #[test]
    fn ring_and_tree_agree_on_exhaustive_small_and_cases() {
        // All 4^n (value, seg) patterns for small n, AND operator.
        for n in 1..=6usize {
            for pattern in 0..(1u32 << (2 * n)) {
                let vals: Vec<bool> = (0..n).map(|i| pattern >> (2 * i) & 1 == 1).collect();
                let seg: Vec<bool> = (0..n).map(|i| pattern >> (2 * i + 1) & 1 == 1).collect();
                let a = cspp_ring::<bool, BoolAnd>(&vals, &seg);
                let b = cspp_tree::<bool, BoolAnd>(&vals, &seg);
                assert_eq!(a, b, "n={n} pattern={pattern:b}");
            }
        }
    }

    #[test]
    fn noncyclic_ring_and_tree_agree() {
        for n in 1..40usize {
            let vals: Vec<u64> = (0..n as u64).map(|i| i * 11 + 5).collect();
            let seg: Vec<bool> = (0..n).map(|i| i % 3 == 1).collect();
            let init = SegPair::leaf(999u64, true);
            assert_eq!(
                segmented_prefix_ring::<_, Sum>(&vals, &seg, init),
                segmented_prefix_tree::<_, Sum>(&vals, &seg, init),
                "n={n}"
            );
        }
    }

    #[test]
    fn no_segment_bit_anywhere_reports_unsegmented() {
        let vals = [1u32, 2, 3, 4];
        let seg = [false; 4];
        let out = cspp_tree::<_, Sum>(&vals, &seg);
        // Without a boundary the values are wrap-around artefacts
        // (ring-fold ⊗ prefix-fold); the seg=false flag marks them as
        // don't-care for callers.
        for (p, expect) in out.iter().zip([10u32, 11, 13, 16]) {
            assert!(!p.seg);
            assert_eq!(p.value, expect);
        }
    }

    #[test]
    fn single_station_ring() {
        let out = cspp_tree::<u32, First>(&[7], &[true]);
        assert_eq!(out[0].value, 7);
        assert!(out[0].seg);
    }

    #[test]
    fn init_flows_to_position_zero() {
        let out =
            segmented_prefix_ring::<u32, Sum>(&[1, 2], &[false, false], SegPair::leaf(50, true));
        assert_eq!(out[0].value, 50);
        assert_eq!(out[1].value, 51);
        assert!(out[1].seg);
    }

    #[test]
    #[should_panic(expected = "oldest station out of range")]
    fn oldest_out_of_range_panics() {
        let _ = cspp_all_earlier(&[true, false], 5);
    }

    #[test]
    fn rotating_oldest_rotates_outputs() {
        // The circuit is symmetric under rotation: rotating both inputs
        // and the oldest pointer rotates the outputs.
        let cond = [true, false, true, true, false, true, true, true];
        let base = cspp_all_earlier(&cond, 0);
        for r in 0..cond.len() {
            let rotated: Vec<bool> = (0..cond.len())
                .map(|i| cond[(i + cond.len() - r) % cond.len()])
                .collect();
            let out = cspp_all_earlier(&rotated, r);
            for i in 0..cond.len() {
                assert_eq!(out[(i + r) % cond.len()], base[i], "rot {r} pos {i}");
            }
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::op::{BoolAnd, First, Max, Sum};
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn cspp_tree_matches_ring_sum(
            vals in proptest::collection::vec(0u64..1000, 1..80),
            segbits in proptest::collection::vec(any::<bool>(), 1..80),
        ) {
            let n = vals.len().min(segbits.len());
            let vals = &vals[..n];
            let seg = &segbits[..n];
            prop_assert_eq!(
                cspp_ring::<_, Sum>(vals, seg),
                cspp_tree::<_, Sum>(vals, seg)
            );
        }

        #[test]
        fn cspp_tree_matches_ring_first(
            vals in proptest::collection::vec(0u32..1000, 1..80),
            segbits in proptest::collection::vec(any::<bool>(), 1..80),
        ) {
            let n = vals.len().min(segbits.len());
            let vals = &vals[..n];
            let seg = &segbits[..n];
            prop_assert_eq!(
                cspp_ring::<_, First>(vals, seg),
                cspp_tree::<_, First>(vals, seg)
            );
        }

        #[test]
        fn cspp_tree_matches_ring_and(
            vals in proptest::collection::vec(any::<bool>(), 1..100),
            segbits in proptest::collection::vec(any::<bool>(), 1..100),
        ) {
            let n = vals.len().min(segbits.len());
            prop_assert_eq!(
                cspp_ring::<_, BoolAnd>(&vals[..n], &segbits[..n]),
                cspp_tree::<_, BoolAnd>(&vals[..n], &segbits[..n])
            );
        }

        #[test]
        fn noncyclic_tree_matches_ring_max(
            vals in proptest::collection::vec(0i64..10000, 1..80),
            segbits in proptest::collection::vec(any::<bool>(), 1..80),
            init in 0i64..10000,
            init_seg in any::<bool>(),
        ) {
            let n = vals.len().min(segbits.len());
            let seed = SegPair::leaf(init, init_seg);
            prop_assert_eq!(
                segmented_prefix_ring::<_, Max>(&vals[..n], &segbits[..n], seed),
                segmented_prefix_tree::<_, Max>(&vals[..n], &segbits[..n], seed)
            );
        }

        /// Direct specification check: out[i] with First equals the
        /// value of the nearest cyclically-preceding raised segment.
        #[test]
        fn cspp_first_is_nearest_preceding_writer(
            vals in proptest::collection::vec(0u32..1000, 1..60),
            segbits in proptest::collection::vec(any::<bool>(), 1..60),
        ) {
            let n = vals.len().min(segbits.len());
            let vals = &vals[..n];
            let seg = &segbits[..n];
            let out = cspp_tree::<_, First>(vals, seg);
            if seg.iter().any(|&s| s) {
                for (i, o) in out.iter().enumerate() {
                    // Walk backwards from i-1, wrapping, to the nearest
                    // raised segment bit.
                    let mut j = (i + n - 1) % n;
                    let mut steps = 0;
                    while !seg[j] && steps < n {
                        j = (j + n - 1) % n;
                        steps += 1;
                    }
                    prop_assert!(seg[j]);
                    prop_assert_eq!(o.value, vals[j], "station {}", i);
                    prop_assert!(o.seg);
                }
            } else {
                for p in &out {
                    prop_assert!(!p.seg);
                }
            }
        }
    }
}
