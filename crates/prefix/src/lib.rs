//! Parallel-prefix substrate for the Ultrascalar reproduction.
//!
//! The Ultrascalar processors of Kuszmaul, Henry and Loh (SPAA '99) are
//! built almost entirely out of *parallel-prefix tree circuits*:
//!
//! * one **cyclic segmented parallel prefix (CSPP)** circuit per logical
//!   register forwards register values from each writer to every younger
//!   reader (paper Figure 4),
//! * three 1-bit CSPP circuits with the AND operator sequence
//!   instructions: "all earlier stations finished", "all earlier stores
//!   finished", "all earlier branches confirmed" (paper Figure 5),
//! * the Ultrascalar II register network is a column of *(non-cyclic)
//!   segmented* reduction trees that locate the nearest preceding writer
//!   of a requested register (paper Figure 8).
//!
//! This crate provides those primitives as pure algorithms:
//!
//! * [`scan`] — serial reference scans (inclusive, exclusive, segmented),
//! * [`tree`] — work-efficient tree scans with circuit-depth accounting,
//! * [`cspp`] — segmented and cyclic-segmented prefix, both a naive
//!   reference "ring" evaluation and the logarithmic-depth tree
//!   evaluation used by the hardware,
//! * [`arena`] — the same scans into retained, `Option`-free scratch
//!   with zero steady-state allocations and `O(log n)` incremental leaf
//!   updates ([`arena::ArenaScan`]), plus the closure-driven heap CSPP
//!   the circuit generators build netlists through,
//! * [`packed`] — bit-packed boolean CSPP: 64 one-bit networks per
//!   `u64` word evaluated word-parallel (SWAR), the production form of
//!   the paper's flag and ready-bit circuits; the multi-word
//!   [`packed::PackedCsppScratchW`] form evaluates `64·W` lanes per
//!   pass for problems wider than one machine word (e.g. register
//!   files with up to 256 logical registers), and the
//!   [`packed::BitWords`] bitset backs packed per-cycle state
//!   elsewhere in the workspace,
//! * [`lanes`] — the lane-parallel *simulation* view of the same
//!   substrate: bit `l` of every plane belongs to independent
//!   simulation `l`, so [`lanes::LaneValue`] (a [`SlicedPair<32, 1>`])
//!   advances one architectural register of 64 machines per word op —
//!   planewise ALU/compare forms, lane-uniform shift relabelling, and
//!   a transpose-based extract/compute/deposit escape hatch,
//! * [`sliced`] — bit-sliced *value* CSPP: whole `B`-bit register
//!   values stored as `B` bit-planes per node, so one tree sweep
//!   forwards the last-writer **value** for `64·W` registers at once
//!   under the register-forwarding select operator (the software
//!   analogue of the paper's Figure 4 value datapath),
//! * [`op`] — the associative-operator abstraction shared by all of the
//!   above, including the two operators used in the paper
//!   ([`op::First`], the register-forwarding operator `a ⊗ b = a`, and
//!   [`op::BoolAnd`], the sequencing operator `a ⊗ b = a ∧ b`),
//! * [`simd`] — runtime-dispatched AVX2 forms of the hot combine
//!   kernels (`is_x86_feature_detected!`), bit-for-bit identical to
//!   the portable SWAR twins, with the `USIM_FORCE_SWAR` /
//!   [`simd::set_force_swar`] escape hatch pinning the fallback.
//!
//! The gate-level realisations of the same structures live in the
//! `ultrascalar-circuit` crate; property tests there check that the
//! netlists agree with the algorithms in this crate.

#![deny(missing_docs)]
// `unsafe` is denied crate-wide and re-allowed in exactly one place:
// the `simd` module, whose `std::arch` intrinsic calls sit behind
// runtime feature detection and safe wrappers.
#![deny(unsafe_code)]

pub mod arena;
pub mod cspp;
pub mod lanes;
pub mod op;
pub mod packed;
pub mod scan;
pub mod sched;
pub mod simd;
pub mod sliced;
pub mod tree;

pub use arena::{cspp_heap_with, ArenaScan};
pub use cspp::{cspp_ring, cspp_tree, segmented_prefix_ring, segmented_prefix_tree};
pub use lanes::LaneValue;
pub use op::{BoolAnd, BoolOr, First, Last, Max, Min, PrefixOp, SegPair, Sum};
pub use packed::{
    pack_lane, pack_lane_w, packed_cspp_ring, packed_cspp_ring_w, unpack_lane, unpack_lane_w,
    AndWords, BitWords, OrWords, PackedCsppScratch, PackedCsppScratchW, PackedPair, PackedPairW,
    WordOp,
};
pub use sched::allocate_oldest_first;
pub use simd::{
    active_simd_level, detected_simd_level, force_swar_active, set_force_swar, ForceSwarGuard,
};
pub use sliced::{
    pack_value_lane, sliced_cspp_ring, unpack_value_lane, SlicedCsppScratch, SlicedPair,
};
pub use tree::{tree_scan_exclusive, tree_scan_inclusive, TreeScan};
