//! Bit-packed, word-parallel boolean CSPP — 64 independent 1-bit
//! segmented-prefix networks evaluated per machine word.
//!
//! The paper instantiates one 1-bit CSPP circuit per *flag* (all
//! earlier finished / stored / confirmed, Figure 5) and one per
//! *logical register* for the ready-bit network behind forwarding
//! (Figure 4). Those instances all share the ring's station count `n`
//! and differ only in their inputs, so a software model can lay them
//! side by side: station `i` contributes one `u64` whose bit `L` is
//! lane `L`'s value and one `u64` whose bit `L` is lane `L`'s segment
//! bit, and a single pass evaluates all 64 networks at once (SWAR).
//!
//! The segmented combination rule lifts lane-wise: for AND lanes,
//!
//! ```text
//! value = vb & (sb | va)        seg = sa | sb
//! ```
//!
//! which is `sb ? vb : (va & vb)` evaluated in every bit position
//! without branches. Each operator has a genuine two-sided *identity*
//! leaf (`value = !0, seg = 0` for AND), so the log-depth tree form
//! pads non-power-of-two rings with identity leaves instead of
//! tracking node occupancy.
//!
//! Semantics match [`crate::cspp::cspp_ring`] lane for lane, including
//! the all-segments-low cyclic wrap case: a lane whose segment word
//! column is all zero reports `seg = 0` and a wrap-around artefact
//! value that callers must treat as don't-care (property-tested in
//! `tests/packed_equivalence.rs`).
//!
//! [`BitWords`] is the companion plain bitset used to keep per-cycle
//! occupancy and readiness state (engine register-ready lanes,
//! butterfly stage wires) in packed words with word-parallel clears.

/// A lane-wise boolean associative operator on 64-lane packed words,
/// lifted to the segmented combination rule.
///
/// Implementations provide the value half of the lifted combine; the
/// segment half is always `sa | sb`. [`WordOp::IDENTITY`] paired with a
/// zero segment word must be a two-sided identity of the lifted
/// operator, which is what lets the tree evaluation pad arbitrary ring
/// sizes.
pub trait WordOp {
    /// Value word of the identity leaf (segment word is zero).
    const IDENTITY: u64;
    /// True for the AND-shaped lifted combine `vb & (sb | va)`, false
    /// for the OR shape `(va & !sb) | vb` — lets width-specialised
    /// (SIMD) combine kernels pick the formula at monomorphisation
    /// time instead of through the scalar `combine_value` callback.
    const IS_AND: bool;
    /// Value word of `(va, sa) ⊗ (vb, sb)` (the segment word of the
    /// result is `sa | sb` for every operator).
    fn combine_value(va: u64, vb: u64, sb: u64) -> u64;
}

/// Lane-wise AND — the paper's sequencing operator (`a ⊗ b = a ∧ b`),
/// 64 "all earlier stations meet a condition" networks per word.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AndWords;

impl WordOp for AndWords {
    const IDENTITY: u64 = !0;
    const IS_AND: bool = true;
    #[inline]
    fn combine_value(va: u64, vb: u64, sb: u64) -> u64 {
        // sb ? vb : (va & vb), per bit.
        vb & (sb | va)
    }
}

/// Lane-wise OR — the modified-bit trees of the hybrid cluster (paper
/// Figure 9), 64 "any earlier station raised a bit" networks per word.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OrWords;

impl WordOp for OrWords {
    const IDENTITY: u64 = 0;
    const IS_AND: bool = false;
    #[inline]
    fn combine_value(va: u64, vb: u64, sb: u64) -> u64 {
        // sb ? vb : (va | vb), per bit.
        (va & !sb) | vb
    }
}

/// A 64-lane interval summary: bit `L` of `value`/`seg` belongs to
/// lane `L`. The packed analogue of [`crate::op::SegPair`]`<bool>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PackedPair {
    /// Per-lane accumulated value since the nearest contained boundary.
    pub value: u64,
    /// Per-lane "interval contains a segment boundary" flag.
    pub seg: u64,
}

impl PackedPair {
    /// The identity summary of operator `O` (absorbed on either side).
    #[inline]
    pub fn identity<O: WordOp>() -> Self {
        PackedPair {
            value: O::IDENTITY,
            seg: 0,
        }
    }

    /// Lift a station's input words to a leaf summary.
    #[inline]
    pub fn leaf(value: u64, seg: u64) -> Self {
        PackedPair { value, seg }
    }

    /// The lifted segmented combine, `self` covering the interval
    /// immediately before `rhs`.
    #[inline]
    pub fn combine<O: WordOp>(self, rhs: PackedPair) -> Self {
        PackedPair {
            value: O::combine_value(self.value, rhs.value, rhs.seg),
            seg: self.seg | rhs.seg,
        }
    }
}

/// Cyclic segmented parallel prefix over packed lanes, linear ring
/// reference — the word-parallel mirror of [`crate::cspp::cspp_ring`].
///
/// `out[i]` summarises, per lane, the cyclically preceding stations
/// back to the nearest raised segment bit. Lanes with no raised
/// segment bit anywhere report `seg = 0` and a wrap-around artefact
/// value (don't-care, as in the generic reference).
///
/// # Panics
/// Panics if `values.len() != seg.len()` or the ring is empty.
pub fn packed_cspp_ring<O: WordOp>(values: &[u64], seg: &[u64]) -> Vec<PackedPair> {
    assert_eq!(values.len(), seg.len(), "value/segment length mismatch");
    assert!(!values.is_empty(), "CSPP ring must be non-empty");
    let n = values.len();
    let mut whole = PackedPair::identity::<O>();
    for i in 0..n {
        whole = whole.combine::<O>(PackedPair::leaf(values[i], seg[i]));
    }
    let mut out = Vec::with_capacity(n);
    let mut acc = whole;
    for i in 0..n {
        out.push(acc);
        acc = acc.combine::<O>(PackedPair::leaf(values[i], seg[i]));
    }
    out
}

/// Reusable scratch for the log-depth packed tree evaluation. Retains
/// its heap buffers across calls, so steady-state evaluation performs
/// **zero allocations** once the ring size has been seen.
#[derive(Debug, Clone, Default)]
pub struct PackedCsppScratch {
    /// Up-sweep interval summaries, heap layout over `2 * size` slots.
    summaries: Vec<PackedPair>,
    /// Down-sweep prefixes, same layout.
    prefix: Vec<PackedPair>,
    /// `(n, identity)` of the last sweep. While unchanged, the padding
    /// leaves above `n` still hold the operator identity and the
    /// sweeps overwrite every other slot they read, so the buffers
    /// need no re-initialisation — the steady-state pass touches only
    /// `Θ(n)` words instead of refilling `4 · size` slots.
    shape: (usize, u64),
}

impl PackedCsppScratch {
    /// Fresh scratch with no retained capacity.
    pub fn new() -> Self {
        PackedCsppScratch::default()
    }

    /// Make both heap buffers `2 * size` slots long with the padding
    /// leaves `[size + n, 2 * size)` holding `identity`. A repeat call
    /// with the same `(n, identity)` is free: the sweeps only ever
    /// write the non-padding slots, so the padding survives and no
    /// refill is needed.
    fn ensure_shape(&mut self, n: usize, size: usize, identity: PackedPair) {
        if self.shape == (n, identity.value) {
            return;
        }
        self.summaries.clear();
        self.summaries.resize(2 * size, identity);
        self.prefix.clear();
        self.prefix.resize(2 * size, identity);
        self.shape = (n, identity.value);
    }

    /// Up-sweep + down-sweep shared by the cyclic and seeded forms.
    /// Pads the leaf level with identity summaries up to the next
    /// power of two, which keeps every tree node meaningful without
    /// `Option` occupancy tracking.
    fn sweep<O: WordOp>(
        &mut self,
        values: &[u64],
        seg: &[u64],
        init: Option<PackedPair>,
        out: &mut Vec<PackedPair>,
    ) {
        assert_eq!(values.len(), seg.len(), "value/segment length mismatch");
        assert!(!values.is_empty(), "CSPP ring must be non-empty");
        let n = values.len();
        let size = n.next_power_of_two();
        self.ensure_shape(n, size, PackedPair::identity::<O>());
        for i in 0..n {
            self.summaries[size + i] = PackedPair::leaf(values[i], seg[i]);
        }
        for k in (1..size).rev() {
            self.summaries[k] = self.summaries[2 * k].combine::<O>(self.summaries[2 * k + 1]);
        }
        // Cyclic form: tie the tree top, so the root's own summary —
        // the whole-ring fold — flows back in before leaf 0.
        let seed = init.unwrap_or(self.summaries[1]);
        self.prefix[1] = seed;
        for k in 1..size {
            let p = self.prefix[k];
            self.prefix[2 * k] = p;
            self.prefix[2 * k + 1] = p.combine::<O>(self.summaries[2 * k]);
        }
        out.clear();
        out.extend_from_slice(&self.prefix[size..size + n]);
    }

    /// Cyclic segmented parallel prefix via the log-depth tree, into a
    /// caller-provided output buffer. Semantics identical to
    /// [`packed_cspp_ring`] (property-tested), work `Θ(n)` words,
    /// allocation-free once buffers are warm.
    ///
    /// # Panics
    /// Panics if `values.len() != seg.len()` or the ring is empty.
    pub fn cspp_into<O: WordOp>(&mut self, values: &[u64], seg: &[u64], out: &mut Vec<PackedPair>) {
        self.sweep::<O>(values, seg, None, out);
    }

    /// Non-cyclic segmented *exclusive* prefix seeded with `init`
    /// flowing in before station 0 — the packed mirror of
    /// [`crate::cspp::segmented_prefix_ring`].
    ///
    /// # Panics
    /// Panics if `values.len() != seg.len()` or the input is empty.
    pub fn segmented_exclusive_into<O: WordOp>(
        &mut self,
        values: &[u64],
        seg: &[u64],
        init: PackedPair,
        out: &mut Vec<PackedPair>,
    ) {
        self.sweep::<O>(values, seg, Some(init), out);
    }

    /// Paper Figure 5, 64 lanes at a time: for each station, per lane,
    /// "have all older stations raised their condition bit?". The
    /// segment boundary is the `oldest` station in every lane; the
    /// output at `oldest` itself wraps the whole ring and is don't-care
    /// (returned as-is), exactly like
    /// [`crate::cspp::cspp_all_earlier`].
    ///
    /// # Panics
    /// Panics if `oldest >= conditions.len()` or the ring is empty.
    pub fn all_earlier_into(&mut self, conditions: &[u64], oldest: usize, out: &mut Vec<u64>) {
        assert!(!conditions.is_empty(), "CSPP ring must be non-empty");
        assert!(oldest < conditions.len(), "oldest station out of range");
        let n = conditions.len();
        let size = n.next_power_of_two();
        self.ensure_shape(n, size, PackedPair::identity::<AndWords>());
        for (i, &cond) in conditions.iter().enumerate() {
            let seg = if i == oldest { !0 } else { 0 };
            self.summaries[size + i] = PackedPair::leaf(cond, seg);
        }
        for k in (1..size).rev() {
            self.summaries[k] =
                self.summaries[2 * k].combine::<AndWords>(self.summaries[2 * k + 1]);
        }
        let root = self.summaries[1];
        self.prefix[1] = root;
        for k in 1..size {
            let p = self.prefix[k];
            self.prefix[2 * k] = p;
            self.prefix[2 * k + 1] = p.combine::<AndWords>(self.summaries[2 * k]);
        }
        out.clear();
        out.extend(self.prefix[size..size + n].iter().map(|p| p.value));
    }
}

/// Set bit `lane` of `words[i]` to `bits[i]` for every station `i` —
/// loads one boolean CSPP instance into a lane of a packed problem.
///
/// # Panics
/// Panics if `lane >= 64` or `words.len() != bits.len()`.
pub fn pack_lane(words: &mut [u64], lane: usize, bits: &[bool]) {
    assert!(lane < 64, "lane out of range");
    assert_eq!(words.len(), bits.len(), "station count mismatch");
    for (w, &b) in words.iter_mut().zip(bits) {
        *w = (*w & !(1u64 << lane)) | ((b as u64) << lane);
    }
}

/// Extract lane `lane` of each word as a boolean vector — the inverse
/// of [`pack_lane`].
///
/// # Panics
/// Panics if `lane >= 64`.
pub fn unpack_lane(words: &[u64], lane: usize) -> Vec<bool> {
    assert!(lane < 64, "lane out of range");
    words.iter().map(|w| w >> lane & 1 == 1).collect()
}

/// A `64·W`-lane interval summary over `W` lane words: bit `L % 64` of
/// `value[L / 64]`/`seg[L / 64]` belongs to lane `L`. The multi-word
/// generalisation of [`PackedPair`], used when one machine word cannot
/// hold every lane (e.g. the engine's per-register readiness networks
/// for register files wider than 64).
///
/// `#[repr(C)]` pins `value` before `seg` in memory so the AVX2
/// combine kernel in [`crate::simd`] can treat the whole `W = 2` pair
/// as one 256-bit lane group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(C)]
pub struct PackedPairW<const W: usize> {
    /// Per-lane accumulated value since the nearest contained boundary.
    pub value: [u64; W],
    /// Per-lane "interval contains a segment boundary" flag.
    pub seg: [u64; W],
}

impl<const W: usize> PackedPairW<W> {
    /// The identity summary of operator `O` (absorbed on either side).
    #[inline]
    pub fn identity<O: WordOp>() -> Self {
        PackedPairW {
            value: [O::IDENTITY; W],
            seg: [0; W],
        }
    }

    /// Lift a station's input words to a leaf summary.
    #[inline]
    pub fn leaf(value: [u64; W], seg: [u64; W]) -> Self {
        PackedPairW { value, seg }
    }

    /// The lifted segmented combine, `self` covering the interval
    /// immediately before `rhs`. Word `j` combines independently of
    /// every other word: lanes never interact.
    #[inline]
    pub fn combine<O: WordOp>(self, rhs: PackedPairW<W>) -> Self {
        let mut value = [0u64; W];
        let mut seg = [0u64; W];
        for j in 0..W {
            value[j] = O::combine_value(self.value[j], rhs.value[j], rhs.seg[j]);
            seg[j] = self.seg[j] | rhs.seg[j];
        }
        PackedPairW { value, seg }
    }
}

/// Cyclic segmented parallel prefix over `64·W` packed lanes, linear
/// ring reference — the multi-word mirror of [`packed_cspp_ring`].
/// Semantics per lane are identical to [`crate::cspp::cspp_ring`],
/// including the all-segments-low cyclic wrap (don't-care artefact
/// values, `seg = 0`).
///
/// # Panics
/// Panics if `values.len() != seg.len()` or the ring is empty.
pub fn packed_cspp_ring_w<O: WordOp, const W: usize>(
    values: &[[u64; W]],
    seg: &[[u64; W]],
) -> Vec<PackedPairW<W>> {
    assert_eq!(values.len(), seg.len(), "value/segment length mismatch");
    assert!(!values.is_empty(), "CSPP ring must be non-empty");
    let n = values.len();
    let mut whole = PackedPairW::identity::<O>();
    for i in 0..n {
        whole = whole.combine::<O>(PackedPairW::leaf(values[i], seg[i]));
    }
    let mut out = Vec::with_capacity(n);
    let mut acc = whole;
    for i in 0..n {
        out.push(acc);
        acc = acc.combine::<O>(PackedPairW::leaf(values[i], seg[i]));
    }
    out
}

/// Reusable scratch for the multi-word log-depth packed tree — the
/// `[u64; W]` generalisation of [`PackedCsppScratch`], evaluating
/// `64·W` boolean lane networks per pass. Retains its heap buffers
/// across calls, so steady-state evaluation performs **zero**
/// allocations once the ring size has been seen.
#[derive(Debug, Clone)]
pub struct PackedCsppScratchW<const W: usize> {
    /// Up-sweep interval summaries, heap layout over `2 * size` slots.
    summaries: Vec<PackedPairW<W>>,
    /// Down-sweep prefixes, same layout.
    prefix: Vec<PackedPairW<W>>,
    /// `(n, identity value word)` of the last sweep, as in
    /// [`PackedCsppScratch`]: while unchanged, the padding leaves above
    /// `n` still hold the operator identity and no refill is needed.
    shape: (usize, u64),
}

impl<const W: usize> Default for PackedCsppScratchW<W> {
    fn default() -> Self {
        PackedCsppScratchW {
            summaries: Vec::new(),
            prefix: Vec::new(),
            shape: (0, 0),
        }
    }
}

impl<const W: usize> PackedCsppScratchW<W> {
    /// Fresh scratch with no retained capacity.
    pub fn new() -> Self {
        PackedCsppScratchW::default()
    }

    /// As in the single-word scratch: size both buffers with identity
    /// padding; a repeat call with the same `(n, identity)` is free.
    fn ensure_shape(&mut self, n: usize, size: usize, identity: PackedPairW<W>) {
        if self.shape == (n, identity.value[0]) {
            return;
        }
        self.summaries.clear();
        self.summaries.resize(2 * size, identity);
        self.prefix.clear();
        self.prefix.resize(2 * size, identity);
        self.shape = (n, identity.value[0]);
    }

    /// Up-sweep + down-sweep shared by the cyclic and seeded forms,
    /// identical in structure to the single-word sweep.
    fn sweep<O: WordOp>(
        &mut self,
        values: &[[u64; W]],
        seg: &[[u64; W]],
        init: Option<PackedPairW<W>>,
        out: &mut Vec<PackedPairW<W>>,
    ) {
        assert_eq!(values.len(), seg.len(), "value/segment length mismatch");
        assert!(!values.is_empty(), "CSPP ring must be non-empty");
        let n = values.len();
        let size = n.next_power_of_two();
        self.ensure_shape(n, size, PackedPairW::identity::<O>());
        for i in 0..n {
            self.summaries[size + i] = PackedPairW::leaf(values[i], seg[i]);
        }
        // Both sweeps runtime-dispatch to the AVX2 kernels in
        // [`crate::simd`] (bit-for-bit identical); the scalar loops
        // are the portable fallback.
        if !crate::simd::packed_up_sweep_avx2::<O, W>(&mut self.summaries, size) {
            for k in (1..size).rev() {
                self.summaries[k] = self.summaries[2 * k].combine::<O>(self.summaries[2 * k + 1]);
            }
        }
        let seed = init.unwrap_or(self.summaries[1]);
        self.prefix[1] = seed;
        if !crate::simd::packed_down_sweep_avx2::<O, W>(&mut self.prefix, &self.summaries, size) {
            for k in 1..size {
                let p = self.prefix[k];
                self.prefix[2 * k] = p;
                self.prefix[2 * k + 1] = p.combine::<O>(self.summaries[2 * k]);
            }
        }
        out.clear();
        out.extend_from_slice(&self.prefix[size..size + n]);
    }

    /// Cyclic segmented parallel prefix via the log-depth tree, into a
    /// caller-provided output buffer. Semantics identical to
    /// [`packed_cspp_ring_w`] (property-tested), work `Θ(n · W)` words,
    /// allocation-free once buffers are warm.
    ///
    /// # Panics
    /// Panics if `values.len() != seg.len()` or the ring is empty.
    pub fn cspp_into<O: WordOp>(
        &mut self,
        values: &[[u64; W]],
        seg: &[[u64; W]],
        out: &mut Vec<PackedPairW<W>>,
    ) {
        self.sweep::<O>(values, seg, None, out);
    }

    /// Non-cyclic segmented *exclusive* prefix seeded with `init`
    /// flowing in before station 0 — the multi-word mirror of
    /// [`PackedCsppScratch::segmented_exclusive_into`].
    ///
    /// # Panics
    /// Panics if `values.len() != seg.len()` or the input is empty.
    pub fn segmented_exclusive_into<O: WordOp>(
        &mut self,
        values: &[[u64; W]],
        seg: &[[u64; W]],
        init: PackedPairW<W>,
        out: &mut Vec<PackedPairW<W>>,
    ) {
        self.sweep::<O>(values, seg, Some(init), out);
    }

    /// Paper Figure 5, `64·W` lanes at a time: for each station, per
    /// lane, "have all older stations raised their condition bit?". The
    /// segment boundary is the `oldest` station in every lane; the
    /// output at `oldest` itself wraps the whole ring and is don't-care
    /// (returned as-is), exactly like
    /// [`PackedCsppScratch::all_earlier_into`].
    ///
    /// # Panics
    /// Panics if `oldest >= conditions.len()` or the ring is empty.
    pub fn all_earlier_into(
        &mut self,
        conditions: &[[u64; W]],
        oldest: usize,
        out: &mut Vec<[u64; W]>,
    ) {
        assert!(!conditions.is_empty(), "CSPP ring must be non-empty");
        assert!(oldest < conditions.len(), "oldest station out of range");
        let n = conditions.len();
        let size = n.next_power_of_two();
        self.ensure_shape(n, size, PackedPairW::identity::<AndWords>());
        for (i, &cond) in conditions.iter().enumerate() {
            let seg = if i == oldest { [!0u64; W] } else { [0u64; W] };
            self.summaries[size + i] = PackedPairW::leaf(cond, seg);
        }
        if !crate::simd::packed_up_sweep_avx2::<AndWords, W>(&mut self.summaries, size) {
            for k in (1..size).rev() {
                self.summaries[k] =
                    self.summaries[2 * k].combine::<AndWords>(self.summaries[2 * k + 1]);
            }
        }
        let root = self.summaries[1];
        self.prefix[1] = root;
        if !crate::simd::packed_down_sweep_avx2::<AndWords, W>(
            &mut self.prefix,
            &self.summaries,
            size,
        ) {
            for k in 1..size {
                let p = self.prefix[k];
                self.prefix[2 * k] = p;
                self.prefix[2 * k + 1] = p.combine::<AndWords>(self.summaries[2 * k]);
            }
        }
        out.clear();
        out.extend(self.prefix[size..size + n].iter().map(|p| p.value));
    }
}

/// Set bit `lane` of `words[i]` to `bits[i]` for every station `i` —
/// the multi-word form of [`pack_lane`], addressing `64 · W` lanes.
///
/// # Panics
/// Panics if `lane >= 64 * W` or `words.len() != bits.len()`.
pub fn pack_lane_w<const W: usize>(words: &mut [[u64; W]], lane: usize, bits: &[bool]) {
    assert!(lane < 64 * W, "lane out of range");
    assert_eq!(words.len(), bits.len(), "station count mismatch");
    let (j, b) = (lane / 64, lane % 64);
    for (w, &bit) in words.iter_mut().zip(bits) {
        w[j] = (w[j] & !(1u64 << b)) | ((bit as u64) << b);
    }
}

/// Extract lane `lane` of each multi-word station as a boolean vector —
/// the inverse of [`pack_lane_w`].
///
/// # Panics
/// Panics if `lane >= 64 * W`.
pub fn unpack_lane_w<const W: usize>(words: &[[u64; W]], lane: usize) -> Vec<bool> {
    assert!(lane < 64 * W, "lane out of range");
    let (j, b) = (lane / 64, lane % 64);
    words.iter().map(|w| w[j] >> b & 1 == 1).collect()
}

/// A fixed-length bitset over `u64` words with word-parallel clears —
/// the packed replacement for per-cycle `Vec<bool>` occupancy maps
/// (butterfly stage wires) and per-register readiness lanes (the
/// engine's packed forwarding network).
#[derive(Debug, Clone, Default)]
pub struct BitWords {
    words: Vec<u64>,
    len: usize,
}

impl BitWords {
    /// An all-clear bitset of `len` bits.
    pub fn new(len: usize) -> Self {
        BitWords {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff the bitset holds no bits at all.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Clear every bit (one store per 64 bits).
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Read bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index out of range");
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Raise bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        assert!(i < self.len, "bit index out of range");
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Write bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn assign(&mut self, i: usize, v: bool) {
        assert!(i < self.len, "bit index out of range");
        let w = &mut self.words[i / 64];
        *w = (*w & !(1u64 << (i % 64))) | ((v as u64) << (i % 64));
    }

    /// True iff any bit is raised (word-parallel scan).
    pub fn any(&self) -> bool {
        self.words.iter().any(|&w| w != 0)
    }

    /// Number of raised bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }
}

/// H-tree communication distance between ring positions `a` and `b`:
/// the height of their lowest common ancestor, i.e. the bit-length of
/// `a XOR b`. Zero iff `a == b`; at most [`hop_band_count`]` - 1` for
/// positions inside one ring.
#[inline]
pub fn hop_level(a: usize, b: usize) -> usize {
    (usize::BITS - (a ^ b).leading_zeros()) as usize
}

/// Number of distinct hop levels between positions of a ring with
/// `ring` leaves (`0..ring`): `bit_length(ring - 1) + 1`, counting the
/// degenerate level 0. One for a single-leaf ring.
#[inline]
pub fn hop_band_count(ring: usize) -> usize {
    if ring <= 1 {
        1
    } else {
        hop_level(0, ring - 1) + 1
    }
}

/// Hop-distance readiness bands over `64·W`-lane packed words: band
/// `d` holds the lanes whose values are *not yet* visible to a
/// consumer `d` H-tree levels away from the producer. Readiness times
/// grow monotonically with hop distance, so the per-lane state
/// collapses to a single number — the first level at which the lane is
/// still unready — and the bands nest:
/// `bands[0] ⊆ bands[1] ⊆ … ⊆ bands[top]`. A consumer that misses the
/// *top* band is therefore ready at every distance (one word-array
/// AND), while a hit pins down exactly which levels still block via
/// [`HopBands::test`].
///
/// Only the top band is materialised as a lane word (it is the word
/// the fast gate ANDs against); the inner bands are carried as the
/// per-lane first-unready level, which answers [`HopBands::test`] with
/// one byte compare. This keeps the per-writer update in a
/// simulation's hot scan loop at one byte store plus one bit
/// read-modify-write — writing `log2(window)+1` separate band words
/// per producer per cycle measurably drags the whole packed path
/// below the scalar resolve it exists to beat. With a single band
/// this degenerates to the plain distance-independent unready word.
#[derive(Debug, Clone)]
pub struct HopBands<const W: usize> {
    /// The widest band: lanes unready at the farthest hop distance
    /// (the union of every virtual inner band, by nesting).
    top: [u64; W],
    /// Per-lane first unready level, `num_bands` when ready at every
    /// distance. Only meaningful once `prepare` has run.
    first_unready: Vec<u8>,
    /// Number of (virtual) bands; zero until `prepare`.
    num_bands: usize,
}

impl<const W: usize> Default for HopBands<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<const W: usize> HopBands<W> {
    /// An empty band set; size it with [`HopBands::prepare`].
    pub fn new() -> Self {
        HopBands {
            top: [0; W],
            first_unready: Vec::new(),
            num_bands: 0,
        }
    }

    /// Resize to `num_bands` all-clear bands, reusing retained
    /// capacity (allocation-free once the lane table exists).
    ///
    /// # Panics
    /// Panics if `num_bands` is zero or greater than 255.
    pub fn prepare(&mut self, num_bands: usize) {
        assert!(num_bands > 0, "at least one hop band");
        assert!(num_bands <= u8::MAX as usize, "band count fits a byte");
        self.num_bands = num_bands;
        self.first_unready.resize(W * 64, 0);
        self.clear();
    }

    /// Clear every band in place: every lane ready at every distance.
    #[inline]
    pub fn clear(&mut self) {
        self.top = [0; W];
        self.first_unready.fill(self.num_bands as u8);
    }

    /// Number of bands.
    #[inline]
    pub fn num_bands(&self) -> usize {
        self.num_bands
    }

    /// The widest band — the union of every band (nesting), so a lane
    /// clear here is ready at *every* hop distance.
    #[inline]
    pub fn top(&self) -> &[u64; W] {
        &self.top
    }

    /// Does `mask` hit any lane of the top band? The packed gate's
    /// fast reject: a miss means every masked lane is ready at every
    /// hop distance. One `vptest` under AVX2 (`W = 4`), the portable
    /// word loop otherwise — see [`crate::simd::mask_and_any`].
    #[inline]
    pub fn intersects(&self, mask: &[u64; W]) -> bool {
        crate::simd::mask_and_any(&self.top, mask)
    }

    /// Is `lane` unready at hop level `band`? Levels past the top band
    /// report the top band (saturating — readiness is monotone, so the
    /// top band answers for every farther distance).
    ///
    /// # Panics
    /// Panics if the band set was never prepared.
    #[inline]
    pub fn test(&self, band: usize, lane: usize) -> bool {
        band.min(self.num_bands - 1) >= self.first_unready[lane] as usize
    }

    /// Write one lane's whole readiness column: unready in every band
    /// `first_unready..`, ready below — `first_unready == 0` marks the
    /// lane blocked at every distance, `first_unready >= num_bands`
    /// ready at every distance. This is the per-writer "promotion"
    /// update: as completion horizons pass, callers re-assign with a
    /// larger `first_unready` and the lane drains out of the nearer
    /// bands.
    #[inline]
    pub fn assign_lane(&mut self, lane: usize, first_unready: usize) {
        let first = first_unready.min(self.num_bands) as u8;
        if self.first_unready[lane] == first {
            // Unchanged column ⇒ unchanged top bit. After the
            // per-cycle clear every lane sits at `num_bands` (ready),
            // so the dominant long-completed-writer case exits here
            // without touching the top band word.
            return;
        }
        self.first_unready[lane] = first;
        let (j, bit) = (lane / 64, 1u64 << (lane % 64));
        let unready = ((first as usize) < self.num_bands) as u64;
        self.top[j] = (self.top[j] & !bit) | (unready.wrapping_neg() & bit);
    }

    /// Write one lane's readiness column directly from its distance-0
    /// horizon: band `d` becomes set (unready) iff
    /// `horizon + step·d > t`, i.e. the value has not yet crossed `d`
    /// H-tree levels by cycle `t`. Equivalent to
    /// [`HopBands::assign_lane`] with
    /// `first_unready = ⌊(t − horizon)/step⌋ + 1` (clamped, 0 when
    /// `horizon > t`, `num_bands` when `step == 0` and `horizon ≤ t`),
    /// but division-free: the level search walks at most `num_bands`
    /// saturating additions and usually exits on the first. `step`
    /// saturates per level, so a huge per-hop latency pins the horizon
    /// at `u64::MAX` ("never arrives from afar") instead of wrapping.
    #[inline]
    pub fn assign_lane_horizon(&mut self, lane: usize, horizon: u64, step: u64, t: u64) {
        let mut level = 0usize;
        let mut h = horizon;
        while level < self.num_bands && h <= t {
            level += 1;
            h = h.saturating_add(step);
        }
        self.assign_lane(lane, level);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cspp::cspp_ring;
    use crate::op::{BoolAnd, BoolOr};

    /// Identity really is two-sided for both operators.
    #[test]
    fn identities_absorb() {
        for v in [0u64, !0, 0xDEAD_BEEF] {
            for s in [0u64, !0, 0xF0F0] {
                let x = PackedPair::leaf(v, s);
                assert_eq!(PackedPair::identity::<AndWords>().combine::<AndWords>(x), x);
                assert_eq!(x.combine::<AndWords>(PackedPair::identity::<AndWords>()), x);
                assert_eq!(PackedPair::identity::<OrWords>().combine::<OrWords>(x), x);
                assert_eq!(x.combine::<OrWords>(PackedPair::identity::<OrWords>()), x);
            }
        }
    }

    /// Figure 5's worked example in one lane of a packed ring.
    #[test]
    fn figure5_example_in_a_lane() {
        let n = 8;
        let lane = 17;
        let mut cond = vec![0u64; n];
        let bits: Vec<bool> = (0..n).map(|i| [6, 7, 0, 1, 3].contains(&i)).collect();
        pack_lane(&mut cond, lane, &bits);
        let mut scratch = PackedCsppScratch::new();
        let mut out = Vec::new();
        scratch.all_earlier_into(&cond, 6, &mut out);
        let got = unpack_lane(&out, lane);
        for (i, &o) in got.iter().enumerate() {
            let expected = matches!(i, 7 | 0 | 1 | 2);
            if i != 6 {
                assert_eq!(o, expected, "station {i}");
            }
        }
    }

    /// Tree vs ring, exhaustive over small rings with dense random
    /// words (each word exercises 64 lanes at once).
    #[test]
    fn tree_matches_ring_small_sizes() {
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut scratch = PackedCsppScratch::new();
        let mut out = Vec::new();
        for n in 1..=33usize {
            let values: Vec<u64> = (0..n).map(|_| next()).collect();
            let seg: Vec<u64> = (0..n).map(|_| next() & next()).collect();
            scratch.cspp_into::<AndWords>(&values, &seg, &mut out);
            assert_eq!(out, packed_cspp_ring::<AndWords>(&values, &seg), "n={n}");
            scratch.cspp_into::<OrWords>(&values, &seg, &mut out);
            assert_eq!(out, packed_cspp_ring::<OrWords>(&values, &seg), "n={n}");
        }
    }

    /// Lane extraction of the packed ring matches the generic ring.
    #[test]
    fn lanes_match_generic_reference() {
        let bits_v = [true, false, true, true, false];
        let bits_s = [false, true, false, false, true];
        let mut values = vec![0u64; 5];
        let mut seg = vec![0u64; 5];
        pack_lane(&mut values, 0, &bits_v);
        pack_lane(&mut seg, 0, &bits_s);
        // A second, different lane to check independence.
        let bits_v2: Vec<bool> = bits_v.iter().map(|b| !b).collect();
        pack_lane(&mut values, 63, &bits_v2);
        pack_lane(&mut seg, 63, &[false; 5]);

        let packed = packed_cspp_ring::<AndWords>(&values, &seg);
        let generic = cspp_ring::<bool, BoolAnd>(&bits_v, &bits_s);
        for i in 0..5 {
            assert_eq!(packed[i].value & 1 == 1, generic[i].value, "v {i}");
            assert_eq!(packed[i].seg & 1 == 1, generic[i].seg, "s {i}");
        }
        let generic2 = cspp_ring::<bool, BoolOr>(&bits_v2, &[false; 5]);
        let packed_or = packed_cspp_ring::<OrWords>(&values, &seg);
        for i in 0..5 {
            // Lane 63 has no boundary: don't-care values, seg low.
            assert!(!generic2[i].seg);
            assert_eq!(packed_or[i].seg >> 63 & 1, 0, "wrap lane seg {i}");
        }
    }

    #[test]
    fn seeded_exclusive_matches_serial() {
        let values = [0b1u64, 0b0, 0b1, 0b1];
        let seg = [0b0u64, 0b1, 0b0, 0b0];
        let init = PackedPair::leaf(0b1, 0b1);
        let mut scratch = PackedCsppScratch::new();
        let mut out = Vec::new();
        scratch.segmented_exclusive_into::<AndWords>(&values, &seg, init, &mut out);
        // Serial reference.
        let mut acc = init;
        for i in 0..4 {
            assert_eq!(out[i], acc, "station {i}");
            acc = acc.combine::<AndWords>(PackedPair::leaf(values[i], seg[i]));
        }
    }

    #[test]
    fn bitwords_basics() {
        let mut b = BitWords::new(130);
        assert_eq!(b.len(), 130);
        assert!(!b.any());
        b.set(0);
        b.set(64);
        b.assign(129, true);
        assert!(b.get(0) && b.get(64) && b.get(129));
        assert!(!b.get(1) && !b.get(128));
        assert_eq!(b.count(), 3);
        b.assign(64, false);
        assert!(!b.get(64));
        b.clear();
        assert!(!b.any());
        assert_eq!(b.count(), 0);
    }

    #[test]
    #[should_panic(expected = "bit index out of range")]
    fn bitwords_bounds_checked() {
        let b = BitWords::new(10);
        let _ = b.get(10);
    }

    #[test]
    #[should_panic(expected = "oldest station out of range")]
    fn all_earlier_bounds_checked() {
        let mut s = PackedCsppScratch::new();
        let mut out = Vec::new();
        s.all_earlier_into(&[1, 2], 7, &mut out);
    }

    /// Multi-word identity really is two-sided for both operators.
    #[test]
    fn multiword_identities_absorb() {
        let x = PackedPairW::<3>::leaf([0xDEAD, !0, 0], [0xF0F0, 0, !0]);
        assert_eq!(
            PackedPairW::identity::<AndWords>().combine::<AndWords>(x),
            x
        );
        assert_eq!(
            x.combine::<AndWords>(PackedPairW::identity::<AndWords>()),
            x
        );
        assert_eq!(PackedPairW::identity::<OrWords>().combine::<OrWords>(x), x);
        assert_eq!(x.combine::<OrWords>(PackedPairW::identity::<OrWords>()), x);
    }

    /// Every word of a multi-word problem evolves exactly like the
    /// same inputs fed to the single-word forms, ring and tree alike.
    #[test]
    fn multiword_matches_single_word_per_word() {
        let mut state = 0xD1CE_F00D_5EED_1234u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut scratch = PackedCsppScratchW::<4>::new();
        let mut out = Vec::new();
        for n in [1usize, 2, 3, 7, 8, 9, 63, 64, 65] {
            let values: Vec<[u64; 4]> = (0..n).map(|_| [next(), next(), next(), next()]).collect();
            let seg: Vec<[u64; 4]> = (0..n)
                .map(|_| {
                    [
                        next() & next(),
                        next() & next(),
                        next() & next(),
                        next() & next(),
                    ]
                })
                .collect();
            let ring = packed_cspp_ring_w::<AndWords, 4>(&values, &seg);
            scratch.cspp_into::<AndWords>(&values, &seg, &mut out);
            assert_eq!(out, ring, "tree vs ring, n={n}");
            for j in 0..4 {
                let vj: Vec<u64> = values.iter().map(|v| v[j]).collect();
                let sj: Vec<u64> = seg.iter().map(|s| s[j]).collect();
                let single = packed_cspp_ring::<AndWords>(&vj, &sj);
                for i in 0..n {
                    assert_eq!(ring[i].value[j], single[i].value, "n={n} word {j} st {i}");
                    assert_eq!(ring[i].seg[j], single[i].seg, "n={n} word {j} st {i}");
                }
            }
        }
    }

    /// Figure 5's worked example in a lane of the second word.
    #[test]
    fn figure5_example_in_a_high_lane() {
        let n = 8;
        let lane = 64 + 17;
        let mut cond = vec![[0u64; 2]; n];
        let bits: Vec<bool> = (0..n).map(|i| [6, 7, 0, 1, 3].contains(&i)).collect();
        pack_lane_w(&mut cond, lane, &bits);
        let mut scratch = PackedCsppScratchW::<2>::new();
        let mut out = Vec::new();
        scratch.all_earlier_into(&cond, 6, &mut out);
        let got = unpack_lane_w(&out, lane);
        for (i, &o) in got.iter().enumerate() {
            let expected = matches!(i, 7 | 0 | 1 | 2);
            if i != 6 {
                assert_eq!(o, expected, "station {i}");
            }
        }
    }

    #[test]
    fn multiword_seeded_exclusive_matches_serial() {
        let values = [[0b1u64, 0b0], [0b0, 0b1], [0b1, 0b1], [0b1, 0b0]];
        let seg = [[0b0u64, 0b1], [0b1, 0b0], [0b0, 0b0], [0b0, 0b1]];
        let init = PackedPairW::leaf([0b1, 0b0], [0b1, 0b1]);
        let mut scratch = PackedCsppScratchW::<2>::new();
        let mut out = Vec::new();
        scratch.segmented_exclusive_into::<AndWords>(&values, &seg, init, &mut out);
        let mut acc = init;
        for i in 0..4 {
            assert_eq!(out[i], acc, "station {i}");
            acc = acc.combine::<AndWords>(PackedPairW::leaf(values[i], seg[i]));
        }
    }

    #[test]
    #[should_panic(expected = "lane out of range")]
    fn multiword_lane_bounds_checked() {
        let mut words = vec![[0u64; 2]; 3];
        pack_lane_w(&mut words, 128, &[true, false, true]);
    }
}
