//! Associative operators for prefix computations.
//!
//! Every prefix structure in the Ultrascalar is parameterised by an
//! associative operator `⊗`. The paper uses exactly two:
//!
//! * `a ⊗ b = a` ([`First`]) — combined with segment bits this realises
//!   "take the value written by the nearest preceding writer", the
//!   register-forwarding semantics of the per-register CSPP circuits;
//! * `a ⊗ b = a ∧ b` ([`BoolAnd`]) — combined with a segment bit at the
//!   oldest station this computes "have *all* earlier stations met a
//!   condition", used for deallocation, memory serialisation and branch
//!   commit (paper Figure 5).
//!
//! A handful of further operators ([`Sum`], [`Min`], [`Max`], [`Last`],
//! [`BoolOr`]) are provided for tests and for the scheduling extensions
//! discussed in the paper's §1 (priority allocation of shared ALUs is a
//! prefix-sum over request bits).

use std::marker::PhantomData;

/// An associative binary operator over `T`.
///
/// Implementations must satisfy `combine(combine(a, b), c) ==
/// combine(a, combine(b, c))` for all inputs; the property tests in this
/// crate check associativity on random samples for every shipped
/// operator.
pub trait PrefixOp<T> {
    /// Combine two adjacent interval summaries, `a` covering the
    /// interval immediately *before* `b`.
    fn combine(a: &T, b: &T) -> T;
}

/// The paper's register-forwarding operator: `a ⊗ b = a`.
///
/// Scanning a sequence with `First` yields, at every position, the value
/// of the *first* element of the scanned interval. Under the segmented
/// combination rule (see [`SegPair`]) the interval always begins at the
/// nearest preceding segment boundary, so a segmented `First`-scan
/// returns the value inserted by the nearest preceding *writer* — which
/// is precisely register renaming/forwarding.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct First;

impl<T: Clone> PrefixOp<T> for First {
    #[inline]
    fn combine(a: &T, _b: &T) -> T {
        a.clone()
    }
}

/// The dual of [`First`]: `a ⊗ b = b`, selecting the last element.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Last;

impl<T: Clone> PrefixOp<T> for Last {
    #[inline]
    fn combine(_a: &T, b: &T) -> T {
        b.clone()
    }
}

/// The paper's sequencing operator: `a ⊗ b = a ∧ b`.
///
/// A cyclic segmented prefix with `BoolAnd`, segment bit raised at the
/// oldest station, tells each station whether every older station has
/// met a condition (finished, stored, committed, …).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BoolAnd;

impl PrefixOp<bool> for BoolAnd {
    #[inline]
    fn combine(a: &bool, b: &bool) -> bool {
        *a && *b
    }
}

/// Boolean OR, used e.g. for the hybrid cluster's modified-bit trees
/// (paper Figure 9: "each cluster now generates a modified bit for each
/// logical register using a tree of OR gates").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BoolOr;

impl PrefixOp<bool> for BoolOr {
    #[inline]
    fn combine(a: &bool, b: &bool) -> bool {
        *a || *b
    }
}

/// Wrapping integer addition; prefix sums allocate shared resources
/// (the prioritised ALU scheduler of Ultrascalar Memo 2 is a prefix sum
/// over request bits).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Sum;

macro_rules! impl_sum {
    ($($t:ty),*) => {$(
        impl PrefixOp<$t> for Sum {
            #[inline]
            fn combine(a: &$t, b: &$t) -> $t {
                a.wrapping_add(*b)
            }
        }
    )*};
}
impl_sum!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Minimum.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Min;

/// Maximum.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Max;

macro_rules! impl_minmax {
    ($($t:ty),*) => {$(
        impl PrefixOp<$t> for Min {
            #[inline]
            fn combine(a: &$t, b: &$t) -> $t { (*a).min(*b) }
        }
        impl PrefixOp<$t> for Max {
            #[inline]
            fn combine(a: &$t, b: &$t) -> $t { (*a).max(*b) }
        }
    )*};
}
impl_minmax!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// An interval summary for **segmented** prefix computation: the value
/// accumulated since the nearest segment boundary inside the interval,
/// plus whether the interval contains a boundary at all.
///
/// This is the classic trick (CLRS exercise 29.2-8, cited by the paper)
/// that turns any associative operator into a *segmented* associative
/// operator, so a single tree circuit evaluates segmented scans:
///
/// ```text
/// (va, sa) ⊗ (vb, sb) = ( if sb { vb } else { va ⊗ vb },  sa ∨ sb )
/// ```
///
/// If the right interval contains a segment boundary, accumulation
/// restarts inside it and the left interval's contribution is discarded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegPair<T> {
    /// Value accumulated from the nearest contained segment start (or
    /// from the beginning of the interval if it contains no boundary).
    pub value: T,
    /// Does the interval contain a segment boundary?
    pub seg: bool,
}

impl<T> SegPair<T> {
    /// Summary of a single element with the given segment bit.
    #[inline]
    pub fn leaf(value: T, seg: bool) -> Self {
        SegPair { value, seg }
    }
}

/// The lifted, still-associative operator on [`SegPair`] summaries.
///
/// `SegOp<O>` is associative whenever `O` is; the property tests check
/// this for both of the paper's operators.
#[derive(Debug, Clone, Copy, Default)]
pub struct SegOp<O>(PhantomData<O>);

impl<T: Clone, O: PrefixOp<T>> PrefixOp<SegPair<T>> for SegOp<O> {
    #[inline]
    fn combine(a: &SegPair<T>, b: &SegPair<T>) -> SegPair<T> {
        SegPair {
            value: if b.seg {
                b.value.clone()
            } else {
                O::combine(&a.value, &b.value)
            },
            seg: a.seg || b.seg,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assoc<T: Clone + PartialEq + std::fmt::Debug, O: PrefixOp<T>>(a: T, b: T, c: T) {
        let ab_c = O::combine(&O::combine(&a, &b), &c);
        let a_bc = O::combine(&a, &O::combine(&b, &c));
        assert_eq!(ab_c, a_bc);
    }

    #[test]
    fn first_is_associative_and_selects_first() {
        assoc::<u32, First>(1, 2, 3);
        assert_eq!(<First as PrefixOp<u32>>::combine(&7, &9), 7);
    }

    #[test]
    fn last_selects_last() {
        assoc::<u32, Last>(1, 2, 3);
        assert_eq!(<Last as PrefixOp<u32>>::combine(&7, &9), 9);
    }

    #[test]
    fn bool_ops() {
        for a in [false, true] {
            for b in [false, true] {
                for c in [false, true] {
                    assoc::<bool, BoolAnd>(a, b, c);
                    assoc::<bool, BoolOr>(a, b, c);
                }
            }
        }
        assert!(!BoolAnd::combine(&true, &false));
        assert!(BoolOr::combine(&true, &false));
    }

    #[test]
    fn sum_wraps() {
        assert_eq!(<Sum as PrefixOp<u8>>::combine(&250, &10), 4);
        assoc::<u8, Sum>(200, 100, 56);
    }

    #[test]
    fn min_max() {
        assert_eq!(<Min as PrefixOp<i32>>::combine(&-3, &5), -3);
        assert_eq!(<Max as PrefixOp<i32>>::combine(&-3, &5), 5);
    }

    #[test]
    fn seg_op_restart_semantics() {
        // Interval B contains a boundary: A's value is discarded.
        let a = SegPair::leaf(10u32, false);
        let b = SegPair::leaf(20u32, true);
        let r = SegOp::<Sum>::combine(&a, &b);
        assert_eq!(r.value, 20);
        assert!(r.seg);

        // No boundary in B: plain combination, boundary flag from A.
        let a = SegPair::leaf(10u32, true);
        let b = SegPair::leaf(20u32, false);
        let r = SegOp::<Sum>::combine(&a, &b);
        assert_eq!(r.value, 30);
        assert!(r.seg);
    }

    #[test]
    fn seg_op_is_associative_exhaustively_for_and() {
        let cases: Vec<SegPair<bool>> = [false, true]
            .iter()
            .flat_map(|&v| [false, true].iter().map(move |&s| SegPair::leaf(v, s)))
            .collect();
        for a in &cases {
            for b in &cases {
                for c in &cases {
                    let ab_c = SegOp::<BoolAnd>::combine(&SegOp::<BoolAnd>::combine(a, b), c);
                    let a_bc = SegOp::<BoolAnd>::combine(a, &SegOp::<BoolAnd>::combine(b, c));
                    assert_eq!(ab_c, a_bc);
                }
            }
        }
    }

    #[test]
    fn seg_op_first_models_nearest_preceding_writer() {
        // Segmented First over [w0, -, w1, -]: combining the whole
        // interval yields the value of the *last* writer (w1), which is
        // what a younger reader should see.
        let xs = [
            SegPair::leaf(100u32, true),
            SegPair::leaf(0, false),
            SegPair::leaf(200, true),
            SegPair::leaf(0, false),
        ];
        let total = xs
            .iter()
            .skip(1)
            .fold(xs[0], |acc, x| SegOp::<First>::combine(&acc, x));
        assert_eq!(total.value, 200);
        assert!(total.seg);
    }
}
