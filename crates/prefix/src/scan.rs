//! Serial reference scans.
//!
//! These are the O(n)-work, O(n)-depth "ring of multiplexers"
//! evaluations (paper Figure 1): trivially correct, used as oracles for
//! the logarithmic tree implementations in [`crate::tree`] and
//! [`crate::cspp`], and as the fast path for small widths.

use crate::op::PrefixOp;

/// Inclusive scan: `out[i] = x[0] ⊗ x[1] ⊗ … ⊗ x[i]`.
///
/// Returns an empty vector for empty input.
pub fn scan_inclusive<T: Clone, O: PrefixOp<T>>(xs: &[T]) -> Vec<T> {
    let mut out = Vec::with_capacity(xs.len());
    let mut acc: Option<T> = None;
    for x in xs {
        let next = match &acc {
            None => x.clone(),
            Some(a) => O::combine(a, x),
        };
        out.push(next.clone());
        acc = Some(next);
    }
    out
}

/// Exclusive scan: `out[0] = identity`, `out[i] = x[0] ⊗ … ⊗ x[i-1]`.
///
/// The identity element is supplied by the caller because not every
/// operator used in the processor has one expressible in `T` (e.g. the
/// register-forwarding operator's identity is "no writer yet", which the
/// hardware encodes in the segment bit instead).
pub fn scan_exclusive<T: Clone, O: PrefixOp<T>>(xs: &[T], identity: T) -> Vec<T> {
    let mut out = Vec::with_capacity(xs.len());
    let mut acc = identity;
    for x in xs {
        out.push(acc.clone());
        acc = O::combine(&acc, x);
    }
    out
}

/// Segmented inclusive scan (linear reference).
///
/// `seg[i]` marks the start of a new segment at position `i`; the
/// accumulation restarts there: `out[i] = x[s] ⊗ … ⊗ x[i]` where `s ≤ i`
/// is the nearest position with `seg[s]` (or 0 if none).
///
/// # Panics
/// Panics if `xs.len() != seg.len()`.
pub fn scan_segmented_inclusive<T: Clone, O: PrefixOp<T>>(xs: &[T], seg: &[bool]) -> Vec<T> {
    assert_eq!(xs.len(), seg.len(), "value/segment length mismatch");
    let mut out = Vec::with_capacity(xs.len());
    let mut acc: Option<T> = None;
    for (x, &s) in xs.iter().zip(seg) {
        let next = match (&acc, s) {
            (_, true) | (None, _) => x.clone(),
            (Some(a), false) => O::combine(a, x),
        };
        out.push(next.clone());
        acc = Some(next);
    }
    out
}

/// Full reduction `x[0] ⊗ … ⊗ x[n-1]`, or `None` for empty input.
pub fn reduce<T: Clone, O: PrefixOp<T>>(xs: &[T]) -> Option<T> {
    let (first, rest) = xs.split_first()?;
    Some(
        rest.iter()
            .fold(first.clone(), |acc, x| O::combine(&acc, x)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{BoolAnd, First, Sum};

    #[test]
    fn inclusive_sum() {
        let xs = [1u32, 2, 3, 4];
        assert_eq!(scan_inclusive::<_, Sum>(&xs), vec![1, 3, 6, 10]);
    }

    #[test]
    fn exclusive_sum() {
        let xs = [1u32, 2, 3, 4];
        assert_eq!(scan_exclusive::<_, Sum>(&xs, 0), vec![0, 1, 3, 6]);
    }

    #[test]
    fn empty_inputs() {
        let xs: [u32; 0] = [];
        assert!(scan_inclusive::<_, Sum>(&xs).is_empty());
        assert!(scan_exclusive::<_, Sum>(&xs, 0).is_empty());
        assert_eq!(reduce::<u32, Sum>(&xs), None);
    }

    #[test]
    fn segmented_sum_restarts() {
        let xs = [1u32, 2, 3, 4, 5];
        let seg = [false, false, true, false, true];
        assert_eq!(
            scan_segmented_inclusive::<_, Sum>(&xs, &seg),
            vec![1, 3, 3, 7, 5]
        );
    }

    #[test]
    fn segmented_first_finds_segment_leader() {
        let xs = [10u32, 11, 12, 13, 14];
        let seg = [true, false, true, false, false];
        assert_eq!(
            scan_segmented_inclusive::<_, First>(&xs, &seg),
            vec![10, 10, 12, 12, 12]
        );
    }

    #[test]
    fn and_reduction() {
        assert_eq!(reduce::<bool, BoolAnd>(&[true, true, false]), Some(false));
        assert_eq!(reduce::<bool, BoolAnd>(&[true, true]), Some(true));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn segmented_length_mismatch_panics() {
        let _ = scan_segmented_inclusive::<u32, Sum>(&[1, 2], &[true]);
    }
}
