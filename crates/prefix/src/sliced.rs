//! Bit-sliced *value* CSPP — whole multi-bit register values forwarded
//! through one word-parallel segmented-prefix network.
//!
//! The paper's Ultrascalar I datapath (Figure 4) instantiates one CSPP
//! circuit per logical register that forwards the *entire 32-bit
//! value* from each writer to every younger reader; the operator is
//! [`crate::op::First`] (`a ⊗ b = a`), so the lifted segmented combine
//! degenerates to a multiplexer: `value = sb ? vb : va`. A value is an
//! opaque payload to that multiplexer — no arithmetic mixes its bits —
//! which is what makes *bit-slicing* exact: store bit `p` of 64 lanes'
//! values as one `u64` *plane* word, and the per-lane mux becomes the
//! same three boolean word ops on every plane, steered by one shared
//! segment word. One tree sweep then propagates the last-writer value
//! for `64·W` registers simultaneously, the software analogue of the
//! paper laying `L` identical value-forwarding CSPPs side by side.
//!
//! Unlike the boolean operators in [`crate::packed`], the select
//! operator has **no two-sided identity**: there is no leaf `e` with
//! `combine(e, x) = x` for every `x`, because a zero-segment `x` must
//! pass the *left* operand's planes through. The all-zero pair is,
//! however, an exact *right* identity (`combine(x, zero) = x`
//! bit-for-bit), and the tree evaluation only ever pads on the right —
//! trailing leaf slots up to the next power of two — so padding
//! summaries appear exclusively as right-hand operands and real
//! outputs are unaffected. The cyclic whole-ring fold is therefore
//! seeded from leaf 0 itself rather than from an identity, and the
//! linear reference [`sliced_cspp_ring`] does the same, which makes
//! tree and ring agree **bit-for-bit** (the combine is exactly
//! associative — pure boolean word ops — so association order cannot
//! matter). Lanes with no raised segment bit anywhere still report
//! `seg = 0` and a wrap-around artefact value that callers must treat
//! as don't-care, exactly as in [`crate::cspp::cspp_ring`].

/// A `64·W`-lane interval summary carrying `B`-bit values bit-sliced
/// into planes: bit `L % 64` of `planes[p][L / 64]` is bit `p` of lane
/// `L`'s value, and bit `L % 64` of `seg[L / 64]` is lane `L`'s
/// "interval contains a segment boundary" flag. The value analogue of
/// [`crate::packed::PackedPairW`] under the register-forwarding
/// operator [`crate::op::First`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlicedPair<const B: usize, const W: usize> {
    /// Bit-planes of the per-lane values: `planes[p]` holds bit `p` of
    /// every lane's value, 64 lanes per word.
    pub planes: [[u64; W]; B],
    /// Per-lane "interval contains a segment boundary" flag.
    pub seg: [u64; W],
}

impl<const B: usize, const W: usize> Default for SlicedPair<B, W> {
    fn default() -> Self {
        SlicedPair::identity()
    }
}

impl<const B: usize, const W: usize> SlicedPair<B, W> {
    /// The all-zero summary — an exact *right* identity of
    /// [`SlicedPair::combine`] (`x.combine(&identity) == x`), used as
    /// tree padding. It is **not** a left identity: the select
    /// operator has none (see the module docs).
    #[inline]
    pub fn identity() -> Self {
        SlicedPair {
            planes: [[0; W]; B],
            seg: [0; W],
        }
    }

    /// The lifted segmented combine, `self` covering the interval
    /// immediately before `rhs`: per lane, `seg ? rhs : self` on every
    /// value plane (the register-forwarding multiplexer), and
    /// `seg = sa | sb`. Word `j` combines independently of every other
    /// word; plane `p` combines independently of every other plane.
    ///
    /// Runtime-dispatches to the AVX2 kernel in [`crate::simd`] when
    /// the host supports it (bit-for-bit identical); the portable
    /// twin is [`SlicedPair::combine_swar`].
    #[inline]
    pub fn combine(&self, rhs: &Self) -> Self {
        if let Some(out) = crate::simd::sliced_combine_avx2(self, rhs) {
            return out;
        }
        self.combine_swar(rhs)
    }

    /// The portable SWAR form of [`SlicedPair::combine`] — the
    /// dispatch fallback on non-AVX2 hosts and the differential
    /// oracle the ring references are built from.
    #[inline]
    pub fn combine_swar(&self, rhs: &Self) -> Self {
        let mut out = SlicedPair::identity();
        for j in 0..W {
            let take = rhs.seg[j];
            for p in 0..B {
                out.planes[p][j] = (rhs.planes[p][j] & take) | (self.planes[p][j] & !take);
            }
            out.seg[j] = self.seg[j] | rhs.seg[j];
        }
        out
    }

    /// Write lane `lane`'s value and segment flag (a station's leaf
    /// contribution: `seg = true` marks the station as a writer whose
    /// value starts a new segment).
    ///
    /// # Panics
    /// Panics if `lane >= 64 * W` or `value` has bits at or above `B`.
    #[inline]
    pub fn set_lane(&mut self, lane: usize, value: u64, seg: bool) {
        assert!(lane < 64 * W, "lane out of range");
        assert!(B >= 64 || value >> B == 0, "value wider than B bits");
        let (j, b) = (lane / 64, lane % 64);
        let bit = 1u64 << b;
        for p in 0..B {
            self.planes[p][j] = (self.planes[p][j] & !bit) | ((value >> p & 1) << b);
        }
        self.seg[j] = (self.seg[j] & !bit) | ((seg as u64) << b);
    }

    /// Gather lane `lane`'s value back out of the bit-planes.
    ///
    /// # Panics
    /// Panics if `lane >= 64 * W`.
    #[inline]
    pub fn lane_value(&self, lane: usize) -> u64 {
        assert!(lane < 64 * W, "lane out of range");
        let (j, b) = (lane / 64, lane % 64);
        let mut v = 0u64;
        for p in 0..B {
            v |= (self.planes[p][j] >> b & 1) << p;
        }
        v
    }

    /// Read lane `lane`'s segment flag.
    ///
    /// # Panics
    /// Panics if `lane >= 64 * W`.
    #[inline]
    pub fn lane_seg(&self, lane: usize) -> bool {
        assert!(lane < 64 * W, "lane out of range");
        self.seg[lane / 64] >> (lane % 64) & 1 == 1
    }
}

/// Cyclic segmented parallel prefix over bit-sliced value lanes,
/// linear ring reference — the value mirror of
/// [`crate::packed::packed_cspp_ring_w`], specialised to the
/// register-forwarding select operator.
///
/// `out[i]` summarises, per lane, the cyclically preceding stations
/// back to the nearest raised segment bit: its value planes hold the
/// nearest preceding writer's value. Because the select operator has
/// no left identity, the whole-ring fold is seeded from `leaves[0]`
/// itself (see the module docs); the tree form reproduces this
/// bit-for-bit. Lanes with no raised segment bit anywhere report
/// `seg = 0` and a wrap-around artefact value (don't-care, as in the
/// generic reference).
///
/// # Panics
/// Panics if the ring is empty.
pub fn sliced_cspp_ring<const B: usize, const W: usize>(
    leaves: &[SlicedPair<B, W>],
) -> Vec<SlicedPair<B, W>> {
    assert!(!leaves.is_empty(), "CSPP ring must be non-empty");
    // The ring is the differential oracle: it stays on the portable
    // SWAR combine regardless of dispatch, so tree-vs-ring sweeps
    // cross-check the AVX2 kernels whenever they are active.
    let mut whole = leaves[0];
    for leaf in &leaves[1..] {
        whole = whole.combine_swar(leaf);
    }
    let mut out = Vec::with_capacity(leaves.len());
    let mut acc = whole;
    for leaf in leaves {
        out.push(acc);
        acc = acc.combine_swar(leaf);
    }
    out
}

/// Reusable scratch for the log-depth bit-sliced value tree — the
/// value analogue of [`crate::packed::PackedCsppScratchW`]. Retains
/// its heap buffers across calls, so steady-state evaluation performs
/// **zero** allocations once the ring size has been seen.
#[derive(Debug, Clone)]
pub struct SlicedCsppScratch<const B: usize, const W: usize> {
    /// Up-sweep interval summaries, heap layout over `2 * size` slots.
    summaries: Vec<SlicedPair<B, W>>,
    /// Down-sweep prefixes, same layout.
    prefix: Vec<SlicedPair<B, W>>,
    /// `n` of the last sweep. While unchanged, the padding leaves above
    /// `n` still hold the (right-)identity zero summary and the sweeps
    /// overwrite every other slot they read, so the buffers need no
    /// re-initialisation.
    shape: usize,
}

impl<const B: usize, const W: usize> Default for SlicedCsppScratch<B, W> {
    fn default() -> Self {
        SlicedCsppScratch {
            summaries: Vec::new(),
            prefix: Vec::new(),
            shape: 0,
        }
    }
}

impl<const B: usize, const W: usize> SlicedCsppScratch<B, W> {
    /// Fresh scratch with no retained capacity.
    pub fn new() -> Self {
        SlicedCsppScratch::default()
    }

    /// Size both buffers to `2 * size` slots with the padding leaves
    /// `[size + n, 2 * size)` holding the zero right-identity. A repeat
    /// call with the same `n` is free: the sweeps only ever write the
    /// non-padding slots, so the padding survives and no refill is
    /// needed.
    fn ensure_shape(&mut self, n: usize, size: usize) {
        if self.shape == n {
            return;
        }
        self.summaries.clear();
        self.summaries.resize(2 * size, SlicedPair::identity());
        self.prefix.clear();
        self.prefix.resize(2 * size, SlicedPair::identity());
        self.shape = n;
    }

    /// Up-sweep + down-sweep shared by the cyclic and seeded forms.
    /// Padding leaves (the zero pair) only ever appear as right-hand
    /// combine operands — they fill the *trailing* leaf slots — so the
    /// right-identity property is all the padding needs.
    fn sweep(
        &mut self,
        leaves: &[SlicedPair<B, W>],
        init: Option<&SlicedPair<B, W>>,
        out: &mut Vec<SlicedPair<B, W>>,
    ) {
        assert!(!leaves.is_empty(), "CSPP ring must be non-empty");
        let n = leaves.len();
        let size = n.next_power_of_two();
        self.ensure_shape(n, size);
        self.summaries[size..size + n].copy_from_slice(leaves);
        for k in (1..size).rev() {
            self.summaries[k] = self.summaries[2 * k].combine(&self.summaries[2 * k + 1]);
        }
        // Cyclic form: the root summary is the whole-ring fold seeded
        // from leaf 0 (padding is a right identity), flowing back in
        // before leaf 0 — no left identity required anywhere.
        let seed = init.copied().unwrap_or(self.summaries[1]);
        self.prefix[1] = seed;
        for k in 1..size {
            let p = self.prefix[k];
            self.prefix[2 * k] = p;
            self.prefix[2 * k + 1] = p.combine(&self.summaries[2 * k]);
        }
        out.clear();
        out.extend_from_slice(&self.prefix[size..size + n]);
    }

    /// Cyclic segmented parallel prefix via the log-depth tree, into a
    /// caller-provided output buffer. Bit-for-bit identical to
    /// [`sliced_cspp_ring`] (property-tested), work `Θ(n · B · W)`
    /// words, allocation-free once buffers are warm.
    ///
    /// # Panics
    /// Panics if the ring is empty.
    pub fn cspp_into(&mut self, leaves: &[SlicedPair<B, W>], out: &mut Vec<SlicedPair<B, W>>) {
        self.sweep(leaves, None, out);
    }

    /// Non-cyclic segmented *exclusive* prefix seeded with `init`
    /// flowing in before station 0 — the value mirror of
    /// [`crate::cspp::segmented_prefix_ring`]. Seeding `init` with the
    /// committed register file (one value per lane, `seg` as desired)
    /// makes `out[i]` each station's full register view: the nearest
    /// preceding in-window writer's value per register, or the
    /// committed value where no writer precedes — the paper's Figure 4
    /// datapath output.
    ///
    /// # Panics
    /// Panics if the input is empty.
    pub fn segmented_exclusive_into(
        &mut self,
        leaves: &[SlicedPair<B, W>],
        init: &SlicedPair<B, W>,
        out: &mut Vec<SlicedPair<B, W>>,
    ) {
        self.sweep(leaves, Some(init), out);
    }
}

/// Write one register's CSPP instance — per-station `(value, seg)`
/// pairs — into lane `lane` of a station-indexed leaf slice, the value
/// form of [`crate::packed::pack_lane_w`].
///
/// # Panics
/// Panics if `lane >= 64 * W`, the slice lengths differ, or any value
/// has bits at or above `B`.
pub fn pack_value_lane<const B: usize, const W: usize>(
    leaves: &mut [SlicedPair<B, W>],
    lane: usize,
    values: &[u64],
    seg: &[bool],
) {
    assert_eq!(leaves.len(), values.len(), "station count mismatch");
    assert_eq!(leaves.len(), seg.len(), "station count mismatch");
    for (i, leaf) in leaves.iter_mut().enumerate() {
        leaf.set_lane(lane, values[i], seg[i]);
    }
}

/// Extract lane `lane` of each station's summary as a value vector —
/// the inverse of [`pack_value_lane`].
///
/// # Panics
/// Panics if `lane >= 64 * W`.
pub fn unpack_value_lane<const B: usize, const W: usize>(
    leaves: &[SlicedPair<B, W>],
    lane: usize,
) -> Vec<u64> {
    leaves.iter().map(|l| l.lane_value(lane)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cspp::{cspp_ring, segmented_prefix_ring};
    use crate::op::{First, SegPair};

    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    fn random_leaf<const B: usize, const W: usize>(state: &mut u64) -> SlicedPair<B, W> {
        let mut leaf = SlicedPair::identity();
        for p in 0..B {
            for j in 0..W {
                leaf.planes[p][j] = xorshift(state);
            }
        }
        for j in 0..W {
            // Sparse segment bits exercise long propagation runs.
            leaf.seg[j] = xorshift(state) & xorshift(state) & xorshift(state);
        }
        leaf
    }

    /// The zero pair is an exact right identity, and demonstrably not
    /// a left identity (the select operator has none).
    #[test]
    fn zero_is_right_identity_only() {
        let mut state = 0x5EED_0BAD_F00D_CAFEu64;
        for _ in 0..16 {
            let x = random_leaf::<8, 2>(&mut state);
            let id = SlicedPair::<8, 2>::identity();
            assert_eq!(x.combine(&id), x);
        }
        // Left side: a zero-seg lane of x passes the *left* planes
        // through, so identity-on-the-left zeroes it.
        let mut x = SlicedPair::<8, 1>::identity();
        x.set_lane(3, 0xAB, false);
        let id = SlicedPair::<8, 1>::identity();
        assert_ne!(id.combine(&x), x);
    }

    /// Lane round-trip through the plane representation.
    #[test]
    fn lane_accessors_round_trip() {
        let mut p = SlicedPair::<32, 2>::identity();
        p.set_lane(0, 0xDEAD_BEEF, true);
        p.set_lane(77, 0x1234_5678, false);
        p.set_lane(127, (1 << 32) - 1, true);
        assert_eq!(p.lane_value(0), 0xDEAD_BEEF);
        assert!(p.lane_seg(0));
        assert_eq!(p.lane_value(77), 0x1234_5678);
        assert!(!p.lane_seg(77));
        assert_eq!(p.lane_value(127), (1 << 32) - 1);
        assert!(p.lane_seg(127));
        // Overwrite clears old bits.
        p.set_lane(0, 0, false);
        assert_eq!(p.lane_value(0), 0);
        assert!(!p.lane_seg(0));
    }

    /// Figure 4's semantics in one lane: the ring forwards each
    /// writer's value to every cyclically younger station.
    #[test]
    fn forwarding_example_in_a_lane() {
        let lane = 5;
        let mut leaves = vec![SlicedPair::<32, 1>::identity(); 8];
        leaves[2].set_lane(lane, 42, true);
        leaves[5].set_lane(lane, 7, true);
        let out = sliced_cspp_ring(&leaves);
        let expect = [7, 7, 7, 42, 42, 42, 7, 7];
        for (i, &e) in expect.iter().enumerate() {
            assert_eq!(out[i].lane_value(lane), e, "station {i}");
            assert!(out[i].lane_seg(lane), "station {i}");
        }
    }

    /// Tree vs ring, exhaustive over small rings with dense random
    /// planes — bit-for-bit, including wrap-artefact lanes.
    #[test]
    fn tree_matches_ring_small_sizes() {
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        let mut scratch = SlicedCsppScratch::<8, 1>::new();
        let mut out = Vec::new();
        for n in 1..=33usize {
            let leaves: Vec<SlicedPair<8, 1>> = (0..n).map(|_| random_leaf(&mut state)).collect();
            scratch.cspp_into(&leaves, &mut out);
            assert_eq!(out, sliced_cspp_ring(&leaves), "n={n}");
        }
    }

    /// Every lane of the sliced ring matches the generic `u64` ring
    /// under `First` — exactly, artefact values included, because both
    /// seed the whole-ring fold from leaf 0.
    #[test]
    fn lanes_match_generic_reference() {
        let mut state = 0xD1CE_F00D_5EED_4321u64;
        let n = 11;
        let mut per_lane: Vec<(Vec<u64>, Vec<bool>)> = Vec::new();
        let mut leaves = vec![SlicedPair::<32, 2>::identity(); n];
        for lane in 0..128 {
            let values: Vec<u64> = (0..n).map(|_| xorshift(&mut state) & 0xFFFF_FFFF).collect();
            let seg: Vec<bool> = (0..n)
                .map(|_| xorshift(&mut state) & xorshift(&mut state) & 1 == 1)
                .collect();
            pack_value_lane(&mut leaves, lane, &values, &seg);
            per_lane.push((values, seg));
        }
        let out = sliced_cspp_ring(&leaves);
        for (lane, (values, seg)) in per_lane.iter().enumerate() {
            let generic = cspp_ring::<u64, First>(values, seg);
            let got = unpack_value_lane(&out, lane);
            for i in 0..n {
                assert_eq!(got[i], generic[i].value, "lane {lane} station {i}");
                assert_eq!(
                    out[i].lane_seg(lane),
                    generic[i].seg,
                    "lane {lane} station {i}"
                );
            }
        }
    }

    /// Seeded exclusive form vs the generic serial reference: the
    /// committed-register-file view of every station.
    #[test]
    fn seeded_exclusive_matches_serial() {
        let mut state = 0xFACE_FEED_0123_4567u64;
        let n = 9;
        let mut leaves = vec![SlicedPair::<16, 1>::identity(); n];
        let mut init = SlicedPair::<16, 1>::identity();
        let mut per_lane: Vec<(Vec<u64>, Vec<bool>, u64)> = Vec::new();
        for lane in 0..64 {
            let values: Vec<u64> = (0..n).map(|_| xorshift(&mut state) & 0xFFFF).collect();
            let seg: Vec<bool> = (0..n).map(|_| xorshift(&mut state) & 1 == 1).collect();
            let committed = xorshift(&mut state) & 0xFFFF;
            pack_value_lane(&mut leaves, lane, &values, &seg);
            init.set_lane(lane, committed, true);
            per_lane.push((values, seg, committed));
        }
        let mut scratch = SlicedCsppScratch::new();
        let mut out = Vec::new();
        scratch.segmented_exclusive_into(&leaves, &init, &mut out);
        for (lane, (values, seg, committed)) in per_lane.iter().enumerate() {
            let generic =
                segmented_prefix_ring::<u64, First>(values, seg, SegPair::leaf(*committed, true));
            for i in 0..n {
                assert_eq!(
                    out[i].lane_value(lane),
                    generic[i].value,
                    "lane {lane} station {i}"
                );
            }
        }
    }

    /// A reused scratch gives the same answers across changing sizes
    /// (exercises `ensure_shape` re-entry).
    #[test]
    fn scratch_reuse_across_sizes() {
        let mut state = 0x0DDB_A115_1234_00FFu64;
        let mut scratch = SlicedCsppScratch::<8, 1>::new();
        let mut out = Vec::new();
        for &n in &[5usize, 5, 16, 3, 16, 5] {
            let leaves: Vec<SlicedPair<8, 1>> = (0..n).map(|_| random_leaf(&mut state)).collect();
            scratch.cspp_into(&leaves, &mut out);
            assert_eq!(out, sliced_cspp_ring(&leaves), "n={n}");
        }
    }

    #[test]
    #[should_panic(expected = "CSPP ring must be non-empty")]
    fn empty_ring_rejected() {
        sliced_cspp_ring::<8, 1>(&[]);
    }

    #[test]
    #[should_panic(expected = "lane out of range")]
    fn lane_bounds_checked() {
        let mut p = SlicedPair::<8, 1>::identity();
        p.set_lane(64, 1, true);
    }

    #[test]
    #[should_panic(expected = "value wider than B bits")]
    fn value_width_checked() {
        let mut p = SlicedPair::<8, 1>::identity();
        p.set_lane(0, 0x100, true);
    }
}
