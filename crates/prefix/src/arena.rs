//! Arena-backed prefix trees: build and scan into retained scratch
//! with no `Option` wrappers and no per-call allocation.
//!
//! [`crate::tree::TreeScan`] models the hardware faithfully but pays a
//! software tax on every evaluation: a fresh `Vec<Option<T>>` per
//! build, another per scan, and an `Option` discriminant test per node.
//! [`ArenaScan`] removes all three. Occupancy of the left-balanced heap
//! layout is *arithmetic*, not data: node `k` (1-based heap index over
//! `2 * size` slots, `size = ceil_pow2(n)`) covers `span(k) =
//! (2*size) >> bitlen(k)` leaves starting at leaf `k*span(k) - size`,
//! so it is occupied iff `k * span(k) < size + n`. Because leaves are
//! left-packed, a node's right child being occupied implies its left
//! child is too, which collapses the per-node `match` into two
//! branch-predictable comparisons.
//!
//! The buffers live in the struct and are reused across cycles, so the
//! steady state performs **zero allocations** (asserted by the counting
//! allocator in `tests/alloc_probe.rs`), and [`ArenaScan::update_leaf`]
//! recomputes only the `O(log n)` root path when successive cycles
//! change few stations — the common case in the simulator, where one
//! instruction finishing flips one condition bit.

use crate::op::PrefixOp;

/// Number of leaves covered by heap node `k` in a tree of `size`
/// leaf slots (`size` a power of two, `k` in `1..2*size`).
#[inline]
fn node_span(size: usize, k: usize) -> usize {
    debug_assert!(k >= 1 && k < 2 * size);
    (2 * size) >> (usize::BITS - k.leading_zeros())
}

/// Does heap node `k` cover at least one of the `n` real leaves?
#[inline]
fn occupied(size: usize, n: usize, k: usize) -> bool {
    // Leftmost leaf index covered by k is k*span - size.
    k * node_span(size, k) < size + n
}

/// An up-sweep/down-sweep scan over a retained arena.
///
/// Drop-in semantic equivalent of [`crate::tree::TreeScan`] (same
/// left-balanced layout, same depth accounting, property-tested to
/// produce identical scans) that owns its buffers and can be re-built
/// and re-scanned indefinitely without touching the allocator.
#[derive(Debug, Clone, Default)]
pub struct ArenaScan<T> {
    n: usize,
    size: usize,
    /// Up-sweep interval summaries, heap layout over `2 * size` slots.
    /// Unoccupied slots hold arbitrary filler (never read).
    summaries: Vec<T>,
    /// Down-sweep prefixes, same layout, retained across scans.
    prefix: Vec<T>,
    /// `ceil(log2 n)` levels.
    levels: usize,
    /// Operator applications performed by the most recent build.
    work: usize,
}

impl<T: Clone> ArenaScan<T> {
    /// An empty arena with no retained capacity; call
    /// [`ArenaScan::build`] before scanning.
    pub fn new() -> Self {
        ArenaScan {
            n: 0,
            size: 0,
            summaries: Vec::new(),
            prefix: Vec::new(),
            levels: 0,
            work: 0,
        }
    }

    /// Up-sweep: compute interval summaries for every occupied node.
    /// Reuses the retained buffer; allocates only when `xs` is wider
    /// than anything seen before.
    ///
    /// # Panics
    /// Panics on empty input.
    pub fn build<O: PrefixOp<T>>(&mut self, xs: &[T]) {
        assert!(!xs.is_empty(), "ArenaScan requires at least one element");
        self.n = xs.len();
        self.size = self.n.next_power_of_two();
        self.levels = self.size.trailing_zeros() as usize;
        self.work = 0;
        // Filler value for unoccupied slots: any T works, it is never
        // read back; reusing xs[0] avoids a Default bound.
        self.summaries.clear();
        self.summaries.resize(2 * self.size, xs[0].clone());
        for (i, x) in xs.iter().enumerate() {
            self.summaries[self.size + i] = x.clone();
        }
        for k in (1..self.size).rev() {
            if occupied(self.size, self.n, 2 * k + 1) {
                let c = O::combine(&self.summaries[2 * k], &self.summaries[2 * k + 1]);
                self.summaries[k] = c;
                self.work += 1;
            } else if occupied(self.size, self.n, 2 * k) {
                // Left-packed: an occupied node with an empty right
                // child just forwards its left child's summary.
                self.summaries[k] = self.summaries[2 * k].clone();
            }
        }
    }

    /// Number of leaves of the most recent build.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True iff nothing has been built yet.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Total reduction of all leaves (the root summary).
    ///
    /// # Panics
    /// Panics if nothing has been built.
    pub fn root(&self) -> &T {
        assert!(self.n > 0, "ArenaScan::root before build");
        &self.summaries[1]
    }

    /// Operator applications on the critical path of a full
    /// up-sweep + down-sweep evaluation: `2 * ceil(log2 n)`.
    pub fn depth(&self) -> usize {
        2 * self.levels
    }

    /// Operator applications performed by the most recent
    /// [`ArenaScan::build`] (leaf updates and scans not included).
    pub fn work(&self) -> usize {
        self.work
    }

    /// Down-sweep producing the *exclusive* scan into `out`.
    /// `before_all` flows into the leftmost leaf (committed state, or
    /// the root summary in a root-tied cyclic evaluation). `out` is
    /// cleared and refilled; no other allocation once buffers are warm.
    ///
    /// # Panics
    /// Panics if nothing has been built.
    pub fn scan_exclusive_into<O: PrefixOp<T>>(&mut self, before_all: T, out: &mut Vec<T>) {
        assert!(self.n > 0, "ArenaScan::scan_exclusive_into before build");
        self.prefix.clear();
        self.prefix.resize(2 * self.size, before_all.clone());
        self.prefix[1] = before_all;
        for k in 1..self.size {
            if !occupied(self.size, self.n, k) {
                continue;
            }
            let p = self.prefix[k].clone();
            // Left child (occupied whenever k is) sees the same prefix;
            // right child sees prefix ⊗ left-summary.
            if occupied(self.size, self.n, 2 * k + 1) {
                self.prefix[2 * k + 1] = O::combine(&p, &self.summaries[2 * k]);
            }
            self.prefix[2 * k] = p;
        }
        out.clear();
        out.extend_from_slice(&self.prefix[self.size..self.size + self.n]);
    }

    /// Replace leaf `i` and recompute only its root path: `O(log n)`
    /// operator applications instead of a full rebuild.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    pub fn update_leaf<O: PrefixOp<T>>(&mut self, i: usize, x: T) {
        assert!(i < self.n, "leaf index out of range");
        self.summaries[self.size + i] = x;
        let mut k = (self.size + i) / 2;
        while k >= 1 {
            if occupied(self.size, self.n, 2 * k + 1) {
                let c = O::combine(&self.summaries[2 * k], &self.summaries[2 * k + 1]);
                self.summaries[k] = c;
            } else {
                self.summaries[k] = self.summaries[2 * k].clone();
            }
            k /= 2;
        }
    }
}

/// Cyclic segmented-or-plain parallel prefix over a heap-layout tree,
/// driven by a *closure* instead of a [`PrefixOp`] — the building block
/// the circuit generators use, where "combining" two summaries means
/// **emitting gates into a netlist** (the closure captures `&mut
/// Netlist`). The tree top is tied: the root's own summary seeds the
/// down-sweep, realising the paper's cyclic wrap (Figure 4).
///
/// Returns `out[i]` = the combination flowing into leaf `i` from its
/// cyclic predecessors. The combination *order* (which pairs are
/// combined, bottom-up then top-down over the left-balanced tree) is
/// fixed, so generated circuits have the canonical `Θ(log n)` depth.
///
/// # Panics
/// Panics on empty input.
pub fn cspp_heap_with<T: Clone>(leaves: &[T], mut combine: impl FnMut(&T, &T) -> T) -> Vec<T> {
    assert!(!leaves.is_empty(), "CSPP ring must be non-empty");
    let n = leaves.len();
    let size = n.next_power_of_two();
    let mut summaries: Vec<T> = vec![leaves[0].clone(); 2 * size];
    summaries[size..size + n].clone_from_slice(leaves);
    for k in (1..size).rev() {
        if occupied(size, n, 2 * k + 1) {
            let c = combine(&summaries[2 * k], &summaries[2 * k + 1]);
            summaries[k] = c;
        } else if occupied(size, n, 2 * k) {
            summaries[k] = summaries[2 * k].clone();
        }
    }
    let root = summaries[1].clone();
    let mut prefix: Vec<T> = vec![root; 2 * size];
    for k in 1..size {
        if !occupied(size, n, k) {
            continue;
        }
        let p = prefix[k].clone();
        if occupied(size, n, 2 * k + 1) {
            prefix[2 * k + 1] = combine(&p, &summaries[2 * k]);
        }
        prefix[2 * k] = p;
    }
    prefix[size..size + n].to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cspp::cspp_ring;
    use crate::op::{BoolAnd, First, SegOp, SegPair, Sum};
    use crate::scan;
    use crate::tree::TreeScan;

    #[test]
    fn occupancy_arithmetic_matches_option_heap() {
        for n in 1..=40usize {
            let size = n.next_power_of_two();
            // Reference: the Option-based occupancy of TreeScan.
            let mut occ = vec![false; 2 * size];
            for i in 0..n {
                occ[size + i] = true;
            }
            for k in (1..size).rev() {
                occ[k] = occ[2 * k] || occ[2 * k + 1];
            }
            for k in 1..2 * size {
                assert_eq!(occupied(size, n, k), occ[k], "n={n} k={k}");
                // Left-packed invariant: right occupied => left occupied.
                if k < size && occ[2 * k + 1] {
                    assert!(occ[2 * k]);
                }
            }
        }
    }

    #[test]
    fn matches_tree_scan_all_small_sizes() {
        let mut arena = ArenaScan::new();
        let mut out = Vec::new();
        for n in 1..70usize {
            let xs: Vec<u64> = (0..n as u64).map(|i| i * 7 + 3).collect();
            arena.build::<Sum>(&xs);
            arena.scan_exclusive_into::<Sum>(1000, &mut out);
            let tree = TreeScan::build::<Sum>(&xs);
            assert_eq!(out, tree.scan_exclusive::<Sum>(1000), "width {n}");
            assert_eq!(arena.root(), tree.root(), "width {n}");
            assert_eq!(arena.depth(), tree.depth(), "width {n}");
        }
    }

    #[test]
    fn matches_serial_exclusive() {
        let mut arena = ArenaScan::new();
        let mut out = Vec::new();
        for n in 1..50usize {
            let xs: Vec<u64> = (0..n as u64).map(|i| i * 3 + 1).collect();
            arena.build::<Sum>(&xs);
            arena.scan_exclusive_into::<Sum>(0, &mut out);
            assert_eq!(out, scan::scan_exclusive::<_, Sum>(&xs, 0), "width {n}");
        }
    }

    #[test]
    fn reuse_across_widths() {
        // Shrinking and growing the problem must not leave stale state.
        let mut arena = ArenaScan::new();
        let mut out = Vec::new();
        for &n in &[33usize, 7, 64, 1, 12] {
            let xs: Vec<u32> = (0..n as u32).map(|i| i + 1).collect();
            arena.build::<Sum>(&xs);
            arena.scan_exclusive_into::<Sum>(0, &mut out);
            assert_eq!(out.len(), n);
            assert_eq!(*arena.root(), (n * (n + 1) / 2) as u32, "n={n}");
        }
    }

    #[test]
    fn update_leaf_matches_rebuild() {
        let mut arena = ArenaScan::new();
        let mut fresh = ArenaScan::new();
        let mut out_a = Vec::new();
        let mut out_b = Vec::new();
        for n in [1usize, 2, 5, 13, 32] {
            let mut xs: Vec<u64> = (0..n as u64).map(|i| i * 5 + 2).collect();
            arena.build::<Sum>(&xs);
            for i in 0..n {
                xs[i] = xs[i].wrapping_mul(3) + i as u64;
                arena.update_leaf::<Sum>(i, xs[i]);
                fresh.build::<Sum>(&xs);
                arena.scan_exclusive_into::<Sum>(7, &mut out_a);
                fresh.scan_exclusive_into::<Sum>(7, &mut out_b);
                assert_eq!(out_a, out_b, "n={n} i={i}");
                assert_eq!(arena.root(), fresh.root(), "n={n} i={i}");
            }
        }
    }

    #[test]
    fn segmented_cyclic_via_root_seed_matches_cspp_ring() {
        // The root-tied pattern used by cspp evaluation: seed the
        // exclusive scan with the root summary.
        let mut arena = ArenaScan::new();
        let mut out = Vec::new();
        for n in 1..=33usize {
            let vals: Vec<bool> = (0..n).map(|i| i % 3 != 1).collect();
            let seg: Vec<bool> = (0..n).map(|i| i % 5 == 2).collect();
            let leaves: Vec<SegPair<bool>> = vals
                .iter()
                .zip(&seg)
                .map(|(&v, &s)| SegPair::leaf(v, s))
                .collect();
            arena.build::<SegOp<BoolAnd>>(&leaves);
            let root = *arena.root();
            arena.scan_exclusive_into::<SegOp<BoolAnd>>(root, &mut out);
            assert_eq!(out, cspp_ring::<bool, BoolAnd>(&vals, &seg), "n={n}");
        }
    }

    #[test]
    fn heap_with_closure_matches_cspp_ring() {
        for n in 1..=33usize {
            let vals: Vec<u32> = (0..n as u32).map(|i| i * 7 + 1).collect();
            let seg: Vec<bool> = (0..n).map(|i| i % 4 == 1).collect();
            let leaves: Vec<SegPair<u32>> = vals
                .iter()
                .zip(&seg)
                .map(|(&v, &s)| SegPair::leaf(v, s))
                .collect();
            let mut combines = 0usize;
            let out = cspp_heap_with(&leaves, |a, b| {
                combines += 1;
                SegOp::<First>::combine(a, b)
            });
            assert_eq!(out, cspp_ring::<u32, First>(&vals, &seg), "n={n}");
            // Work stays linear in n even for non-powers of two: at
            // most one combine per occupied internal node in each
            // sweep.
            assert!(combines <= 4 * n, "n={n} combines={combines}");
        }
    }

    #[test]
    fn work_is_linear() {
        for k in 1..10u32 {
            let n = 1usize << k;
            let mut arena = ArenaScan::new();
            arena.build::<Sum>(&vec![1u32; n]);
            assert_eq!(arena.work(), n - 1, "n = {n}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one element")]
    fn empty_build_panics() {
        let mut arena = ArenaScan::<u32>::new();
        arena.build::<Sum>(&[]);
    }

    #[test]
    #[should_panic(expected = "leaf index out of range")]
    fn update_out_of_range_panics() {
        let mut arena = ArenaScan::new();
        arena.build::<Sum>(&[1u32, 2, 3]);
        arena.update_leaf::<Sum>(3, 9);
    }
}
