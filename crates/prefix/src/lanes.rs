//! Lane-parallel 32-bit values: 64 independent simulations per plane
//! word.
//!
//! [`crate::sliced`] carries register *values* as bit-planes so one
//! tree sweep forwards `64·W` registers of **one** machine. This module
//! inverts the lane assignment: bit `l` of every plane belongs to
//! *simulation* `l`, so a single word-parallel operation advances the
//! same architectural register of 64 **independent machines** at once
//! (the QiMeng-CPU-v2 data-dependency-as-bitplane trick applied to
//! whole runs instead of one run's flags). The storage is literally the
//! sliced substrate's pair type — [`LaneValue`] is `SlicedPair<32, 1>`,
//! 32 planes × 64 lanes, with the segment word unused — so the lane
//! batch engine in `ultrascalar` rides the same representation the
//! value CSPP was built from.
//!
//! Three evaluation strategies cover the ISA's operator zoo:
//!
//! * **planewise** — `And`/`Or`/`Xor` are one word op per plane;
//!   `Add`/`Sub` are a 32-step ripple carry over plane words (each step
//!   computes all 64 lanes' carry bits in parallel); comparisons
//!   (`Slt`/`Sltu` and every branch condition) reduce to the borrow
//!   word of a plane-wise subtract, yielding a per-lane **mask** word
//!   directly — exactly the form the divergence check needs;
//! * **plane relabelling** — a shift by a lane-uniform amount moves
//!   whole planes (`planes[p] ← planes[p ∓ sh]`), zero or sign-fill
//!   supplied by the vacated end;
//! * **extract/compute/deposit** — `Mul`/`Div`/`Rem` and lane-varying
//!   shifts transpose the 64×32 bit matrix out to ordinary `u32`s
//!   ([`extract`]), apply the scalar operator per lane, and transpose
//!   back ([`deposit`]). The transpose is the textbook 64×64 in-place
//!   block-swap network, 6 levels of masked exchanges.
//!
//! Every operation is total on all 64 lanes — inactive lanes simply
//! compute don't-care values — so callers gate by a lane *mask* instead
//! of branching per lane.

use crate::sliced::SlicedPair;

/// Lane capacity of one plane word: one independent simulation per bit.
pub const LANES: usize = 64;

/// The 64-lane 32-bit value bundle: bit `l` of `planes[p][0]` is bit
/// `p` of lane `l`'s value. The segment word of the underlying
/// [`SlicedPair`] is unused (always zero) in this role.
pub type LaneValue = SlicedPair<32, 1>;

/// A lane mask with the low `n` bits raised.
///
/// # Panics
/// Panics if `n > 64`.
#[inline]
pub fn mask_lo(n: usize) -> u64 {
    assert!(n <= LANES, "lane count out of range");
    if n == LANES {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

/// Transpose a 64×64 bit matrix in place (LSB-first: bit `c` of row
/// `r` moves to bit `r` of row `c`). The classic block-swap network:
/// at level `j` every row pair `(k, k|j)` exchanges the high-`j` half
/// of `k` with the low-`j` half of `k|j` under mask `m`.
fn transpose64(a: &mut [u64; 64]) {
    // Runtime-dispatch: the AVX2 form exchanges 4-row runs per vector
    // op (bit-for-bit identical); this scalar network is the fallback.
    if crate::simd::transpose64_avx2(a) {
        return;
    }
    let mut j = 32;
    let mut m: u64 = 0x0000_0000_FFFF_FFFF;
    while j != 0 {
        let mut k = 0;
        while k < 64 {
            let t = ((a[k] >> j) ^ a[k | j]) & m;
            a[k] ^= t << j;
            a[k | j] ^= t;
            k = ((k | j) + 1) & !j;
        }
        j >>= 1;
        m ^= m << (j.max(1));
    }
}

/// Pack 64 per-lane values into bit-planes (lane `l` ← `vals[l]`).
pub fn deposit(vals: &[u32; LANES]) -> LaneValue {
    let mut rows = [0u64; 64];
    for (row, &v) in rows.iter_mut().zip(vals.iter()) {
        *row = v as u64;
    }
    transpose64(&mut rows);
    let mut out = LaneValue::identity();
    for (plane, &row) in out.planes.iter_mut().zip(rows.iter()) {
        plane[0] = row;
    }
    out
}

/// Unpack the bit-planes back into 64 per-lane values.
pub fn extract(v: &LaneValue, vals: &mut [u32; LANES]) {
    let mut rows = [0u64; 64];
    for (p, row) in rows.iter_mut().take(32).enumerate() {
        *row = v.planes[p][0];
    }
    transpose64(&mut rows);
    for (val, &row) in vals.iter_mut().zip(rows.iter()) {
        *val = row as u32;
    }
}

/// The same value in every lane: plane `p` is all-ones iff bit `p` of
/// `v` is set.
pub fn broadcast(v: u32) -> LaneValue {
    let mut out = LaneValue::identity();
    for p in 0..32 {
        out.planes[p][0] = if v >> p & 1 == 1 { u64::MAX } else { 0 };
    }
    out
}

/// Read one lane's value (bit gather; [`extract`] amortises better for
/// all 64).
#[inline]
pub fn lane(v: &LaneValue, l: usize) -> u32 {
    assert!(l < LANES, "lane out of range");
    let mut out = 0u32;
    for p in 0..32 {
        out |= ((v.planes[p][0] >> l & 1) as u32) << p;
    }
    out
}

/// Lane-wise wrapping `a + b`: a 32-step ripple carry where each step
/// advances all 64 lanes' carry bits word-parallel.
///
/// Deliberately **not** AVX2-dispatched: a vectorized Kogge–Stone
/// carry network was measured at ~0.3× of this ripple on an AVX2 host
/// (`examples/simd_ab.rs`) — the ripple's single-word carry chain
/// inlines into four scalar ops per plane with no memory round-trips,
/// while the log-depth network pays per-round load/store traffic.
/// The same measurement rejected planewise vector ALU/compare forms.
pub fn add(a: &LaneValue, b: &LaneValue) -> LaneValue {
    let mut out = LaneValue::identity();
    let mut carry = 0u64;
    for p in 0..32 {
        let (x, y) = (a.planes[p][0], b.planes[p][0]);
        let xy = x ^ y;
        out.planes[p][0] = xy ^ carry;
        carry = (x & y) | (carry & xy);
    }
    out
}

/// Lane-wise wrapping `a - b` (as `a + !b + 1`).
pub fn sub(a: &LaneValue, b: &LaneValue) -> LaneValue {
    let mut out = LaneValue::identity();
    let mut carry = u64::MAX;
    for p in 0..32 {
        let (x, y) = (a.planes[p][0], !b.planes[p][0]);
        let xy = x ^ y;
        out.planes[p][0] = xy ^ carry;
        carry = (x & y) | (carry & xy);
    }
    out
}

/// Lane-wise bitwise AND.
pub fn and(a: &LaneValue, b: &LaneValue) -> LaneValue {
    let mut out = LaneValue::identity();
    for p in 0..32 {
        out.planes[p][0] = a.planes[p][0] & b.planes[p][0];
    }
    out
}

/// Lane-wise bitwise OR.
pub fn or(a: &LaneValue, b: &LaneValue) -> LaneValue {
    let mut out = LaneValue::identity();
    for p in 0..32 {
        out.planes[p][0] = a.planes[p][0] | b.planes[p][0];
    }
    out
}

/// Lane-wise bitwise XOR.
pub fn xor(a: &LaneValue, b: &LaneValue) -> LaneValue {
    let mut out = LaneValue::identity();
    for p in 0..32 {
        out.planes[p][0] = a.planes[p][0] ^ b.planes[p][0];
    }
    out
}

/// Mask of lanes where `a == b` (accumulated plane difference).
pub fn eq_mask(a: &LaneValue, b: &LaneValue) -> u64 {
    let mut diff = 0u64;
    for p in 0..32 {
        diff |= a.planes[p][0] ^ b.planes[p][0];
    }
    !diff
}

/// Carry word of the plane-wise `a + !b + 1`: lane bit set iff **no**
/// borrow, i.e. `a >= b` unsigned. `flip_sign` inverts plane 31 of
/// both operands, turning the unsigned compare into the signed one.
fn carry_out(a: &LaneValue, b: &LaneValue, flip_sign: bool) -> u64 {
    let mut carry = u64::MAX;
    for p in 0..32 {
        let flip = if flip_sign && p == 31 { u64::MAX } else { 0 };
        let x = a.planes[p][0] ^ flip;
        let y = !(b.planes[p][0] ^ flip);
        let xy = x ^ y;
        carry = (x & y) | (carry & xy);
    }
    carry
}

/// Mask of lanes where `a < b` unsigned.
#[inline]
pub fn ltu_mask(a: &LaneValue, b: &LaneValue) -> u64 {
    !carry_out(a, b, false)
}

/// Mask of lanes where `a < b` signed (two's complement).
#[inline]
pub fn lt_mask(a: &LaneValue, b: &LaneValue) -> u64 {
    !carry_out(a, b, true)
}

/// A 0/1 value per lane from a mask (plane 0 ← mask) — the `Slt`/`Sltu`
/// result form.
pub fn mask_value(mask: u64) -> LaneValue {
    let mut out = LaneValue::identity();
    out.planes[0][0] = mask;
    out
}

/// Lane-uniform logical left shift (`sh` already masked to `0..32`):
/// pure plane relabelling, zero-filled from below.
///
/// # Panics
/// Panics if `sh >= 32`.
pub fn sll_uniform(a: &LaneValue, sh: u32) -> LaneValue {
    let sh = sh as usize;
    assert!(sh < 32, "shift amount must be pre-masked");
    let mut out = LaneValue::identity();
    for p in sh..32 {
        out.planes[p][0] = a.planes[p - sh][0];
    }
    out
}

/// Lane-uniform logical right shift: plane relabelling, zero-filled
/// from above.
///
/// # Panics
/// Panics if `sh >= 32`.
pub fn srl_uniform(a: &LaneValue, sh: u32) -> LaneValue {
    let sh = sh as usize;
    assert!(sh < 32, "shift amount must be pre-masked");
    let mut out = LaneValue::identity();
    for p in 0..32 - sh {
        out.planes[p][0] = a.planes[p + sh][0];
    }
    out
}

/// Lane-uniform arithmetic right shift: plane relabelling, sign-plane
/// fill from above.
///
/// # Panics
/// Panics if `sh >= 32`.
pub fn sra_uniform(a: &LaneValue, sh: u32) -> LaneValue {
    let sh = sh as usize;
    assert!(sh < 32, "shift amount must be pre-masked");
    let mut out = LaneValue::identity();
    let sign = a.planes[31][0];
    for p in 0..32 {
        out.planes[p][0] = if p + sh < 32 {
            a.planes[p + sh][0]
        } else {
            sign
        };
    }
    out
}

/// Are all lanes raised in `mask` holding the same value? Checked
/// plane-by-plane against the value of the lowest raised lane; an
/// empty mask is trivially uniform (returning that reference value as
/// 0).
pub fn uniform_value(a: &LaneValue, mask: u64) -> Option<u32> {
    if mask == 0 {
        return Some(0);
    }
    let reference = lane(a, mask.trailing_zeros() as usize);
    for p in 0..32 {
        let want = if reference >> p & 1 == 1 { mask } else { 0 };
        if a.planes[p][0] & mask != want {
            return None;
        }
    }
    Some(reference)
}

/// Escape hatch for operators with no cheap plane form (`Mul`, `Div`,
/// `Rem`, lane-varying shifts): extract both operands, apply the scalar
/// `f` per lane, deposit the results. Two transposes out, one back.
pub fn map2(a: &LaneValue, b: &LaneValue, f: impl Fn(u32, u32) -> u32) -> LaneValue {
    let mut va = [0u32; LANES];
    let mut vb = [0u32; LANES];
    extract(a, &mut va);
    extract(b, &mut vb);
    let mut out = [0u32; LANES];
    for l in 0..LANES {
        out[l] = f(va[l], vb[l]);
    }
    deposit(&out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    fn random_lanes(seed: u64) -> [u32; LANES] {
        let mut s = seed.max(1);
        let mut out = [0u32; LANES];
        for v in out.iter_mut() {
            *v = xorshift(&mut s) as u32;
        }
        // Exercise the comparison edge cases in fixed lanes.
        out[0] = 0;
        out[1] = u32::MAX;
        out[2] = 0x8000_0000;
        out[3] = 0x7FFF_FFFF;
        out
    }

    #[test]
    fn deposit_extract_roundtrip_and_lane_semantics() {
        let vals = random_lanes(42);
        let v = deposit(&vals);
        // Plane semantics: bit l of plane p is bit p of lane l.
        for (l, &val) in vals.iter().enumerate() {
            for p in 0..32 {
                assert_eq!(
                    v.planes[p][0] >> l & 1,
                    (val >> p & 1) as u64,
                    "plane {p} lane {l}"
                );
            }
            assert_eq!(lane(&v, l), val);
        }
        let mut back = [0u32; LANES];
        extract(&v, &mut back);
        assert_eq!(back, vals);
        // And the SlicedPair accessors agree with the lane view.
        for (l, &val) in vals.iter().enumerate() {
            assert_eq!(v.lane_value(l), val as u64);
        }
    }

    #[test]
    fn broadcast_matches_deposit_of_equal_lanes() {
        for v in [0u32, 1, u32::MAX, 0xDEAD_BEEF, 0x8000_0000] {
            assert_eq!(broadcast(v), deposit(&[v; LANES]));
        }
    }

    /// Dispatch consistency for the transpose kernel behind
    /// [`deposit`]/[`extract`]: the AVX2 and portable forms must be
    /// byte-identical on random lane fills, both directions.
    #[test]
    fn transpose_dispatch_forced_swar_is_byte_identical() {
        for seed in 1..=16u64 {
            let vals = random_lanes(seed.wrapping_mul(0xA076_1D64_78BD_642F));
            let native_dep = deposit(&vals);
            let mut native_ext = [0u32; LANES];
            extract(&native_dep, &mut native_ext);
            let swar_dep;
            let mut swar_ext = [0u32; LANES];
            {
                let _pin = crate::simd::ForceSwarGuard::force();
                swar_dep = deposit(&vals);
                extract(&swar_dep, &mut swar_ext);
            }
            assert_eq!(native_dep, swar_dep, "seed {seed}: deposit");
            assert_eq!(native_ext, swar_ext, "seed {seed}: extract");
        }
    }

    #[test]
    fn arithmetic_matches_scalar_per_lane() {
        for seed in 1..=8u64 {
            let a = random_lanes(seed);
            let b = random_lanes(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let (va, vb) = (deposit(&a), deposit(&b));
            let mut got = [0u32; LANES];
            extract(&add(&va, &vb), &mut got);
            for l in 0..LANES {
                assert_eq!(got[l], a[l].wrapping_add(b[l]), "add lane {l}");
            }
            extract(&sub(&va, &vb), &mut got);
            for l in 0..LANES {
                assert_eq!(got[l], a[l].wrapping_sub(b[l]), "sub lane {l}");
            }
            extract(&and(&va, &vb), &mut got);
            for l in 0..LANES {
                assert_eq!(got[l], a[l] & b[l], "and lane {l}");
            }
            extract(&or(&va, &vb), &mut got);
            for l in 0..LANES {
                assert_eq!(got[l], a[l] | b[l], "or lane {l}");
            }
            extract(&xor(&va, &vb), &mut got);
            for l in 0..LANES {
                assert_eq!(got[l], a[l] ^ b[l], "xor lane {l}");
            }
        }
    }

    #[test]
    fn comparison_masks_match_scalar_per_lane() {
        for seed in 1..=8u64 {
            let mut a = random_lanes(seed);
            let mut b = random_lanes(seed.wrapping_mul(0xD134_2543_DE82_EF95));
            // Force equal lanes so eq has both polarities.
            a[5] = b[5];
            a[6] = b[6];
            b[7] = a[7];
            let (va, vb) = (deposit(&a), deposit(&b));
            let eq = eq_mask(&va, &vb);
            let ltu = ltu_mask(&va, &vb);
            let lt = lt_mask(&va, &vb);
            for l in 0..LANES {
                assert_eq!(eq >> l & 1 == 1, a[l] == b[l], "eq lane {l}");
                assert_eq!(ltu >> l & 1 == 1, a[l] < b[l], "ltu lane {l}");
                assert_eq!(
                    lt >> l & 1 == 1,
                    (a[l] as i32) < (b[l] as i32),
                    "lt lane {l}"
                );
            }
        }
    }

    #[test]
    fn uniform_shifts_match_scalar_per_lane() {
        let a = random_lanes(77);
        let va = deposit(&a);
        let mut got = [0u32; LANES];
        for sh in [0u32, 1, 7, 13, 31] {
            extract(&sll_uniform(&va, sh), &mut got);
            for l in 0..LANES {
                assert_eq!(got[l], a[l] << sh, "sll {sh} lane {l}");
            }
            extract(&srl_uniform(&va, sh), &mut got);
            for l in 0..LANES {
                assert_eq!(got[l], a[l] >> sh, "srl {sh} lane {l}");
            }
            extract(&sra_uniform(&va, sh), &mut got);
            for l in 0..LANES {
                assert_eq!(got[l], ((a[l] as i32) >> sh) as u32, "sra {sh} lane {l}");
            }
        }
    }

    #[test]
    fn map2_applies_scalar_op_per_lane() {
        let a = random_lanes(5);
        let b = random_lanes(6);
        let got = map2(&deposit(&a), &deposit(&b), |x, y| {
            x.wrapping_mul(y).rotate_left(3)
        });
        for l in 0..LANES {
            assert_eq!(lane(&got, l), a[l].wrapping_mul(b[l]).rotate_left(3));
        }
    }

    #[test]
    fn uniformity_detection() {
        let mut vals = [7u32; LANES];
        let v = deposit(&vals);
        assert_eq!(uniform_value(&v, u64::MAX), Some(7));
        assert_eq!(uniform_value(&v, 0b1010), Some(7));
        assert_eq!(uniform_value(&v, 0), Some(0));
        vals[9] = 8;
        let v = deposit(&vals);
        assert_eq!(uniform_value(&v, u64::MAX), None);
        // Lane 9 excluded from the mask: uniform again.
        assert_eq!(uniform_value(&v, !(1 << 9)), Some(7));
        assert_eq!(uniform_value(&v, 1 << 9), Some(8));
    }

    #[test]
    fn mask_helpers() {
        assert_eq!(mask_lo(0), 0);
        assert_eq!(mask_lo(1), 1);
        assert_eq!(mask_lo(5), 0b11111);
        assert_eq!(mask_lo(64), u64::MAX);
        assert_eq!(mask_value(0b101).planes[0][0], 0b101);
        assert_eq!(lane(&mask_value(0b100), 2), 1);
        assert_eq!(lane(&mask_value(0b100), 1), 0);
    }
}
