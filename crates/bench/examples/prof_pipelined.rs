//! Profiling harness for packed-vs-scalar engine deltas: run one
//! arch/kernel cell in a tight loop so a CPU-time profiler (gprofng,
//! perf) can attribute the difference. This is how the hop-banded
//! writer-update regression was found; kept because the next
//! regression hunt will need the same fixture.
//!
//! Usage: `prof_pipelined [packed|scalar] [kernel] [arch] [iters]`
//! with kernel ∈ {div, dot, fan} and arch ∈ {usi, pipelined}.
use ultrascalar::{ForwardModel, PredictorKind, ProcConfig, Processor, Ultrascalar};
use ultrascalar_bench::kernels::{div_chain, forward_fan};
use ultrascalar_isa::workload;

fn main() {
    let mut args = std::env::args().skip(1);
    let variant = args.next().unwrap_or_else(|| "packed".into());
    let kernel = args.next().unwrap_or_else(|| "div".into());
    let arch = args.next().unwrap_or_else(|| "pipelined".into());
    let iters: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(40000);
    let n = 64;
    let mut cfg = ProcConfig::ultrascalar_i(n).with_predictor(PredictorKind::Bimodal(64));
    if arch == "pipelined" {
        cfg = cfg
            .with_forwarding(ForwardModel::Pipelined { per_hop: 1 })
            .with_packed_override();
    }
    if variant == "scalar" {
        cfg = cfg.without_packed_flags();
    }
    let prog = match kernel.as_str() {
        "dot" => workload::dot_product(96),
        "fan" => forward_fan(48),
        _ => div_chain(48),
    };
    let mut engine = Ultrascalar::new(cfg);
    let mut cycles = 0u64;
    for _ in 0..iters {
        cycles = cycles.wrapping_add(engine.run(&prog).cycles);
    }
    println!("{variant}/{kernel}/{arch}: done ({cycles})");
}
