//! Differential suite for the lane-parallel batch engine over the A/B
//! benchmark kernels: every batch result must be byte-identical to the
//! same programs run serially on a fresh scalar engine — across both
//! reference architectures, the perfect predictor (one clean epoch),
//! a bimodal predictor (whose mispredicts segment the run into epochs
//! the batcher walks with wrong-path replay, peeling lanes that
//! diverge) and hop-banded pipelined forwarding, seeded and unseeded
//! kernels, and small and full batch widths.

use ultrascalar::{
    ForwardModel, LaneBatchEngine, PredictorKind, ProcConfig, Processor, RunResult, Ultrascalar,
};
use ultrascalar_bench::kernels::{
    branch_gauntlet, branch_gauntlet_seeded, div_chain, div_chain_seeded, forward_fan,
    forward_fan_seeded, spec_storm, spec_storm_seeded, wide_div_chain, wide_div_chain_seeded,
};
use ultrascalar_isa::{workload, Program};

/// Serial ground truth: each program on a fresh engine of `cfg`.
fn serial_runs(cfg: &ProcConfig, programs: &[&Program]) -> Vec<RunResult> {
    programs
        .iter()
        .map(|p| {
            let mut r = RunResult::default();
            Ultrascalar::new(cfg.clone()).run_reusing(p, &mut r);
            r
        })
        .collect()
}

fn assert_identical(label: &str, lane: &RunResult, serial: &RunResult, l: usize) {
    assert_eq!(
        lane.stats.packed_fallbacks, 0,
        "{label}: lane {l} fallback counter"
    );
    assert_eq!(lane.halted, serial.halted, "{label}: lane {l} halted");
    assert_eq!(lane.cycles, serial.cycles, "{label}: lane {l} cycles");
    assert_eq!(lane.regs, serial.regs, "{label}: lane {l} registers");
    assert_eq!(lane.mem, serial.mem, "{label}: lane {l} memory");
    assert_eq!(lane.stats, serial.stats, "{label}: lane {l} stats");
    assert_eq!(lane.timings, serial.timings, "{label}: lane {l} timings");
}

#[test]
fn lane_batches_match_serial_over_the_kernel_suite() {
    // Small iteration counts keep the full matrix fast; the regimes
    // (blocked-heavy, wide register file, forwarding-heavy) are what
    // matter, not the run length.
    let kernels: Vec<(&str, Program)> = vec![
        ("div_chain", div_chain(4)),
        ("div_chain_seeded", div_chain_seeded(4)),
        ("wide_div_chain", wide_div_chain(4)),
        ("wide_div_chain_seeded", wide_div_chain_seeded(4)),
        ("forward_fan", forward_fan(4)),
        ("forward_fan_seeded", forward_fan_seeded(4)),
        ("branch_gauntlet", branch_gauntlet(16)),
        ("branch_gauntlet_seeded", branch_gauntlet_seeded(16)),
        ("spec_storm", spec_storm(16)),
        ("spec_storm_seeded", spec_storm_seeded(16)),
    ];
    let configs: Vec<(String, ProcConfig)> = ["usi", "usii"]
        .iter()
        .flat_map(|arch| {
            let base = match *arch {
                "usi" => ProcConfig::ultrascalar_i(64),
                _ => ProcConfig::ultrascalar_ii(64),
            };
            [
                (format!("{arch}/perfect"), base.clone()),
                (
                    format!("{arch}/bimodal"),
                    base.clone().with_predictor(PredictorKind::Bimodal(64)),
                ),
                (
                    format!("{arch}/pipelined"),
                    base.with_forwarding(ForwardModel::Pipelined { per_hop: 1 }),
                ),
            ]
        })
        .collect();

    for (cname, cfg) in &configs {
        for (kname, prog) in &kernels {
            for &b in &[3usize, 64] {
                let label = format!("{cname}/{kname}/b={b}");
                let population = workload::lane_variants(prog, b, 0xFEED ^ b as u64);
                let refs: Vec<&Program> = population.iter().collect();
                let expect = serial_runs(cfg, &refs);
                let mut engine = LaneBatchEngine::new(cfg.clone());
                let mut got = vec![RunResult::default(); b];
                engine.run_batch(&refs, &mut got);
                for (l, (g, e)) in got.iter().zip(&expect).enumerate() {
                    assert_identical(&label, g, e, l);
                }
                // And again on the warm engine: reuse must not change
                // results either.
                engine.run_batch(&refs, &mut got);
                for (l, (g, e)) in got.iter().zip(&expect).enumerate() {
                    assert_identical(&label, g, e, l);
                }
            }
        }
    }
}

/// The branchy kernels exercise the regimes they were written for:
/// under a bimodal predictor both lane-batch (no serial demotion),
/// the leader's mispredicts segment the run into multiple epochs, and
/// `spec_storm`'s seeded wrong-path probe peels some — but not all —
/// lanes during replay, while `branch_gauntlet`'s shared-data control
/// replays peel-free.
#[test]
fn branchy_kernels_segment_into_epochs_and_spec_storm_replay_peels() {
    let cfg = ProcConfig::ultrascalar_i(64).with_predictor(PredictorKind::Bimodal(64));
    for (kname, prog, want_replay_peels) in [
        ("branch_gauntlet", branch_gauntlet_seeded(64), false),
        ("spec_storm", spec_storm_seeded(64), true),
    ] {
        let population = workload::lane_variants(&prog, 64, 0x1A17E5);
        let refs: Vec<&Program> = population.iter().collect();
        let expect = serial_runs(&cfg, &refs);
        let mut engine = LaneBatchEngine::new(cfg.clone());
        let mut got = vec![RunResult::default(); 64];
        engine.run_batch(&refs, &mut got);
        for (l, (g, e)) in got.iter().zip(&expect).enumerate() {
            assert_identical(kname, g, e, l);
        }
        let s = *engine.lane_stats();
        assert_eq!(s.batches, 1, "{kname}: the group must lane-batch");
        assert_eq!(s.fallbacks, 0, "{kname}: no serial demotion");
        assert!(s.epochs > 1, "{kname}: mispredicts must segment the run");
        assert_eq!(
            s.lane_runs + s.peels,
            64,
            "{kname}: every lane accounted for ({s:?})"
        );
        assert!(
            s.replay_peels <= s.peels,
            "{kname}: replay peels are a subset of peels ({s:?})"
        );
        if want_replay_peels {
            assert!(
                s.replay_peels > 0,
                "{kname}: the seeded wrong-path probe must peel lanes ({s:?})"
            );
            assert!(
                s.lane_runs > 1,
                "{kname}: most lanes must still ride the batch ({s:?})"
            );
        } else {
            assert_eq!(
                s.replay_peels, 0,
                "{kname}: shared-data control replays peel-free ({s:?})"
            );
            assert_eq!(s.lane_runs, 64, "{kname}: every lane converges ({s:?})");
        }
    }
}
