//! Integration tests for the concurrent `usim serve` socket mode:
//! byte-identical responses under concurrency, client-disconnect
//! containment, shard eviction under contention, and graceful
//! shutdown with idle clients.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::sync::Arc;
use std::time::Duration;

use ultrascalar_bench::cli::ServeOptions;
use ultrascalar_bench::serve::{serve_socket, ServeShared, Server};

fn sock_path(tag: &str) -> String {
    std::env::temp_dir()
        .join(format!("usim-serve-test-{}-{tag}.sock", std::process::id()))
        .to_string_lossy()
        .into_owned()
}

fn connect(path: &str) -> UnixStream {
    for _ in 0..400 {
        if let Ok(s) = UnixStream::connect(path) {
            return s;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!("could not connect to {path}");
}

fn spawn_server(
    tag: &str,
    o: ServeOptions,
) -> (String, Arc<ServeShared>, std::thread::JoinHandle<()>) {
    let path = sock_path(tag);
    let _ = std::fs::remove_file(&path);
    let shared = Arc::new(ServeShared::new(&o));
    let handle = {
        let shared = Arc::clone(&shared);
        let path = path.clone();
        std::thread::spawn(move || serve_socket(&shared, &path).expect("serve_socket"))
    };
    (path, shared, handle)
}

fn shutdown_server(path: &str, handle: std::thread::JoinHandle<()>) {
    let mut stop = connect(path);
    stop.write_all(b"{\"cmd\":\"shutdown\"}\n")
        .expect("send shutdown");
    let mut ack = String::new();
    BufReader::new(stop).read_line(&mut ack).expect("read ack");
    assert_eq!(ack.trim_end(), "{\"ok\":true,\"shutdown\":true}");
    handle.join().expect("server thread joins after shutdown");
}

/// Each client's request sequence: its own program (plus two shared
/// ones) under two configurations, interleaved.
fn client_script(client: usize) -> Vec<String> {
    let own = format!("li r9, {client}\\nli r1, 6\\nli r2, 7\\nmul r3, r1, r2\\nhalt\\n");
    let shared_a = "li r1, 0\\nli r2, 8\\nli r3, 0\\nloop:\\nsw r1, (r1)\\nlw r4, (r1)\\nadd r3, r3, r4\\naddi r1, r1, 1\\nblt r1, r2, loop\\nhalt\\n";
    let shared_b = "li r1, 5\\nli r2, 9\\nsw r2, (r1)\\nlw r3, (r1)\\nadd r4, r3, r2\\nhalt\\n";
    let cfg_a = r#"{"arch":"usi","window":8,"predictor":"bimodal:64"}"#;
    let cfg_b =
        r#"{"arch":"hybrid","window":16,"cluster":4,"predictor":"bimodal:64","renaming":true}"#;
    let mut reqs = Vec::new();
    for _ in 0..6 {
        for cfg in [cfg_a, cfg_b] {
            for prog in [own.as_str(), shared_a, shared_b] {
                reqs.push(format!(r#"{{"program":"{prog}","options":{cfg}}}"#));
            }
        }
    }
    reqs.push(
        r#"{"id":"tail","registers":true,"program":"li r1, 41\naddi r1, r1, 1\nhalt\n"}"#
            .to_string(),
    );
    reqs
}

#[test]
fn concurrent_clients_get_byte_identical_responses() {
    const CLIENTS: usize = 6;
    // Serial baseline: each client's script through a fresh
    // single-threaded server, in order.
    let baselines: Vec<Vec<String>> = (0..CLIENTS)
        .map(|c| {
            let mut s = Server::new(64, 16);
            client_script(c)
                .iter()
                .map(|req| s.handle_line(req).to_string())
                .collect()
        })
        .collect();

    let (path, shared, handle) = spawn_server(
        "roundtrip",
        ServeOptions {
            socket: None,
            program_cache: 64,
            engines: 16,
            workers: 4,
            shards: 4,
        },
    );
    let clients: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let path = path.clone();
            std::thread::spawn(move || {
                let script = client_script(c);
                let stream = connect(&path);
                let mut reader = BufReader::new(stream.try_clone().expect("clone"));
                let mut writer = stream;
                let mut responses = Vec::with_capacity(script.len());
                for req in &script {
                    writer.write_all(req.as_bytes()).expect("send");
                    writer.write_all(b"\n").expect("send newline");
                    let mut line = String::new();
                    reader.read_line(&mut line).expect("response");
                    responses.push(line.trim_end().to_string());
                }
                responses
            })
        })
        .collect();
    for (c, t) in clients.into_iter().enumerate() {
        let responses = t.join().expect("client thread");
        assert_eq!(
            responses, baselines[c],
            "client {c}: concurrent responses must be byte-identical to the serial baseline"
        );
    }
    let c = shared.counters();
    assert_eq!(c.errors, 0);
    assert_eq!(c.disconnects, 0);
    assert_eq!(c.runs, (CLIENTS * client_script(0).len()) as u64);
    shutdown_server(&path, handle);
}

#[test]
fn disconnect_mid_line_closes_only_that_connection() {
    let (path, shared, handle) = spawn_server(
        "disconnect",
        ServeOptions {
            socket: None,
            program_cache: 8,
            engines: 4,
            workers: 2,
            shards: 2,
        },
    );

    // A well-behaved client first, to warm the caches.
    let good = connect(&path);
    let mut good_r = BufReader::new(good.try_clone().expect("clone"));
    let mut good_w = good;
    good_w
        .write_all(b"{\"program\":\"li r1, 1\\nhalt\\n\"}\n")
        .expect("send");
    let mut line = String::new();
    good_r.read_line(&mut line).expect("response");
    assert!(line.starts_with("{\"ok\":true,"), "{line}");

    // A client that dies mid-request: partial line, no newline, then
    // the connection drops.
    {
        let mut rude = connect(&path);
        rude.write_all(b"{\"program\":\"li r1, ")
            .expect("send partial");
        // Dropping the stream closes it with the request unfinished.
    }
    // And one that vanishes between requests (clean EOF): no
    // disconnect counted.
    {
        let mut quiet = connect(&path);
        quiet
            .write_all(b"{\"program\":\"li r1, 2\\nhalt\\n\"}\n")
            .expect("send");
        let mut r = BufReader::new(quiet.try_clone().expect("clone"));
        let mut resp = String::new();
        r.read_line(&mut resp).expect("response");
        assert!(resp.starts_with("{\"ok\":true,"), "{resp}");
    }

    // Wait until the rude client's disconnect is recorded.
    for _ in 0..400 {
        if shared.counters().disconnects >= 1 {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(shared.counters().disconnects, 1);
    assert_eq!(shared.counters().errors, 0, "a disconnect is not an error");

    // The first client's connection is still alive and serving.
    line.clear();
    good_w
        .write_all(b"{\"program\":\"li r1, 1\\nhalt\\n\"}\n")
        .expect("send after disconnect");
    good_r
        .read_line(&mut line)
        .expect("response after disconnect");
    assert!(line.starts_with("{\"ok\":true,"), "{line}");

    drop(good_w);
    shutdown_server(&path, handle);
}

#[test]
fn contended_pool_evicts_and_recovers() {
    // Engine capacity 2 against 4 configurations from 4 clients: the
    // pool must evict under contention and every response must still
    // be correct.
    let (path, shared, handle) = spawn_server(
        "evict",
        ServeOptions {
            socket: None,
            program_cache: 8,
            engines: 2,
            workers: 4,
            shards: 1,
        },
    );
    let clients: Vec<_> = (0..4)
        .map(|c| {
            let path = path.clone();
            std::thread::spawn(move || {
                let stream = connect(&path);
                let mut reader = BufReader::new(stream.try_clone().expect("clone"));
                let mut writer = stream;
                let mut line = String::new();
                for i in 0..12 {
                    let window = 8 << ((c + i) % 4);
                    let req = format!(
                        r#"{{"program":"li r1, 6\nli r2, 7\nmul r3, r1, r2\nhalt\n","options":{{"arch":"usi","window":{window}}}}}"#
                    );
                    writer.write_all(req.as_bytes()).expect("send");
                    writer.write_all(b"\n").expect("send newline");
                    line.clear();
                    reader.read_line(&mut line).expect("response");
                    assert!(line.starts_with("{\"ok\":true,"), "{line}");
                    assert!(line.contains(&format!("\"window\":{window}")), "{line}");
                }
            })
        })
        .collect();
    for t in clients {
        t.join().expect("client thread");
    }
    assert!(
        shared.engine_stats().evictions > 0,
        "4 configs against capacity 2 must evict"
    );
    assert_eq!(shared.counters().errors, 0);
    shutdown_server(&path, handle);
}

#[test]
fn shutdown_drains_and_unblocks_idle_clients() {
    let (path, shared, handle) = spawn_server(
        "shutdown",
        ServeOptions {
            socket: None,
            program_cache: 8,
            engines: 4,
            workers: 3,
            shards: 2,
        },
    );

    // An idle client: connected, mid-session, sending nothing. Its
    // worker is parked in read_line.
    let idle = connect(&path);
    let mut idle_r = BufReader::new(idle.try_clone().expect("clone"));
    let mut idle_w = idle;
    idle_w
        .write_all(b"{\"program\":\"li r1, 3\\nhalt\\n\"}\n")
        .expect("send");
    let mut line = String::new();
    idle_r.read_line(&mut line).expect("response");
    assert!(line.starts_with("{\"ok\":true,"), "{line}");

    // Another client asks for shutdown; the server must drain, kick
    // the idle reader, join every worker, and return.
    shutdown_server(&path, handle);
    assert!(shared.is_shutdown());

    // The idle client's connection was closed by the drain: EOF.
    line.clear();
    let n = idle_r.read_line(&mut line).expect("EOF read");
    assert_eq!(n, 0, "idle connection closed on shutdown: {line:?}");

    // The socket file is gone; new connections are refused.
    assert!(UnixStream::connect(&path).is_err(), "socket removed");
}
