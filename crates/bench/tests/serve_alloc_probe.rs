//! Steady-state allocation probe for the `usim serve` request loop.
//!
//! A counting global allocator wraps the system allocator; after a
//! warm-up request that sizes every retained buffer (parsed request
//! strings, the program cache entry, the pooled engine's scratch, the
//! response line), repeated identical requests must perform **zero**
//! allocations — parse, program-cache hit, engine-pool hit, the full
//! cycle-accurate simulation, and response serialisation all run on
//! reused memory. The probe also alternates two programs and two
//! configurations to show the steady state survives a working set
//! larger than one.
//!
//! Two probes: the serial request loop, and four workers hammering the
//! *shared* sharded caches concurrently — the warm path must stay
//! allocation-free per worker under contention (shard mutexes, `Arc`
//! program handles and pool checkout/checkin allocate nothing).
//!
//! Counting is gated on a const-initialised thread-local so only armed
//! threads' allocations register (the libtest harness thread lazily
//! initialises channel state mid-run otherwise). The tests serialise
//! on a static mutex because the counter itself is process-global.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, Mutex};

struct Counting;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

/// Serialises the probes: both read the process-global counter.
static GATE: Mutex<()> = Mutex::new(());

thread_local! {
    /// Raised only on probe threads, only around the measured loop.
    static PROBING: Cell<bool> = const { Cell::new(false) };
}

fn probing() -> bool {
    PROBING.try_with(Cell::get).unwrap_or(false)
}

/// RAII arm/disarm of the probe flag: disarms on drop so a panicking
/// measured body cannot leave the thread-local armed.
struct ProbeGuard;

impl ProbeGuard {
    fn arm() -> Self {
        PROBING.with(|p| p.set(true));
        ProbeGuard
    }
}

impl Drop for ProbeGuard {
    fn drop(&mut self) {
        PROBING.with(|p| p.set(false));
    }
}

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if probing() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if probing() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static A: Counting = Counting;

use ultrascalar_bench::cli::ServeOptions;
use ultrascalar_bench::serve::{ServeShared, Server, Worker};

/// A loop-carrying kernel: branches, loads and stores keep the
/// predictor, memory system and window reset paths all on the
/// measured path.
const REQ_LOOP: &str = r#"{"program":"li r1, 0\nli r2, 8\nli r3, 0\nloop:\nsw r1, (r1)\nlw r4, (r1)\nadd r3, r3, r4\naddi r1, r1, 1\nblt r1, r2, loop\nhalt\n","options":{"arch":"usi","window":8,"predictor":"bimodal:64"}}"#;

/// Same program through a different topology: engine-pool working set
/// of two.
const REQ_HYBRID: &str = r#"{"program":"li r1, 0\nli r2, 8\nli r3, 0\nloop:\nsw r1, (r1)\nlw r4, (r1)\nadd r3, r3, r4\naddi r1, r1, 1\nblt r1, r2, loop\nhalt\n","options":{"arch":"hybrid","window":8,"cluster":4,"predictor":"bimodal:64","renaming":true}}"#;

/// A second source, so the program cache also serves from a working
/// set of two.
const REQ_MUL: &str = r#"{"program":"li r1, 6\nli r2, 7\nmul r3, r1, r2\nhalt\n","options":{"arch":"usi","window":8,"predictor":"bimodal:64"}}"#;

/// Forwarding-heavy fan: a hub register rewritten then read by a fan
/// of dependent adds. Every operand resolve in this kernel hits the
/// packed value snapshot (`ProcConfig::packed_values`), so the probe
/// pins the snapshot's writer-value/sequence lanes as allocation-free
/// too — they live in the pooled engine's retained scan scratch.
const REQ_FAN: &str = r#"{"program":"li r1, 3\naddi r1, r1, 1\nadd r2, r2, r1\nadd r3, r3, r1\nadd r4, r4, r1\naddi r1, r1, 2\nadd r5, r5, r1\nadd r6, r6, r1\nadd r7, r7, r1\nhalt\n","options":{"arch":"usi","window":8,"predictor":"bimodal:64"}}"#;

#[test]
fn serve_request_loop_allocates_nothing_in_steady_state() {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    let mut server = Server::new(8, 4);

    let steady = |server: &mut Server| {
        for req in [REQ_LOOP, REQ_HYBRID, REQ_MUL, REQ_FAN] {
            let resp = server.handle_line(req);
            assert!(resp.starts_with("{\"ok\":true,"));
        }
    };

    // Warm-up: assembles both programs, builds both engines, sizes
    // every reused buffer.
    steady(&mut server);
    steady(&mut server);

    let runs_before = server.counters().runs;
    let guard = ProbeGuard::arm();
    let before = ALLOCS.load(Ordering::SeqCst);
    for _ in 0..50 {
        steady(&mut server);
    }
    let after = ALLOCS.load(Ordering::SeqCst);
    drop(guard);
    assert_eq!(
        after - before,
        0,
        "serve request loop allocated in steady state"
    );
    assert_eq!(server.counters().runs - runs_before, 200);
    // Every probed request was a cache/pool hit (the fan shares the
    // loop kernel's configuration, so it is a third program but not a
    // third engine).
    assert_eq!(server.program_stats().misses, 3);
    assert_eq!(server.engine_stats().misses, 2);
}

#[test]
fn concurrent_workers_allocate_nothing_in_steady_state() {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    const WORKERS: usize = 4;
    const ROUNDS: usize = 50;
    let shared = Arc::new(ServeShared::new(&ServeOptions {
        socket: None,
        program_cache: 32,
        engines: 32,
        workers: WORKERS,
        shards: WORKERS,
    }));
    // Each worker gets its own two programs and two configurations
    // (a worker-specific predictor size), so warm-up deterministically
    // builds exactly two engines per worker — no cross-thread
    // hand-off, no eviction — while every request still goes through
    // the *shared* shard locks.
    let requests_for = |w: usize| -> Vec<String> {
        let k = 64usize << w;
        vec![
            format!(
                r#"{{"program":"li r9, {w}\nli r1, 0\nli r2, 8\nli r3, 0\nloop:\nsw r1, (r1)\nlw r4, (r1)\nadd r3, r3, r4\naddi r1, r1, 1\nblt r1, r2, loop\nhalt\n","options":{{"arch":"usi","window":8,"predictor":"bimodal:{k}"}}}}"#
            ),
            format!(
                r#"{{"program":"li r9, {w}\nli r1, 6\nli r2, 7\nmul r3, r1, r2\nhalt\n","options":{{"arch":"hybrid","window":8,"cluster":4,"predictor":"bimodal:{k}","renaming":true}}}}"#
            ),
        ]
    };
    // Workers warm up, then everyone meets at `start` before arming
    // and at `done` after disarming; the counter is read outside that
    // window, when no thread is armed.
    let start = Arc::new(Barrier::new(WORKERS + 1));
    let done = Arc::new(Barrier::new(WORKERS + 1));
    let handles: Vec<_> = (0..WORKERS)
        .map(|w| {
            let shared = Arc::clone(&shared);
            let start = Arc::clone(&start);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let reqs = requests_for(w);
                let mut worker = Worker::new(shared, w);
                for _ in 0..2 {
                    for req in &reqs {
                        let resp = worker.handle_line(req);
                        assert!(resp.starts_with("{\"ok\":true,"), "{resp}");
                    }
                }
                start.wait();
                {
                    let _guard = ProbeGuard::arm();
                    for _ in 0..ROUNDS {
                        for req in &reqs {
                            let resp = worker.handle_line(req);
                            assert!(resp.starts_with("{\"ok\":true,"), "{resp}");
                        }
                    }
                }
                done.wait();
                worker.release();
            })
        })
        .collect();
    let before = ALLOCS.load(Ordering::SeqCst);
    start.wait();
    done.wait();
    let after = ALLOCS.load(Ordering::SeqCst);
    for h in handles {
        h.join().expect("worker panicked");
    }
    assert_eq!(
        after - before,
        0,
        "concurrent serve workers allocated in steady state"
    );
    let c = shared.counters();
    assert_eq!(c.runs, (WORKERS * 2 * (2 + ROUNDS)) as u64);
    assert_eq!(c.errors, 0);
    // Warm-up built exactly two programs and two engines per worker;
    // every probed request was a cache hit plus an affinity or pool
    // hit.
    assert_eq!(shared.program_stats().misses, (WORKERS * 2) as u64);
    assert_eq!(shared.engine_stats().misses, (WORKERS * 2) as u64);
    assert_eq!(shared.engine_stats().evictions, 0);
    let tallies = shared.worker_request_counts();
    assert_eq!(tallies.len(), WORKERS);
    for (w, t) in tallies.iter().enumerate() {
        assert_eq!(*t, (2 * (2 + ROUNDS)) as u64, "worker {w} tally");
    }
}

#[test]
fn lane_batch_step_loop_allocates_nothing_in_steady_state() {
    use ultrascalar::{LaneBatchEngine, ProcConfig, RunResult};
    use ultrascalar_bench::kernels::div_chain_seeded;
    use ultrascalar_isa::{workload, Program};

    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    // Perfect prediction (the ultrascalar_i default) passes the
    // schedule-share gate, so every warm batch takes the full
    // lock-step path: leader engine pass, bit-sliced ALU evaluation,
    // divergence checks, result assembly.
    let prog = div_chain_seeded(8);
    let population = workload::lane_variants(&prog, 64, 0x5EED);
    let refs: Vec<&Program> = population.iter().collect();
    let mut engine = LaneBatchEngine::new(ProcConfig::ultrascalar_i(8));
    let mut out = vec![RunResult::default(); 64];

    // Warm-up sizes the batcher's per-lane planes, the scalar engine's
    // scratch and every RunResult's register/memory buffers.
    engine.run_batch(&refs, &mut out);
    engine.run_batch(&refs, &mut out);

    let stats_before = *engine.lane_stats();
    let guard = ProbeGuard::arm();
    let before = ALLOCS.load(Ordering::SeqCst);
    for _ in 0..10 {
        engine.run_batch(&refs, &mut out);
    }
    let after = ALLOCS.load(Ordering::SeqCst);
    drop(guard);
    let stats = *engine.lane_stats();
    assert_eq!(
        after - before,
        0,
        "warm lane-batch step loop allocated in steady state"
    );
    assert_eq!(
        stats.batches - stats_before.batches,
        10,
        "every probed batch shared the leader's schedule"
    );
    assert_eq!(stats.peels, stats_before.peels, "no divergence peels");
    assert_eq!(stats.fallbacks, stats_before.fallbacks);
}

#[test]
fn epoch_replay_loop_allocates_nothing_in_steady_state() {
    use ultrascalar::{LaneBatchEngine, PredictorKind, ProcConfig, RunResult};
    use ultrascalar_bench::kernels::{branch_gauntlet_seeded, spec_storm_seeded};
    use ultrascalar_isa::{workload, Program};

    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    // Under a bimodal predictor the leader mispredicts, so every warm
    // batch walks multiple epochs: flush-event merge cursors, event
    // scopes, the wrong-path register journal and store overlay all
    // exercise their reuse paths — and `spec_storm`'s probe also takes
    // the replay-peel path (a peeled lane re-runs on the retained
    // scalar engine, into its already-sized result slot).
    let cfg = ProcConfig::ultrascalar_i(16).with_predictor(PredictorKind::Bimodal(64));
    for (kname, prog) in [
        ("branch_gauntlet", branch_gauntlet_seeded(16)),
        ("spec_storm", spec_storm_seeded(16)),
    ] {
        let population = workload::lane_variants(&prog, 64, 0x5EED);
        let refs: Vec<&Program> = population.iter().collect();
        let mut engine = LaneBatchEngine::new(cfg.clone());
        let mut out = vec![RunResult::default(); 64];

        // Warm-up sizes every retained buffer, the replay scratch
        // included.
        engine.run_batch(&refs, &mut out);
        engine.run_batch(&refs, &mut out);

        let stats_before = *engine.lane_stats();
        let guard = ProbeGuard::arm();
        let before = ALLOCS.load(Ordering::SeqCst);
        for _ in 0..10 {
            engine.run_batch(&refs, &mut out);
        }
        let after = ALLOCS.load(Ordering::SeqCst);
        drop(guard);
        let stats = engine.lane_stats().delta_since(&stats_before);
        assert_eq!(
            after - before,
            0,
            "{kname}: warm epoch-replay loop allocated in steady state"
        );
        assert_eq!(stats.batches, 10, "{kname}: every probed batch shared");
        assert_eq!(stats.fallbacks, 0, "{kname}: no serial demotion");
        assert!(
            stats.epochs > stats.batches,
            "{kname}: the probed batches must replay across epochs ({stats:?})"
        );
    }
}
