//! Steady-state allocation probe for the `usim serve` request loop.
//!
//! A counting global allocator wraps the system allocator; after a
//! warm-up request that sizes every retained buffer (parsed request
//! strings, the program cache entry, the pooled engine's scratch, the
//! response line), repeated identical requests must perform **zero**
//! allocations — parse, program-cache hit, engine-pool hit, the full
//! cycle-accurate simulation, and response serialisation all run on
//! reused memory. The probe also alternates two programs and two
//! configurations to show the steady state survives a working set
//! larger than one.
//!
//! Counting is gated on a const-initialised thread-local so only the
//! probe thread's allocations register (the libtest harness thread
//! lazily initialises channel state mid-run otherwise).
//!
//! Single `#[test]` on purpose: the counter is process-global and the
//! default test harness runs tests concurrently.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

struct Counting;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Raised only on the probe thread, only around the measured loop.
    static PROBING: Cell<bool> = const { Cell::new(false) };
}

fn probing() -> bool {
    PROBING.try_with(Cell::get).unwrap_or(false)
}

/// RAII arm/disarm of the probe flag: disarms on drop so a panicking
/// measured body cannot leave the thread-local armed.
struct ProbeGuard;

impl ProbeGuard {
    fn arm() -> Self {
        PROBING.with(|p| p.set(true));
        ProbeGuard
    }
}

impl Drop for ProbeGuard {
    fn drop(&mut self) {
        PROBING.with(|p| p.set(false));
    }
}

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if probing() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if probing() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static A: Counting = Counting;

use ultrascalar_bench::serve::Server;

/// A loop-carrying kernel: branches, loads and stores keep the
/// predictor, memory system and window reset paths all on the
/// measured path.
const REQ_LOOP: &str = r#"{"program":"li r1, 0\nli r2, 8\nli r3, 0\nloop:\nsw r1, (r1)\nlw r4, (r1)\nadd r3, r3, r4\naddi r1, r1, 1\nblt r1, r2, loop\nhalt\n","options":{"arch":"usi","window":8,"predictor":"bimodal:64"}}"#;

/// Same program through a different topology: engine-pool working set
/// of two.
const REQ_HYBRID: &str = r#"{"program":"li r1, 0\nli r2, 8\nli r3, 0\nloop:\nsw r1, (r1)\nlw r4, (r1)\nadd r3, r3, r4\naddi r1, r1, 1\nblt r1, r2, loop\nhalt\n","options":{"arch":"hybrid","window":8,"cluster":4,"predictor":"bimodal:64","renaming":true}}"#;

/// A second source, so the program cache also serves from a working
/// set of two.
const REQ_MUL: &str = r#"{"program":"li r1, 6\nli r2, 7\nmul r3, r1, r2\nhalt\n","options":{"arch":"usi","window":8,"predictor":"bimodal:64"}}"#;

/// Forwarding-heavy fan: a hub register rewritten then read by a fan
/// of dependent adds. Every operand resolve in this kernel hits the
/// packed value snapshot (`ProcConfig::packed_values`), so the probe
/// pins the snapshot's writer-value/sequence lanes as allocation-free
/// too — they live in the pooled engine's retained scan scratch.
const REQ_FAN: &str = r#"{"program":"li r1, 3\naddi r1, r1, 1\nadd r2, r2, r1\nadd r3, r3, r1\nadd r4, r4, r1\naddi r1, r1, 2\nadd r5, r5, r1\nadd r6, r6, r1\nadd r7, r7, r1\nhalt\n","options":{"arch":"usi","window":8,"predictor":"bimodal:64"}}"#;

#[test]
fn serve_request_loop_allocates_nothing_in_steady_state() {
    let mut server = Server::new(8, 4);

    let steady = |server: &mut Server| {
        for req in [REQ_LOOP, REQ_HYBRID, REQ_MUL, REQ_FAN] {
            let resp = server.handle_line(req);
            assert!(resp.starts_with("{\"ok\":true,"));
        }
    };

    // Warm-up: assembles both programs, builds both engines, sizes
    // every reused buffer.
    steady(&mut server);
    steady(&mut server);

    let runs_before = server.counters().runs;
    let guard = ProbeGuard::arm();
    let before = ALLOCS.load(Ordering::SeqCst);
    for _ in 0..50 {
        steady(&mut server);
    }
    let after = ALLOCS.load(Ordering::SeqCst);
    drop(guard);
    assert_eq!(
        after - before,
        0,
        "serve request loop allocated in steady state"
    );
    assert_eq!(server.counters().runs - runs_before, 200);
    // Every probed request was a cache/pool hit (the fan shares the
    // loop kernel's configuration, so it is a third program but not a
    // third engine).
    assert_eq!(server.programs().misses(), 3);
    assert_eq!(server.engines().misses(), 2);
}
