//! End-to-end tests for the `usim serve` request loop: response shape,
//! byte-identical repeats, cache/pool accounting, strict error
//! handling, and the stream driver.

use ultrascalar_bench::serve::{serve_stream, Server};

const PROG: &str =
    r#"{"program":"li r1, 6\nli r2, 7\nmul r3, r1, r2\nhalt\n","options":{"window":8}}"#;

#[test]
fn repeated_request_is_byte_identical_and_hits_caches() {
    let mut s = Server::new(8, 4);
    let first = s.handle_line(PROG).to_string();
    assert!(first.starts_with("{\"ok\":true,"), "{first}");
    assert!(first.contains("\"halted\":true"), "{first}");
    assert!(first.contains("\"instructions\":4"), "{first}");
    assert_eq!((s.program_stats().hits, s.program_stats().misses), (0, 1));
    assert_eq!((s.engine_stats().hits, s.engine_stats().misses), (0, 1));
    for _ in 0..3 {
        let again = s.handle_line(PROG).to_string();
        assert_eq!(again, first, "identical request, identical response");
    }
    assert_eq!((s.program_stats().hits, s.program_stats().misses), (3, 1));
    // Consecutive same-config requests batch onto the held engine;
    // they count as warm hits.
    assert_eq!((s.engine_stats().hits, s.engine_stats().misses), (3, 1));
    assert_eq!(s.counters().batched_runs, 3);
    assert_eq!(s.counters().runs, 4);
    assert_eq!(s.counters().errors, 0);
}

#[test]
fn registers_and_timing_are_opt_in() {
    let mut s = Server::new(8, 4);
    let bare = s.handle_line(PROG).to_string();
    assert!(!bare.contains("registers"), "{bare}");
    assert!(!bare.contains("wall_us"), "{bare}");
    let full = s
        .handle_line(
            r#"{"id":"q1","registers":true,"timing":true,"program":"li r1, 6\nli r2, 7\nmul r3, r1, r2\nhalt\n","options":{"window":8}}"#,
        )
        .to_string();
    assert!(full.contains("\"id\":\"q1\""), "{full}");
    // r3 = 42 in the committed register file.
    assert!(full.contains("\"registers\":[0,6,7,42,"), "{full}");
    assert!(full.contains("\"wall_us\":"), "{full}");
}

#[test]
fn options_map_to_the_configured_engine() {
    let mut s = Server::new(8, 4);
    let resp = s
        .handle_line(
            r#"{"program":"li r1, 1\nhalt\n","options":{"arch":"hybrid","window":16,"cluster":4,"predictor":"bimodal:64","renaming":true,"regs":16}}"#,
        )
        .to_string();
    assert!(resp.contains("\"arch\":\"hybrid\""), "{resp}");
    assert!(resp.contains("\"window\":16"), "{resp}");
    assert!(resp.contains("\"cluster\":4"), "{resp}");
    let usii = s
        .handle_line(r#"{"program":"li r1, 1\nhalt\n","options":{"arch":"usii","window":8}}"#)
        .to_string();
    assert!(usii.contains("\"arch\":\"usii\""), "{usii}");
    // One engine went back to the pool on the config switch, the other
    // is still held by the worker: both are warm.
    assert_eq!(s.engine_stats().warm, 2, "two distinct configs warmed");
}

#[test]
fn errors_are_reported_not_fatal() {
    let mut s = Server::new(8, 4);
    for (req, needle) in [
        ("not json at all", "bad JSON"),
        (r#"{"program":"li r1, 1\nhalt\n""#, "bad JSON"),
        (r#"{"frobnicate":1}"#, "unknown request field"),
        (r#"{"cmd":"dance"}"#, "unknown cmd"),
        (r#"{"options":{}}"#, "needs a `program`"),
        (
            r#"{"program":"li r1, 1\nhalt\n","program_path":"x"}"#,
            "not both",
        ),
        (r#"{"program":"frobnicate r1\n"}"#, "unknown mnemonic"),
        (
            r#"{"program":"li r1, 1\nhalt\n","options":{"mem_exp":2.5}}"#,
            "[0, 1]",
        ),
        (
            r#"{"program":"li r1, 1\nhalt\n","options":{"window":-3}}"#,
            "non-negative integer",
        ),
        (
            r#"{"program":"li r1, 1\nhalt\n","options":{"quantum":true}}"#,
            "unknown option",
        ),
    ] {
        let resp = s.handle_line(req).to_string();
        assert!(resp.starts_with("{\"ok\":false,"), "{req} -> {resp}");
        assert!(resp.contains(needle), "{req} -> {resp}");
    }
    assert_eq!(s.counters().errors, 10);
    // The server still works after every failure.
    let ok = s.handle_line(PROG).to_string();
    assert!(ok.starts_with("{\"ok\":true,"), "{ok}");
}

#[test]
fn failed_assembly_is_not_cached() {
    let mut s = Server::new(8, 4);
    s.handle_line(r#"{"program":"frobnicate r1\n"}"#);
    assert_eq!(s.program_stats().entries, 0);
    s.handle_line(r#"{"program":"frobnicate r1\n"}"#);
    assert_eq!(s.program_stats().misses, 2, "errors re-assemble every time");
}

#[test]
fn stats_and_shutdown_commands() {
    let mut s = Server::new(8, 4);
    s.handle_line(PROG);
    s.handle_line(PROG);
    let stats = s.handle_line(r#"{"cmd":"stats"}"#).to_string();
    assert!(stats.contains("\"requests\":3"), "{stats}");
    assert!(stats.contains("\"runs\":2"), "{stats}");
    assert!(stats.contains("\"program_cache_hits\":1"), "{stats}");
    assert!(stats.contains("\"engine_pool_hits\":1"), "{stats}");
    assert!(stats.contains("\"program_cache_evictions\":0"), "{stats}");
    assert!(stats.contains("\"engine_pool_evictions\":0"), "{stats}");
    assert!(stats.contains("\"batched_runs\":1"), "{stats}");
    assert!(stats.contains("\"disconnects\":0"), "{stats}");
    assert!(stats.contains("\"workers\":1"), "{stats}");
    assert!(stats.contains("\"cache_shards\":1"), "{stats}");
    assert!(stats.contains("\"pool_shards\":1"), "{stats}");
    assert!(stats.contains("\"worker_requests\":[3]"), "{stats}");
    assert!(stats.contains("\"cycles_simulated\":"), "{stats}");
    assert!(!s.shutdown_requested());
    let bye = s.handle_line(r#"{"cmd":"shutdown"}"#).to_string();
    assert_eq!(bye, "{\"ok\":true,\"shutdown\":true}");
    assert!(s.shutdown_requested());
    let line = s.final_stats_line();
    assert!(
        line.contains("4 requests (2 runs, 0 errors, 0 disconnects)"),
        "{line}"
    );
}

#[test]
fn json_escapes_round_trip() {
    let mut s = Server::new(8, 4);
    // h = 'h', \t in the id comes back escaped in the response.
    let resp = s
        .handle_line(
            "{\"id\":\"tab\\there \\u2192 done\",\"program\":\"li r1, 1\\n\\u0068alt\\n\"}",
        )
        .to_string();
    assert!(resp.starts_with("{\"ok\":true,"), "{resp}");
    assert!(
        resp.contains("\"id\":\"tab\\there \u{2192} done\""),
        "{resp}"
    );
}

#[test]
fn stream_driver_answers_each_line_and_stops_on_shutdown() {
    let mut s = Server::new(8, 4);
    let input = format!("{PROG}\n\n{PROG}\n{{\"cmd\":\"shutdown\"}}\n{PROG}\n");
    let mut out: Vec<u8> = Vec::new();
    serve_stream(&mut s, input.as_bytes(), &mut out);
    let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().lines().collect();
    // Blank line skipped; the request after shutdown never runs.
    assert_eq!(lines.len(), 3, "{lines:?}");
    assert_eq!(lines[0], lines[1]);
    assert_eq!(lines[2], "{\"ok\":true,\"shutdown\":true}");
    assert_eq!(s.counters().runs, 2);
}

#[test]
fn partial_final_line_counts_as_disconnect_and_is_not_run() {
    let mut s = Server::new(8, 4);
    // The stream ends mid-request: no trailing newline on the second
    // line. The complete first request is served; the fragment is not.
    let input = format!("{PROG}\n{{\"program\":\"li r1, 1");
    let mut out: Vec<u8> = Vec::new();
    serve_stream(&mut s, input.as_bytes(), &mut out);
    let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().lines().collect();
    assert_eq!(lines.len(), 1, "{lines:?}");
    assert!(lines[0].starts_with("{\"ok\":true,"));
    assert_eq!(s.counters().runs, 1);
    assert_eq!(s.counters().errors, 0, "a disconnect is not an error");
    assert_eq!(s.counters().disconnects, 1);
}

#[test]
fn broken_pipe_on_write_counts_as_disconnect() {
    struct BrokenPipe;
    impl std::io::Write for BrokenPipe {
        fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
            Err(std::io::Error::from(std::io::ErrorKind::BrokenPipe))
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }
    let mut s = Server::new(8, 4);
    let input = format!("{PROG}\n{PROG}\n");
    serve_stream(&mut s, input.as_bytes(), BrokenPipe);
    // Both requests arrived pipelined, so they run as one lane-batch
    // group before the first write hits the broken pipe and the stream
    // stops.
    assert_eq!(s.counters().runs, 2);
    assert_eq!(s.counters().disconnects, 1);
}

/// A branchy countdown loop under the perfect predictor: one clean
/// epoch, the original misprediction-free schedule-share case.
const LOOP_PERFECT: &str = r#"{"program":"li r1, 5\nli r2, 0\nli r3, 0\nloop:\nadd r3, r3, r1\nsubi r1, r1, 1\nbne r1, r2, loop\nhalt\n","options":{"window":8,"predictor":"perfect"}}"#;

/// The same loop under the default bimodal predictor: the leader
/// mispredicts, so the run splits into several clean epochs and the
/// group lane-batches via epoch-segmented schedule sharing.
const LOOP_BIMODAL: &str = r#"{"program":"li r1, 5\nli r2, 0\nli r3, 0\nloop:\nadd r3, r3, r1\nsubi r1, r1, 1\nbne r1, r2, loop\nhalt\n","options":{"window":8}}"#;

#[test]
fn pipelined_identical_requests_lane_batch_byte_identically() {
    // Serial baseline: one request at a time, grouping never engages.
    let mut serial = Server::new(8, 4);
    let baseline = serial.handle_line(LOOP_PERFECT).to_string();
    assert!(baseline.starts_with("{\"ok\":true,"), "{baseline}");

    let mut s = Server::new(8, 4);
    let input = format!("{LOOP_PERFECT}\n").repeat(4);
    let mut out: Vec<u8> = Vec::new();
    serve_stream(&mut s, input.as_bytes(), &mut out);
    let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().lines().collect();
    assert_eq!(lines.len(), 4, "{lines:?}");
    for l in &lines {
        assert_eq!(*l, baseline, "lane-batched response must be byte-identical");
    }
    let c = s.counters();
    assert_eq!(c.requests, 4);
    assert_eq!(c.runs, 4);
    assert_eq!(c.errors, 0);
    assert_eq!(c.lane_batched_runs, 4, "all four lanes rode one batch");
    assert_eq!(c.lane_divergence_peels, 0);
    assert_eq!(c.batched_runs, 3, "members batch onto the held engine");
    assert_eq!(
        (s.program_stats().hits, s.program_stats().misses),
        (3, 1),
        "members hit the leader's cache entry"
    );
}

#[test]
fn bimodal_group_lane_batches_across_epochs_byte_identically() {
    // Baseline: the same three requests one line at a time (the
    // predictor tables reset per run, so all three responses match).
    let mut serial = Server::new(8, 4);
    let expect: Vec<String> = (0..3)
        .map(|_| serial.handle_line(LOOP_BIMODAL).to_string())
        .collect();

    let mut s = Server::new(8, 4);
    let input = format!("{LOOP_BIMODAL}\n").repeat(3);
    let mut out: Vec<u8> = Vec::new();
    serve_stream(&mut s, input.as_bytes(), &mut out);
    let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().lines().collect();
    assert_eq!(lines.len(), 3, "{lines:?}");
    for (l, e) in lines.iter().zip(&expect) {
        assert_eq!(*l, e, "lane-batched response must match serial serving");
    }
    let c = s.counters();
    assert_eq!(c.runs, 3);
    assert_eq!(
        c.lane_batched_runs, 3,
        "mispredicting leader no longer blocks the gate"
    );
    assert!(
        c.lane_epochs >= 2,
        "the leader's flushes segment the run into multiple epochs, got {}",
        c.lane_epochs
    );
    // Identical lanes never diverge from the leader, during replay or
    // otherwise, and no demotion cause fires.
    assert_eq!(c.lane_divergence_peels, 0);
    assert_eq!(c.lane_replay_peels, 0);
    assert_eq!(c.lane_demote_incompatible, 0);
    assert_eq!(c.lane_demote_leader, 0);
    assert_eq!(c.lane_demote_structure, 0);
    assert_eq!(c.lane_demote_verify, 0);
}

#[test]
fn group_breakers_are_served_in_order() {
    let input = format!(
        "{LOOP_PERFECT}\n{LOOP_PERFECT}\n{{\"cmd\":\"stats\"}}\n{LOOP_PERFECT}\n\
         nonsense\n{LOOP_PERFECT}\n{{\"cmd\":\"shutdown\"}}\n"
    );
    let mut s = Server::new(8, 4);
    let mut out: Vec<u8> = Vec::new();
    serve_stream(&mut s, input.as_bytes(), &mut out);
    let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().lines().collect();
    assert_eq!(lines.len(), 7, "{lines:?}");
    // The four run responses are identical whether a line rode a lane
    // batch (the first two) or ran serially after a breaker.
    assert_eq!(lines[0], lines[1]);
    assert_eq!(lines[0], lines[3]);
    assert_eq!(lines[0], lines[5]);
    // Breakers answer in stream order: stats after the first group,
    // the malformed line's error, then shutdown.
    assert!(lines[2].contains("\"requests\":3"), "{}", lines[2]);
    assert!(lines[2].contains("\"lane_batched_runs\":2"), "{}", lines[2]);
    assert!(lines[4].starts_with("{\"ok\":false,"), "{}", lines[4]);
    assert_eq!(lines[6], "{\"ok\":true,\"shutdown\":true}");
    let c = s.counters();
    assert_eq!(c.runs, 4);
    assert_eq!(c.errors, 1);
    assert_eq!(c.lane_batched_runs, 2, "only the unbroken pair batched");
}

#[test]
fn alternating_configs_never_group() {
    let a = PROG;
    let b = r#"{"program":"li r1, 6\nli r2, 7\nmul r3, r1, r2\nhalt\n","options":{"window":16}}"#;
    let mut s = Server::new(8, 4);
    let input = format!("{a}\n{b}\n{a}\n{b}\n");
    let mut out: Vec<u8> = Vec::new();
    serve_stream(&mut s, input.as_bytes(), &mut out);
    let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().lines().collect();
    assert_eq!(lines.len(), 4, "{lines:?}");
    assert_eq!(lines[0], lines[2]);
    assert_eq!(lines[1], lines[3]);
    assert!(lines[0].contains("\"window\":8"), "{}", lines[0]);
    assert!(lines[1].contains("\"window\":16"), "{}", lines[1]);
    let c = s.counters();
    assert_eq!(c.runs, 4);
    assert_eq!(
        c.lane_batched_runs, 0,
        "config changes break every would-be group"
    );
}
