//! Criterion benches of the processor models: cycles-per-second
//! simulation throughput across architectures, window sizes and
//! workloads, plus the golden interpreter as the speed-of-light
//! reference.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use ultrascalar::{BaselineOoO, PredictorKind, ProcConfig, Processor, Ultrascalar};
use ultrascalar_isa::{workload, Interp, Program};
use ultrascalar_memsys::MemConfig;

fn bench_interp(c: &mut Criterion) {
    let prog = workload::dot_product(256);
    let mut g = c.benchmark_group("golden_interp");
    g.bench_function("dot_product_256", |b| {
        b.iter(|| {
            let mut m = Interp::new(black_box(&prog), 1 << 12);
            m.run(1_000_000).steps()
        })
    });
    g.finish();
}

fn bench_processors(c: &mut Criterion) {
    let prog = workload::dot_product(64);
    let mut g = c.benchmark_group("processor_run");
    for &n in &[8usize, 32, 128] {
        let mk = |cluster: usize| {
            ProcConfig::hybrid(n, cluster).with_predictor(PredictorKind::Bimodal(64))
        };
        g.bench_with_input(BenchmarkId::new("ultrascalar_i", n), &n, |b, &n| {
            let cfg = mk(1);
            b.iter(|| Ultrascalar::new(cfg.clone()).run(black_box(&prog)).cycles);
            let _ = n;
        });
        g.bench_with_input(BenchmarkId::new("ultrascalar_ii", n), &n, |b, &n| {
            let cfg = mk(n);
            b.iter(|| Ultrascalar::new(cfg.clone()).run(black_box(&prog)).cycles)
        });
        g.bench_with_input(BenchmarkId::new("hybrid_c8", n), &n, |b, _| {
            let cfg = mk(8.min(n));
            b.iter(|| Ultrascalar::new(cfg.clone()).run(black_box(&prog)).cycles)
        });
        g.bench_with_input(BenchmarkId::new("baseline_ooo", n), &n, |b, _| {
            let cfg = mk(1);
            b.iter(|| BaselineOoO::new(cfg.clone()).run(black_box(&prog)).cycles)
        });
    }
    g.finish();
}

fn bench_simulated_cycle_rate(c: &mut Criterion) {
    // Cycles simulated per wall-second on a long-running kernel.
    let prog = workload::bubble_sort(48, 5);
    let mut g = c.benchmark_group("cycle_rate");
    for &n in &[16usize, 64] {
        let cfg = ProcConfig::ultrascalar_i(n).with_predictor(PredictorKind::Bimodal(256));
        let cycles = Ultrascalar::new(cfg.clone()).run(&prog).cycles;
        g.throughput(Throughput::Elements(cycles));
        g.bench_with_input(BenchmarkId::new("usi_bubble_sort", n), &cfg, |b, cfg| {
            b.iter(|| Ultrascalar::new(cfg.clone()).run(black_box(&prog)).cycles)
        });
    }
    g.finish();
}

/// Dependent `div` chains in a loop: each iteration stalls the window
/// for tens of cycles at a time, the regime the event-driven loop is
/// built for.
fn div_chain(iters: u32) -> Program {
    let src = format!(
        r"
            li   r2, 3
            li   r3, {iters}
            li   r7, 0
            li   r1, 1000000007
        loop:
            div  r4, r1, r2
            div  r4, r4, r2
            div  r4, r4, r2
            div  r1, r4, r2     ; loop-carried: serial at any window size
            subi r3, r3, 1
            bne  r3, r7, loop
            halt
        "
    );
    ultrascalar_isa::asm::assemble(&src, 8).expect("div_chain kernel assembles")
}

/// Whole-processor step throughput (simulated cycles per wall-second):
/// US-I, US-II and the hybrid at n ∈ {16, 64, 256} on a long-latency
/// div chain, a memory-latency-bound pointer chase, and a dense-issue
/// dot product. `event/…` rows run the default event-driven engine
/// (packed flag networks on), `scalar_flags/…` rows the same engine
/// with the scalar per-flag reference path, and `naive/…` rows the
/// retained tick-every-cycle reference — all three simulate identical
/// cycle counts, so the elem/s throughput columns compare directly.
fn bench_step_throughput(c: &mut Criterion) {
    let workloads: Vec<(&str, Program, bool)> = vec![
        ("div_chain", div_chain(48), false),
        // Realistic (banked, hop-latency) memory makes every hop of the
        // chase a long-latency event.
        ("pointer_chase", workload::pointer_chase(96, 11), true),
        ("dense_dot", workload::dot_product(96), false),
    ];
    let mut g = c.benchmark_group("step_throughput");
    for &n in &[16usize, 64, 256] {
        let archs: Vec<(String, ProcConfig)> = vec![
            ("usi".to_string(), ProcConfig::ultrascalar_i(n)),
            ("usii".to_string(), ProcConfig::ultrascalar_ii(n)),
            (format!("hybrid_c{}", n / 4), ProcConfig::hybrid(n, n / 4)),
        ]
        .into_iter()
        .map(|(a, cfg)| (a, cfg.with_predictor(PredictorKind::Bimodal(64))))
        .collect();
        for (arch, cfg) in &archs {
            for (kernel, prog, realistic_mem) in &workloads {
                let cfg = if *realistic_mem {
                    cfg.clone().with_mem(MemConfig::realistic(n, 1 << 12))
                } else {
                    cfg.clone()
                };
                let r = Ultrascalar::new(cfg.clone()).run(prog);
                assert!(r.halted, "{arch}/{kernel} halts at n = {n}");
                g.throughput(Throughput::Elements(r.cycles));
                let id = format!("{arch}/{kernel}/n={n}");
                g.bench_with_input(BenchmarkId::new("event", &id), &cfg, |b, cfg| {
                    b.iter(|| Ultrascalar::new(cfg.clone()).run(black_box(prog)).cycles)
                });
                let scalar = cfg.clone().without_packed_flags();
                g.bench_with_input(BenchmarkId::new("scalar_flags", &id), &scalar, |b, cfg| {
                    b.iter(|| Ultrascalar::new(cfg.clone()).run(black_box(prog)).cycles)
                });
                let naive = cfg.clone().without_cycle_skipping();
                g.bench_with_input(BenchmarkId::new("naive", &id), &naive, |b, cfg| {
                    b.iter(|| Ultrascalar::new(cfg.clone()).run(black_box(prog)).cycles)
                });
            }
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_interp, bench_processors, bench_simulated_cycle_rate, bench_step_throughput
}
criterion_main!(benches);
