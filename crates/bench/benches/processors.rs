//! Criterion benches of the processor models: cycles-per-second
//! simulation throughput across architectures, window sizes and
//! workloads, plus the golden interpreter as the speed-of-light
//! reference.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use ultrascalar::{BaselineOoO, PredictorKind, ProcConfig, Processor, Ultrascalar};
use ultrascalar_isa::{workload, Interp};

fn bench_interp(c: &mut Criterion) {
    let prog = workload::dot_product(256);
    let mut g = c.benchmark_group("golden_interp");
    g.bench_function("dot_product_256", |b| {
        b.iter(|| {
            let mut m = Interp::new(black_box(&prog), 1 << 12);
            m.run(1_000_000).steps()
        })
    });
    g.finish();
}

fn bench_processors(c: &mut Criterion) {
    let prog = workload::dot_product(64);
    let mut g = c.benchmark_group("processor_run");
    for &n in &[8usize, 32, 128] {
        let mk = |cluster: usize| {
            ProcConfig::hybrid(n, cluster).with_predictor(PredictorKind::Bimodal(64))
        };
        g.bench_with_input(BenchmarkId::new("ultrascalar_i", n), &n, |b, &n| {
            let cfg = mk(1);
            b.iter(|| Ultrascalar::new(cfg.clone()).run(black_box(&prog)).cycles);
            let _ = n;
        });
        g.bench_with_input(BenchmarkId::new("ultrascalar_ii", n), &n, |b, &n| {
            let cfg = mk(n);
            b.iter(|| Ultrascalar::new(cfg.clone()).run(black_box(&prog)).cycles)
        });
        g.bench_with_input(BenchmarkId::new("hybrid_c8", n), &n, |b, _| {
            let cfg = mk(8.min(n));
            b.iter(|| Ultrascalar::new(cfg.clone()).run(black_box(&prog)).cycles)
        });
        g.bench_with_input(BenchmarkId::new("baseline_ooo", n), &n, |b, _| {
            let cfg = mk(1);
            b.iter(|| BaselineOoO::new(cfg.clone()).run(black_box(&prog)).cycles)
        });
    }
    g.finish();
}

fn bench_simulated_cycle_rate(c: &mut Criterion) {
    // Cycles simulated per wall-second on a long-running kernel.
    let prog = workload::bubble_sort(48, 5);
    let mut g = c.benchmark_group("cycle_rate");
    for &n in &[16usize, 64] {
        let cfg = ProcConfig::ultrascalar_i(n).with_predictor(PredictorKind::Bimodal(256));
        let cycles = Ultrascalar::new(cfg.clone()).run(&prog).cycles;
        g.throughput(Throughput::Elements(cycles));
        g.bench_with_input(BenchmarkId::new("usi_bubble_sort", n), &cfg, |b, cfg| {
            b.iter(|| Ultrascalar::new(cfg.clone()).run(black_box(&prog)).cycles)
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_interp, bench_processors, bench_simulated_cycle_rate
}
criterion_main!(benches);
