//! Criterion microbenches of the simulator substrate: prefix scans
//! (serial vs tree), CSPP evaluation, gate-level netlist construction
//! and constructive evaluation, and the fat-tree admission path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use ultrascalar_circuit::generators::{CombineOp, CsppTree};
use ultrascalar_circuit::Netlist;
use ultrascalar_memsys::{Bandwidth, MemConfig, MemRequest, MemSystem, NetworkKind, ReqKind};
use ultrascalar_prefix::op::{SegOp, SegPair};
use ultrascalar_prefix::{
    cspp_ring, cspp_tree, packed_cspp_ring, scan, AndWords, ArenaScan, BoolAnd, First,
    PackedCsppScratch, PackedCsppScratchW, Sum,
};

fn bench_scans(c: &mut Criterion) {
    let mut g = c.benchmark_group("prefix_scan");
    for &n in &[64usize, 1024, 16384] {
        let xs: Vec<u64> = (0..n as u64).map(|i| i * 7 + 3).collect();
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("serial_inclusive", n), &xs, |b, xs| {
            b.iter(|| scan::scan_inclusive::<_, Sum>(black_box(xs)))
        });
        g.bench_with_input(BenchmarkId::new("tree_inclusive", n), &xs, |b, xs| {
            b.iter(|| ultrascalar_prefix::tree_scan_inclusive::<_, Sum>(black_box(xs)))
        });
    }
    g.finish();
}

fn bench_cspp(c: &mut Criterion) {
    let mut g = c.benchmark_group("cspp");
    for &n in &[64usize, 256, 1024] {
        let vals: Vec<u64> = (0..n as u64).collect();
        let seg: Vec<bool> = (0..n).map(|i| i % 7 == 0).collect();
        g.throughput(Throughput::Elements(n as u64));
        // The quadratic ring is the test oracle, not a contender; one
        // small size keeps it on the chart without dominating runtime.
        if n == 64 {
            g.bench_with_input(
                BenchmarkId::new("ring_reference", n),
                &(&vals, &seg),
                |b, (v, s)| b.iter(|| cspp_ring::<_, First>(black_box(v), black_box(s))),
            );
        }
        g.bench_with_input(BenchmarkId::new("tree", n), &(&vals, &seg), |b, (v, s)| {
            b.iter(|| cspp_tree::<_, First>(black_box(v), black_box(s)))
        });
    }
    g.finish();
}

/// One multi-word packed pass: every lane of every `[u64; W]` word
/// carries the same boolean problem, so a pass does the generic row's
/// work `64 · W` times over.
fn bench_packed_w<const W: usize>(b: &mut criterion::Bencher, vals: &[bool], seg: &[bool]) {
    let vw: Vec<[u64; W]> = vals.iter().map(|&v| [if v { !0 } else { 0 }; W]).collect();
    let sw: Vec<[u64; W]> = seg.iter().map(|&s| [if s { !0 } else { 0 }; W]).collect();
    let mut scratch = PackedCsppScratchW::<W>::new();
    let mut out = Vec::new();
    b.iter(|| {
        scratch.cspp_into::<AndWords>(black_box(&vw), black_box(&sw), &mut out);
        out.len()
    })
}

/// Boolean AND-CSPP — the paper's "all earlier stations met the
/// condition" network — generic vs arena vs packed SWAR forms. The
/// packed forms evaluate 64 independent lane problems per pass; the
/// per-lane ratio against the generic tree is what the README quotes.
fn bench_packed(c: &mut Criterion) {
    let mut g = c.benchmark_group("packed_cspp");
    for &n in &[64usize, 256, 1024] {
        let vals: Vec<bool> = (0..n).map(|i| i % 3 != 1).collect();
        let seg: Vec<bool> = (0..n).map(|i| i % 17 == 4).collect();
        let leaves: Vec<SegPair<bool>> = vals
            .iter()
            .zip(&seg)
            .map(|(&v, &s)| SegPair::leaf(v, s))
            .collect();
        // Lane-packed words: every lane carries the same problem, so
        // one packed pass does the generic row's work 64 times over.
        let vw: Vec<u64> = vals.iter().map(|&v| if v { !0 } else { 0 }).collect();
        let sw: Vec<u64> = seg.iter().map(|&s| if s { !0 } else { 0 }).collect();

        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(
            BenchmarkId::new("generic_tree", n),
            &(&vals, &seg),
            |b, (v, s)| b.iter(|| cspp_tree::<bool, BoolAnd>(black_box(v), black_box(s))),
        );
        // Equal work to one packed pass: the generic tree must run
        // once per lane to cover the 64 problems a single packed
        // evaluation handles word-parallel.
        g.throughput(Throughput::Elements(64 * n as u64));
        g.bench_with_input(
            BenchmarkId::new("generic_tree_64_problems", n),
            &(&vals, &seg),
            |b, (v, s)| {
                b.iter(|| {
                    (0..64)
                        .map(|_| cspp_tree::<bool, BoolAnd>(black_box(v), black_box(s)).len())
                        .sum::<usize>()
                })
            },
        );
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("arena_scan", n), &leaves, |b, leaves| {
            let mut arena = ArenaScan::new();
            let mut out = Vec::new();
            b.iter(|| {
                arena.build::<SegOp<BoolAnd>>(black_box(leaves));
                let root = *arena.root();
                arena.scan_exclusive_into::<SegOp<BoolAnd>>(root, &mut out);
                out.len()
            })
        });
        g.throughput(Throughput::Elements(64 * n as u64));
        g.bench_with_input(
            BenchmarkId::new("packed_tree_64lane", n),
            &(&vw, &sw),
            |b, (v, s)| {
                let mut scratch = PackedCsppScratch::new();
                let mut out = Vec::new();
                b.iter(|| {
                    scratch.cspp_into::<AndWords>(black_box(v), black_box(s), &mut out);
                    out.len()
                })
            },
        );
        // Multi-word lanes: one pass over [u64; W] words evaluates
        // 64·W independent lane networks. W=4 covers the ISA's full
        // 256-register space per evaluation.
        for (name, lanes) in [
            ("packed_tree_w2_128lane", 128u64),
            ("packed_tree_w4_256lane", 256),
        ] {
            g.throughput(Throughput::Elements(lanes * n as u64));
            g.bench_with_input(BenchmarkId::new(name, n), &(&vals, &seg), |b, (v, s)| {
                if lanes == 128 {
                    bench_packed_w::<2>(b, v, s);
                } else {
                    bench_packed_w::<4>(b, v, s);
                }
            });
        }
        // The packed ring is quadratic like the scalar ring — oracle
        // only, charted at one small size.
        if n == 64 {
            g.bench_with_input(
                BenchmarkId::new("packed_ring_64lane", n),
                &(&vw, &sw),
                |b, (v, s)| b.iter(|| packed_cspp_ring::<AndWords>(black_box(v), black_box(s))),
            );
        }
    }
    g.finish();
}

fn bench_netlist(c: &mut Criterion) {
    let mut g = c.benchmark_group("netlist");
    for &n in &[16usize, 64, 256] {
        g.bench_with_input(BenchmarkId::new("build_cspp_tree", n), &n, |b, &n| {
            b.iter(|| {
                let mut nl = Netlist::new();
                black_box(CsppTree::build(&mut nl, n, 33, CombineOp::First));
                nl.len()
            })
        });
        // Evaluation of a built tree.
        let mut nl = Netlist::new();
        let tree = CsppTree::build(&mut nl, n, 33, CombineOp::First);
        let mut inputs = vec![false; nl.num_inputs()];
        inputs[tree.seg[0].0 as usize] = true;
        g.throughput(Throughput::Elements(nl.len() as u64));
        g.bench_with_input(
            BenchmarkId::new("evaluate_cspp_tree", n),
            &(&nl, &inputs),
            |b, (nl, inputs)| b.iter(|| nl.evaluate(black_box(inputs), &[]).unwrap().max_level()),
        );
    }
    g.finish();
}

fn bench_fattree(c: &mut Criterion) {
    let mut g = c.benchmark_group("memsys");
    for &n in &[64usize, 1024] {
        for (name, network) in [
            ("fattree_full_offered_load", NetworkKind::FatTree),
            ("butterfly_full_offered_load", NetworkKind::Butterfly),
        ] {
            let cfg = MemConfig {
                n_leaves: n,
                bandwidth: Bandwidth::sqrt(),
                banks: n,
                bank_occupancy: 1,
                hop_latency: 1,
                base_latency: 1,
                words: 1 << 16,
                network,
                cluster_cache: None,
            };
            let reqs: Vec<MemRequest> = (0..n)
                .map(|i| MemRequest {
                    id: i as u64,
                    leaf: i,
                    addr: i * 3,
                    kind: ReqKind::Load,
                })
                .collect();
            g.throughput(Throughput::Elements(n as u64));
            g.bench_with_input(
                BenchmarkId::new(name, n),
                &(&cfg, &reqs),
                |b, (cfg, reqs)| {
                    b.iter(|| {
                        let mut m = MemSystem::new((*cfg).clone(), &[]);
                        let mut pending: Vec<MemRequest> = (*reqs).clone();
                        let mut t = 0u64;
                        while !pending.is_empty() {
                            let (acc, _) = m.tick(t, &pending);
                            pending.retain(|r| !acc.contains(&r.id));
                            t += 1;
                        }
                        t
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_scans, bench_cspp, bench_packed, bench_netlist, bench_fattree
}
criterion_main!(benches);
