//! `usim serve` — a long-running, *concurrent* batch/server mode for
//! simulation requests.
//!
//! The serving loop reads newline-delimited JSON requests from stdin
//! (or a Unix socket with `--socket PATH`) and writes one JSON response
//! per line:
//!
//! ```text
//! {"program": "li r1, 6\nli r2, 7\nmul r3, r1, r2\nhalt\n",
//!  "options": {"arch": "usi", "window": 8}}
//! → {"ok":true,"arch":"usi","window":8,"cluster":1,"halted":true,...}
//! ```
//!
//! # Scaling the request plane
//!
//! Socket mode accepts many simultaneous clients: the accept loop
//! spawns one serving thread per connection, bounded by `--workers N`
//! (default: the host's available parallelism). The scaling problem is
//! the one the source tradition understands well — shared-structure
//! hot spots, not compute, bound throughput — so every shared
//! structure is sharded and every lock is held for a scan, never for a
//! simulation:
//!
//! * assembled programs live in a [`ShardedProgramCache`]: N
//!   independent LRU shards selected by the FNV-1a content hash, each
//!   behind its own mutex. A hit clones an `Arc` out of the shard and
//!   releases the lock before the engine runs.
//! * warm engines live in a [`ShardedEnginePool`] keyed by a
//!   `ProcConfig` hash with the same discipline, accessed by
//!   **checkout/checkin**: a checkout removes the engine from its
//!   shard, the worker simulates with no lock held, and checkin
//!   returns it (two workers on the same configuration simply hold
//!   two engines).
//! * **config-affinity batching**: a worker keeps its checked-out
//!   engine across consecutive same-`ProcConfig` requests, so a
//!   config-sorted request stream (the natural shape of a
//!   design-space sweep) touches the pool only when the configuration
//!   changes. Batched runs are counted separately
//!   (`batched_runs` in `{"cmd":"stats"}`).
//! * **lane batching**: when a client pipelines — several complete
//!   request lines already sit in the read buffer — consecutive run
//!   requests for the same configuration and program are grouped (up
//!   to [`ultrascalar::MAX_LANES`]) and submitted as one
//!   [`ultrascalar::LaneBatcher`] batch: one engine pass whose
//!   schedule is shared across every converged lane, responses
//!   byte-identical to serving the lines one at a time. A
//!   request/response client never has a second line buffered, so it
//!   is served exactly as before; grouping only engages when the
//!   stream is ahead of the server. Lock-step-delivered results and
//!   divergence peels are counted separately (`lane_batched_runs` /
//!   `lane_divergence_peels` in `{"cmd":"stats"}`).
//!
//! Each worker keeps the zero-allocation warm path of the serial
//! server: requests parse into worker-owned reused [`String`] buffers
//! and responses serialise into a worker-owned reused line buffer, so
//! the steady-state request loop — parse, cache hit, affinity/pool
//! hit, simulate, respond — performs **zero heap allocations per
//! worker**, under concurrency included (asserted by the
//! counting-allocator probe in `tests/serve_alloc_probe.rs`).
//!
//! A client disconnect (EOF mid-line, broken pipe on write) closes
//! only that connection and bumps the `disconnects` counter; it can
//! never take the server down or poison a shard lock. A
//! `{"cmd":"shutdown"}` from any client stops the accept loop, drains
//! in-flight requests, unblocks idle readers, joins every worker, and
//! the aggregate stderr summary prints exactly once.
//!
//! The JSON codec is hand-rolled like [`crate::sweep::JsonReport`]:
//! this workspace takes no serde dependency. Identical requests
//! produce byte-identical responses (per-request wall time is
//! reported only when the request opts in with `"timing": true`);
//! cache effectiveness and shard balance are observable through the
//! counters of a `{"cmd":"stats"}` request and the final summary.

use std::fmt::Write as _;
use std::io::{BufRead, Write};
use std::net::Shutdown;
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use crate::cli::{self, RunOptions, ServeOptions};
use ultrascalar::{
    LaneBatcher, PoolStats, PooledEngine, ProcConfig, Processor, RunResult, ShardedEnginePool,
    MAX_LANES,
};
use ultrascalar_isa::{CacheStats, Program, ShardedProgramCache};
use ultrascalar_memsys::NetworkKind;

/// Lock recovering from poison: the guarded state is cache/registry
/// bookkeeping whose invariants hold on every exit path, so one
/// panicking worker must not wedge the rest of the server.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// What a request asks the server to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum Cmd {
    /// Simulate a program (the default when `cmd` is absent).
    #[default]
    Run,
    /// Report aggregate serving counters.
    Stats,
    /// Acknowledge and stop the serving loop.
    Shutdown,
}

/// One parsed request. Lives inside a [`Worker`] and is rewound per
/// line so its string buffers are reused across requests.
#[derive(Debug, Default)]
struct Request {
    cmd: Cmd,
    id: String,
    has_id: bool,
    program: String,
    has_program: bool,
    program_path: String,
    has_program_path: bool,
    timing: bool,
    registers: bool,
    opts: RunOptions,
}

impl Request {
    fn reset(&mut self) {
        self.cmd = Cmd::Run;
        self.id.clear();
        self.has_id = false;
        self.program.clear();
        self.has_program = false;
        self.program_path.clear();
        self.has_program_path = false;
        self.timing = false;
        self.registers = false;
        // `RunOptions::default()` holds only plain data and an empty
        // (unallocated) path string, so this rewinds without touching
        // the allocator.
        self.opts = RunOptions::default();
    }
}

/// Aggregate serving counters, snapshotted by
/// [`ServeShared::counters`].
#[derive(Debug, Clone, Default)]
pub struct ServeCounters {
    /// Request lines handled (including malformed ones).
    pub requests: u64,
    /// Simulation runs completed.
    pub runs: u64,
    /// Requests answered with an error response.
    pub errors: u64,
    /// Connections that ended abnormally (EOF mid-line, read error,
    /// broken pipe on write).
    pub disconnects: u64,
    /// Runs served on the worker's already-held engine (config-affinity
    /// batching; these never touched a pool shard).
    pub batched_runs: u64,
    /// Runs whose result was delivered by a lane-batch lock-step pass
    /// (leader included) rather than its own engine pass.
    pub lane_batched_runs: u64,
    /// Lanes peeled back to a serial engine run after diverging from
    /// their batch leader.
    pub lane_divergence_peels: u64,
    /// Clean epochs walked across all lane-batch passes (a
    /// mispredict-free batch contributes exactly one).
    pub lane_epochs: u64,
    /// Lanes peeled during wrong-path segment replay at an epoch
    /// boundary (subset of `lane_divergence_peels`' sibling counter in
    /// the batcher; reported separately because they mark predictor
    /// divergence rather than dataflow divergence).
    pub lane_replay_peels: u64,
    /// Groups demoted to serial because members disagreed on register
    /// or memory shape.
    pub lane_demote_incompatible: u64,
    /// Groups demoted to serial because the leader run did not halt.
    pub lane_demote_leader: u64,
    /// Groups demoted to serial because the leader's schedule could not
    /// be walked in lock-step (structural mismatch).
    pub lane_demote_structure: u64,
    /// Groups demoted to serial because lane 0's lock-step result
    /// failed self-verification against the leader.
    pub lane_demote_verify: u64,
    /// Total cycles simulated across all runs.
    pub cycles_simulated: u64,
    /// Total instructions committed across all runs.
    pub instructions_committed: u64,
    /// Runs in which the engine fell back to the scalar scan.
    pub packed_fallbacks: u64,
    /// Wall time spent handling requests, summed across workers
    /// (parse + simulate + respond).
    pub wall: Duration,
}

/// The serving state shared by every worker thread: sharded program
/// cache, sharded engine pool, and atomic aggregate counters.
#[derive(Debug)]
pub struct ServeShared {
    programs: ShardedProgramCache,
    engines: ShardedEnginePool,
    workers: usize,
    requests: AtomicU64,
    runs: AtomicU64,
    errors: AtomicU64,
    disconnects: AtomicU64,
    batched: AtomicU64,
    lane_batched: AtomicU64,
    lane_peels: AtomicU64,
    lane_epochs: AtomicU64,
    lane_replay_peels: AtomicU64,
    lane_demote_incompatible: AtomicU64,
    lane_demote_leader: AtomicU64,
    lane_demote_structure: AtomicU64,
    lane_demote_verify: AtomicU64,
    engines_held: AtomicU64,
    cycles_simulated: AtomicU64,
    instructions_committed: AtomicU64,
    packed_fallbacks: AtomicU64,
    wall_nanos: AtomicU64,
    worker_requests: Vec<AtomicU64>,
    shutdown: AtomicBool,
}

impl ServeShared {
    /// Build the shared serving state from parsed options. A `shards`
    /// value of 0 resolves to one shard per worker.
    ///
    /// # Panics
    /// Panics if a capacity or the worker count is zero (the CLI
    /// parser rejects these first).
    pub fn new(o: &ServeOptions) -> Self {
        assert!(o.workers > 0, "serve needs at least one worker");
        let shards = if o.shards == 0 { o.workers } else { o.shards };
        ServeShared {
            programs: ShardedProgramCache::new(o.program_cache, shards),
            engines: ShardedEnginePool::new(o.engines, shards),
            workers: o.workers,
            requests: AtomicU64::new(0),
            runs: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            disconnects: AtomicU64::new(0),
            batched: AtomicU64::new(0),
            lane_batched: AtomicU64::new(0),
            lane_peels: AtomicU64::new(0),
            lane_epochs: AtomicU64::new(0),
            lane_replay_peels: AtomicU64::new(0),
            lane_demote_incompatible: AtomicU64::new(0),
            lane_demote_leader: AtomicU64::new(0),
            lane_demote_structure: AtomicU64::new(0),
            lane_demote_verify: AtomicU64::new(0),
            engines_held: AtomicU64::new(0),
            cycles_simulated: AtomicU64::new(0),
            instructions_committed: AtomicU64::new(0),
            packed_fallbacks: AtomicU64::new(0),
            wall_nanos: AtomicU64::new(0),
            worker_requests: (0..o.workers).map(|_| AtomicU64::new(0)).collect(),
            shutdown: AtomicBool::new(false),
        }
    }

    /// Worker-thread bound (`--workers`).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Has any client requested shutdown?
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Request shutdown (as `{"cmd":"shutdown"}` would).
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Snapshot of the aggregate counters.
    pub fn counters(&self) -> ServeCounters {
        ServeCounters {
            requests: self.requests.load(Ordering::Relaxed),
            runs: self.runs.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            disconnects: self.disconnects.load(Ordering::Relaxed),
            batched_runs: self.batched.load(Ordering::Relaxed),
            lane_batched_runs: self.lane_batched.load(Ordering::Relaxed),
            lane_divergence_peels: self.lane_peels.load(Ordering::Relaxed),
            lane_epochs: self.lane_epochs.load(Ordering::Relaxed),
            lane_replay_peels: self.lane_replay_peels.load(Ordering::Relaxed),
            lane_demote_incompatible: self.lane_demote_incompatible.load(Ordering::Relaxed),
            lane_demote_leader: self.lane_demote_leader.load(Ordering::Relaxed),
            lane_demote_structure: self.lane_demote_structure.load(Ordering::Relaxed),
            lane_demote_verify: self.lane_demote_verify.load(Ordering::Relaxed),
            cycles_simulated: self.cycles_simulated.load(Ordering::Relaxed),
            instructions_committed: self.instructions_committed.load(Ordering::Relaxed),
            packed_fallbacks: self.packed_fallbacks.load(Ordering::Relaxed),
            wall: Duration::from_nanos(self.wall_nanos.load(Ordering::Relaxed)),
        }
    }

    /// Program-cache counters summed across shards.
    pub fn program_stats(&self) -> CacheStats {
        self.programs.stats()
    }

    /// Engine-pool counters summed across shards, folding in the
    /// serving layer's view of warmth: a run served by the worker's
    /// held engine (config-affinity batching) counts as a hit, and
    /// held engines count as warm — `hits + misses == runs` and
    /// `warm` is every live engine, pooled or held.
    pub fn engine_stats(&self) -> PoolStats {
        let mut s = self.engines.stats();
        s.hits += self.batched.load(Ordering::Relaxed);
        s.warm += self.engines_held.load(Ordering::Relaxed) as usize;
        s
    }

    /// Requests handled per worker slot (shard-balance observability).
    pub fn worker_request_counts(&self) -> Vec<u64> {
        self.worker_requests
            .iter()
            .map(|w| w.load(Ordering::Relaxed))
            .collect()
    }
}

/// One serving worker: a handle on the shared state plus the reused
/// request/response buffers, the config-affinity engine slot, and the
/// lane-batch group scratch. Each connection (or the stdin stream) is
/// driven by exactly one worker.
#[derive(Debug)]
pub struct Worker {
    shared: Arc<ServeShared>,
    slot: usize,
    req: Request,
    key: String,
    sval: String,
    file_src: String,
    line_out: String,
    held: Option<PooledEngine>,
    batcher: LaneBatcher,
    /// Parsed requests of the group being collected (slots reused).
    group: Vec<Request>,
    /// The group's resolved configuration (leader's, shared by all).
    group_cfg: Option<ProcConfig>,
    /// One cache handle per group member (cleared between groups).
    group_programs: Vec<Arc<Program>>,
    /// One reused result slot per lane.
    group_results: Vec<RunResult>,
}

impl Worker {
    /// Create a worker bound to `slot` (an index below
    /// [`ServeShared::workers`], used for the per-worker request
    /// tally).
    pub fn new(shared: Arc<ServeShared>, slot: usize) -> Self {
        assert!(slot < shared.workers, "worker slot out of range");
        Worker {
            shared,
            slot,
            req: Request::default(),
            key: String::new(),
            sval: String::new(),
            file_src: String::new(),
            line_out: String::new(),
            held: None,
            batcher: LaneBatcher::new(),
            group: Vec::new(),
            group_cfg: None,
            group_programs: Vec::with_capacity(MAX_LANES),
            group_results: Vec::new(),
        }
    }

    /// The shared serving state.
    pub fn shared(&self) -> &Arc<ServeShared> {
        &self.shared
    }

    /// Return the held engine (if any) to the pool. Call at the end of
    /// a connection so the warm engine is available to other workers.
    pub fn release(&mut self) {
        if let Some(engine) = self.held.take() {
            self.shared.engines_held.fetch_sub(1, Ordering::Relaxed);
            self.shared.engines.checkin(engine);
        }
    }

    /// Handle one request line and return the response line (no
    /// trailing newline). Never fails: malformed requests produce an
    /// `{"ok":false,"error":…}` response.
    pub fn handle_line(&mut self, line: &str) -> &str {
        let started = Instant::now();
        self.shared.requests.fetch_add(1, Ordering::Relaxed);
        self.shared.worker_requests[self.slot].fetch_add(1, Ordering::Relaxed);
        if let Err(e) = self.handle_inner(line) {
            self.shared.errors.fetch_add(1, Ordering::Relaxed);
            write_error_line(&mut self.line_out, &self.req, &e);
        }
        self.shared
            .wall_nanos
            .fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
        &self.line_out
    }

    fn handle_inner(&mut self, line: &str) -> Result<(), String> {
        let Worker {
            shared,
            req,
            key,
            sval,
            file_src,
            line_out,
            held,
            ..
        } = self;
        parse_request(line, req, key, sval)?;
        match req.cmd {
            Cmd::Stats => {
                line_out.clear();
                write_stats(line_out, shared);
                Ok(())
            }
            Cmd::Shutdown => {
                shared.request_shutdown();
                line_out.clear();
                line_out.push_str("{\"ok\":true,\"shutdown\":true}");
                Ok(())
            }
            Cmd::Run => {
                let src: &str = if req.has_program {
                    if req.has_program_path {
                        return Err("give either `program` or `program_path`, not both".into());
                    }
                    &req.program
                } else if req.has_program_path {
                    file_src.clear();
                    let bytes = std::fs::read(&req.program_path)
                        .map_err(|e| format!("cannot read {}: {e}", req.program_path))?;
                    let text = std::str::from_utf8(&bytes)
                        .map_err(|e| format!("{} is not UTF-8: {e}", req.program_path))?;
                    file_src.push_str(text);
                    file_src
                } else {
                    return Err("request needs a `program` or `program_path`".into());
                };
                let cfg = cli::build_config(&req.opts)?;
                let program = shared
                    .programs
                    .get_or_assemble(src, req.opts.regs)
                    .map_err(|e| e.to_string())?;
                let pooled = affinity_checkout(shared, held, &cfg);
                let run_started = Instant::now();
                pooled.engine.run_reusing(&program, &mut pooled.result);
                let run_wall = run_started.elapsed();
                count_run(shared, &cfg, &pooled.result);
                line_out.clear();
                let wall_us = req.timing.then_some(run_wall.as_micros() as u64);
                write_run(line_out, req, &cfg, &pooled.result, wall_us);
                Ok(())
            }
        }
    }

    /// Parse `line` into group slot 0 and decide whether it can lead a
    /// lane-batch group: a well-formed run request carrying an inline
    /// program. Anything else goes through the serial path untouched.
    fn parse_group_leader(&mut self, line: &str) -> bool {
        let Worker {
            group, key, sval, ..
        } = self;
        if group.is_empty() {
            group.push(Request::default());
        }
        let slot = &mut group[0];
        parse_request(line, slot, key, sval).is_ok()
            && slot.cmd == Cmd::Run
            && slot.has_program
            && !slot.has_program_path
    }

    /// Resolve the group leader's configuration and program. The two
    /// failure modes differ in what they already counted: an invalid
    /// configuration touched nothing (the caller can replay the line
    /// through `handle_line` and get the identical error for free),
    /// while a failed assembly has already been charged one
    /// program-cache miss, so the caller must emit the error response
    /// itself rather than replay the lookup.
    fn resolve_group_leader(&mut self) -> Result<(), GroupLeaderError> {
        let req = &self.group[0];
        let cfg = cli::build_config(&req.opts).map_err(|_| GroupLeaderError::Config)?;
        let program = self
            .shared
            .programs
            .get_or_assemble(&req.program, req.opts.regs)
            .map_err(|e| GroupLeaderError::Assemble(e.to_string()))?;
        self.group_cfg = Some(cfg);
        self.group_programs.clear();
        self.group_programs.push(program);
        Ok(())
    }

    /// Try to admit `line` into the group as lane `n`. Admission
    /// requires a run request with the same configuration, program
    /// text, and register count as the leader; anything else is a
    /// group breaker the caller reprocesses on its own. An admitted
    /// member's cache lookup is a guaranteed hit on the entry the
    /// leader just resolved, so the accounting matches serving the
    /// line by itself.
    fn try_join_group(&mut self, n: usize, line: &str) -> bool {
        let Worker {
            shared,
            group,
            key,
            sval,
            group_cfg,
            group_programs,
            ..
        } = self;
        while group.len() <= n {
            group.push(Request::default());
        }
        let (lead, tail) = group.split_at_mut(n);
        let leader = &lead[0];
        let slot = &mut tail[0];
        if parse_request(line, slot, key, sval).is_err()
            || slot.cmd != Cmd::Run
            || !slot.has_program
            || slot.has_program_path
            || slot.opts.regs != leader.opts.regs
            || slot.program != leader.program
        {
            return false;
        }
        let Ok(cfg) = cli::build_config(&slot.opts) else {
            return false;
        };
        if Some(&cfg) != group_cfg.as_ref() {
            return false;
        }
        match shared
            .programs
            .get_or_assemble(&slot.program, slot.opts.regs)
        {
            Ok(program) => {
                group_programs.push(program);
                true
            }
            Err(_) => false,
        }
    }

    /// Execute the collected group of `n` resolved same-config,
    /// same-program run requests — one lane batch for `n >= 2`, the
    /// plain serial run for a group of one — and serialise every
    /// response, in request order and newline-terminated, into
    /// `line_out`. Counter accounting is exactly what serving the
    /// lines one at a time would have produced; the lane counters
    /// additionally record how many results the lock-step pass
    /// delivered and how many lanes peeled.
    fn execute_group(&mut self, n: usize) {
        let started = Instant::now();
        let Worker {
            shared,
            slot,
            group,
            group_cfg,
            group_programs,
            group_results,
            batcher,
            line_out,
            held,
            ..
        } = self;
        let cfg = group_cfg.take().expect("group leader resolved");
        shared.requests.fetch_add(n as u64, Ordering::Relaxed);
        shared.worker_requests[*slot].fetch_add(n as u64, Ordering::Relaxed);
        let pooled = affinity_checkout(shared, held, &cfg);
        line_out.clear();
        if n == 1 {
            let run_started = Instant::now();
            pooled
                .engine
                .run_reusing(&group_programs[0], &mut pooled.result);
            let wall_us = group[0]
                .timing
                .then_some(run_started.elapsed().as_micros() as u64);
            count_run(shared, &cfg, &pooled.result);
            write_run(line_out, &group[0], &cfg, &pooled.result, wall_us);
            line_out.push('\n');
        } else {
            // The members after the leader ride the held engine, just
            // as they would have one line at a time.
            shared.batched.fetch_add(n as u64 - 1, Ordering::Relaxed);
            while group_results.len() < n {
                group_results.push(RunResult::default());
            }
            let before = *batcher.stats();
            let run_started = Instant::now();
            batcher.run_batch(
                &mut pooled.engine,
                &group_programs[..n],
                &mut group_results[..n],
            );
            let share = run_started.elapsed() / n as u32;
            let after = *batcher.stats();
            shared
                .lane_batched
                .fetch_add(after.lane_runs - before.lane_runs, Ordering::Relaxed);
            shared
                .lane_peels
                .fetch_add(after.peels - before.peels, Ordering::Relaxed);
            shared
                .lane_epochs
                .fetch_add(after.epochs - before.epochs, Ordering::Relaxed);
            shared
                .lane_replay_peels
                .fetch_add(after.replay_peels - before.replay_peels, Ordering::Relaxed);
            shared.lane_demote_incompatible.fetch_add(
                after.fallback_incompatible - before.fallback_incompatible,
                Ordering::Relaxed,
            );
            shared.lane_demote_leader.fetch_add(
                after.fallback_leader - before.fallback_leader,
                Ordering::Relaxed,
            );
            shared.lane_demote_structure.fetch_add(
                after.fallback_structure - before.fallback_structure,
                Ordering::Relaxed,
            );
            shared.lane_demote_verify.fetch_add(
                after.fallback_verify - before.fallback_verify,
                Ordering::Relaxed,
            );
            for (req, r) in group[..n].iter().zip(group_results.iter()) {
                count_run(shared, &cfg, r);
                let wall_us = req.timing.then_some(share.as_micros() as u64);
                write_run(line_out, req, &cfg, r, wall_us);
                line_out.push('\n');
            }
        }
        shared
            .wall_nanos
            .fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }

    /// The group leader failed to assemble after its cache lookup was
    /// already counted: emit the error response (newline-terminated,
    /// into `line_out`) with the same counter effects `handle_line`
    /// would have had.
    fn group_leader_error(&mut self, err: &str) {
        let started = Instant::now();
        self.shared.requests.fetch_add(1, Ordering::Relaxed);
        self.shared.worker_requests[self.slot].fetch_add(1, Ordering::Relaxed);
        self.shared.errors.fetch_add(1, Ordering::Relaxed);
        write_error_line(&mut self.line_out, &self.group[0], err);
        self.line_out.push('\n');
        self.shared
            .wall_nanos
            .fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }
}

/// Why a would-be group leader could not be resolved.
enum GroupLeaderError {
    /// `build_config` rejected the options (no shared state touched).
    Config,
    /// Assembly failed (the program-cache miss is already counted).
    Assemble(String),
}

/// Config-affinity engine selection, shared by the serial path and the
/// lane-batch group path: reuse the held engine when its configuration
/// matches (counted as a batched run), otherwise swap it through the
/// pool.
fn affinity_checkout<'a>(
    shared: &ServeShared,
    held: &'a mut Option<PooledEngine>,
    cfg: &ProcConfig,
) -> &'a mut PooledEngine {
    match held {
        Some(h) if h.engine.config() == cfg => {
            shared.batched.fetch_add(1, Ordering::Relaxed);
        }
        _ => {
            if let Some(prev) = held.take() {
                shared.engines_held.fetch_sub(1, Ordering::Relaxed);
                shared.engines.checkin(prev);
            }
            *held = Some(shared.engines.checkout(cfg));
            shared.engines_held.fetch_add(1, Ordering::Relaxed);
        }
    }
    held.as_mut().expect("engine held for this config")
}

/// Post-run counter roll-up, shared by the serial and group paths.
/// The packed-fallback stderr diagnostic is de-duplicated to one line
/// per distinct configuration (a fallback-prone client used to spam
/// one warning per run); the aggregated counter in the stats report
/// stays authoritative either way.
fn count_run(shared: &ServeShared, cfg: &ProcConfig, r: &RunResult) {
    shared.runs.fetch_add(1, Ordering::Relaxed);
    shared
        .cycles_simulated
        .fetch_add(r.cycles, Ordering::Relaxed);
    shared
        .instructions_committed
        .fetch_add(r.stats.committed, Ordering::Relaxed);
    shared
        .packed_fallbacks
        .fetch_add(r.stats.packed_fallbacks, Ordering::Relaxed);
    if r.stats.packed_fallbacks > 0 && crate::cli::fallback_warning_is_first(cfg) {
        eprintln!(
            "usim serve: packed flag networks requested but inactive for this \
             configuration (register file wider than the packed lane words); \
             further runs with it stay quiet — see packed_fallbacks in stats"
        );
    }
}

/// The `{"ok":false,…}` error response, shared by `handle_line` and
/// the group leader's resolution-failure path.
fn write_error_line(out: &mut String, req: &Request, err: &str) {
    out.clear();
    out.push_str("{\"ok\":false,");
    if req.has_id {
        out.push_str("\"id\":\"");
        escape_into(out, &req.id);
        out.push_str("\",");
    }
    out.push_str("\"error\":\"");
    escape_into(out, err);
    out.push_str("\"}");
}

/// The single-threaded serving facade: one [`Worker`] over its own
/// shared state (one shard each). Drives stdin mode and serves as the
/// serial baseline the concurrent path is pinned byte-identical
/// against.
#[derive(Debug)]
pub struct Server {
    worker: Worker,
}

impl Server {
    /// Create a single-worker server with the given program-cache and
    /// engine-pool capacities.
    ///
    /// # Panics
    /// Panics if either capacity is zero.
    pub fn new(program_cache: usize, engines: usize) -> Self {
        let o = ServeOptions {
            socket: None,
            program_cache,
            engines,
            workers: 1,
            shards: 1,
        };
        Server::from_shared(Arc::new(ServeShared::new(&o)))
    }

    /// Create the stdin-mode server over externally built shared state
    /// (slot 0).
    pub fn from_shared(shared: Arc<ServeShared>) -> Self {
        Server {
            worker: Worker::new(shared, 0),
        }
    }

    /// The shared serving state (counters, cache/pool stats).
    pub fn shared(&self) -> &Arc<ServeShared> {
        &self.worker.shared
    }

    /// Snapshot of the aggregate counters.
    pub fn counters(&self) -> ServeCounters {
        self.worker.shared.counters()
    }

    /// Program-cache counters (hits/misses/evictions/entries).
    pub fn program_stats(&self) -> CacheStats {
        self.worker.shared.program_stats()
    }

    /// Engine-pool counters; affinity-batched runs count as hits and
    /// the held engine counts as warm (see
    /// [`ServeShared::engine_stats`]).
    pub fn engine_stats(&self) -> PoolStats {
        self.worker.shared.engine_stats()
    }

    /// Has a shutdown request been handled?
    pub fn shutdown_requested(&self) -> bool {
        self.worker.shared.is_shutdown()
    }

    /// Handle one request line and return the response line (no
    /// trailing newline). Never fails: malformed requests produce an
    /// `{"ok":false,"error":…}` response.
    pub fn handle_line(&mut self, line: &str) -> &str {
        self.worker.handle_line(line)
    }

    /// Return the held engine (if any) to the pool.
    pub fn release(&mut self) {
        self.worker.release()
    }

    /// The one-line human-readable summary printed on shutdown/EOF.
    pub fn final_stats_line(&self) -> String {
        final_summary(&self.worker.shared)
    }
}

/// The one-line human-readable summary printed to stderr exactly once
/// when the serving loop exits.
pub fn final_summary(shared: &ServeShared) -> String {
    let c = shared.counters();
    let pc = shared.program_stats();
    let ep = shared.engine_stats();
    format!(
        "usim serve: {} requests ({} runs, {} errors, {} disconnects), \
         program cache {} hits / {} misses / {} evictions, \
         engine pool {} hits / {} misses / {} evictions ({} batched), \
         {} lane-batched runs over {} epochs \
         ({} divergence peels, {} replay peels; demoted \
         {} incompatible / {} leader / {} structure / {} verify), \
         {} cycles simulated, {} instructions committed, \
         {} packed fallbacks, {:.3} s busy",
        c.requests,
        c.runs,
        c.errors,
        c.disconnects,
        pc.hits,
        pc.misses,
        pc.evictions,
        ep.hits,
        ep.misses,
        ep.evictions,
        c.batched_runs,
        c.lane_batched_runs,
        c.lane_epochs,
        c.lane_divergence_peels,
        c.lane_replay_peels,
        c.lane_demote_incompatible,
        c.lane_demote_leader,
        c.lane_demote_structure,
        c.lane_demote_verify,
        c.cycles_simulated,
        c.instructions_committed,
        c.packed_fallbacks,
        c.wall.as_secs_f64(),
    )
}

/// Serialise a run response. Identical requests must produce
/// byte-identical responses, so per-request wall time appears only
/// when the request opted in with `"timing": true` (and `wall_us` is
/// `Some`).
fn write_run(
    out: &mut String,
    req: &Request,
    cfg: &ProcConfig,
    r: &RunResult,
    wall_us: Option<u64>,
) {
    out.push_str("{\"ok\":true,");
    if req.has_id {
        out.push_str("\"id\":\"");
        escape_into(out, &req.id);
        out.push_str("\",");
    }
    let arch = if cfg.cluster == 1 {
        "usi"
    } else if cfg.cluster == cfg.window {
        "usii"
    } else {
        "hybrid"
    };
    let _ = write!(
        out,
        "\"arch\":\"{arch}\",\"window\":{},\"cluster\":{},\"halted\":{},\
         \"cycles\":{},\"instructions\":{},\"ipc\":{:.4},\"branches\":{},\
         \"mispredictions\":{},\"flushed\":{},\"loads\":{},\"stores\":{},\
         \"store_forwards\":{},\"packed_fallbacks\":{}",
        cfg.window,
        cfg.cluster,
        r.halted,
        r.cycles,
        r.stats.committed,
        r.ipc(),
        r.stats.branches,
        r.stats.mispredictions,
        r.stats.flushed,
        r.stats.mem.loads,
        r.stats.mem.stores,
        r.stats.store_forwards,
        r.stats.packed_fallbacks,
    );
    if req.registers {
        out.push_str(",\"registers\":[");
        for (i, v) in r.regs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{v}");
        }
        out.push(']');
    }
    if let Some(us) = wall_us {
        let _ = write!(out, ",\"wall_us\":{us}");
    }
    out.push('}');
}

fn write_stats(out: &mut String, shared: &ServeShared) {
    let c = shared.counters();
    let pc = shared.program_stats();
    let ep = shared.engine_stats();
    let _ = write!(
        out,
        "{{\"ok\":true,\"stats\":{{\"requests\":{},\"runs\":{},\"errors\":{},\
         \"disconnects\":{},\"batched_runs\":{},\
         \"lane_batched_runs\":{},\"lane_divergence_peels\":{},\
         \"lane_epochs\":{},\"lane_replay_peels\":{},\
         \"lane_demote_incompatible\":{},\"lane_demote_leader\":{},\
         \"lane_demote_structure\":{},\"lane_demote_verify\":{},\
         \"program_cache_hits\":{},\"program_cache_misses\":{},\
         \"program_cache_evictions\":{},\"programs_cached\":{},\
         \"engine_pool_hits\":{},\"engine_pool_misses\":{},\
         \"engine_pool_evictions\":{},\"engines_warm\":{},\
         \"cycles_simulated\":{},\"instructions_committed\":{},\"packed_fallbacks\":{},\
         \"wall_s\":{:.6},\"workers\":{},\"cache_shards\":{},\"pool_shards\":{}",
        c.requests,
        c.runs,
        c.errors,
        c.disconnects,
        c.batched_runs,
        c.lane_batched_runs,
        c.lane_divergence_peels,
        c.lane_epochs,
        c.lane_replay_peels,
        c.lane_demote_incompatible,
        c.lane_demote_leader,
        c.lane_demote_structure,
        c.lane_demote_verify,
        pc.hits,
        pc.misses,
        pc.evictions,
        pc.entries,
        ep.hits,
        ep.misses,
        ep.evictions,
        ep.warm,
        c.cycles_simulated,
        c.instructions_committed,
        c.packed_fallbacks,
        c.wall.as_secs_f64(),
        shared.workers,
        shared.programs.num_shards(),
        shared.engines.num_shards(),
    );
    out.push_str(",\"worker_requests\":[");
    for (i, w) in shared.worker_requests.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}", w.load(Ordering::Relaxed));
    }
    out.push_str("],\"cache_shard_requests\":[");
    for (i, s) in shared.programs.shard_stats().into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}", s.hits + s.misses);
    }
    out.push_str("],\"pool_shard_requests\":[");
    for (i, s) in shared.engines.shard_stats().into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}", s.hits + s.misses);
    }
    out.push_str("]}}");
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// A byte cursor over one request line. All string values parse into
/// caller-owned buffers, so a well-formed request allocates nothing.
struct P<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> P<'a> {
    fn new(s: &'a str) -> Self {
        P {
            b: s.as_bytes(),
            i: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self
            .b
            .get(self.i)
            .is_some_and(|c| matches!(c, b' ' | b'\t' | b'\r' | b'\n'))
        {
            self.i += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, want: u8) -> Result<(), String> {
        self.skip_ws();
        match self.b.get(self.i) {
            Some(&c) if c == want => {
                self.i += 1;
                Ok(())
            }
            Some(&c) => Err(format!(
                "bad JSON: expected `{}` at byte {}, found `{}`",
                want as char, self.i, c as char
            )),
            None => Err(format!(
                "bad JSON: expected `{}` at byte {}, found end of line",
                want as char, self.i
            )),
        }
    }

    fn at_end(&mut self) -> bool {
        self.skip_ws();
        self.i >= self.b.len()
    }

    /// Parse a JSON string into `out` (cleared first), decoding all
    /// escapes including `\uXXXX` surrogate pairs.
    fn string_into(&mut self, out: &mut String) -> Result<(), String> {
        out.clear();
        self.eat(b'"')?;
        loop {
            let Some(&c) = self.b.get(self.i) else {
                return Err("bad JSON: unterminated string".into());
            };
            self.i += 1;
            match c {
                b'"' => return Ok(()),
                b'\\' => {
                    let Some(&e) = self.b.get(self.i) else {
                        return Err("bad JSON: unterminated escape".into());
                    };
                    self.i += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must
                                // follow with the low half.
                                if self.b.get(self.i) != Some(&b'\\')
                                    || self.b.get(self.i + 1) != Some(&b'u')
                                {
                                    return Err("bad JSON: lone high surrogate".into());
                                }
                                self.i += 2;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err("bad JSON: invalid low surrogate".into());
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            match char::from_u32(code) {
                                Some(ch) => out.push(ch),
                                None => return Err("bad JSON: invalid \\u escape".into()),
                            }
                        }
                        other => {
                            return Err(format!("bad JSON: unknown escape `\\{}`", other as char))
                        }
                    }
                }
                _ => {
                    // Copy the full UTF-8 sequence starting at c.
                    let start = self.i - 1;
                    while self.b.get(self.i).is_some_and(|&n| n & 0xC0 == 0x80) {
                        self.i += 1;
                    }
                    let s = std::str::from_utf8(&self.b[start..self.i])
                        .map_err(|_| "bad JSON: invalid UTF-8 in string".to_string())?;
                    out.push_str(s);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut v = 0u32;
        for _ in 0..4 {
            let Some(&c) = self.b.get(self.i) else {
                return Err("bad JSON: truncated \\u escape".into());
            };
            self.i += 1;
            v = v * 16
                + match c {
                    b'0'..=b'9' => (c - b'0') as u32,
                    b'a'..=b'f' => (c - b'a') as u32 + 10,
                    b'A'..=b'F' => (c - b'A') as u32 + 10,
                    _ => return Err("bad JSON: non-hex digit in \\u escape".into()),
                };
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<f64, String> {
        self.skip_ws();
        let start = self.i;
        while self
            .b
            .get(self.i)
            .is_some_and(|c| matches!(c, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .ok_or_else(|| format!("bad JSON: expected a number at byte {start}"))
    }

    fn boolean(&mut self) -> Result<bool, String> {
        self.skip_ws();
        if self.b[self.i..].starts_with(b"true") {
            self.i += 4;
            Ok(true)
        } else if self.b[self.i..].starts_with(b"false") {
            self.i += 5;
            Ok(false)
        } else {
            Err(format!("bad JSON: expected true/false at byte {}", self.i))
        }
    }
}

fn as_int(x: f64, what: &str) -> Result<u64, String> {
    if x >= 0.0 && x.fract() == 0.0 && x <= (1u64 << 53) as f64 {
        Ok(x as u64)
    } else {
        Err(format!("{what} must be a non-negative integer"))
    }
}

fn as_usize(x: f64, what: &str) -> Result<usize, String> {
    Ok(as_int(x, what)? as usize)
}

/// Parse one request line into `req` (rewound first). `key` and `sval`
/// are caller-owned scratch buffers so parsing is allocation-free.
fn parse_request(
    line: &str,
    req: &mut Request,
    key: &mut String,
    sval: &mut String,
) -> Result<(), String> {
    req.reset();
    let mut p = P::new(line);
    p.eat(b'{')?;
    if p.peek() == Some(b'}') {
        p.eat(b'}')?;
    } else {
        loop {
            p.string_into(key)?;
            p.eat(b':')?;
            match key.as_str() {
                "cmd" => {
                    p.string_into(sval)?;
                    req.cmd = match sval.as_str() {
                        "run" => Cmd::Run,
                        "stats" => Cmd::Stats,
                        "shutdown" => Cmd::Shutdown,
                        other => return Err(format!("unknown cmd `{other}` (run|stats|shutdown)")),
                    };
                }
                "id" => {
                    p.string_into(&mut req.id)?;
                    req.has_id = true;
                }
                "program" => {
                    p.string_into(&mut req.program)?;
                    req.has_program = true;
                }
                "program_path" => {
                    p.string_into(&mut req.program_path)?;
                    req.has_program_path = true;
                }
                "timing" => req.timing = p.boolean()?,
                "registers" => req.registers = p.boolean()?,
                "options" => parse_options(&mut p, &mut req.opts, key, sval)?,
                other => return Err(format!("unknown request field `{other}`")),
            }
            match p.peek() {
                Some(b',') => p.eat(b',')?,
                _ => break,
            }
        }
        p.eat(b'}')?;
    }
    if !p.at_end() {
        return Err("bad JSON: trailing characters after request object".into());
    }
    Ok(())
}

/// Parse the nested `options` object. Field names mirror the `usim run`
/// flags; values go through the same validation as the CLI parser.
fn parse_options(
    p: &mut P,
    o: &mut RunOptions,
    key: &mut String,
    sval: &mut String,
) -> Result<(), String> {
    p.eat(b'{')?;
    if p.peek() == Some(b'}') {
        return p.eat(b'}');
    }
    loop {
        p.string_into(key)?;
        p.eat(b':')?;
        match key.as_str() {
            "arch" => {
                p.string_into(sval)?;
                o.arch = cli::parse_arch(sval)?;
            }
            "predictor" => {
                p.string_into(sval)?;
                o.predictor = cli::parse_predictor(sval)?;
            }
            "window" => o.window = as_usize(p.number()?, "window")?,
            "cluster" => o.cluster = Some(as_usize(p.number()?, "cluster")?),
            "alus" => o.alus = Some(as_usize(p.number()?, "alus")?),
            "mem_exp" => o.mem_exp = p.number()?,
            "network" => {
                p.string_into(sval)?;
                o.network = match sval.as_str() {
                    "fattree" | "fat-tree" => NetworkKind::FatTree,
                    "butterfly" => NetworkKind::Butterfly,
                    other => return Err(format!("unknown network `{other}` (fattree|butterfly)")),
                };
            }
            "butterfly" => {
                if p.boolean()? {
                    o.network = NetworkKind::Butterfly;
                }
            }
            "renaming" => o.renaming = p.boolean()?,
            "cache" => o.cache = p.boolean()?,
            "fetch_width" => o.fetch_width = Some(as_usize(p.number()?, "fetch_width")?),
            "per_hop" => o.per_hop = Some(as_int(p.number()?, "per_hop")?),
            "regs" => o.regs = as_usize(p.number()?, "regs")?,
            "max_cycles" => o.max_cycles = as_int(p.number()?, "max_cycles")?,
            other => return Err(format!("unknown option `{other}`")),
        }
        match p.peek() {
            Some(b',') => p.eat(b',')?,
            _ => break,
        }
    }
    p.eat(b'}')
}

/// How one blocking raw-line read ended.
enum LineRead {
    /// A complete newline-terminated line, plus how many bytes were
    /// left sitting in the reader's internal buffer after it — the
    /// lane-batch grouping signal (0 means "nothing known buffered").
    Line { rest: usize },
    /// Clean EOF on a line boundary.
    Eof,
    /// EOF mid-line: the partial bytes are in the buffer, unprocessed.
    PartialEof,
    /// Read error.
    Failed,
}

/// Read one line (through its `\n`) into `buf` via `fill_buf` /
/// `consume`, so the bytes already buffered behind it stay observable.
fn read_raw_line<R: BufRead>(reader: &mut R, buf: &mut Vec<u8>) -> LineRead {
    buf.clear();
    loop {
        let chunk = match reader.fill_buf() {
            Ok(c) => c,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return LineRead::Failed,
        };
        if chunk.is_empty() {
            return if buf.is_empty() {
                LineRead::Eof
            } else {
                LineRead::PartialEof
            };
        }
        match chunk.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                buf.extend_from_slice(&chunk[..=pos]);
                let rest = chunk.len() - (pos + 1);
                reader.consume(pos + 1);
                return LineRead::Line { rest };
            }
            None => {
                buf.extend_from_slice(chunk);
                let len = chunk.len();
                reader.consume(len);
            }
        }
    }
}

/// Pull the next complete line out of the reader's internal buffer
/// without risking a blocking read: when `rest > 0` the buffer is
/// non-empty, so `fill_buf` returns what is already there without
/// touching the underlying stream. A line that is only partially
/// buffered is left in place (`rest` drops to 0 and the next blocking
/// read picks it up).
fn buffered_line<R: BufRead>(reader: &mut R, rest: &mut usize, buf: &mut Vec<u8>) -> bool {
    buf.clear();
    if *rest == 0 {
        return false;
    }
    let Ok(chunk) = reader.fill_buf() else {
        *rest = 0;
        return false;
    };
    match chunk.iter().position(|&b| b == b'\n') {
        Some(pos) => {
            buf.extend_from_slice(&chunk[..=pos]);
            *rest = chunk.len() - (pos + 1);
            reader.consume(pos + 1);
            true
        }
        None => {
            *rest = 0;
            false
        }
    }
}

/// Drive one worker over one request stream until EOF, a write
/// failure, or shutdown. Abnormal ends (EOF mid-line, read error,
/// broken pipe) bump the `disconnects` counter and close only this
/// stream — the shared state and every other connection stay healthy.
///
/// When the client pipelines, consecutive already-buffered run
/// requests for one configuration and program are served as a single
/// lane batch (see the module docs); every response is byte-identical
/// to serving the lines one at a time, and a group's responses are
/// written and flushed together. A line that breaks a group (different
/// request, malformed, a `stats`/`shutdown` command) is stashed and
/// served next, in order. A request/response client never has a second
/// line buffered, so it is served exactly as before.
fn stream_loop<R: BufRead, W: Write>(worker: &mut Worker, mut reader: R, mut writer: W) {
    let mut line: Vec<u8> = Vec::new();
    let mut stash: Vec<u8> = Vec::new();
    let mut have_stash = false;
    let mut rest = 0usize;
    let disconnect = |worker: &Worker| {
        worker.shared.disconnects.fetch_add(1, Ordering::Relaxed);
    };
    loop {
        if have_stash {
            std::mem::swap(&mut line, &mut stash);
            have_stash = false;
        } else {
            match read_raw_line(&mut reader, &mut line) {
                LineRead::Line { rest: r } => rest = r,
                LineRead::Eof => break,
                LineRead::PartialEof => {
                    // The client vanished mid-line: a partial request
                    // is never processed, only counted.
                    let blank = std::str::from_utf8(&line).is_ok_and(|t| t.trim().is_empty());
                    if !blank {
                        disconnect(worker);
                    }
                    break;
                }
                LineRead::Failed => {
                    disconnect(worker);
                    break;
                }
            }
        }
        let Ok(text) = std::str::from_utf8(&line) else {
            // `read_line` would have failed with InvalidData here.
            disconnect(worker);
            break;
        };
        let trimmed = text.trim();
        if trimmed.is_empty() {
            continue;
        }

        // Lane-batch grouping: engages only when at least one more
        // complete line is already buffered behind the leader.
        if rest > 0 && worker.parse_group_leader(trimmed) {
            match worker.resolve_group_leader() {
                Ok(()) => {
                    let mut n = 1;
                    let mut poisoned = false;
                    while n < MAX_LANES {
                        if !buffered_line(&mut reader, &mut rest, &mut stash) {
                            break;
                        }
                        let Ok(mtext) = std::str::from_utf8(&stash) else {
                            // Serve the group, then fail the stream
                            // exactly as the serial loop would have on
                            // reaching this line.
                            poisoned = true;
                            break;
                        };
                        let mtrim = mtext.trim();
                        if mtrim.is_empty() {
                            continue;
                        }
                        if worker.try_join_group(n, mtrim) {
                            n += 1;
                        } else {
                            have_stash = true;
                            break;
                        }
                    }
                    worker.execute_group(n);
                    if writer.write_all(worker.line_out.as_bytes()).is_err()
                        || writer.flush().is_err()
                    {
                        disconnect(worker);
                        break;
                    }
                    if poisoned {
                        disconnect(worker);
                        break;
                    }
                    if worker.shared.is_shutdown() {
                        break;
                    }
                    continue;
                }
                Err(GroupLeaderError::Assemble(e)) => {
                    worker.group_leader_error(&e);
                    if writer.write_all(worker.line_out.as_bytes()).is_err()
                        || writer.flush().is_err()
                    {
                        disconnect(worker);
                        break;
                    }
                    continue;
                }
                // An invalid configuration touched no shared state:
                // the serial path below re-derives the same error.
                Err(GroupLeaderError::Config) => {}
            }
        }

        worker.handle_line(trimmed);
        worker.line_out.push('\n');
        if writer.write_all(worker.line_out.as_bytes()).is_err() || writer.flush().is_err() {
            // Downstream closed the pipe; count it and stop quietly
            // like `usim run | head` does.
            disconnect(worker);
            break;
        }
        if worker.shared.is_shutdown() {
            break;
        }
    }
}

/// Run the serving loop for `reader`/`writer` until EOF or a shutdown
/// request (the stdin mode of `usim serve`, and the serial baseline
/// for tests).
pub fn serve_stream<R: BufRead, W: Write>(server: &mut Server, reader: R, writer: W) {
    stream_loop(&mut server.worker, reader, writer);
}

/// The concurrent socket accept loop: one serving thread per client
/// connection, bounded by [`ServeShared::workers`] slots. Returns once
/// a shutdown request has been served and every worker has drained and
/// joined.
pub fn serve_socket(shared: &Arc<ServeShared>, path: &str) -> Result<(), String> {
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path).map_err(|e| format!("cannot bind {path}: {e}"))?;
    let workers = shared.workers;
    // Free worker slots (a stack) plus the condvar the acceptor waits
    // on when every slot is busy — this is the `--workers N` bound.
    let free: Arc<(Mutex<Vec<usize>>, Condvar)> =
        Arc::new((Mutex::new((0..workers).rev().collect()), Condvar::new()));
    // One registered read-half per live connection so shutdown can
    // unblock workers parked in `read_line`.
    let conns: Arc<Mutex<Vec<Option<UnixStream>>>> =
        Arc::new(Mutex::new((0..workers).map(|_| None).collect()));
    let mut slot_handles: Vec<Option<std::thread::JoinHandle<()>>> =
        (0..workers).map(|_| None).collect();
    for conn in listener.incoming() {
        if shared.is_shutdown() {
            break;
        }
        let conn = conn.map_err(|e| format!("accept failed: {e}"))?;
        if shared.is_shutdown() {
            // The wake-up connection a shutting-down worker makes to
            // unblock this accept loop lands here; drop it.
            break;
        }
        // Wait for a free worker slot (connections beyond the bound
        // queue in the listen backlog).
        let slot = {
            let (slots, cv) = &*free;
            let mut avail = lock(slots);
            loop {
                if shared.is_shutdown() {
                    break None;
                }
                if let Some(s) = avail.pop() {
                    break Some(s);
                }
                avail = cv
                    .wait(avail)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        let Some(slot) = slot else { break };
        // A freed slot means its previous thread is done; reap it.
        if let Some(h) = slot_handles[slot].take() {
            let _ = h.join();
        }
        let Ok(read_half) = conn.try_clone() else {
            shared.disconnects.fetch_add(1, Ordering::Relaxed);
            let (slots, cv) = &*free;
            lock(slots).push(slot);
            cv.notify_one();
            continue;
        };
        lock(&conns)[slot] = Some(read_half);
        let shared = Arc::clone(shared);
        let free = Arc::clone(&free);
        let conns = Arc::clone(&conns);
        let path = path.to_string();
        slot_handles[slot] = Some(std::thread::spawn(move || {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let mut worker = Worker::new(Arc::clone(&shared), slot);
                match conn.try_clone() {
                    Ok(rd) => {
                        stream_loop(&mut worker, std::io::BufReader::new(rd), &conn);
                    }
                    Err(_) => {
                        shared.disconnects.fetch_add(1, Ordering::Relaxed);
                    }
                }
                worker.release();
            }));
            if result.is_err() {
                shared.errors.fetch_add(1, Ordering::Relaxed);
            }
            lock(&conns)[slot] = None;
            if shared.is_shutdown() {
                // Drain: unblock every worker parked in read_line and
                // wake the acceptor so it can stop and join.
                for c in lock(&conns).iter().flatten() {
                    let _ = c.shutdown(Shutdown::Both);
                }
                let _ = UnixStream::connect(&path);
            }
            let (slots, cv) = &*free;
            lock(slots).push(slot);
            cv.notify_all();
        }));
    }
    // Stop accepting; drain whoever is still connected and join every
    // worker before the (single) summary prints.
    for c in lock(&conns).iter_mut() {
        if let Some(c) = c.take() {
            let _ = c.shutdown(Shutdown::Both);
        }
    }
    for h in slot_handles.iter_mut().filter_map(Option::take) {
        let _ = h.join();
    }
    let _ = std::fs::remove_file(path);
    Ok(())
}

/// Entry point for `usim serve`: dispatch on stdin/stdout or a Unix
/// socket, and print the final counter summary to stderr exactly once
/// on exit.
pub fn serve(o: &ServeOptions) -> Result<(), String> {
    let shared = Arc::new(ServeShared::new(o));
    match &o.socket {
        None => {
            // stdin is one stream: a single worker serves it.
            let mut server = Server::from_shared(Arc::clone(&shared));
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            serve_stream(&mut server, stdin.lock(), stdout.lock());
            server.release();
        }
        Some(path) => {
            eprintln!(
                "usim serve: listening on {path} ({} worker{}, {} cache shard{})",
                shared.workers,
                if shared.workers == 1 { "" } else { "s" },
                shared.programs.num_shards(),
                if shared.programs.num_shards() == 1 {
                    ""
                } else {
                    "s"
                },
            );
            serve_socket(&shared, path)?;
        }
    }
    eprintln!("{}", final_summary(&shared));
    Ok(())
}
