//! `usim serve` — a long-running batch/server mode for simulation
//! requests.
//!
//! The serving loop reads newline-delimited JSON requests from stdin
//! (or a Unix socket with `--socket PATH`) and writes one JSON response
//! per line:
//!
//! ```text
//! {"program": "li r1, 6\nli r2, 7\nmul r3, r1, r2\nhalt\n",
//!  "options": {"arch": "usi", "window": 8}}
//! → {"ok":true,"arch":"usi","window":8,"cluster":1,"halted":true,...}
//! ```
//!
//! Design-space exploration drives the same few programs through many
//! configuration points, so the loop is built to make the repeated
//! request the cheap one:
//!
//! * assembled programs are cached in an [`ProgramCache`] keyed by
//!   source content, so a repeated source skips the assembler;
//! * engines are pooled in an [`EnginePool`] keyed by exact
//!   [`ProcConfig`] equality and rewound in place
//!   ([`Processor::run_reusing`]), so a repeated configuration skips
//!   every per-run allocation;
//! * requests parse into reused [`String`] buffers and responses
//!   serialise into a reused line buffer, so the steady-state request
//!   loop — parse, cache hit, pool hit, simulate, respond — performs
//!   **zero heap allocations** (asserted by the counting-allocator
//!   probe in `tests/serve_alloc_probe.rs`).
//!
//! The JSON codec is hand-rolled like [`crate::sweep::JsonReport`]:
//! this workspace takes no serde dependency.
//!
//! Identical requests produce byte-identical responses (per-request
//! wall time is reported only when the request opts in with
//! `"timing": true`); cache effectiveness is observable through the
//! aggregate counters of a `{"cmd":"stats"}` request and the final
//! summary printed on shutdown.

use std::fmt::Write as _;
use std::io::{BufRead, Write};
use std::time::{Duration, Instant};

use crate::cli::{self, RunOptions, ServeOptions};
use ultrascalar::{EnginePool, ProcConfig, Processor, RunResult};
use ultrascalar_isa::ProgramCache;
use ultrascalar_memsys::NetworkKind;

/// What a request asks the server to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum Cmd {
    /// Simulate a program (the default when `cmd` is absent).
    #[default]
    Run,
    /// Report aggregate serving counters.
    Stats,
    /// Acknowledge and stop the serving loop.
    Shutdown,
}

/// One parsed request. Lives inside the [`Server`] and is rewound per
/// line so its string buffers are reused across requests.
#[derive(Debug, Default)]
struct Request {
    cmd: Cmd,
    id: String,
    has_id: bool,
    program: String,
    has_program: bool,
    program_path: String,
    has_program_path: bool,
    timing: bool,
    registers: bool,
    opts: RunOptions,
}

impl Request {
    fn reset(&mut self) {
        self.cmd = Cmd::Run;
        self.id.clear();
        self.has_id = false;
        self.program.clear();
        self.has_program = false;
        self.program_path.clear();
        self.has_program_path = false;
        self.timing = false;
        self.registers = false;
        // `RunOptions::default()` holds only plain data and an empty
        // (unallocated) path string, so this rewinds without touching
        // the allocator.
        self.opts = RunOptions::default();
    }
}

/// Aggregate serving counters, reported by `{"cmd":"stats"}` and in the
/// final summary line.
#[derive(Debug, Clone, Default)]
pub struct ServeCounters {
    /// Request lines handled (including malformed ones).
    pub requests: u64,
    /// Simulation runs completed.
    pub runs: u64,
    /// Requests answered with an error response.
    pub errors: u64,
    /// Total cycles simulated across all runs.
    pub cycles_simulated: u64,
    /// Total instructions committed across all runs.
    pub instructions_committed: u64,
    /// Runs in which the engine fell back to the scalar scan.
    pub packed_fallbacks: u64,
    /// Wall time spent handling requests (parse + simulate + respond).
    pub wall: Duration,
}

/// The serving state: program cache, engine pool, counters, and the
/// reused request/response buffers.
#[derive(Debug)]
pub struct Server {
    programs: ProgramCache,
    engines: EnginePool,
    counters: ServeCounters,
    req: Request,
    key: String,
    sval: String,
    file_src: String,
    line_out: String,
    shutdown: bool,
}

impl Server {
    /// Create a server with the given program-cache and engine-pool
    /// capacities.
    ///
    /// # Panics
    /// Panics if either capacity is zero.
    pub fn new(program_cache: usize, engines: usize) -> Self {
        Server {
            programs: ProgramCache::new(program_cache),
            engines: EnginePool::new(engines),
            counters: ServeCounters::default(),
            req: Request::default(),
            key: String::new(),
            sval: String::new(),
            file_src: String::new(),
            line_out: String::new(),
            shutdown: false,
        }
    }

    /// Aggregate counters so far.
    pub fn counters(&self) -> &ServeCounters {
        &self.counters
    }

    /// The program cache (for inspecting hit/miss counts).
    pub fn programs(&self) -> &ProgramCache {
        &self.programs
    }

    /// The engine pool (for inspecting hit/miss counts).
    pub fn engines(&self) -> &EnginePool {
        &self.engines
    }

    /// Has a shutdown request been handled?
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown
    }

    /// Handle one request line and return the response line (no
    /// trailing newline). Never fails: malformed requests produce an
    /// `{"ok":false,"error":…}` response.
    pub fn handle_line(&mut self, line: &str) -> &str {
        let started = Instant::now();
        self.counters.requests += 1;
        if let Err(e) = self.handle_inner(line) {
            self.counters.errors += 1;
            self.line_out.clear();
            self.line_out.push_str("{\"ok\":false,");
            if self.req.has_id {
                self.line_out.push_str("\"id\":\"");
                escape_into(&mut self.line_out, &self.req.id);
                self.line_out.push_str("\",");
            }
            self.line_out.push_str("\"error\":\"");
            escape_into(&mut self.line_out, &e);
            self.line_out.push_str("\"}");
        }
        self.counters.wall += started.elapsed();
        &self.line_out
    }

    fn handle_inner(&mut self, line: &str) -> Result<(), String> {
        let Server {
            programs,
            engines,
            counters,
            req,
            key,
            sval,
            file_src,
            line_out,
            shutdown,
        } = self;
        parse_request(line, req, key, sval)?;
        match req.cmd {
            Cmd::Stats => {
                line_out.clear();
                write_stats(line_out, counters, programs, engines);
                Ok(())
            }
            Cmd::Shutdown => {
                *shutdown = true;
                line_out.clear();
                line_out.push_str("{\"ok\":true,\"shutdown\":true}");
                Ok(())
            }
            Cmd::Run => {
                let src: &str = if req.has_program {
                    if req.has_program_path {
                        return Err("give either `program` or `program_path`, not both".into());
                    }
                    &req.program
                } else if req.has_program_path {
                    file_src.clear();
                    let bytes = std::fs::read(&req.program_path)
                        .map_err(|e| format!("cannot read {}: {e}", req.program_path))?;
                    let text = std::str::from_utf8(&bytes)
                        .map_err(|e| format!("{} is not UTF-8: {e}", req.program_path))?;
                    file_src.push_str(text);
                    file_src
                } else {
                    return Err("request needs a `program` or `program_path`".into());
                };
                let cfg = cli::build_config(&req.opts)?;
                let program = programs
                    .get_or_assemble(src, req.opts.regs)
                    .map_err(|e| e.to_string())?;
                let pooled = engines.acquire(&cfg);
                let run_started = Instant::now();
                pooled.engine.run_reusing(program, &mut pooled.result);
                let run_wall = run_started.elapsed();
                counters.runs += 1;
                counters.cycles_simulated += pooled.result.cycles;
                counters.instructions_committed += pooled.result.stats.committed;
                counters.packed_fallbacks += pooled.result.stats.packed_fallbacks;
                line_out.clear();
                let wall_us = req.timing.then_some(run_wall.as_micros() as u64);
                write_run(line_out, req, &cfg, &pooled.result, wall_us);
                Ok(())
            }
        }
    }

    /// The one-line human-readable summary printed on shutdown/EOF.
    pub fn final_stats_line(&self) -> String {
        let c = &self.counters;
        format!(
            "usim serve: {} requests ({} runs, {} errors), program cache {} hits / {} misses, \
             engine pool {} hits / {} misses, {} cycles simulated, {} instructions committed, \
             {} packed fallbacks, {:.3} s",
            c.requests,
            c.runs,
            c.errors,
            self.programs.hits(),
            self.programs.misses(),
            self.engines.hits(),
            self.engines.misses(),
            c.cycles_simulated,
            c.instructions_committed,
            c.packed_fallbacks,
            c.wall.as_secs_f64(),
        )
    }
}

/// Serialise a run response. Identical requests must produce
/// byte-identical responses, so per-request wall time appears only
/// when the request opted in with `"timing": true` (and `wall_us` is
/// `Some`).
fn write_run(
    out: &mut String,
    req: &Request,
    cfg: &ProcConfig,
    r: &RunResult,
    wall_us: Option<u64>,
) {
    out.push_str("{\"ok\":true,");
    if req.has_id {
        out.push_str("\"id\":\"");
        escape_into(out, &req.id);
        out.push_str("\",");
    }
    let arch = if cfg.cluster == 1 {
        "usi"
    } else if cfg.cluster == cfg.window {
        "usii"
    } else {
        "hybrid"
    };
    let _ = write!(
        out,
        "\"arch\":\"{arch}\",\"window\":{},\"cluster\":{},\"halted\":{},\
         \"cycles\":{},\"instructions\":{},\"ipc\":{:.4},\"branches\":{},\
         \"mispredictions\":{},\"flushed\":{},\"loads\":{},\"stores\":{},\
         \"store_forwards\":{},\"packed_fallbacks\":{}",
        cfg.window,
        cfg.cluster,
        r.halted,
        r.cycles,
        r.stats.committed,
        r.ipc(),
        r.stats.branches,
        r.stats.mispredictions,
        r.stats.flushed,
        r.stats.mem.loads,
        r.stats.mem.stores,
        r.stats.store_forwards,
        r.stats.packed_fallbacks,
    );
    if req.registers {
        out.push_str(",\"registers\":[");
        for (i, v) in r.regs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{v}");
        }
        out.push(']');
    }
    if let Some(us) = wall_us {
        let _ = write!(out, ",\"wall_us\":{us}");
    }
    out.push('}');
}

fn write_stats(out: &mut String, c: &ServeCounters, programs: &ProgramCache, engines: &EnginePool) {
    let _ = write!(
        out,
        "{{\"ok\":true,\"stats\":{{\"requests\":{},\"runs\":{},\"errors\":{},\
         \"program_cache_hits\":{},\"program_cache_misses\":{},\"programs_cached\":{},\
         \"engine_pool_hits\":{},\"engine_pool_misses\":{},\"engines_warm\":{},\
         \"cycles_simulated\":{},\"instructions_committed\":{},\"packed_fallbacks\":{},\
         \"wall_s\":{:.6}}}}}",
        c.requests,
        c.runs,
        c.errors,
        programs.hits(),
        programs.misses(),
        programs.len(),
        engines.hits(),
        engines.misses(),
        engines.len(),
        c.cycles_simulated,
        c.instructions_committed,
        c.packed_fallbacks,
        c.wall.as_secs_f64(),
    );
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// A byte cursor over one request line. All string values parse into
/// caller-owned buffers, so a well-formed request allocates nothing.
struct P<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> P<'a> {
    fn new(s: &'a str) -> Self {
        P {
            b: s.as_bytes(),
            i: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self
            .b
            .get(self.i)
            .is_some_and(|c| matches!(c, b' ' | b'\t' | b'\r' | b'\n'))
        {
            self.i += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, want: u8) -> Result<(), String> {
        self.skip_ws();
        match self.b.get(self.i) {
            Some(&c) if c == want => {
                self.i += 1;
                Ok(())
            }
            Some(&c) => Err(format!(
                "bad JSON: expected `{}` at byte {}, found `{}`",
                want as char, self.i, c as char
            )),
            None => Err(format!(
                "bad JSON: expected `{}` at byte {}, found end of line",
                want as char, self.i
            )),
        }
    }

    fn at_end(&mut self) -> bool {
        self.skip_ws();
        self.i >= self.b.len()
    }

    /// Parse a JSON string into `out` (cleared first), decoding all
    /// escapes including `\uXXXX` surrogate pairs.
    fn string_into(&mut self, out: &mut String) -> Result<(), String> {
        out.clear();
        self.eat(b'"')?;
        loop {
            let Some(&c) = self.b.get(self.i) else {
                return Err("bad JSON: unterminated string".into());
            };
            self.i += 1;
            match c {
                b'"' => return Ok(()),
                b'\\' => {
                    let Some(&e) = self.b.get(self.i) else {
                        return Err("bad JSON: unterminated escape".into());
                    };
                    self.i += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must
                                // follow with the low half.
                                if self.b.get(self.i) != Some(&b'\\')
                                    || self.b.get(self.i + 1) != Some(&b'u')
                                {
                                    return Err("bad JSON: lone high surrogate".into());
                                }
                                self.i += 2;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err("bad JSON: invalid low surrogate".into());
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            match char::from_u32(code) {
                                Some(ch) => out.push(ch),
                                None => return Err("bad JSON: invalid \\u escape".into()),
                            }
                        }
                        other => {
                            return Err(format!("bad JSON: unknown escape `\\{}`", other as char))
                        }
                    }
                }
                _ => {
                    // Copy the full UTF-8 sequence starting at c.
                    let start = self.i - 1;
                    while self.b.get(self.i).is_some_and(|&n| n & 0xC0 == 0x80) {
                        self.i += 1;
                    }
                    let s = std::str::from_utf8(&self.b[start..self.i])
                        .map_err(|_| "bad JSON: invalid UTF-8 in string".to_string())?;
                    out.push_str(s);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut v = 0u32;
        for _ in 0..4 {
            let Some(&c) = self.b.get(self.i) else {
                return Err("bad JSON: truncated \\u escape".into());
            };
            self.i += 1;
            v = v * 16
                + match c {
                    b'0'..=b'9' => (c - b'0') as u32,
                    b'a'..=b'f' => (c - b'a') as u32 + 10,
                    b'A'..=b'F' => (c - b'A') as u32 + 10,
                    _ => return Err("bad JSON: non-hex digit in \\u escape".into()),
                };
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<f64, String> {
        self.skip_ws();
        let start = self.i;
        while self
            .b
            .get(self.i)
            .is_some_and(|c| matches!(c, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .ok_or_else(|| format!("bad JSON: expected a number at byte {start}"))
    }

    fn boolean(&mut self) -> Result<bool, String> {
        self.skip_ws();
        if self.b[self.i..].starts_with(b"true") {
            self.i += 4;
            Ok(true)
        } else if self.b[self.i..].starts_with(b"false") {
            self.i += 5;
            Ok(false)
        } else {
            Err(format!("bad JSON: expected true/false at byte {}", self.i))
        }
    }
}

fn as_int(x: f64, what: &str) -> Result<u64, String> {
    if x >= 0.0 && x.fract() == 0.0 && x <= (1u64 << 53) as f64 {
        Ok(x as u64)
    } else {
        Err(format!("{what} must be a non-negative integer"))
    }
}

fn as_usize(x: f64, what: &str) -> Result<usize, String> {
    Ok(as_int(x, what)? as usize)
}

/// Parse one request line into `req` (rewound first). `key` and `sval`
/// are caller-owned scratch buffers so parsing is allocation-free.
fn parse_request(
    line: &str,
    req: &mut Request,
    key: &mut String,
    sval: &mut String,
) -> Result<(), String> {
    req.reset();
    let mut p = P::new(line);
    p.eat(b'{')?;
    if p.peek() == Some(b'}') {
        p.eat(b'}')?;
    } else {
        loop {
            p.string_into(key)?;
            p.eat(b':')?;
            match key.as_str() {
                "cmd" => {
                    p.string_into(sval)?;
                    req.cmd = match sval.as_str() {
                        "run" => Cmd::Run,
                        "stats" => Cmd::Stats,
                        "shutdown" => Cmd::Shutdown,
                        other => return Err(format!("unknown cmd `{other}` (run|stats|shutdown)")),
                    };
                }
                "id" => {
                    p.string_into(&mut req.id)?;
                    req.has_id = true;
                }
                "program" => {
                    p.string_into(&mut req.program)?;
                    req.has_program = true;
                }
                "program_path" => {
                    p.string_into(&mut req.program_path)?;
                    req.has_program_path = true;
                }
                "timing" => req.timing = p.boolean()?,
                "registers" => req.registers = p.boolean()?,
                "options" => parse_options(&mut p, &mut req.opts, key, sval)?,
                other => return Err(format!("unknown request field `{other}`")),
            }
            match p.peek() {
                Some(b',') => p.eat(b',')?,
                _ => break,
            }
        }
        p.eat(b'}')?;
    }
    if !p.at_end() {
        return Err("bad JSON: trailing characters after request object".into());
    }
    Ok(())
}

/// Parse the nested `options` object. Field names mirror the `usim run`
/// flags; values go through the same validation as the CLI parser.
fn parse_options(
    p: &mut P,
    o: &mut RunOptions,
    key: &mut String,
    sval: &mut String,
) -> Result<(), String> {
    p.eat(b'{')?;
    if p.peek() == Some(b'}') {
        return p.eat(b'}');
    }
    loop {
        p.string_into(key)?;
        p.eat(b':')?;
        match key.as_str() {
            "arch" => {
                p.string_into(sval)?;
                o.arch = cli::parse_arch(sval)?;
            }
            "predictor" => {
                p.string_into(sval)?;
                o.predictor = cli::parse_predictor(sval)?;
            }
            "window" => o.window = as_usize(p.number()?, "window")?,
            "cluster" => o.cluster = Some(as_usize(p.number()?, "cluster")?),
            "alus" => o.alus = Some(as_usize(p.number()?, "alus")?),
            "mem_exp" => o.mem_exp = p.number()?,
            "network" => {
                p.string_into(sval)?;
                o.network = match sval.as_str() {
                    "fattree" | "fat-tree" => NetworkKind::FatTree,
                    "butterfly" => NetworkKind::Butterfly,
                    other => return Err(format!("unknown network `{other}` (fattree|butterfly)")),
                };
            }
            "butterfly" => {
                if p.boolean()? {
                    o.network = NetworkKind::Butterfly;
                }
            }
            "renaming" => o.renaming = p.boolean()?,
            "cache" => o.cache = p.boolean()?,
            "fetch_width" => o.fetch_width = Some(as_usize(p.number()?, "fetch_width")?),
            "per_hop" => o.per_hop = Some(as_int(p.number()?, "per_hop")?),
            "regs" => o.regs = as_usize(p.number()?, "regs")?,
            "max_cycles" => o.max_cycles = as_int(p.number()?, "max_cycles")?,
            other => return Err(format!("unknown option `{other}`")),
        }
        match p.peek() {
            Some(b',') => p.eat(b',')?,
            _ => break,
        }
    }
    p.eat(b'}')
}

/// Run the serving loop for `reader`/`writer` until EOF or a shutdown
/// request.
pub fn serve_stream<R: BufRead, W: Write>(
    server: &mut Server,
    mut reader: R,
    mut writer: W,
) -> Result<(), String> {
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => return Err(format!("read error: {e}")),
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let resp = server.handle_line(trimmed);
        if writeln!(writer, "{resp}").is_err() {
            // Downstream closed the pipe; stop quietly like `usim run |
            // head` does.
            return Ok(());
        }
        if writer.flush().is_err() {
            return Ok(());
        }
        if server.shutdown_requested() {
            break;
        }
    }
    Ok(())
}

/// Entry point for `usim serve`: dispatch on stdin/stdout or a Unix
/// socket, and print the final counter summary to stderr on exit.
pub fn serve(o: &ServeOptions) -> Result<(), String> {
    let mut server = Server::new(o.program_cache, o.engines);
    match &o.socket {
        None => {
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            serve_stream(&mut server, stdin.lock(), stdout.lock())?;
        }
        Some(path) => {
            let _ = std::fs::remove_file(path);
            let listener = std::os::unix::net::UnixListener::bind(path)
                .map_err(|e| format!("cannot bind {path}: {e}"))?;
            eprintln!("usim serve: listening on {path}");
            for conn in listener.incoming() {
                let conn = conn.map_err(|e| format!("accept failed: {e}"))?;
                let reader = std::io::BufReader::new(
                    conn.try_clone()
                        .map_err(|e| format!("socket clone failed: {e}"))?,
                );
                serve_stream(&mut server, reader, &conn)?;
                if server.shutdown_requested() {
                    break;
                }
            }
            let _ = std::fs::remove_file(path);
        }
    }
    eprintln!("{}", server.final_stats_line());
    Ok(())
}
