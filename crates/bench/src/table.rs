//! Minimal fixed-width table printer for the experiment binaries.

/// A simple left-aligned text table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (short rows are padded with empty cells).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let mut r: Vec<String> = cells.into_iter().map(Into::into).collect();
        r.resize(self.header.len(), String::new());
        self.rows.push(r);
        self
    }

    /// Number of data rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns and a rule under the header.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.chars().count();
        }
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                width[i] = width[i].max(c.chars().count());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                line.push_str(&format!("{:<w$}", c, w = width[i]));
                if i + 1 < cols {
                    line.push_str("  ");
                }
            }
            line.trim_end().to_string() + "\n"
        };
        let mut out = fmt_row(&self.header);
        out.push_str(&format!(
            "{}\n",
            "-".repeat(width.iter().sum::<usize>() + 2 * (cols - 1))
        ));
        for r in &self.rows {
            out.push_str(&fmt_row(r));
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["alpha", "1"]);
        t.row(vec!["b", "12345"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with("---"));
        // Columns align: "value" starts at the same offset everywhere.
        let col = lines[0].find("value").unwrap();
        assert_eq!(lines[2].find('1'), Some(col));
    }

    #[test]
    fn short_rows_padded() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.row(vec!["x"]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        assert!(t.render().contains('x'));
    }
}
