//! Argument parsing and execution for the `usim` command-line driver.
//!
//! Hand-rolled parsing (no CLI dependency): `usim run prog.asm
//! --arch hybrid --window 32 --cluster 8 --predictor bimodal:64
//! --diagram`. The parser lives in the library so it is unit-testable;
//! the binary is a thin wrapper.

use ultrascalar::{
    render_station_occupancy, render_timing_diagram, ForwardModel, PredictorKind, ProcConfig,
    Processor, RunResult, Ultrascalar,
};
use ultrascalar_isa::{assemble, disassemble, read_binary, write_binary, Program};
use ultrascalar_memsys::{Bandwidth, CacheConfig, MemConfig, NetworkKind};

/// Which processor topology to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArchChoice {
    /// Ultrascalar I (`C = 1`).
    UsI,
    /// Ultrascalar II (`C = n`).
    UsII,
    /// Hybrid with an explicit cluster size.
    Hybrid,
}

/// Parsed `usim run` options.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Assembly source path.
    pub path: String,
    /// Topology.
    pub arch: ArchChoice,
    /// Window size `n`.
    pub window: usize,
    /// Cluster size (hybrid only; defaults to `max(1, n/4)`).
    pub cluster: Option<usize>,
    /// Branch predictor.
    pub predictor: PredictorKind,
    /// Shared-ALU pool.
    pub alus: Option<usize>,
    /// Memory bandwidth exponent `p` in `M(s) = s^p`.
    pub mem_exp: f64,
    /// Interconnect.
    pub network: NetworkKind,
    /// Memory renaming.
    pub renaming: bool,
    /// Distributed cluster caches.
    pub cache: bool,
    /// Fetch-width cap.
    pub fetch_width: Option<usize>,
    /// Pipelined forwarding per-hop cost.
    pub per_hop: Option<u64>,
    /// Logical register count the program is assembled for.
    pub regs: usize,
    /// Print the Figure 3 timing diagram.
    pub diagram: bool,
    /// Print the station-occupancy trace.
    pub occupancy: bool,
    /// Print final register values.
    pub show_regs: bool,
    /// Cycle budget.
    pub max_cycles: u64,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            path: String::new(),
            arch: ArchChoice::UsI,
            window: 16,
            cluster: None,
            predictor: PredictorKind::Bimodal(256),
            alus: None,
            mem_exp: 1.0,
            network: NetworkKind::FatTree,
            renaming: false,
            cache: false,
            fetch_width: None,
            per_hop: None,
            regs: 32,
            diagram: false,
            occupancy: false,
            show_regs: false,
            max_cycles: 50_000_000,
        }
    }
}

/// Parse an `--arch` value (shared by `usim run` and `usim serve`
/// request options).
pub fn parse_arch(v: &str) -> Result<ArchChoice, String> {
    match v {
        "usi" | "ultrascalar-i" | "i" => Ok(ArchChoice::UsI),
        "usii" | "ultrascalar-ii" | "ii" => Ok(ArchChoice::UsII),
        "hybrid" => Ok(ArchChoice::Hybrid),
        x => Err(format!("unknown arch `{x}` (usi|usii|hybrid)")),
    }
}

/// Parse a `--predictor` value (shared by `usim run` and `usim serve`
/// request options).
pub fn parse_predictor(v: &str) -> Result<PredictorKind, String> {
    match v {
        "perfect" => Ok(PredictorKind::Perfect),
        "nottaken" | "not-taken" => Ok(PredictorKind::NotTaken),
        "taken" => Ok(PredictorKind::Taken),
        "btfn" => Ok(PredictorKind::Btfn),
        other => match other.strip_prefix("bimodal:") {
            Some(k) => Ok(PredictorKind::Bimodal(
                k.parse().map_err(|_| "bad bimodal size".to_string())?,
            )),
            None => Err(format!("unknown predictor `{v}`")),
        },
    }
}

/// Parse `usim run` arguments (everything after the subcommand).
pub fn parse_run(args: &[String]) -> Result<RunOptions, String> {
    let mut o = RunOptions::default();
    let mut it = args.iter().peekable();
    let value = |it: &mut std::iter::Peekable<std::slice::Iter<String>>,
                 flag: &str|
     -> Result<String, String> {
        it.next()
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--arch" => o.arch = parse_arch(&value(&mut it, "--arch")?)?,
            "--window" | "-n" => {
                o.window = value(&mut it, "--window")?
                    .parse()
                    .map_err(|_| "bad --window".to_string())?
            }
            "--cluster" | "-c" => {
                o.cluster = Some(
                    value(&mut it, "--cluster")?
                        .parse()
                        .map_err(|_| "bad --cluster".to_string())?,
                )
            }
            "--predictor" => o.predictor = parse_predictor(&value(&mut it, "--predictor")?)?,
            "--alus" => {
                o.alus = Some(
                    value(&mut it, "--alus")?
                        .parse()
                        .map_err(|_| "bad --alus".to_string())?,
                )
            }
            "--mem-exp" => {
                o.mem_exp = value(&mut it, "--mem-exp")?
                    .parse()
                    .map_err(|_| "bad --mem-exp".to_string())?
            }
            "--butterfly" => o.network = NetworkKind::Butterfly,
            "--renaming" => o.renaming = true,
            "--cache" => o.cache = true,
            "--fetch-width" => {
                o.fetch_width = Some(
                    value(&mut it, "--fetch-width")?
                        .parse()
                        .map_err(|_| "bad --fetch-width".to_string())?,
                )
            }
            "--per-hop" => {
                o.per_hop = Some(
                    value(&mut it, "--per-hop")?
                        .parse()
                        .map_err(|_| "bad --per-hop".to_string())?,
                )
            }
            "--regs" => {
                o.regs = value(&mut it, "--regs")?
                    .parse()
                    .map_err(|_| "bad --regs".to_string())?
            }
            "--max-cycles" => {
                o.max_cycles = value(&mut it, "--max-cycles")?
                    .parse()
                    .map_err(|_| "bad --max-cycles".to_string())?
            }
            "--diagram" => o.diagram = true,
            "--occupancy" => o.occupancy = true,
            "--show-regs" => o.show_regs = true,
            flag if flag.starts_with("--") => return Err(format!("unknown flag `{flag}`")),
            path => {
                if o.path.is_empty() {
                    o.path = path.to_string();
                } else {
                    return Err(format!("unexpected positional argument `{path}`"));
                }
            }
        }
    }
    if o.path.is_empty() {
        return Err("missing assembly file".into());
    }
    Ok(o)
}

/// Parsed `usim asm` options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmOptions {
    /// Assembly source path.
    pub path: String,
    /// Logical register count the program is assembled for.
    pub regs: usize,
    /// Output `.ubin` path (`--emit`); listing mode when absent.
    pub emit: Option<String>,
}

/// Parse `usim asm` arguments (everything after the subcommand) with
/// the same strict error style as [`parse_run`]: a malformed `--regs`,
/// an unknown flag, or a second positional argument is an error, not a
/// silent fallback.
pub fn parse_asm(args: &[String]) -> Result<AsmOptions, String> {
    let mut o = AsmOptions {
        path: String::new(),
        regs: 32,
        emit: None,
    };
    let mut it = args.iter();
    let value = |it: &mut std::slice::Iter<String>, flag: &str| -> Result<String, String> {
        it.next()
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--regs" => {
                o.regs = value(&mut it, "--regs")?
                    .parse()
                    .map_err(|_| "bad --regs".to_string())?
            }
            "--emit" => o.emit = Some(value(&mut it, "--emit")?),
            flag if flag.starts_with("--") => return Err(format!("unknown flag `{flag}`")),
            path => {
                if o.path.is_empty() {
                    o.path = path.to_string();
                } else {
                    return Err(format!("unexpected positional argument `{path}`"));
                }
            }
        }
    }
    if o.path.is_empty() {
        return Err("missing assembly file".into());
    }
    Ok(o)
}

/// Parsed `usim serve` options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeOptions {
    /// Unix socket path to listen on; serve stdin→stdout when absent.
    pub socket: Option<String>,
    /// Assembled-program cache capacity (total across shards).
    pub program_cache: usize,
    /// Warm-engine pool capacity (total across shards).
    pub engines: usize,
    /// Maximum simultaneous serving threads in socket mode.
    pub workers: usize,
    /// Cache/pool shard count; 0 means one shard per worker.
    pub shards: usize,
}

/// The default `--workers`: the host's available parallelism (1 when
/// the host won't say).
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            socket: None,
            program_cache: 64,
            engines: 8,
            workers: default_workers(),
            shards: 0,
        }
    }
}

/// Parse `usim serve` arguments (everything after the subcommand).
pub fn parse_serve(args: &[String]) -> Result<ServeOptions, String> {
    let mut o = ServeOptions::default();
    let mut it = args.iter();
    let value = |it: &mut std::slice::Iter<String>, flag: &str| -> Result<String, String> {
        it.next()
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--socket" => o.socket = Some(value(&mut it, "--socket")?),
            "--program-cache" => {
                o.program_cache = value(&mut it, "--program-cache")?
                    .parse()
                    .map_err(|_| "bad --program-cache".to_string())?
            }
            "--engines" => {
                o.engines = value(&mut it, "--engines")?
                    .parse()
                    .map_err(|_| "bad --engines".to_string())?
            }
            "--workers" => {
                o.workers = value(&mut it, "--workers")?
                    .parse()
                    .map_err(|_| "bad --workers".to_string())?;
                if o.workers == 0 {
                    return Err("--workers must be at least 1".into());
                }
            }
            "--shards" => {
                o.shards = value(&mut it, "--shards")?
                    .parse()
                    .map_err(|_| "bad --shards".to_string())?;
                if o.shards == 0 {
                    return Err("--shards must be at least 1".into());
                }
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag `{flag}`")),
            extra => return Err(format!("unexpected positional argument `{extra}`")),
        }
    }
    if o.program_cache == 0 {
        return Err("--program-cache must be at least 1".into());
    }
    if o.engines == 0 {
        return Err("--engines must be at least 1".into());
    }
    Ok(o)
}

/// Build the processor configuration from parsed options.
pub fn build_config(o: &RunOptions) -> Result<ProcConfig, String> {
    if !(0.0..=1.0).contains(&o.mem_exp) {
        return Err(format!(
            "--mem-exp {} out of range (the bandwidth exponent p in M(s) = s^p \
             must lie within [0, 1])",
            o.mem_exp
        ));
    }
    let cluster = match o.arch {
        ArchChoice::UsI => 1,
        ArchChoice::UsII => o.window,
        ArchChoice::Hybrid => o.cluster.unwrap_or((o.window / 4).max(1)),
    };
    let mut mem = MemConfig {
        n_leaves: o.window,
        bandwidth: Bandwidth::new(1.0, o.mem_exp),
        banks: (o.window / 2).max(1),
        bank_occupancy: 1,
        hop_latency: 1,
        base_latency: 0,
        words: 1 << 16,
        network: o.network,
        cluster_cache: None,
    };
    if o.cache {
        mem = mem.with_cluster_cache(CacheConfig::small((o.window / cluster).max(1)));
    }
    let mut cfg = ProcConfig {
        window: o.window,
        cluster,
        mem,
        max_cycles: o.max_cycles,
        ..ProcConfig::ultrascalar_i(o.window)
    }
    .with_predictor(o.predictor);
    if let Some(k) = o.alus {
        cfg = cfg.with_shared_alus(k);
    }
    if o.renaming {
        cfg = cfg.with_memory_renaming();
    }
    if let Some(f) = o.fetch_width {
        cfg = cfg.with_fetch_width(f);
    }
    if let Some(h) = o.per_hop {
        cfg = cfg.with_forwarding(ForwardModel::Pipelined { per_hop: h });
    }
    cfg.validate()?;
    Ok(cfg)
}

/// Load a program from raw file bytes: `.ubin` object files are
/// decoded, anything else is treated as assembly text.
pub fn load_program(path: &str, bytes: &[u8], regs: usize) -> Result<Program, String> {
    if path.ends_with(".ubin") {
        read_binary(bytes).map_err(|e| e.to_string())
    } else {
        let src = std::str::from_utf8(bytes).map_err(|e| format!("not UTF-8: {e}"))?;
        assemble(src, regs).map_err(|e| e.to_string())
    }
}

/// Serialise a program to `.ubin` bytes (for `usim asm --emit`).
pub fn emit_binary(source: &str, regs: usize) -> Result<Vec<u8>, String> {
    let program = assemble(source, regs).map_err(|e| e.to_string())?;
    Ok(write_binary(&program))
}

/// Execute a parsed run against assembly source text; returns the
/// report that the binary prints.
pub fn execute_run(o: &RunOptions, source: &str) -> Result<(RunResult, String), String> {
    let program: Program = assemble(source, o.regs).map_err(|e| e.to_string())?;
    execute_program(o, &program)
}

/// Execute a parsed run against an already-loaded program.
pub fn execute_program(o: &RunOptions, program: &Program) -> Result<(RunResult, String), String> {
    let cfg = build_config(o)?;
    let mut proc = Ultrascalar::new(cfg);
    let name = proc.name();
    let r = proc.run(program);
    let mut out = String::new();
    out.push_str(&format!(
        "{name}: {} — {} instructions in {} cycles (IPC {:.2})\n",
        if r.halted {
            "halted"
        } else {
            "CYCLE BUDGET EXPIRED"
        },
        r.stats.committed,
        r.cycles,
        r.ipc()
    ));
    out.push_str(&format!(
        "branches {} (mispredicted {}), flushed {}, mean occupancy {:.1}\n",
        r.stats.branches,
        r.stats.mispredictions,
        r.stats.flushed,
        r.stats.mean_occupancy()
    ));
    out.push_str(&format!(
        "memory: {} loads, {} stores, {} link rejections, {} bank conflicts",
        r.stats.mem.loads,
        r.stats.mem.stores,
        r.stats.mem.link_rejections,
        r.stats.mem.bank_conflicts
    ));
    if r.stats.mem.cache_hits + r.stats.mem.cache_misses > 0 {
        out.push_str(&format!(
            ", cache {}/{} hits",
            r.stats.mem.cache_hits,
            r.stats.mem.cache_hits + r.stats.mem.cache_misses
        ));
    }
    if r.stats.store_forwards > 0 {
        out.push_str(&format!(", {} store→load forwards", r.stats.store_forwards));
    }
    out.push('\n');
    if r.stats.packed_fallbacks > 0 && fallback_warning_is_first(proc.config()) {
        out.push_str(
            "warning: packed flag networks requested but inactive — the engine fell back \
             to the scalar scan (register file wider than the packed lane words); \
             repeated runs with this configuration warn once, stats stay authoritative\n",
        );
    }
    // Forced-SWAR dispatch is worth one line per configuration: a run
    // whose numbers were taken with the vector substrate pinned off
    // should say so (results are bit-identical either way, only
    // throughput changes). Only noteworthy when the host actually has
    // a faster level to give up.
    if (proc.config().force_swar || ultrascalar_prefix::force_swar_active())
        && ultrascalar_prefix::detected_simd_level() != "swar"
        && warning_is_first("forced-swar", proc.config())
    {
        out.push_str(&format!(
            "note: SIMD dispatch pinned to the portable SWAR substrate (host supports {}) \
             — via USIM_FORCE_SWAR or the force_swar config flag\n",
            ultrascalar_prefix::detected_simd_level()
        ));
    }
    if o.show_regs {
        out.push_str("registers:\n");
        for (i, v) in r.regs.iter().enumerate() {
            if *v != 0 {
                out.push_str(&format!("  r{i} = {v} ({v:#x})\n"));
            }
        }
    }
    if o.diagram {
        out.push('\n');
        out.push_str(&render_timing_diagram(&r.timings));
    }
    if o.occupancy {
        out.push('\n');
        out.push_str(&render_station_occupancy(&r.timings, o.window));
    }
    Ok((r, out))
}

/// True the first time the (`kind`, `cfg`) pair is seen by the
/// warn-once registry, false on every repeat: a client issuing
/// thousands of runs under one configuration used to get one stderr
/// line per run. Process-global and a linear scan — distinct
/// configurations per process are few, and the stats counters stay
/// authoritative regardless. Warning kinds are independent keys, so a
/// packed-fallback warning never suppresses a forced-SWAR note for the
/// same configuration (or vice versa).
pub(crate) fn warning_is_first(kind: &'static str, cfg: &ProcConfig) -> bool {
    static SEEN: std::sync::OnceLock<std::sync::Mutex<Vec<(&'static str, ProcConfig)>>> =
        std::sync::OnceLock::new();
    let mut seen = SEEN
        .get_or_init(|| std::sync::Mutex::new(Vec::new()))
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if seen.iter().any(|(k, c)| *k == kind && c == cfg) {
        return false;
    }
    seen.push((kind, cfg.clone()));
    true
}

/// The packed-fallback warning's registry key (see [`warning_is_first`]).
pub(crate) fn fallback_warning_is_first(cfg: &ProcConfig) -> bool {
    warning_is_first("packed-fallback", cfg)
}

/// `usim asm`: assemble and list a program.
pub fn execute_asm(source: &str, regs: usize) -> Result<String, String> {
    let program = assemble(source, regs).map_err(|e| e.to_string())?;
    let mut out = String::new();
    for (i, instr) in program.instrs.iter().enumerate() {
        out.push_str(&format!(
            "{i:>4}: {:016x}  {}\n",
            ultrascalar_isa::encode(instr),
            disassemble(instr)
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parse_defaults() {
        let o = parse_run(&args("prog.asm")).unwrap();
        assert_eq!(o.path, "prog.asm");
        assert_eq!(o.arch, ArchChoice::UsI);
        assert_eq!(o.window, 16);
    }

    #[test]
    fn parse_full_flag_set() {
        let o = parse_run(&args(
            "k.asm --arch hybrid --window 32 --cluster 8 --predictor bimodal:64 \
             --alus 4 --mem-exp 0.5 --butterfly --renaming --cache \
             --fetch-width 8 --per-hop 1 --regs 16 --diagram --occupancy \
             --show-regs --max-cycles 1000",
        ))
        .unwrap();
        assert_eq!(o.arch, ArchChoice::Hybrid);
        assert_eq!(o.window, 32);
        assert_eq!(o.cluster, Some(8));
        assert_eq!(o.predictor, PredictorKind::Bimodal(64));
        assert_eq!(o.alus, Some(4));
        assert_eq!(o.mem_exp, 0.5);
        assert_eq!(o.network, NetworkKind::Butterfly);
        assert!(o.renaming && o.cache && o.diagram && o.occupancy && o.show_regs);
        assert_eq!(o.fetch_width, Some(8));
        assert_eq!(o.per_hop, Some(1));
        assert_eq!(o.regs, 16);
        assert_eq!(o.max_cycles, 1000);
    }

    #[test]
    fn parse_errors() {
        assert!(parse_run(&args("")).is_err());
        assert!(parse_run(&args("a.asm --arch quantum")).is_err());
        assert!(parse_run(&args("a.asm --window")).is_err());
        assert!(parse_run(&args("a.asm --bogus")).is_err());
        assert!(parse_run(&args("a.asm b.asm")).is_err());
        assert!(parse_run(&args("a.asm --predictor bimodal:x")).is_err());
    }

    #[test]
    fn parse_asm_defaults_and_flags() {
        let o = parse_asm(&args("prog.asm")).unwrap();
        assert_eq!(o.path, "prog.asm");
        assert_eq!(o.regs, 32);
        assert_eq!(o.emit, None);
        let o = parse_asm(&args("prog.asm --regs 64 --emit out.ubin")).unwrap();
        assert_eq!(o.regs, 64);
        assert_eq!(o.emit.as_deref(), Some("out.ubin"));
    }

    #[test]
    fn parse_asm_rejects_bad_input() {
        // Malformed --regs used to fall back silently to 32.
        assert!(parse_asm(&args("prog.asm --regs abc")).is_err());
        assert!(parse_asm(&args("prog.asm --regs")).is_err());
        // Unknown flags used to be swallowed as the positional path.
        assert!(parse_asm(&args("prog.asm --bogus")).is_err());
        // A second positional used to replace the first silently.
        assert!(parse_asm(&args("a.asm b.asm")).is_err());
        assert!(parse_asm(&args("")).is_err());
        assert!(parse_asm(&args("prog.asm --emit")).is_err());
    }

    #[test]
    fn parse_serve_defaults_and_flags() {
        let o = parse_serve(&args("")).unwrap();
        assert_eq!(o, ServeOptions::default());
        assert_eq!(o.workers, default_workers());
        assert_eq!(o.shards, 0, "shards default to auto (per worker)");
        let o = parse_serve(&args(
            "--socket /tmp/u.sock --program-cache 4 --engines 2 --workers 3 --shards 2",
        ))
        .unwrap();
        assert_eq!(o.socket.as_deref(), Some("/tmp/u.sock"));
        assert_eq!((o.program_cache, o.engines), (4, 2));
        assert_eq!((o.workers, o.shards), (3, 2));
    }

    #[test]
    fn parse_serve_rejects_bad_input() {
        assert!(parse_serve(&args("--bogus")).is_err());
        assert!(parse_serve(&args("stray.asm")).is_err());
        assert!(parse_serve(&args("--program-cache 0")).is_err());
        assert!(parse_serve(&args("--engines 0")).is_err());
        assert!(parse_serve(&args("--engines x")).is_err());
        assert!(parse_serve(&args("--workers 0")).is_err());
        assert!(parse_serve(&args("--workers -1")).is_err());
        assert!(parse_serve(&args("--shards 0")).is_err());
        assert!(parse_serve(&args("--shards x")).is_err());
    }

    #[test]
    fn build_config_rejects_out_of_range_mem_exp() {
        let mut o = parse_run(&args("a.asm")).unwrap();
        for bad in [-0.1, 1.5, f64::NAN] {
            o.mem_exp = bad;
            let err = build_config(&o).unwrap_err();
            assert!(err.contains("[0, 1]"), "error names the range: {err}");
        }
        o.mem_exp = 1.0;
        assert!(build_config(&o).is_ok());
        o.mem_exp = 0.0;
        assert!(build_config(&o).is_ok());
    }

    #[test]
    fn build_config_maps_arch() {
        let mut o = parse_run(&args("a.asm --arch usii --window 8")).unwrap();
        assert_eq!(build_config(&o).unwrap().cluster, 8);
        o.arch = ArchChoice::UsI;
        assert_eq!(build_config(&o).unwrap().cluster, 1);
        o.arch = ArchChoice::Hybrid;
        o.cluster = None;
        assert_eq!(build_config(&o).unwrap().cluster, 2);
    }

    #[test]
    fn build_config_rejects_bad_cluster() {
        let o = parse_run(&args("a.asm --arch hybrid --window 8 --cluster 3")).unwrap();
        assert!(build_config(&o).is_err());
    }

    #[test]
    fn execute_run_end_to_end() {
        let o = parse_run(&args("mem.asm --window 8 --show-regs --diagram")).unwrap();
        let src = "
            li r1, 6
            li r2, 7
            mul r3, r1, r2
            halt
        ";
        let (r, report) = execute_run(&o, src).unwrap();
        assert!(r.halted);
        assert_eq!(r.regs[3], 42);
        assert!(report.contains("IPC"));
        assert!(report.contains("r3 = 42"));
        assert!(report.contains("mul"));
    }

    #[test]
    fn execute_run_with_every_feature() {
        let o = parse_run(&args(
            "k.asm --arch hybrid --window 8 --cluster 4 --alus 2 --renaming \
             --cache --fetch-width 4 --per-hop 1 --mem-exp 0.5 --butterfly",
        ))
        .unwrap();
        let src = "
            li r1, 3
            li r2, 50
            sw r2, (r1)
            lw r3, (r1)
            addi r3, r3, 1
            halt
        ";
        let (r, _) = execute_run(&o, src).unwrap();
        assert!(r.halted);
        assert_eq!(r.regs[3], 51);
    }

    #[test]
    fn packed_fallback_warning_stays_quiet_and_dedups() {
        let src = "
            li r1, 6
            li r2, 7
            mul r3, r1, r2
            halt
        ";
        // Pipelined forwarding now rides the hop-banded readiness
        // words: no fallback, no warning.
        let o = parse_run(&args("k.asm --window 8 --per-hop 1")).unwrap();
        let (r, report) = execute_run(&o, src).unwrap();
        assert_eq!(r.stats.packed_fallbacks, 0);
        assert!(!report.contains("warning"));
        // Wide register files stay packed too: 128 registers, clean.
        let o = parse_run(&args("k.asm --window 8 --regs 128")).unwrap();
        let (r, report) = execute_run(&o, src).unwrap();
        assert_eq!(r.stats.packed_fallbacks, 0);
        assert!(!report.contains("warning"));
        // The warning registry itself de-duplicates per distinct
        // configuration: first sighting prints, repeats stay silent,
        // a different configuration prints again.
        let a = ProcConfig::ultrascalar_i(2).with_fetch_width(1);
        let b = ProcConfig::ultrascalar_i(2).with_fetch_width(2);
        assert!(fallback_warning_is_first(&a));
        assert!(!fallback_warning_is_first(&a));
        assert!(fallback_warning_is_first(&b));
        assert!(!fallback_warning_is_first(&a.clone()));
    }

    #[test]
    fn execute_asm_lists_encodings() {
        let out = execute_asm("li r1, 5\nhalt", 8).unwrap();
        assert!(out.contains("li   r1, 5"));
        assert!(out.contains("halt"));
        assert_eq!(out.lines().count(), 2);
    }

    #[test]
    fn bad_assembly_is_reported() {
        let o = parse_run(&args("x.asm")).unwrap();
        assert!(execute_run(&o, "frobnicate r1").is_err());
    }
}
