//! The paper's Figure 11 as executable data: expected asymptotic
//! exponents per architecture × bandwidth regime, and the measured
//! exponents obtained by sweeping `n` through the layout models.
//!
//! Fits are in `n` at fixed `L` (the paper's table is parameterised the
//! same way); `Θ(log …)` entries are checked as near-zero fitted
//! exponents, and polylog factors widen the tolerance of polynomial
//! entries slightly.

use ultrascalar_memsys::{bandwidth::Regime, Bandwidth};
use ultrascalar_vlsi::metrics::ArchParams;
use ultrascalar_vlsi::{fit, hybrid, usi, usii, Tech};

/// The four architecture columns of Figure 11.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arch {
    /// Ultrascalar I (CSPP-tree datapath, H-tree layout).
    UsI,
    /// Ultrascalar II with linear gate delay (Figure 7 grid).
    UsIILinear,
    /// Ultrascalar II with log gate delay (Figure 8 mesh-of-trees).
    UsIILog,
    /// Hybrid with linear-gate clusters of size `Θ(L)`.
    Hybrid,
}

impl Arch {
    /// All columns, in the paper's order.
    pub const ALL: [Arch; 4] = [Arch::UsI, Arch::UsIILinear, Arch::UsIILog, Arch::Hybrid];

    /// Column label as printed in Figure 11.
    pub fn label(&self) -> &'static str {
        match self {
            Arch::UsI => "Ultrascalar I",
            Arch::UsIILinear => "Ultrascalar II (linear gates)",
            Arch::UsIILog => "Ultrascalar II (log gates)",
            Arch::Hybrid => "Hybrid (linear-gate clusters)",
        }
    }
}

/// An expected asymptotic growth rate in `n`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Expo {
    /// Polynomial `Θ(n^p)` (possibly with polylog factors).
    Power(f64),
    /// Polylogarithmic — a power-law fit must come out near zero.
    Log,
}

impl Expo {
    /// Does a measured exponent match this claim?
    pub fn matches(&self, measured: f64) -> bool {
        match *self {
            Expo::Power(p) => (measured - p).abs() < 0.16,
            Expo::Log => measured.abs() < 0.25,
        }
    }

    /// Render for the comparison table.
    pub fn describe(&self) -> String {
        match *self {
            Expo::Power(p) => format!("n^{p:.2}"),
            Expo::Log => "polylog".to_string(),
        }
    }
}

/// The four rows of one Figure 11 cell group.
#[derive(Debug, Clone, Copy)]
pub struct ExpectedExponents {
    /// Gate delay growth.
    pub gate: Expo,
    /// Wire delay growth.
    pub wire: Expo,
    /// Total delay growth.
    pub total: Expo,
    /// Area growth.
    pub area: Expo,
}

/// The paper's Figure 11 claims, reduced to growth exponents in `n` at
/// fixed `L`.
pub fn expected(arch: Arch, regime: Regime) -> ExpectedExponents {
    use Expo::{Log, Power};
    let bandwidth_bound = matches!(regime, Regime::AboveSqrt);
    match arch {
        // Gate Θ(log n); wire Θ(√n·L) (+ M(n) above the knife edge);
        // area Θ(nL²) (+ M² above).
        Arch::UsI => ExpectedExponents {
            gate: Log,
            wire: Power(if bandwidth_bound { 1.0 } else { 0.5 }),
            total: Power(if bandwidth_bound { 1.0 } else { 0.5 }),
            area: Power(if bandwidth_bound { 2.0 } else { 1.0 }),
        },
        // Θ(n + L) everywhere; area Θ((n + L)²). Bandwidth-independent.
        Arch::UsIILinear => ExpectedExponents {
            gate: Power(1.0),
            wire: Power(1.0),
            total: Power(1.0),
            area: Power(2.0),
        },
        // Gate Θ(log(n + L)); wire Θ((n + L)·log(n + L)).
        Arch::UsIILog => ExpectedExponents {
            gate: Log,
            wire: Power(1.0),
            total: Power(1.0),
            area: Power(2.0),
        },
        // Gate Θ(L + log n); wire Θ(√(nL)) (+ M(n)); area Θ(nL) (+ M²).
        Arch::Hybrid => ExpectedExponents {
            gate: Log,
            wire: Power(if bandwidth_bound { 1.0 } else { 0.5 }),
            total: Power(if bandwidth_bound { 1.0 } else { 0.5 }),
            area: Power(if bandwidth_bound { 2.0 } else { 1.0 }),
        },
    }
}

/// Fitted growth exponents of one architecture over an `n` sweep.
#[derive(Debug, Clone, Copy)]
pub struct MeasuredExponents {
    /// Gate-delay exponent.
    pub gate: f64,
    /// Wire-delay exponent.
    pub wire: f64,
    /// Total-delay exponent.
    pub total: f64,
    /// Area exponent.
    pub area: f64,
}

/// Evaluate an architecture's metrics at one parameter point.
pub fn metrics_of(arch: Arch, p: &ArchParams, tech: &Tech) -> ultrascalar_vlsi::Metrics {
    match arch {
        Arch::UsI => usi::metrics(p, tech),
        Arch::UsIILinear => usii::metrics_linear(p, tech),
        Arch::UsIILog => usii::metrics_log(p, tech),
        Arch::Hybrid => hybrid::metrics(p, tech),
    }
}

/// Sweep `n = 4^4 … 4^10` at fixed `l` and fit the tail exponents.
pub fn measured_exponents(arch: Arch, mem: Bandwidth, l: usize, tech: &Tech) -> MeasuredExponents {
    let sweep: Vec<(f64, ultrascalar_vlsi::Metrics)> = (4..=10u32)
        .map(|k| {
            let n = 4usize.pow(k);
            let p = ArchParams {
                n,
                l,
                bits: 32,
                mem,
            };
            (n as f64, metrics_of(arch, &p, tech))
        })
        .collect();
    let tail = 4;
    let fit_of = |f: &dyn Fn(&ultrascalar_vlsi::Metrics) -> f64| {
        let pts: Vec<(f64, f64)> = sweep.iter().map(|(n, m)| (*n, f(m))).collect();
        fit::fit_exponent_tail(&pts, tail).exponent
    };
    MeasuredExponents {
        gate: fit_of(&|m| m.gate_delay),
        wire: fit_of(&|m| m.wire_um),
        total: fit_of(&|m| m.total_delay_ps(tech)),
        area: fit_of(&|m| m.area_um2),
    }
}

/// The bandwidth instance used for each regime row of the table.
pub fn regime_bandwidth(regime: Regime) -> Bandwidth {
    match regime {
        Regime::BelowSqrt => Bandwidth::sublinear_sqrt(0.25),
        Regime::Sqrt => Bandwidth::sqrt(),
        Regime::AboveSqrt => Bandwidth::full(),
    }
}

/// All three regime rows, in the paper's order.
pub const REGIMES: [Regime; 3] = [Regime::BelowSqrt, Regime::Sqrt, Regime::AboveSqrt];

#[cfg(test)]
mod tests {
    use super::*;

    /// The central reproduction check for Figure 11: every measured
    /// exponent matches the paper's Θ-claim, for every architecture and
    /// every bandwidth regime.
    #[test]
    fn every_cell_of_figure11_matches() {
        let tech = Tech::cmos_035();
        for regime in REGIMES {
            let mem = regime_bandwidth(regime);
            for arch in Arch::ALL {
                let want = expected(arch, regime);
                let got = measured_exponents(arch, mem, 32, &tech);
                assert!(
                    want.gate.matches(got.gate),
                    "{:?}/{regime:?} gate: want {} got {:.3}",
                    arch,
                    want.gate.describe(),
                    got.gate
                );
                assert!(
                    want.wire.matches(got.wire),
                    "{:?}/{regime:?} wire: want {} got {:.3}",
                    arch,
                    want.wire.describe(),
                    got.wire
                );
                assert!(
                    want.total.matches(got.total),
                    "{:?}/{regime:?} total: want {} got {:.3}",
                    arch,
                    want.total.describe(),
                    got.total
                );
                assert!(
                    want.area.matches(got.area),
                    "{:?}/{regime:?} area: want {} got {:.3}",
                    arch,
                    want.area.describe(),
                    got.area
                );
            }
        }
    }

    #[test]
    fn expo_matching() {
        assert!(Expo::Power(0.5).matches(0.52));
        assert!(!Expo::Power(0.5).matches(0.8));
        assert!(Expo::Log.matches(0.1));
        assert!(!Expo::Log.matches(0.5));
    }
}
