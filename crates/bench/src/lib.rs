//! Experiment harness: shared table formatting, parameter sweeps and
//! the expected-exponent data for the paper's Figure 11.
//!
//! Each table/figure of the paper has a binary in `src/bin/` that
//! regenerates it (see DESIGN.md's per-experiment index); this library
//! holds the pieces they share so the binaries stay declarative.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod cli;
pub mod fig11;
pub mod kernels;
pub mod serve;
pub mod sweep;
pub mod table;

pub use fig11::{expected, measured_exponents, Arch, ExpectedExponents, MeasuredExponents};
pub use serve::Server;
pub use sweep::{parallel_map, parallel_map_timed, parallel_map_with, JsonReport};
pub use table::Table;
