//! Work-stealing parallel sweep harness for the experiment binaries.
//!
//! Every experiment in this crate is a sweep: the same measurement
//! evaluated at many independent parameter points (window sizes ×
//! kernels, architectures × bandwidth regimes, ALU-pool sizes, …).
//! [`parallel_map`] runs those points concurrently on `std::thread`
//! scoped threads with a shared atomic work index — idle workers steal
//! the next unclaimed point, so uneven point costs (a 256-wide window
//! simulates far slower than a 16-wide one) still load-balance.
//!
//! Results are returned **in input order** regardless of completion
//! order, so a binary that computes all its rows through the harness
//! and then prints sequentially produces byte-identical output to a
//! serial run.
//!
//! [`JsonReport`] is the machine-readable side: each binary accepts a
//! `--json` flag and dumps per-point wall time and simulation
//! throughput to `BENCH_engine.json` (hand-rolled serialisation — this
//! workspace takes no serde dependency).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use ultrascalar::{LaneBatchEngine, LaneBatchStats, ProcConfig, RunResult, MAX_LANES};
use ultrascalar_isa::Program;

/// Evaluate `f` at every item, in parallel, returning results in input
/// order.
///
/// Scheduling is work-stealing over a shared atomic index: each worker
/// repeatedly claims the next unprocessed item until none remain.
/// Workers buffer `(index, result)` pairs locally and the caller's
/// thread merges them after the scope joins, so no locks are held
/// during measurement and no `unsafe` is needed for the slot writes.
///
/// # Panics
/// Propagates a panic from any worker (the sweep is deterministic, so
/// a panicking point would panic serially too).
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map_with(items, || (), |(), t| f(t))
}

/// Like [`parallel_map`], but each worker carries mutable state built
/// once by `init` and threaded through every point it claims.
///
/// This is how sweeps hoist per-point setup out of the measurement
/// loop: a worker's state holds warm engines ([`ultrascalar::EnginePool`])
/// or resettable memory systems, so each point rewinds existing
/// structures instead of reallocating them. Results are still returned
/// in input order, and a serial fallback (one worker, one state) keeps
/// output byte-identical on single-CPU hosts.
///
/// # Panics
/// Propagates a panic from any worker (the sweep is deterministic, so
/// a panicking point would panic serially too).
pub fn parallel_map_with<T, S, R, I, F>(items: &[T], init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> R + Sync,
{
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(items.len().max(1));
    if workers <= 1 {
        let mut state = init();
        return items.iter().map(|t| f(&mut state, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut state = init();
                    let mut done: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        done.push((i, f(&mut state, &items[i])));
                    }
                    done
                })
            })
            .collect();
        for h in handles {
            for (i, r) in h.join().expect("sweep worker panicked") {
                slots[i] = Some(r);
            }
        }
    });
    slots
        .into_iter()
        .map(|r| r.expect("work index covers every item"))
        .collect()
}

/// Like [`parallel_map`], but also measures each point's wall time.
pub fn parallel_map_timed<T, R, F>(items: &[T], f: F) -> Vec<(R, Duration)>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map(items, |t| {
        let start = Instant::now();
        let r = f(t);
        (r, start.elapsed())
    })
}

/// One measured sweep point for the JSON report.
#[derive(Debug, Clone)]
pub struct JsonPoint {
    /// Human-readable point label (e.g. `"usi/n=64/daxpy"`).
    pub label: String,
    /// Wall-clock seconds spent evaluating the point.
    pub wall_s: f64,
    /// Simulated cycles (steps), when the point ran the cycle engine.
    pub steps: Option<u64>,
    /// Independent bit-lanes evaluated per pass, when the point timed a
    /// packed SWAR substrate form (`64 · W` for word width `W`; absent
    /// for scalar/generic forms).
    pub lanes: Option<u64>,
}

impl JsonPoint {
    /// Simulation throughput in steps (cycles) per second, when known.
    pub fn steps_per_sec(&self) -> Option<f64> {
        let s = self.steps? as f64;
        (self.wall_s > 0.0).then(|| s / self.wall_s)
    }
}

/// Machine-readable sweep report, written as `BENCH_engine.json` when a
/// binary is invoked with `--json`.
#[derive(Debug, Clone)]
pub struct JsonReport {
    experiment: String,
    /// Host SIMD capability and the dispatch level actually in effect
    /// when the report was started — stamped into every artifact so
    /// numbers from different hosts (or forced-SWAR runs) are
    /// comparable at a glance.
    simd_detected: &'static str,
    simd_active: &'static str,
    points: Vec<JsonPoint>,
    summaries: Vec<(String, f64)>,
}

impl JsonReport {
    /// Start an empty report for the named experiment. The host's
    /// detected SIMD level and the currently active dispatch level are
    /// recorded at construction time.
    pub fn new(experiment: &str) -> Self {
        JsonReport {
            experiment: experiment.to_string(),
            simd_detected: ultrascalar_prefix::detected_simd_level(),
            simd_active: ultrascalar_prefix::active_simd_level(),
            points: Vec::new(),
            summaries: Vec::new(),
        }
    }

    /// Append one measured point.
    pub fn point(&mut self, label: &str, wall: Duration, steps: Option<u64>) -> &mut Self {
        self.points.push(JsonPoint {
            label: label.to_string(),
            wall_s: wall.as_secs_f64(),
            steps,
            lanes: None,
        });
        self
    }

    /// Append one measured point that evaluated `lanes` independent
    /// bit-lane networks per pass (the packed substrate forms).
    pub fn point_with_lanes(
        &mut self,
        label: &str,
        wall: Duration,
        steps: Option<u64>,
        lanes: u64,
    ) -> &mut Self {
        self.points.push(JsonPoint {
            label: label.to_string(),
            wall_s: wall.as_secs_f64(),
            steps,
            lanes: Some(lanes),
        });
        self
    }

    /// Append one named summary scalar (a per-kernel or overall
    /// aggregate, e.g. a geomean speedup), emitted in a dedicated
    /// `"summary"` object so report readers no longer recompute
    /// aggregates from the raw points.
    pub fn summary(&mut self, name: &str, value: f64) -> &mut Self {
        self.summaries.push((name.to_string(), value));
        self
    }

    /// Number of points recorded so far.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True iff no points are recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Render the report as a JSON document.
    pub fn render(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"experiment\": \"{}\",\n",
            escape(&self.experiment)
        ));
        out.push_str(&format!(
            "  \"simd_detected\": \"{}\",\n  \"simd_active\": \"{}\",\n",
            self.simd_detected, self.simd_active
        ));
        let total: f64 = self.points.iter().map(|p| p.wall_s).sum();
        out.push_str(&format!("  \"total_point_wall_s\": {:.6},\n", total));
        out.push_str("  \"points\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"label\": \"{}\", \"wall_s\": {:.6}",
                escape(&p.label),
                p.wall_s
            ));
            if let Some(steps) = p.steps {
                out.push_str(&format!(", \"steps\": {steps}"));
                if let Some(sps) = p.steps_per_sec() {
                    out.push_str(&format!(", \"steps_per_sec\": {sps:.1}"));
                }
            }
            if let Some(lanes) = p.lanes {
                out.push_str(&format!(", \"lanes\": {lanes}"));
            }
            out.push('}');
            if i + 1 < self.points.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]");
        if !self.summaries.is_empty() {
            out.push_str(",\n  \"summary\": {\n");
            for (i, (name, value)) in self.summaries.iter().enumerate() {
                out.push_str(&format!("    \"{}\": {:.6}", escape(name), value));
                if i + 1 < self.summaries.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str("  }");
        }
        out.push_str("\n}\n");
        out
    }

    /// Write the report to `path` in the current directory and note
    /// the path on stderr.
    pub fn write_to(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.render())?;
        eprintln!("wrote {path} ({} points)", self.points.len());
        Ok(())
    }

    /// Write the report to `BENCH_engine.json` in the current
    /// directory and note the path on stderr.
    pub fn write_default(&self) -> std::io::Result<()> {
        self.write_to("BENCH_engine.json")
    }
}

/// Warm [`LaneBatchEngine`]s keyed by processor configuration — the
/// sweep-side home for config-major lane batching.
///
/// A sweep worker builds one pool as its [`parallel_map_with`] state;
/// every multi-seed population it claims is grouped by the cell's
/// config (the ROADMAP's "batching across configs"): the pool keeps
/// one warm engine per distinct [`ProcConfig`] it has seen, so a
/// population of `k` seeds costs one leader engine pass plus the
/// bit-sliced lock-step instead of `k` serial simulations — and a
/// later cell with the same config reuses the warm engine outright.
/// Results are byte-identical to serial `run_reusing` calls per
/// program (the lane engine's differential guarantee), so sweep output
/// is unchanged by pooling.
#[derive(Debug, Default)]
pub struct LanePool {
    engines: Vec<(ProcConfig, LaneBatchEngine)>,
}

impl LanePool {
    /// An empty pool; engines are built on first use per config.
    pub fn new() -> Self {
        Self::default()
    }

    /// Run `programs[i]` into `out[i]` on the warm engine for `cfg`,
    /// lane-batching in chunks of up to [`MAX_LANES`] programs.
    ///
    /// # Panics
    /// Panics if `programs` and `out` differ in length.
    pub fn run_population(
        &mut self,
        cfg: &ProcConfig,
        programs: &[&Program],
        out: &mut [RunResult],
    ) {
        assert_eq!(programs.len(), out.len(), "one result slot per program");
        if programs.is_empty() {
            return;
        }
        let engine = self.engine_for(cfg);
        for (ps, os) in programs.chunks(MAX_LANES).zip(out.chunks_mut(MAX_LANES)) {
            engine.run_batch(ps, os);
        }
    }

    /// The warm engine for `cfg`, built on first use. A linear scan:
    /// sweeps put a handful of configs through each worker, and config
    /// comparison is cheap next to a simulation.
    fn engine_for(&mut self, cfg: &ProcConfig) -> &mut LaneBatchEngine {
        if let Some(i) = self.engines.iter().position(|(c, _)| c == cfg) {
            return &mut self.engines[i].1;
        }
        self.engines
            .push((cfg.clone(), LaneBatchEngine::new(cfg.clone())));
        &mut self.engines.last_mut().expect("just pushed").1
    }

    /// Number of distinct configs with a warm engine in the pool.
    pub fn len(&self) -> usize {
        self.engines.len()
    }

    /// True iff no engine has been built yet.
    pub fn is_empty(&self) -> bool {
        self.engines.is_empty()
    }

    /// Aggregate lane-batch counters over every engine in the pool.
    pub fn stats(&self) -> LaneBatchStats {
        let mut t = LaneBatchStats::default();
        for (_, e) in &self.engines {
            t.merge(e.lane_stats());
        }
        t
    }
}

/// Did the command line ask for the JSON report?
pub fn json_flag_set(args: &[String]) -> bool {
    args.iter().any(|a| a == "--json")
}

/// Geometric mean of a set of positive ratios (1.0 for an empty set —
/// the multiplicative identity, so absent families don't skew
/// aggregates).
pub fn geomean(ratios: &[f64]) -> f64 {
    if ratios.is_empty() {
        return 1.0;
    }
    (ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64).exp()
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            '\n' => vec!['\\', 'n'],
            c => vec![c],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_input_order() {
        let items: Vec<u64> = (0..257).collect();
        // Uneven per-point cost to force out-of-order completion.
        let out = parallel_map(&items, |&x| {
            if x % 7 == 0 {
                std::thread::sleep(Duration::from_micros(200));
            }
            x * 2
        });
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_item_sweeps() {
        let none: Vec<u32> = vec![];
        assert!(parallel_map(&none, |x| *x).is_empty());
        assert_eq!(parallel_map(&[41u32], |x| x + 1), vec![42]);
    }

    #[test]
    fn stateful_map_reuses_worker_state() {
        let items: Vec<u64> = (0..97).collect();
        // Per-worker scratch: results must not depend on which worker
        // (or how much prior state) handled a point.
        let out = parallel_map_with(&items, Vec::<u64>::new, |seen, &x| {
            seen.push(x);
            x + seen.len() as u64 - seen.len() as u64
        });
        assert_eq!(out, items);
    }

    #[test]
    fn timed_map_reports_durations() {
        let out = parallel_map_timed(&[1u32, 2, 3], |x| x * x);
        assert_eq!(
            out.iter().map(|(r, _)| *r).collect::<Vec<_>>(),
            vec![1, 4, 9]
        );
    }

    #[test]
    fn json_report_shape() {
        let mut rep = JsonReport::new("unit \"test\"");
        rep.point("a/n=1", Duration::from_millis(250), Some(1_000_000));
        rep.point("b", Duration::from_millis(50), None);
        assert_eq!(rep.len(), 2);
        assert!(!rep.is_empty());
        let s = rep.render();
        assert!(s.contains("\"experiment\": \"unit \\\"test\\\"\""));
        assert!(s.contains("\"label\": \"a/n=1\""));
        assert!(s.contains("\"steps\": 1000000"));
        assert!(s.contains("\"steps_per_sec\": 4000000.0"));
        assert!(!s.lines().last().unwrap().ends_with(','));
    }

    #[test]
    fn json_summary_rows() {
        let mut rep = JsonReport::new("summaries");
        rep.point("a", Duration::from_millis(1), None);
        rep.summary("geomean_speedup", 1.25);
        rep.summary("kernel/div_chain", 8.5);
        let s = rep.render();
        assert!(s.contains("\"summary\": {"));
        assert!(s.contains("\"geomean_speedup\": 1.250000,"));
        assert!(s.contains("\"kernel/div_chain\": 8.500000\n"));
        // Still a well-formed document: braces balance and no summary
        // block appears when none are recorded.
        assert_eq!(s.matches('{').count(), s.matches('}').count());
        assert!(!JsonReport::new("x").render().contains("summary"));
    }

    #[test]
    fn geomean_aggregates() {
        assert_eq!(geomean(&[]), 1.0);
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn lane_pool_matches_serial_and_reuses_engines() {
        use crate::kernels::{branch_gauntlet_seeded, forward_fan_seeded};
        use ultrascalar::{PredictorKind, Processor, Ultrascalar};
        use ultrascalar_isa::workload;

        let configs = [
            ProcConfig::ultrascalar_i(16),
            ProcConfig::ultrascalar_i(16).with_predictor(PredictorKind::Bimodal(64)),
        ];
        let mut pool = LanePool::new();
        assert!(pool.is_empty());
        for (prog, n) in [
            (forward_fan_seeded(6), 70usize),
            (branch_gauntlet_seeded(8), 9),
        ] {
            // 70 > MAX_LANES exercises the chunked path.
            let population = workload::lane_variants(&prog, n, 0xD15EA5E);
            let refs: Vec<&Program> = population.iter().collect();
            for cfg in &configs {
                let mut got = vec![RunResult::default(); n];
                pool.run_population(cfg, &refs, &mut got);
                for (l, (g, p)) in got.iter().zip(&refs).enumerate() {
                    let mut want = RunResult::default();
                    Ultrascalar::new(cfg.clone()).run_reusing(p, &mut want);
                    assert_eq!(g, &want, "lane {l} differs from serial");
                }
            }
        }
        // Two distinct configs → two warm engines, reused across
        // populations; every chunk lane-batched (nothing demoted).
        assert_eq!(pool.len(), 2);
        let s = pool.stats();
        assert_eq!(s.fallbacks, 0, "{s:?}");
        assert_eq!(s.batches, 6, "2 configs × (2 chunks + 1 chunk): {s:?}");
        assert_eq!(s.lane_runs + s.peels, 2 * (70 + 9), "{s:?}");
    }

    #[test]
    fn json_flag_detection() {
        let args: Vec<String> = vec!["--json".into()];
        assert!(json_flag_set(&args));
        assert!(!json_flag_set(&[]));
    }
}
