//! E9 (§2's functional claim): "this timing diagram is exactly what
//! would be produced in a traditional superscalar processor" — run the
//! whole kernel suite on the Ultrascalar I and on an independently
//! implemented conventional out-of-order core (rename map + ROB +
//! broadcast wakeup) and report cycle-for-cycle equality.
//!
//! ```text
//! cargo run -p ultrascalar-bench --bin eq_baseline
//! ```

use ultrascalar::{BaselineOoO, PredictorKind, ProcConfig, Processor, Ultrascalar};
use ultrascalar_bench::Table;
use ultrascalar_isa::workload;

fn main() {
    println!("E9 — Ultrascalar I vs conventional out-of-order baseline");
    println!("window n = 8, bimodal predictor, ideal memory\n");

    let mut t = Table::new(vec![
        "kernel",
        "US-I cycles",
        "baseline cycles",
        "IPC",
        "identical timing?",
    ]);
    let mut all_equal = true;
    for (name, prog) in workload::standard_suite(2026) {
        let cfg = ProcConfig::ultrascalar_i(8).with_predictor(PredictorKind::Bimodal(64));
        let a = Ultrascalar::new(cfg.clone()).run(&prog);
        let b = BaselineOoO::new(cfg).run(&prog);
        let identical = a.cycles == b.cycles && a.timings == b.timings && a.regs == b.regs;
        all_equal &= identical;
        t.row(vec![
            name.to_string(),
            format!("{}", a.cycles),
            format!("{}", b.cycles),
            format!("{:.2}", a.ipc()),
            if identical {
                "yes — every instruction's issue/complete cycle matches"
            } else {
                "NO"
            }
            .to_string(),
        ]);
    }
    println!("{t}");
    println!(
        "{}",
        if all_equal {
            "all kernels cycle-identical: the Ultrascalar extracts exactly the\n\
             ILP of a conventional renaming/broadcast superscalar, as claimed."
        } else {
            "MISMATCH FOUND — see table."
        }
    );
}
