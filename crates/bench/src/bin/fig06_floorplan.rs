//! E4 (Figure 6): the Ultrascalar I H-tree floorplan — the X(n) and
//! W(n) recurrences evaluated at the paper's 16-station example and
//! swept across n for all three bandwidth regimes.
//!
//! ```text
//! cargo run -p ultrascalar-bench --bin fig06_floorplan
//! ```

use ultrascalar_bench::Table;
use ultrascalar_memsys::Bandwidth;
use ultrascalar_vlsi::metrics::ArchParams;
use ultrascalar_vlsi::{fit, usi, Tech};

fn main() {
    let tech = Tech::cmos_035();

    println!("Figure 6 — Ultrascalar I H-tree floorplan (L = 32, 32-bit)\n");
    let p16 = ArchParams {
        n: 16,
        l: 32,
        bits: 32,
        mem: Bandwidth::full(),
    };
    let m16 = usi::metrics(&p16, &tech);
    println!(
        "the paper's 16-station example with full memory bandwidth:\n\
         side X(16) = {:.2} mm, longest wire 2·W(16) = {:.2} mm,\n\
         area {:.1} mm², gate depth {} levels\n",
        m16.side_um / 1e3,
        m16.wire_um / 1e3,
        m16.area_mm2(),
        m16.gate_delay
    );

    let plan = ultrascalar_vlsi::floorplan::usi_floorplan(&p16, &tech);
    assert!(plan.violations().is_empty());
    println!(
        "placed floorplan (S = execution station, # = channel with prefix/\n\
         fat-tree nodes; station utilisation {:.1}%):\n",
        100.0 * plan.leaf_utilisation()
    );
    println!("{}", plan.ascii(64));

    for (name, mem, solution) in [
        (
            "Case 1: M(n) = O(n^(1/2-e))",
            Bandwidth::sublinear_sqrt(0.25),
            "X(n) = Θ(√n·L)",
        ),
        (
            "Case 2: M(n) = Θ(n^(1/2))",
            Bandwidth::sqrt(),
            "X(n) = Θ(√n(L+log n))",
        ),
        (
            "Case 3: M(n) = Θ(n)",
            Bandwidth::full(),
            "X(n) = Θ(√n·L + M(n)) = Θ(n)",
        ),
    ] {
        println!("{name} — paper solution {solution}");
        let mut t = Table::new(vec!["n", "X(n) mm", "2W(n) mm", "area mm^2", "X(4n)/X(n)"]);
        let mut prev: Option<f64> = None;
        let mut pts = Vec::new();
        for k in 1..=8u32 {
            let n = 4usize.pow(k);
            let p = ArchParams {
                n,
                l: 32,
                bits: 32,
                mem,
            };
            let m = usi::metrics(&p, &tech);
            pts.push((n as f64, m.side_um));
            let growth = prev.map_or(String::new(), |x| format!("{:.2}", m.side_um / x));
            t.row(vec![
                format!("{n}"),
                format!("{:.2}", m.side_um / 1e3),
                format!("{:.2}", m.wire_um / 1e3),
                format!("{:.1}", m.area_mm2()),
                growth,
            ]);
            prev = Some(m.side_um);
        }
        println!("{t}");
        let f = fit::fit_exponent_tail(&pts, 4);
        println!(
            "fitted side exponent {:.3} (paper: {})\n",
            f.exponent,
            if matches!(
                mem.regime(),
                ultrascalar_memsys::bandwidth::Regime::AboveSqrt
            ) {
                "1.0 — bandwidth-bound"
            } else {
                "0.5 — √n growth (per-4x side ratio → 2)"
            }
        );
    }
}
