//! Paired A/B comparison of the packed engine paths against the scalar
//! per-flag reference path: the full packed configuration (flag
//! networks *and* the bit-sliced value snapshot), the flags-only
//! configuration (`without_packed_values`) and the scalar baseline
//! (`without_packed_flags`).
//!
//! Criterion times each configuration in its own contiguous block, so
//! on a busy machine the run-to-run drift between blocks swamps the
//! few-percent delta between the engine paths. Here the paths are
//! timed in interleaved batches within every round — the order rotated
//! each round to cancel first-order drift — and the per-round ratio is
//! taken before aggregating, so a slow round slows every side and
//! drops out of the quotient. The median over rounds is robust to the
//! occasional preempted batch.
//!
//! Usage: `step_ab [--json] [--quick]`. `--json` appends the rows to
//! `BENCH_step_ab.json`; `--quick` trims sizes for smoke runs.

use std::time::Instant;
use ultrascalar::{ForwardModel, PredictorKind, ProcConfig, Processor, Ultrascalar};
use ultrascalar_bench::kernels::{div_chain, forward_fan, wide_div_chain};
use ultrascalar_bench::sweep::{geomean, json_flag_set};
use ultrascalar_bench::{JsonReport, Table};
use ultrascalar_isa::{workload, Program};
use ultrascalar_memsys::MemConfig;

/// Wall time of `batch` complete runs, in seconds.
fn time_batch(cfg: &ProcConfig, prog: &Program, batch: usize) -> f64 {
    let start = Instant::now();
    let mut sink = 0u64;
    for _ in 0..batch {
        sink = sink.wrapping_add(
            Ultrascalar::new(cfg.clone())
                .run(std::hint::black_box(prog))
                .cycles,
        );
    }
    std::hint::black_box(sink);
    start.elapsed().as_secs_f64()
}

/// Median of a small unsorted sample (averages the middle pair when
/// the length is even).
fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    let m = xs.len() / 2;
    if xs.len() % 2 == 1 {
        xs[m]
    } else {
        (xs[m - 1] + xs[m]) / 2.0
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let rounds = if quick { 3 } else { 9 };
    let sizes: &[usize] = if quick { &[64] } else { &[64, 256] };

    println!("== packed vs scalar flag networks: paired step throughput ==\n");
    println!(
        "{} interleaved rounds per cell; per-round ratio, median over rounds.\n",
        rounds
    );

    let workloads: Vec<(&str, Program, bool)> = vec![
        ("div_chain", div_chain(48), false),
        ("wide_div_chain_r128", wide_div_chain(48), false),
        ("forward_fan", forward_fan(48), false),
        ("pointer_chase", workload::pointer_chase(96, 11), true),
        ("dense_dot", workload::dot_product(96), false),
    ];

    let mut t = Table::new(vec![
        "arch",
        "kernel",
        "n",
        "packed ms",
        "flags-only ms",
        "scalar ms",
        "speedup",
        "vs flags-only",
    ]);
    let mut report = JsonReport::new("step_ab");
    let mut ratios_all: Vec<f64> = Vec::new();
    let mut ratios_values: Vec<f64> = Vec::new();
    let mut ratios_by_kernel: Vec<(&str, Vec<f64>)> = Vec::new();

    for &n in sizes {
        // The pipelined row measures the hop-banded readiness words:
        // distance-dependent forwarding used to fall off the packed
        // path entirely, so this cell is the direct price/payoff of
        // keeping it packed. It runs in `--quick` too.
        let archs: Vec<(String, ProcConfig)> = vec![
            ("usi".to_string(), ProcConfig::ultrascalar_i(n)),
            ("usii".to_string(), ProcConfig::ultrascalar_ii(n)),
            (format!("hybrid_c{}", n / 4), ProcConfig::hybrid(n, n / 4)),
            (
                "usi_pipelined".to_string(),
                ProcConfig::ultrascalar_i(n)
                    .with_forwarding(ForwardModel::Pipelined { per_hop: 1 }),
            ),
        ]
        .into_iter()
        .map(|(a, cfg)| (a, cfg.with_predictor(PredictorKind::Bimodal(64))))
        .collect();
        for (arch, base) in &archs {
            for (kernel, prog, realistic_mem) in &workloads {
                let packed = if *realistic_mem {
                    base.clone().with_mem(MemConfig::realistic(n, 1 << 12))
                } else {
                    base.clone()
                };
                let flags_only = packed.clone().without_packed_values();
                let scalar = packed.clone().without_packed_flags();
                let probe_run = Ultrascalar::new(packed.clone()).run(prog);
                assert_eq!(
                    probe_run.stats.packed_fallbacks, 0,
                    "{arch}/{kernel}: the packed cell must actually run packed"
                );
                let cycles = probe_run.cycles;

                // Calibrate the batch to ~25 ms so scheduler noise
                // averages out within a batch.
                let probe = time_batch(&packed, prog, 1).max(1e-6);
                let batch = ((0.025 / probe).ceil() as usize).clamp(2, 64);
                time_batch(&scalar, prog, batch); // warm all three paths
                time_batch(&flags_only, prog, batch);
                time_batch(&packed, prog, batch);

                let mut tp: Vec<f64> = Vec::with_capacity(rounds);
                let mut tf: Vec<f64> = Vec::with_capacity(rounds);
                let mut ts: Vec<f64> = Vec::with_capacity(rounds);
                let mut ratio: Vec<f64> = Vec::with_capacity(rounds);
                let mut ratio_v: Vec<f64> = Vec::with_capacity(rounds);
                for round in 0..rounds {
                    // Rotate the measurement order so no path always
                    // rides the front (or back) of a scheduler slice.
                    let mut a = 0.0;
                    let mut f = 0.0;
                    let mut b = 0.0;
                    let order: [usize; 3] = match round % 3 {
                        0 => [0, 1, 2],
                        1 => [2, 0, 1],
                        _ => [1, 2, 0],
                    };
                    for which in order {
                        match which {
                            0 => a = time_batch(&packed, prog, batch),
                            1 => f = time_batch(&flags_only, prog, batch),
                            _ => b = time_batch(&scalar, prog, batch),
                        }
                    }
                    tp.push(a / batch as f64);
                    tf.push(f / batch as f64);
                    ts.push(b / batch as f64);
                    ratio.push(b / a);
                    ratio_v.push(f / a);
                }
                let (mp, mf, ms) = (median(&mut tp), median(&mut tf), median(&mut ts));
                let (mr, mrv) = (median(&mut ratio), median(&mut ratio_v));
                ratios_all.push(mr);
                ratios_values.push(mrv);
                match ratios_by_kernel.iter_mut().find(|(k, _)| k == kernel) {
                    Some((_, rs)) => rs.push(mr),
                    None => ratios_by_kernel.push((kernel, vec![mr])),
                }
                t.row(vec![
                    arch.clone(),
                    kernel.to_string(),
                    n.to_string(),
                    format!("{:.3}", mp * 1e3),
                    format!("{:.3}", mf * 1e3),
                    format!("{:.3}", ms * 1e3),
                    format!("{:.3}x", mr),
                    format!("{:.3}x", mrv),
                ]);
                report.point(
                    &format!("packed/{arch}/{kernel}/n={n}"),
                    std::time::Duration::from_secs_f64(mp),
                    Some(cycles),
                );
                report.point(
                    &format!("flags_only/{arch}/{kernel}/n={n}"),
                    std::time::Duration::from_secs_f64(mf),
                    Some(cycles),
                );
                report.point(
                    &format!("scalar/{arch}/{kernel}/n={n}"),
                    std::time::Duration::from_secs_f64(ms),
                    Some(cycles),
                );
            }
        }
    }

    println!("{t}");
    let geo = geomean(&ratios_all);
    println!("geometric-mean speedup (packed over scalar): {geo:.3}x");
    let geo_v = geomean(&ratios_values);
    println!("geometric-mean speedup (value snapshot over flags-only): {geo_v:.3}x");

    // Summary rows ride inside the report, so readers of
    // BENCH_step_ab.json no longer recompute the aggregates from the
    // raw points: one packed-over-scalar geomean per kernel (across
    // arches and sizes) plus the two overall geomeans printed above.
    for (kernel, rs) in &ratios_by_kernel {
        report.summary(&format!("geomean_packed_over_scalar/{kernel}"), geomean(rs));
    }
    report.summary("geomean_packed_over_scalar", geo);
    report.summary("geomean_values_over_flags_only", geo_v);

    if json_flag_set(&args) {
        report
            .write_to("BENCH_step_ab.json")
            .expect("write BENCH_step_ab.json");
    }
}
