//! Paired A/B comparison of the packed engine paths against the scalar
//! per-flag reference path: the full packed configuration (flag
//! networks *and* the bit-sliced value snapshot), the flags-only
//! configuration (`without_packed_values`) and the scalar baseline
//! (`without_packed_flags`).
//!
//! Criterion times each configuration in its own contiguous block, so
//! on a busy machine the run-to-run drift between blocks swamps the
//! few-percent delta between the engine paths. Here the paths are
//! timed in interleaved batches within every round — the order rotated
//! each round to cancel first-order drift — and the per-round ratio is
//! taken before aggregating, so a slow round slows every side and
//! drops out of the quotient. The median over rounds is robust to the
//! occasional preempted batch. Each batch runs on one warm reused
//! engine (the serve-pool steady state); cells whose first median
//! lands near parity double their sample, and a cell that still
//! cannot show a statistically significant side of 1.0 (two-sided
//! sign test, p < 0.05) is reported as `parity (…)` rather than as a
//! noise-signed ratio. Shape-gated cells (`packed_shape_wins` ran the
//! scalar scan on all three variants) report `1.000x (gated)`.
//!
//! Usage: `step_ab [--json] [--quick]`. `--json` appends the rows to
//! `BENCH_step_ab.json`; `--quick` trims sizes for smoke runs.

use std::time::Instant;
use ultrascalar::{ForwardModel, PredictorKind, ProcConfig, Processor, Ultrascalar};
use ultrascalar_bench::kernels::{
    branch_gauntlet, div_chain, forward_fan, spec_storm, wide_div_chain,
};
use ultrascalar_bench::sweep::{geomean, json_flag_set};
use ultrascalar_bench::{JsonReport, Table};
use ultrascalar_isa::{workload, Program};
use ultrascalar_memsys::MemConfig;

/// Wall time of `batch` complete warm-engine runs, in seconds. One
/// engine is constructed and warmed outside the timed region and then
/// reused for the whole batch — the steady state the serve engine pool
/// and the lane-batch path actually run in. (Constructing a fresh
/// engine per run instead adds an allocation storm to every sample
/// that swamps the few-percent path deltas this harness exists to
/// resolve.)
fn time_batch(cfg: &ProcConfig, prog: &Program, batch: usize) -> f64 {
    let mut engine = Ultrascalar::new(cfg.clone());
    std::hint::black_box(engine.run(std::hint::black_box(prog)).cycles);
    let start = Instant::now();
    let mut sink = 0u64;
    for _ in 0..batch {
        sink = sink.wrapping_add(engine.run(std::hint::black_box(prog)).cycles);
    }
    std::hint::black_box(sink);
    start.elapsed().as_secs_f64()
}

/// Smallest count `k` such that a two-sided sign test rejects "the
/// packed and scalar paths are equally fast" at p < 0.05: under the
/// parity null each round's ratio lands above or below 1.0 with
/// probability ½, so a cell needs `k` of its `n` rounds on one side —
/// 2·P(Bin(n, ½) ≥ k) < 0.05 — before the harness will ship a signed
/// ratio rather than a parity call. Exact binomial tail, no
/// approximation (n here is 9 or 18).
fn sign_threshold(n: usize) -> usize {
    assert!(n <= 60, "binomial tail would overflow u64");
    let mut binom = 1u64; // C(n, n)
    let mut tail = 0u64;
    for k in (0..=n).rev() {
        tail += binom;
        // 2 · tail / 2^n < 0.05  ⇔  40 · tail < 2^n
        if 40 * tail >= 1u64 << n {
            return (k + 1).min(n);
        }
        binom = binom * k as u64 / (n - k + 1) as u64; // C(n, k-1)
    }
    0
}

/// Median of a small unsorted sample (averages the middle pair when
/// the length is even).
fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    let m = xs.len() / 2;
    if xs.len() % 2 == 1 {
        xs[m]
    } else {
        (xs[m - 1] + xs[m]) / 2.0
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let rounds = if quick { 3 } else { 9 };
    let sizes: &[usize] = if quick { &[64] } else { &[64, 256] };

    println!("== packed vs scalar flag networks: paired step throughput ==\n");
    println!(
        "{} interleaved rounds per cell (doubled when the first median \
         lands near parity); per-round ratio, median over rounds.\n",
        rounds
    );

    let workloads: Vec<(&str, Program, bool)> = vec![
        ("div_chain", div_chain(48), false),
        ("wide_div_chain_r128", wide_div_chain(48), false),
        ("forward_fan", forward_fan(48), false),
        ("pointer_chase", workload::pointer_chase(96, 11), true),
        ("dense_dot", workload::dot_product(96), false),
        // The branchy pair: every arch row runs a bimodal predictor,
        // so these kernels keep the flush/refetch path hot while the
        // packed-vs-scalar step delta is measured (the clean kernels
        // above barely touch it).
        ("branch_gauntlet", branch_gauntlet(48), false),
        ("spec_storm", spec_storm(48), false),
    ];

    let mut t = Table::new(vec![
        "arch",
        "kernel",
        "n",
        "packed ms",
        "flags-only ms",
        "scalar ms",
        "speedup",
        "vs flags-only",
    ]);
    let mut report = JsonReport::new("step_ab");
    let mut ratios_all: Vec<f64> = Vec::new();
    let mut ratios_values: Vec<f64> = Vec::new();
    let mut ratios_by_kernel: Vec<(&str, Vec<f64>)> = Vec::new();

    for &n in sizes {
        // The pipelined row exists to watch the shape gate: hop-banded
        // readiness keeps distance-dependent forwarding *available* on
        // the packed path, but the A/B data says the banded writer
        // update net-loses there, so `packed_shape_wins` gates it (and
        // the other losing shapes) back to scalar and the row reports
        // 1.000x (gated). If the banded path ever starts winning, the
        // gate is where to re-measure. It runs in `--quick` too.
        let archs: Vec<(String, ProcConfig)> = vec![
            ("usi".to_string(), ProcConfig::ultrascalar_i(n)),
            ("usii".to_string(), ProcConfig::ultrascalar_ii(n)),
            (format!("hybrid_c{}", n / 4), ProcConfig::hybrid(n, n / 4)),
            (
                "usi_pipelined".to_string(),
                ProcConfig::ultrascalar_i(n)
                    .with_forwarding(ForwardModel::Pipelined { per_hop: 1 }),
            ),
        ]
        .into_iter()
        .map(|(a, cfg)| (a, cfg.with_predictor(PredictorKind::Bimodal(64))))
        .collect();
        for (arch, base) in &archs {
            for (kernel, prog, realistic_mem) in &workloads {
                let packed = if *realistic_mem {
                    base.clone().with_mem(MemConfig::realistic(n, 1 << 12))
                } else {
                    base.clone()
                };
                let flags_only = packed.clone().without_packed_values();
                let scalar = packed.clone().without_packed_flags();
                let probe_run = Ultrascalar::new(packed.clone()).run(prog);
                assert_eq!(
                    probe_run.stats.packed_fallbacks, 0,
                    "{arch}/{kernel}: the packed cell must not width-fall-back"
                );
                let cycles = probe_run.cycles;

                // Calibrate the batch to ~25 ms so scheduler noise
                // averages out within a batch.
                let probe = time_batch(&packed, prog, 1).max(1e-6);
                let batch = ((0.025 / probe).ceil() as usize).clamp(2, 64);

                // Shape-gated cell: `packed_shape_wins` says this
                // configuration shape loses on the packed path, so the
                // engine deliberately runs it scalar — all three
                // variants execute identical machine code and the
                // ratio is 1.0 *by construction*, not by measurement.
                // Time one variant for the ms columns and record the
                // gating decision instead of timing noise.
                if probe_run.stats.packed_shape_gated > 0 {
                    time_batch(&packed, prog, batch); // warm
                    let mut tg: Vec<f64> = (0..rounds)
                        .map(|_| time_batch(&packed, prog, batch) / batch as f64)
                        .collect();
                    let mg = median(&mut tg);
                    ratios_all.push(1.0);
                    ratios_values.push(1.0);
                    match ratios_by_kernel.iter_mut().find(|(k, _)| k == kernel) {
                        Some((_, rs)) => rs.push(1.0),
                        None => ratios_by_kernel.push((kernel, vec![1.0])),
                    }
                    t.row(vec![
                        arch.clone(),
                        kernel.to_string(),
                        n.to_string(),
                        format!("{:.3}", mg * 1e3),
                        format!("{:.3}", mg * 1e3),
                        format!("{:.3}", mg * 1e3),
                        "1.000x (gated)".to_string(),
                        "1.000x".to_string(),
                    ]);
                    for variant in ["packed", "flags_only", "scalar"] {
                        report.point(
                            &format!("{variant}/{arch}/{kernel}/n={n}/gated"),
                            std::time::Duration::from_secs_f64(mg),
                            Some(cycles),
                        );
                    }
                    continue;
                }
                time_batch(&scalar, prog, batch); // warm all three paths
                time_batch(&flags_only, prog, batch);
                time_batch(&packed, prog, batch);

                let mut tp: Vec<f64> = Vec::with_capacity(rounds);
                let mut tf: Vec<f64> = Vec::with_capacity(rounds);
                let mut ts: Vec<f64> = Vec::with_capacity(rounds);
                let mut ratio: Vec<f64> = Vec::with_capacity(rounds);
                let mut ratio_v: Vec<f64> = Vec::with_capacity(rounds);
                let mut round = 0usize;
                let mut total = rounds;
                while round < total {
                    // Rotate the measurement order so no path always
                    // rides the front (or back) of a scheduler slice.
                    let mut a = 0.0;
                    let mut f = 0.0;
                    let mut b = 0.0;
                    let order: [usize; 3] = match round % 3 {
                        0 => [0, 1, 2],
                        1 => [2, 0, 1],
                        _ => [1, 2, 0],
                    };
                    for which in order {
                        match which {
                            0 => a = time_batch(&packed, prog, batch),
                            1 => f = time_batch(&flags_only, prog, batch),
                            _ => b = time_batch(&scalar, prog, batch),
                        }
                    }
                    tp.push(a / batch as f64);
                    tf.push(f / batch as f64);
                    ts.push(b / batch as f64);
                    ratio.push(b / a);
                    ratio_v.push(f / a);
                    round += 1;
                    // Close calls get more samples: when the median
                    // over the first `rounds` rounds lands within 10%
                    // of parity — the excursion scale a shared core
                    // shows even on identical-code runs — the sampling
                    // error of short batches is on the same order as
                    // the effect and the reported side of 1.0 would be
                    // decided by noise. Doubling the sample for those
                    // cells tightens the median where it matters
                    // without slowing the clear wins.
                    if round == rounds && total == rounds && !quick {
                        let mut peek = ratio.clone();
                        if (0.90..1.10).contains(&median(&mut peek)) {
                            total = rounds * 2;
                        }
                    }
                }
                let (mp, mf, ms) = (median(&mut tp), median(&mut tf), median(&mut ts));
                let (mr, mrv) = (median(&mut ratio), median(&mut ratio_v));
                // Parity call: a sign test over the per-round ratios,
                // applied to the cells the resampling band flagged as
                // close. A few cells sit so near 1.0 that even the
                // doubled sample cannot show a significant side — on a
                // shared core their medians land at 0.97–1.03 by
                // run-to-run luck. Shipping a noise-signed
                // "regression" (or "win") the protocol cannot support
                // would misread; those cells are reported as parity,
                // with the raw median kept alongside. Cells that *can*
                // show a side keep their measured ratio.
                let wins = ratio.iter().filter(|&&r| r > 1.0).count();
                let parity =
                    total > rounds && wins.max(ratio.len() - wins) < sign_threshold(ratio.len());
                let mr_shipped = if parity { 1.0 } else { mr };
                ratios_all.push(mr_shipped);
                ratios_values.push(mrv);
                match ratios_by_kernel.iter_mut().find(|(k, _)| k == kernel) {
                    Some((_, rs)) => rs.push(mr_shipped),
                    None => ratios_by_kernel.push((kernel, vec![mr_shipped])),
                }
                t.row(vec![
                    arch.clone(),
                    kernel.to_string(),
                    n.to_string(),
                    format!("{:.3}", mp * 1e3),
                    format!("{:.3}", mf * 1e3),
                    format!("{:.3}", ms * 1e3),
                    if parity {
                        format!("parity ({mr:.3}x)")
                    } else {
                        format!("{mr:.3}x")
                    },
                    format!("{:.3}x", mrv),
                ]);
                let suffix = if parity { "/parity" } else { "" };
                report.point(
                    &format!("packed/{arch}/{kernel}/n={n}{suffix}"),
                    std::time::Duration::from_secs_f64(mp),
                    Some(cycles),
                );
                report.point(
                    &format!("flags_only/{arch}/{kernel}/n={n}{suffix}"),
                    std::time::Duration::from_secs_f64(mf),
                    Some(cycles),
                );
                report.point(
                    &format!("scalar/{arch}/{kernel}/n={n}{suffix}"),
                    std::time::Duration::from_secs_f64(ms),
                    Some(cycles),
                );
            }
        }
    }

    println!("{t}");
    let geo = geomean(&ratios_all);
    println!("geometric-mean speedup (packed over scalar): {geo:.3}x");
    let geo_v = geomean(&ratios_values);
    println!("geometric-mean speedup (value snapshot over flags-only): {geo_v:.3}x");

    // Summary rows ride inside the report, so readers of
    // BENCH_step_ab.json no longer recompute the aggregates from the
    // raw points: one packed-over-scalar geomean per kernel (across
    // arches and sizes) plus the two overall geomeans printed above.
    for (kernel, rs) in &ratios_by_kernel {
        report.summary(&format!("geomean_packed_over_scalar/{kernel}"), geomean(rs));
    }
    report.summary("geomean_packed_over_scalar", geo);
    report.summary("geomean_values_over_flags_only", geo_v);

    if json_flag_set(&args) {
        report
            .write_to("BENCH_step_ab.json")
            .expect("write BENCH_step_ab.json");
    }
}
