//! End-to-end throughput synthesis: the paper compares the processors
//! by VLSI complexity because "the only differences between the
//! processors are in their VLSI complexities … which have implications
//! therefore on clock speeds." This experiment closes the loop: clock
//! period from the layout model (total delay = gate + repeatered-wire)
//! × IPC from the cycle-accurate simulator = sustained instructions
//! per second, per architecture and window size.
//!
//! ```text
//! cargo run -p ultrascalar-bench --bin throughput
//! ```

use ultrascalar::{PredictorKind, ProcConfig, Processor, Ultrascalar};
use ultrascalar_bench::Table;
use ultrascalar_isa::workload;
use ultrascalar_memsys::Bandwidth;
use ultrascalar_vlsi::metrics::ArchParams;
use ultrascalar_vlsi::{hybrid, usi, usii, Tech};

fn geomean_ipc(cfg: &ProcConfig) -> f64 {
    let kernels = workload::standard_suite(2121);
    let mut s = 0.0;
    for (_, prog) in &kernels {
        let r = Ultrascalar::new(cfg.clone()).run(prog);
        assert!(r.halted);
        s += r.ipc().ln();
    }
    (s / workload::standard_suite(2121).len() as f64).exp()
}

fn main() {
    let tech = Tech::cmos_035();
    let l = 32;
    println!("end-to-end throughput — clock from the 0.35 µm layout model ×");
    println!("geomean IPC over the kernel suite (L = {l}, M(n) = Θ(1), bimodal)\n");

    let mut t = Table::new(vec![
        "architecture",
        "n",
        "clock (MHz)",
        "geomean IPC",
        "MIPS",
        "area mm²",
        "MIPS/cm²",
    ]);
    for n in [16usize, 64, 256] {
        let p = ArchParams {
            n,
            l,
            bits: 32,
            mem: Bandwidth::constant(1.0),
        };
        let pred = PredictorKind::Bimodal(256);
        let rows: Vec<(String, ultrascalar_vlsi::Metrics, ProcConfig)> = vec![
            (
                "Ultrascalar I".into(),
                usi::metrics(&p, &tech),
                ProcConfig::ultrascalar_i(n).with_predictor(pred),
            ),
            (
                "Ultrascalar II (linear)".into(),
                usii::metrics_linear(&p, &tech),
                ProcConfig::ultrascalar_ii(n).with_predictor(pred),
            ),
            {
                let c = hybrid::nearest_feasible_cluster(n, l);
                (
                    format!("Hybrid (C={c})"),
                    hybrid::metrics(&p, &tech),
                    ProcConfig::hybrid(n, c).with_predictor(pred),
                )
            },
        ];
        for (name, m, cfg) in rows {
            let period_ps = m.total_delay_ps(&tech);
            let mhz = 1e6 / period_ps;
            let ipc = geomean_ipc(&cfg);
            let mips = mhz * ipc;
            t.row(vec![
                name,
                format!("{n}"),
                format!("{:.0}", mhz),
                format!("{:.2}", ipc),
                format!("{:.0}", mips),
                format!("{:.0}", m.area_mm2()),
                format!("{:.1}", mips / (m.area_mm2() / 100.0)),
            ]);
        }
    }
    println!("{t}");
    println!(
        "the shapes the paper predicts: the Ultrascalar II's Θ(n + L) clock\n\
         period erodes its (slightly lower) IPC as n grows; the hybrid\n\
         pairs near-US-I IPC with the best clock and area at scale."
    );
}
