//! End-to-end throughput synthesis: the paper compares the processors
//! by VLSI complexity because "the only differences between the
//! processors are in their VLSI complexities … which have implications
//! therefore on clock speeds." This experiment closes the loop: clock
//! period from the layout model (total delay = gate + repeatered-wire)
//! × IPC from the cycle-accurate simulator = sustained instructions
//! per second, per architecture and window size.
//!
//! Each (architecture, window) row — a geomean over the whole kernel
//! suite — is one sweep point on the work-stealing harness; rows are
//! printed in input order so the output is byte-identical to a serial
//! run. `--json` writes per-point wall time and simulated cycles to
//! `BENCH_engine.json`.
//!
//! ```text
//! cargo run -p ultrascalar-bench --bin throughput [--json]
//! ```

use ultrascalar::{PredictorKind, ProcConfig, Processor, Ultrascalar};
use ultrascalar_bench::sweep::{json_flag_set, parallel_map_timed, JsonReport};
use ultrascalar_bench::Table;
use ultrascalar_isa::workload;
use ultrascalar_memsys::Bandwidth;
use ultrascalar_vlsi::metrics::ArchParams;
use ultrascalar_vlsi::{hybrid, usi, usii, Tech};

/// Geomean IPC over the kernel suite, plus total simulated cycles.
fn geomean_ipc(cfg: &ProcConfig) -> (f64, u64) {
    let kernels = workload::standard_suite(2121);
    let mut s = 0.0;
    let mut cycles = 0u64;
    for (_, prog) in &kernels {
        let r = Ultrascalar::new(cfg.clone()).run(prog);
        assert!(r.halted);
        s += r.ipc().ln();
        cycles += r.cycles;
    }
    ((s / kernels.len() as f64).exp(), cycles)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut report = JsonReport::new("throughput");
    let tech = Tech::cmos_035();
    let l = 32;
    println!("end-to-end throughput — clock from the 0.35 µm layout model ×");
    println!("geomean IPC over the kernel suite (L = {l}, M(n) = Θ(1), bimodal)\n");

    // Build all (architecture, window) rows up front; the simulations
    // behind each are a parallel sweep.
    let rows: Vec<(String, usize, ultrascalar_vlsi::Metrics, ProcConfig)> = [16usize, 64, 256]
        .into_iter()
        .flat_map(|n| {
            let p = ArchParams {
                n,
                l,
                bits: 32,
                mem: Bandwidth::constant(1.0),
            };
            let pred = PredictorKind::Bimodal(256);
            let c = hybrid::nearest_feasible_cluster(n, l);
            vec![
                (
                    "Ultrascalar I".to_string(),
                    n,
                    usi::metrics(&p, &tech),
                    ProcConfig::ultrascalar_i(n).with_predictor(pred),
                ),
                (
                    "Ultrascalar II (linear)".to_string(),
                    n,
                    usii::metrics_linear(&p, &tech),
                    ProcConfig::ultrascalar_ii(n).with_predictor(pred),
                ),
                (
                    format!("Hybrid (C={c})"),
                    n,
                    hybrid::metrics(&p, &tech),
                    ProcConfig::hybrid(n, c).with_predictor(pred),
                ),
            ]
        })
        .collect();
    let measured = parallel_map_timed(&rows, |(_, _, _, cfg)| geomean_ipc(cfg));

    let mut t = Table::new(vec![
        "architecture",
        "n",
        "clock (MHz)",
        "geomean IPC",
        "MIPS",
        "area mm²",
        "MIPS/cm²",
    ]);
    for ((name, n, m, _), ((ipc, cycles), wall)) in rows.iter().zip(&measured) {
        report.point(&format!("{name}/n={n}"), *wall, Some(*cycles));
        let period_ps = m.total_delay_ps(&tech);
        let mhz = 1e6 / period_ps;
        let mips = mhz * ipc;
        t.row(vec![
            name.clone(),
            format!("{n}"),
            format!("{:.0}", mhz),
            format!("{:.2}", ipc),
            format!("{:.0}", mips),
            format!("{:.0}", m.area_mm2()),
            format!("{:.1}", mips / (m.area_mm2() / 100.0)),
        ]);
    }
    println!("{t}");
    println!(
        "the shapes the paper predicts: the Ultrascalar II's Θ(n + L) clock\n\
         period erodes its (slightly lower) IPC as n grows; the hybrid\n\
         pairs near-US-I IPC with the best clock and area at scale."
    );

    if json_flag_set(&args) {
        report.write_default().expect("write BENCH_engine.json");
    }
}
