//! End-to-end throughput synthesis: the paper compares the processors
//! by VLSI complexity because "the only differences between the
//! processors are in their VLSI complexities … which have implications
//! therefore on clock speeds." This experiment closes the loop: clock
//! period from the layout model (total delay = gate + repeatered-wire)
//! × IPC from the cycle-accurate simulator = sustained instructions
//! per second, per architecture and window size.
//!
//! Each (architecture, window) row — a geomean over the whole kernel
//! suite — is one sweep point on the work-stealing harness; rows are
//! printed in input order so the output is byte-identical to a serial
//! run. Every kernel runs as a multi-seed *population* (the scored
//! program plus lane-variant seeds) through the worker's [`LanePool`]:
//! the row's config groups its populations onto one warm lane-batch
//! engine (config-major grouping), and the scored IPC comes from
//! population member 0, which the lane engine guarantees
//! byte-identical to a serial run. `--json` writes per-point wall time
//! and total simulated cycles (all population members) to
//! `BENCH_engine.json`.
//!
//! ```text
//! cargo run -p ultrascalar-bench --bin throughput [--json]
//! ```

use ultrascalar::{LaneBatchStats, PredictorKind, ProcConfig, RunResult};
use ultrascalar_bench::sweep::{json_flag_set, parallel_map_with, JsonReport, LanePool};
use ultrascalar_bench::Table;
use ultrascalar_isa::{workload, Program};
use ultrascalar_memsys::Bandwidth;
use ultrascalar_vlsi::metrics::ArchParams;
use ultrascalar_vlsi::{hybrid, usi, usii, Tech};

/// Seeds per kernel: the scored program plus 7 lane-variant seeds
/// riding the same schedule-shared batch.
const POP: usize = 8;

/// Geomean IPC over the kernel suite (member 0 of each population),
/// plus total simulated cycles and the row's lane-batch counters.
fn geomean_ipc(pool: &mut LanePool, cfg: &ProcConfig) -> (f64, u64, LaneBatchStats) {
    let kernels = workload::standard_suite(2121);
    let before = pool.stats();
    let mut s = 0.0;
    let mut cycles = 0u64;
    for (k, (_, prog)) in kernels.iter().enumerate() {
        let mut population = vec![prog.clone()];
        population.extend(workload::lane_variants(prog, POP - 1, 0x717 ^ k as u64));
        let refs: Vec<&Program> = population.iter().collect();
        let mut out = vec![RunResult::default(); POP];
        pool.run_population(cfg, &refs, &mut out);
        assert!(out[0].halted);
        s += out[0].ipc().ln();
        cycles += out.iter().map(|r| r.cycles).sum::<u64>();
    }
    let ipc = (s / kernels.len() as f64).exp();
    (ipc, cycles, pool.stats().delta_since(&before))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut report = JsonReport::new("throughput");
    let tech = Tech::cmos_035();
    let l = 32;
    println!("end-to-end throughput — clock from the 0.35 µm layout model ×");
    println!("geomean IPC over the kernel suite (L = {l}, M(n) = Θ(1), bimodal)\n");

    // Build all (architecture, window) rows up front; the simulations
    // behind each are a parallel sweep with one lane pool per worker.
    let rows: Vec<(String, usize, ultrascalar_vlsi::Metrics, ProcConfig)> = [16usize, 64, 256]
        .into_iter()
        .flat_map(|n| {
            let p = ArchParams {
                n,
                l,
                bits: 32,
                mem: Bandwidth::constant(1.0),
            };
            let pred = PredictorKind::Bimodal(256);
            let c = hybrid::nearest_feasible_cluster(n, l);
            vec![
                (
                    "Ultrascalar I".to_string(),
                    n,
                    usi::metrics(&p, &tech),
                    ProcConfig::ultrascalar_i(n).with_predictor(pred),
                ),
                (
                    "Ultrascalar II (linear)".to_string(),
                    n,
                    usii::metrics_linear(&p, &tech),
                    ProcConfig::ultrascalar_ii(n).with_predictor(pred),
                ),
                (
                    format!("Hybrid (C={c})"),
                    n,
                    hybrid::metrics(&p, &tech),
                    ProcConfig::hybrid(n, c).with_predictor(pred),
                ),
            ]
        })
        .collect();
    let measured = parallel_map_with(&rows, LanePool::new, |pool, (_, _, _, cfg)| {
        let start = std::time::Instant::now();
        let r = geomean_ipc(pool, cfg);
        (r, start.elapsed())
    });

    let mut t = Table::new(vec![
        "architecture",
        "n",
        "clock (MHz)",
        "geomean IPC",
        "MIPS",
        "area mm²",
        "MIPS/cm²",
    ]);
    let mut lanes = LaneBatchStats::default();
    for ((name, n, m, _), ((ipc, cycles, row_lanes), wall)) in rows.iter().zip(&measured) {
        report.point(&format!("{name}/n={n}"), *wall, Some(*cycles));
        lanes.merge(row_lanes);
        let period_ps = m.total_delay_ps(&tech);
        let mhz = 1e6 / period_ps;
        let mips = mhz * ipc;
        t.row(vec![
            name.clone(),
            format!("{n}"),
            format!("{:.0}", mhz),
            format!("{:.2}", ipc),
            format!("{:.0}", mips),
            format!("{:.0}", m.area_mm2()),
            format!("{:.1}", mips / (m.area_mm2() / 100.0)),
        ]);
    }
    println!("{t}");
    println!(
        "the shapes the paper predicts: the Ultrascalar II's Θ(n + L) clock\n\
         period erodes its (slightly lower) IPC as n grows; the hybrid\n\
         pairs near-US-I IPC with the best clock and area at scale."
    );
    println!(
        "\nlane-batched populations: {} batches over {} epochs, {} lane \
         runs, {} peels ({} replay), {} serial demotions",
        lanes.batches,
        lanes.epochs,
        lanes.lane_runs,
        lanes.peels,
        lanes.replay_peels,
        lanes.fallbacks
    );
    report.summary("lane_batches", lanes.batches as f64);
    report.summary("lane_runs", lanes.lane_runs as f64);
    report.summary("lane_peels", lanes.peels as f64);
    report.summary("lane_replay_peels", lanes.replay_peels as f64);
    report.summary("lane_fallbacks", lanes.fallbacks as f64);

    if json_flag_set(&args) {
        report.write_default().expect("write BENCH_engine.json");
    }
}
