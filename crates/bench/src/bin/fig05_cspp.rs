//! E3 (Figure 5): the 1-bit cyclic segmented parallel-prefix circuit
//! with the AND operator — "can compute for each station whether all
//! the earlier stations have met a particular condition" — evaluated
//! algorithmically and at gate level, plus a depth-scaling sweep.
//!
//! ```text
//! cargo run -p ultrascalar-bench --bin fig05_cspp
//! ```

use ultrascalar_bench::Table;
use ultrascalar_circuit::generators::{CombineOp, CsppTree};
use ultrascalar_circuit::Netlist;
use ultrascalar_prefix::cspp::cspp_all_earlier;

fn main() {
    // The paper's example: oldest = 6; stations {6,7,0,1,3} have met
    // the condition; the circuit outputs high to {7,0,1,2}.
    let n = 8;
    let oldest = 6;
    let mut cond = vec![false; n];
    for i in [6, 7, 0, 1, 3] {
        cond[i] = true;
    }
    println!("Figure 5 — 1-bit CSPP (a ⊗ b = a ∧ b), oldest = {oldest}");
    println!("condition inputs high at stations 6, 7, 0, 1, 3\n");

    let model = cspp_all_earlier(&cond, oldest);

    let mut nl = Netlist::new();
    let tree = CsppTree::build(&mut nl, n, 1, CombineOp::BitAnd);
    let mut inputs = vec![false; nl.num_inputs()];
    for i in 0..n {
        inputs[tree.values[i][0].0 as usize] = cond[i];
        inputs[tree.seg[i].0 as usize] = i == oldest;
    }
    let eval = nl.evaluate(&inputs, &[]).expect("settles");

    let mut t = Table::new(vec![
        "station",
        "input",
        "all earlier met? (model)",
        "(gates)",
    ]);
    for i in 0..n {
        let note = if i == oldest {
            " — ignored (oldest)"
        } else {
            ""
        };
        t.row(vec![
            format!("{i}"),
            format!("{}", cond[i] as u8),
            format!("{}{note}", model[i] as u8),
            format!("{}", eval.value(tree.out_value[i][0]) as u8),
        ]);
    }
    println!("{t}");

    println!("depth scaling of the AND-CSPP tree (gate levels):");
    let mut t = Table::new(vec!["n", "gates", "settled depth"]);
    for k in 2..=9u32 {
        let n = 1usize << k;
        let mut nl = Netlist::new();
        let tree = CsppTree::build(&mut nl, n, 1, CombineOp::BitAnd);
        let mut inputs = vec![false; nl.num_inputs()];
        inputs[tree.seg[0].0 as usize] = true;
        for i in 0..n {
            inputs[tree.values[i][0].0 as usize] = true;
        }
        let eval = nl.evaluate(&inputs, &[]).expect("settles");
        t.row(vec![
            format!("{n}"),
            format!("{}", nl.logic_gate_count()),
            format!("{}", eval.max_level()),
        ]);
    }
    println!("{t}");
    println!("depth grows by a constant per doubling: Θ(log n), as claimed.");
}
