//! E3 (Figure 5): the 1-bit cyclic segmented parallel-prefix circuit
//! with the AND operator — "can compute for each station whether all
//! the earlier stations have met a particular condition" — evaluated
//! algorithmically and at gate level, plus a depth-scaling sweep.
//!
//! ```text
//! cargo run -p ultrascalar-bench --bin fig05_cspp [-- --json]
//! ```
//!
//! With `--json`, the packed-vs-generic substrate timings are also
//! written to `BENCH_substrate.json`.

use std::time::{Duration, Instant};
use ultrascalar_bench::sweep::json_flag_set;
use ultrascalar_bench::{JsonReport, Table};
use ultrascalar_circuit::generators::{CombineOp, CsppTree};
use ultrascalar_circuit::Netlist;
use ultrascalar_prefix::cspp::cspp_all_earlier;
use ultrascalar_prefix::{
    cspp_tree, AndWords, BoolAnd, First, PackedCsppScratch, PackedCsppScratchW, SlicedCsppScratch,
    SlicedPair,
};

/// Mean seconds per call, doubling the iteration count until one
/// timed batch runs ≥ 20 ms (adaptive, so fast forms stay accurate).
fn time_per_call<F: FnMut() -> u64>(mut f: F) -> f64 {
    for _ in 0..3 {
        std::hint::black_box(f());
    }
    let mut iters = 1u32;
    loop {
        let start = Instant::now();
        let mut acc = 0u64;
        for _ in 0..iters {
            acc = acc.wrapping_add(f());
        }
        let dt = start.elapsed();
        std::hint::black_box(acc);
        if dt.as_secs_f64() >= 0.02 || iters >= 1 << 22 {
            return dt.as_secs_f64() / iters as f64;
        }
        iters *= 2;
    }
}

/// Mean seconds per multi-word packed pass (`64 · W` lanes, every lane
/// carrying the same boolean problem).
fn packed_time_w<const W: usize>(vals: &[bool], seg: &[bool]) -> f64 {
    let vw: Vec<[u64; W]> = vals.iter().map(|&v| [if v { !0 } else { 0 }; W]).collect();
    let sw: Vec<[u64; W]> = seg.iter().map(|&s| [if s { !0 } else { 0 }; W]).collect();
    let mut scratch = PackedCsppScratchW::<W>::new();
    let mut out = Vec::new();
    time_per_call(|| {
        scratch.cspp_into::<AndWords>(&vw, &sw, &mut out);
        out.len() as u64
    })
}

fn main() {
    // The paper's example: oldest = 6; stations {6,7,0,1,3} have met
    // the condition; the circuit outputs high to {7,0,1,2}.
    let n = 8;
    let oldest = 6;
    let mut cond = vec![false; n];
    for i in [6, 7, 0, 1, 3] {
        cond[i] = true;
    }
    println!("Figure 5 — 1-bit CSPP (a ⊗ b = a ∧ b), oldest = {oldest}");
    println!("condition inputs high at stations 6, 7, 0, 1, 3\n");

    let model = cspp_all_earlier(&cond, oldest);

    let mut nl = Netlist::new();
    let tree = CsppTree::build(&mut nl, n, 1, CombineOp::BitAnd);
    let mut inputs = vec![false; nl.num_inputs()];
    for i in 0..n {
        inputs[tree.values[i][0].0 as usize] = cond[i];
        inputs[tree.seg[i].0 as usize] = i == oldest;
    }
    let eval = nl.evaluate(&inputs, &[]).expect("settles");

    let mut t = Table::new(vec![
        "station",
        "input",
        "all earlier met? (model)",
        "(gates)",
    ]);
    for i in 0..n {
        let note = if i == oldest {
            " — ignored (oldest)"
        } else {
            ""
        };
        t.row(vec![
            format!("{i}"),
            format!("{}", cond[i] as u8),
            format!("{}{note}", model[i] as u8),
            format!("{}", eval.value(tree.out_value[i][0]) as u8),
        ]);
    }
    println!("{t}");

    println!("depth scaling of the AND-CSPP tree (gate levels):");
    let mut t = Table::new(vec!["n", "gates", "settled depth"]);
    for k in 2..=9u32 {
        let n = 1usize << k;
        let mut nl = Netlist::new();
        let tree = CsppTree::build(&mut nl, n, 1, CombineOp::BitAnd);
        let mut inputs = vec![false; nl.num_inputs()];
        inputs[tree.seg[0].0 as usize] = true;
        for i in 0..n {
            inputs[tree.values[i][0].0 as usize] = true;
        }
        let eval = nl.evaluate(&inputs, &[]).expect("settles");
        t.row(vec![
            format!("{n}"),
            format!("{}", nl.logic_gate_count()),
            format!("{}", eval.max_level()),
        ]);
    }
    println!("{t}");
    println!("depth grows by a constant per doubling: Θ(log n), as claimed.\n");

    // Simulator-substrate timing: the generic SegPair<bool> tree vs the
    // bit-packed SWAR tree that evaluates 64 lane problems per pass.
    println!("software substrate — boolean AND-CSPP, generic vs packed SWAR:");
    let mut report = JsonReport::new("fig05_substrate");
    let mut t = Table::new(vec![
        "n",
        "generic tree (ns)",
        "W=1, 64 lanes (ns)",
        "W=2, 128 lanes (ns)",
        "W=4, 256 lanes (ns)",
        "per-lane speedup (W=1)",
        "per-lane speedup (W=4)",
    ]);
    let mut dispatch_rows: Vec<(usize, f64, f64, f64, f64)> = Vec::new();
    for &n in &[64usize, 256, 1024] {
        let vals: Vec<bool> = (0..n).map(|i| i % 3 != 1).collect();
        let seg: Vec<bool> = (0..n).map(|i| i % 17 == 4).collect();
        let vw: Vec<u64> = vals.iter().map(|&v| if v { !0 } else { 0 }).collect();
        let sw: Vec<u64> = seg.iter().map(|&s| if s { !0 } else { 0 }).collect();

        let generic_s = time_per_call(|| {
            let out = cspp_tree::<bool, BoolAnd>(&vals, &seg);
            out.iter().filter(|p| p.value).count() as u64
        });
        let mut scratch = PackedCsppScratch::new();
        let mut out = Vec::new();
        let packed_s = time_per_call(|| {
            scratch.cspp_into::<AndWords>(&vw, &sw, &mut out);
            out.len() as u64
        });
        let packed_w2_s = packed_time_w::<2>(&vals, &seg);
        let packed_w4_s = packed_time_w::<4>(&vals, &seg);
        // Dispatch A/B: the W≥2 sweeps are the runtime-dispatched
        // kernels, so re-timing them with the portable substrate
        // pinned (RAII guard) isolates the vector win on this host.
        // On a non-AVX2 host both sides run the same SWAR code and
        // the ratio is ~1.
        let (packed_w2_swar_s, packed_w4_swar_s) = {
            let _swar = ultrascalar_prefix::ForceSwarGuard::force();
            (
                packed_time_w::<2>(&vals, &seg),
                packed_time_w::<4>(&vals, &seg),
            )
        };
        dispatch_rows.push((
            n,
            packed_w2_s,
            packed_w2_swar_s,
            packed_w4_s,
            packed_w4_swar_s,
        ));

        let per_lane_w1 = generic_s / (packed_s / 64.0);
        let per_lane_w4 = generic_s / (packed_w4_s / 256.0);
        t.row(vec![
            format!("{n}"),
            format!("{:.0}", generic_s * 1e9),
            format!("{:.0}", packed_s * 1e9),
            format!("{:.0}", packed_w2_s * 1e9),
            format!("{:.0}", packed_w4_s * 1e9),
            format!("{per_lane_w1:.0}x"),
            format!("{per_lane_w4:.0}x"),
        ]);
        // Per-call times are nanoseconds; report a 1e6-call batch with
        // `steps` = prefix elements processed so `wall_s` keeps its six
        // decimals meaningful and `steps_per_sec` compares elements/s
        // across rows (one packed pass carries `lanes` lane problems
        // of size n, word-parallel).
        const BATCH: f64 = 1e6;
        report.point(
            &format!("generic_tree/n={n}"),
            Duration::from_secs_f64(generic_s * BATCH),
            Some(n as u64 * BATCH as u64),
        );
        report.point_with_lanes(
            &format!("packed_tree_64lane/n={n}"),
            Duration::from_secs_f64(packed_s * BATCH),
            Some(64 * n as u64 * BATCH as u64),
            64,
        );
        report.point_with_lanes(
            &format!("packed_tree_w2_128lane/n={n}"),
            Duration::from_secs_f64(packed_w2_s * BATCH),
            Some(128 * n as u64 * BATCH as u64),
            128,
        );
        report.point_with_lanes(
            &format!("packed_tree_w4_256lane/n={n}"),
            Duration::from_secs_f64(packed_w4_s * BATCH),
            Some(256 * n as u64 * BATCH as u64),
            256,
        );
    }
    println!("{t}");
    println!(
        "one packed pass evaluates 64·W independent lane networks word-parallel;\n\
         W=4 covers the ISA's full 256-register space in a single evaluation.\n"
    );

    // The dispatch A/B table: native dispatch vs the force-SWAR pin on
    // the same multi-word kernels, same inputs, interleaved per size.
    println!(
        "runtime dispatch A/B — detected: {}, active: {} (USIM_FORCE_SWAR pins swar):",
        ultrascalar_prefix::detected_simd_level(),
        ultrascalar_prefix::active_simd_level()
    );
    let mut t = Table::new(vec![
        "n",
        "W=2 native (ns)",
        "W=2 swar (ns)",
        "W=4 native (ns)",
        "W=4 swar (ns)",
        "dispatch speedup (W=4)",
    ]);
    for &(n, w2, w2s, w4, w4s) in &dispatch_rows {
        t.row(vec![
            format!("{n}"),
            format!("{:.0}", w2 * 1e9),
            format!("{:.0}", w2s * 1e9),
            format!("{:.0}", w4 * 1e9),
            format!("{:.0}", w4s * 1e9),
            format!("{:.2}x", w4s / w4),
        ]);
        const BATCH: f64 = 1e6;
        report.point_with_lanes(
            &format!("packed_tree_w2_128lane_swar/n={n}"),
            Duration::from_secs_f64(w2s * BATCH),
            Some(128 * n as u64 * BATCH as u64),
            128,
        );
        report.point_with_lanes(
            &format!("packed_tree_w4_256lane_swar/n={n}"),
            Duration::from_secs_f64(w4s * BATCH),
            Some(256 * n as u64 * BATCH as u64),
            256,
        );
        report.summary(&format!("dispatch_speedup_w2/n={n}"), w2s / w2);
        report.summary(&format!("dispatch_speedup_w4/n={n}"), w4s / w4);
    }
    println!("{t}");
    println!(
        "the `_swar` rows time the identical kernels with dispatch pinned to the\n\
         portable substrate; the native rows are what the engine actually runs.\n"
    );

    // Value forwarding: the bit-sliced CSPP carries whole 32-bit
    // register values as 32 bit-planes per node, so one tree sweep
    // propagates the last-writer value for 64 registers at once — the
    // software analogue of the paper's per-register value datapath.
    // Baseline: the generic segmented tree under the select operator
    // (`a ⊗ b = a`), one register lane per evaluation.
    println!("software substrate — 32-bit value CSPP, generic select-tree vs bit-sliced:");
    let mut t = Table::new(vec![
        "n",
        "generic value tree (ns)",
        "sliced, 64 lanes (ns)",
        "sliced per lane (ns)",
        "per-lane speedup",
    ]);
    for &n in &[64usize, 256, 1024] {
        let vals: Vec<u64> = (0..n as u64)
            .map(|i| (i * 0x9E37 + 5) & 0xFFFF_FFFF)
            .collect();
        let seg: Vec<bool> = (0..n).map(|i| i % 17 == 4).collect();
        let leaves: Vec<SlicedPair<32, 1>> = (0..n)
            .map(|i| {
                let mut leaf = SlicedPair::identity();
                for lane in 0..64u64 {
                    leaf.set_lane(
                        lane as usize,
                        (vals[i] + lane) & 0xFFFF_FFFF,
                        (i + lane as usize) % 17 == 4,
                    );
                }
                leaf
            })
            .collect();

        let generic_s = time_per_call(|| {
            let out = cspp_tree::<u64, First>(&vals, &seg);
            out.iter().map(|p| p.value).sum()
        });
        let mut scratch = SlicedCsppScratch::<32, 1>::new();
        let mut out = Vec::new();
        let sliced_s = time_per_call(|| {
            scratch.cspp_into(&leaves, &mut out);
            out.len() as u64
        });

        let per_lane = sliced_s / 64.0;
        t.row(vec![
            format!("{n}"),
            format!("{:.0}", generic_s * 1e9),
            format!("{:.0}", sliced_s * 1e9),
            format!("{:.0}", per_lane * 1e9),
            format!("{:.1}x", generic_s / per_lane),
        ]);
        const BATCH: f64 = 1e6;
        report.point(
            &format!("generic_value_tree/n={n}"),
            Duration::from_secs_f64(generic_s * BATCH),
            Some(n as u64 * BATCH as u64),
        );
        report.point_with_lanes(
            &format!("sliced_value_64lane/n={n}"),
            Duration::from_secs_f64(sliced_s * BATCH),
            Some(64 * n as u64 * BATCH as u64),
            64,
        );
    }
    println!("{t}");
    println!(
        "one sliced sweep forwards 64 registers' 32-bit values; the engine's\n\
         packed_values path uses the same plane layout for its snapshot."
    );

    let args: Vec<String> = std::env::args().skip(1).collect();
    if json_flag_set(&args) {
        report
            .write_to("BENCH_substrate.json")
            .expect("write BENCH_substrate.json");
    }
}
