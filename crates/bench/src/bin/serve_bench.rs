//! `serve_bench` — load generator and throughput curve for the
//! concurrent `usim serve` socket mode.
//!
//! For each (clients, workers) cell of a grid, the bench runs the real
//! serving stack in-process — [`serve_socket`] on a Unix socket, one
//! OS thread per client — and drives a mixed program × configuration
//! working set shaped like a design-space sweep: each client sends
//! config-grouped blocks (several programs under one configuration
//! before switching), the stream shape config-affinity batching is
//! built for. Per cell it reports requests/sec, p50/p99 round-trip
//! latency, and the cache/pool hit rates read straight from the shared
//! serving state, then writes the grid to `BENCH_serve.json`.
//!
//! The host's CPU count is recorded in the artifact: multi-worker
//! *throughput* scaling is only physically available when the host has
//! cores to scale onto, so the scaling curve must be read against
//! `host_cpus` (a 1-CPU container measures lock/affinity overhead, not
//! parallel speedup).
//!
//! ```text
//! cargo run --release -p ultrascalar-bench --bin serve_bench            full grid
//! cargo run --release -p ultrascalar-bench --bin serve_bench -- --quick   CI grid
//! ```

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ultrascalar_bench::cli::ServeOptions;
use ultrascalar_bench::serve::{serve_socket, ServeShared};
use ultrascalar_bench::Table;

/// The program side of the working set: four kernels with distinct
/// sources (so the program cache serves a real working set).
const PROGRAMS: [&str; 4] = [
    "li r1, 6\\nli r2, 7\\nmul r3, r1, r2\\nhalt\\n",
    "li r1, 0\\nli r2, 8\\nli r3, 0\\nloop:\\nsw r1, (r1)\\nlw r4, (r1)\\nadd r3, r3, r4\\naddi r1, r1, 1\\nblt r1, r2, loop\\nhalt\\n",
    "li r1, 3\\naddi r1, r1, 1\\nadd r2, r2, r1\\nadd r3, r3, r1\\nadd r4, r4, r1\\naddi r1, r1, 2\\nadd r5, r5, r1\\nadd r6, r6, r1\\nhalt\\n",
    "li r1, 5\\nli r2, 9\\nsw r2, (r1)\\nlw r3, (r1)\\nadd r4, r3, r2\\nhalt\\n",
];

/// The configuration side: four topologies, so the engine pool and the
/// affinity slots both work.
const CONFIGS: [&str; 4] = [
    r#"{"arch":"usi","window":8,"predictor":"bimodal:64"}"#,
    r#"{"arch":"usi","window":16,"predictor":"bimodal:64"}"#,
    r#"{"arch":"hybrid","window":16,"cluster":4,"predictor":"bimodal:64","renaming":true}"#,
    r#"{"arch":"usii","window":8,"predictor":"bimodal:64"}"#,
];

/// One grid cell's measurements.
struct Cell {
    workers: usize,
    clients: usize,
    requests: u64,
    wall: Duration,
    p50_us: f64,
    p99_us: f64,
    program_hit_rate: f64,
    engine_warm_rate: f64,
    batched_runs: u64,
    pool_evictions: u64,
    errors: u64,
    disconnects: u64,
}

impl Cell {
    fn rps(&self) -> f64 {
        self.requests as f64 / self.wall.as_secs_f64()
    }
}

/// Build one client's request script: `rounds` passes over the four
/// configurations, each a config-grouped block of the four programs.
/// Clients start at different configurations so the shards see
/// simultaneous distinct working sets.
fn client_script(client: usize, rounds: usize) -> Vec<String> {
    let mut reqs = Vec::with_capacity(rounds * CONFIGS.len() * PROGRAMS.len());
    for _ in 0..rounds {
        for c in 0..CONFIGS.len() {
            let cfg = CONFIGS[(client + c) % CONFIGS.len()];
            for prog in PROGRAMS {
                reqs.push(format!(r#"{{"program":"{prog}","options":{cfg}}}"#));
            }
        }
    }
    reqs
}

/// Connect with retries: the serving thread binds the socket
/// asynchronously to this one.
fn connect(path: &str) -> UnixStream {
    for _ in 0..200 {
        if let Ok(s) = UnixStream::connect(path) {
            return s;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!("serve_bench: could not connect to {path}");
}

fn percentile_us(sorted: &[u64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx] as f64 / 1_000.0
}

/// Run one (clients, workers) cell and measure it.
fn run_cell(workers: usize, clients: usize, rounds: usize) -> Cell {
    let path = std::env::temp_dir()
        .join(format!(
            "usim-serve-bench-{}-w{workers}c{clients}.sock",
            std::process::id()
        ))
        .to_string_lossy()
        .into_owned();
    let shared = Arc::new(ServeShared::new(&ServeOptions {
        socket: Some(path.clone()),
        program_cache: 64,
        engines: 16,
        workers,
        shards: workers,
    }));
    let server = {
        let shared = Arc::clone(&shared);
        let path = path.clone();
        std::thread::spawn(move || serve_socket(&shared, &path).expect("serve_socket"))
    };

    let started = Instant::now();
    let client_threads: Vec<_> = (0..clients)
        .map(|c| {
            let path = path.clone();
            std::thread::spawn(move || {
                let script = client_script(c, rounds);
                let stream = connect(&path);
                let mut reader = BufReader::new(stream.try_clone().expect("clone socket"));
                let mut writer = stream;
                let mut line = String::new();
                let mut latencies: Vec<u64> = Vec::with_capacity(script.len());
                for req in &script {
                    let t0 = Instant::now();
                    writer.write_all(req.as_bytes()).expect("send request");
                    writer.write_all(b"\n").expect("send newline");
                    line.clear();
                    reader.read_line(&mut line).expect("read response");
                    latencies.push(t0.elapsed().as_nanos() as u64);
                    assert!(
                        line.starts_with("{\"ok\":true,"),
                        "request failed: {req} -> {line}"
                    );
                }
                latencies
            })
        })
        .collect();
    let mut latencies: Vec<u64> = Vec::new();
    for t in client_threads {
        latencies.extend(t.join().expect("client thread"));
    }
    let wall = started.elapsed();

    // Stop the serving loop the way a client would.
    let mut stop = connect(&path);
    stop.write_all(b"{\"cmd\":\"shutdown\"}\n")
        .expect("shutdown");
    let mut ack = String::new();
    BufReader::new(stop).read_line(&mut ack).expect("ack");
    server.join().expect("server thread");

    latencies.sort_unstable();
    let c = shared.counters();
    let pc = shared.program_stats();
    let ep = shared.engine_stats();
    Cell {
        workers,
        clients,
        requests: latencies.len() as u64,
        wall,
        p50_us: percentile_us(&latencies, 0.50),
        p99_us: percentile_us(&latencies, 0.99),
        program_hit_rate: pc.hits as f64 / (pc.hits + pc.misses).max(1) as f64,
        engine_warm_rate: ep.hits as f64 / (ep.hits + ep.misses).max(1) as f64,
        batched_runs: c.batched_runs,
        pool_evictions: ep.evictions,
        errors: c.errors,
        disconnects: c.disconnects,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_serve.json".to_string());
    if let Some(bad) = args
        .iter()
        .enumerate()
        .find(|(i, a)| {
            a.as_str() != "--quick" && a.as_str() != "--out" && !(*i > 0 && args[i - 1] == "--out")
        })
        .map(|(_, a)| a)
    {
        eprintln!("serve_bench: unknown argument `{bad}` (--quick, --out PATH)");
        std::process::exit(2);
    }

    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let (worker_grid, client_grid, rounds): (&[usize], &[usize], usize) = if quick {
        (&[1, 2], &[1, 4], 3)
    } else {
        (&[1, 2, 4], &[1, 4, 8], 8)
    };
    eprintln!(
        "serve_bench: host has {host_cpus} CPU{}; workers {:?} x clients {:?}, \
         {} requests per client",
        if host_cpus == 1 { "" } else { "s" },
        worker_grid,
        client_grid,
        rounds * CONFIGS.len() * PROGRAMS.len(),
    );

    let mut cells: Vec<Cell> = Vec::new();
    for &w in worker_grid {
        for &c in client_grid {
            let cell = run_cell(w, c, rounds);
            eprintln!(
                "  workers={w} clients={c}: {:.0} req/s (p50 {:.1} us, p99 {:.1} us)",
                cell.rps(),
                cell.p50_us,
                cell.p99_us
            );
            cells.push(cell);
        }
    }

    let mut t = Table::new(vec![
        "workers",
        "clients",
        "req/s",
        "p50 us",
        "p99 us",
        "prog hit",
        "engine warm",
        "batched",
    ]);
    for cell in &cells {
        t.row(vec![
            cell.workers.to_string(),
            cell.clients.to_string(),
            format!("{:.0}", cell.rps()),
            format!("{:.1}", cell.p50_us),
            format!("{:.1}", cell.p99_us),
            format!("{:.1}%", cell.program_hit_rate * 100.0),
            format!("{:.1}%", cell.engine_warm_rate * 100.0),
            cell.batched_runs.to_string(),
        ]);
    }
    println!("{}", t.render());

    let mut json = String::from("{\n  \"benchmark\": \"serve\",\n");
    json.push_str(&format!("  \"host_cpus\": {host_cpus},\n"));
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str("  \"cells\": [\n");
    for (i, cell) in cells.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"workers\": {}, \"clients\": {}, \"requests\": {}, \
             \"wall_s\": {:.6}, \"rps\": {:.1}, \"p50_us\": {:.2}, \"p99_us\": {:.2}, \
             \"program_cache_hit_rate\": {:.4}, \"engine_warm_rate\": {:.4}, \
             \"batched_runs\": {}, \"pool_evictions\": {}, \"errors\": {}, \
             \"disconnects\": {}}}{}\n",
            cell.workers,
            cell.clients,
            cell.requests,
            cell.wall.as_secs_f64(),
            cell.rps(),
            cell.p50_us,
            cell.p99_us,
            cell.program_hit_rate,
            cell.engine_warm_rate,
            cell.batched_runs,
            cell.pool_evictions,
            cell.errors,
            cell.disconnects,
            if i + 1 == cells.len() { "" } else { "," },
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write report");
    eprintln!("wrote {out_path} ({} cells)", cells.len());
}
