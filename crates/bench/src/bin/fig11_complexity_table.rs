//! E7 (Figure 11): THE comparison table — gate delay, wire delay, total
//! delay and area for the Ultrascalar I, the Ultrascalar II (linear and
//! log gates) and the hybrid, under the paper's three memory-bandwidth
//! regimes. Measured growth exponents (fitted over an n-sweep at
//! L = 32) are printed beside the paper's Θ-claims, plus the dominance
//! and crossover checks from §7.
//!
//! The regime × architecture grid and the crossover searches are
//! independent sweep points, evaluated concurrently through the
//! work-stealing harness; results are printed in input order so the
//! output is byte-identical to a serial run. `--json` additionally
//! writes per-point wall times to `BENCH_engine.json`.
//!
//! ```text
//! cargo run -p ultrascalar-bench --bin fig11_complexity_table [--json]
//! ```

use ultrascalar_bench::fig11::{
    expected, measured_exponents, metrics_of, regime_bandwidth, Arch, REGIMES,
};
use ultrascalar_bench::sweep::{json_flag_set, parallel_map_timed, JsonReport};
use ultrascalar_bench::Table;
use ultrascalar_memsys::Bandwidth;
use ultrascalar_vlsi::metrics::ArchParams;
use ultrascalar_vlsi::{usi, usii, Tech};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut report = JsonReport::new("fig11_complexity_table");
    let tech = Tech::cmos_035();
    let l = 32;

    println!("Figure 11 — complexity comparison (growth exponents in n at L = {l})");
    println!("measured = least-squares power-law fit over n = 4^7..4^10; ✓ = matches the paper's Θ-claim\n");

    // The 3 × 4 grid of exponent fits, one sweep point per cell.
    let grid: Vec<(usize, Arch)> = REGIMES
        .iter()
        .enumerate()
        .flat_map(|(ri, _)| Arch::ALL.into_iter().map(move |a| (ri, a)))
        .collect();
    let fitted = parallel_map_timed(&grid, |&(ri, arch)| {
        measured_exponents(arch, regime_bandwidth(REGIMES[ri]), l, &tech)
    });
    for ((ri, arch), (_, wall)) in grid.iter().zip(&fitted) {
        report.point(&format!("fit/{:?}/{:?}", REGIMES[*ri], arch), *wall, None);
    }

    for (ri, regime) in REGIMES.into_iter().enumerate() {
        println!(
            "=== {} ===",
            match regime {
                ultrascalar_memsys::bandwidth::Regime::BelowSqrt => "M(n) = O(n^(1/2-e))",
                ultrascalar_memsys::bandwidth::Regime::Sqrt => "M(n) = Θ(n^(1/2))",
                ultrascalar_memsys::bandwidth::Regime::AboveSqrt =>
                    "M(n) = Ω(n^(1/2+e)) (using M = n)",
            }
        );
        let mut t = Table::new(vec![
            "architecture",
            "gate (want/got)",
            "wire (want/got)",
            "total (want/got)",
            "area (want/got)",
        ]);
        for (ai, arch) in Arch::ALL.into_iter().enumerate() {
            let want = expected(arch, regime);
            let (got, _) = fitted[ri * Arch::ALL.len() + ai];
            let cell = |w: ultrascalar_bench::fig11::Expo, g: f64| {
                format!(
                    "{} / {:.2} {}",
                    w.describe(),
                    g,
                    if w.matches(g) { "✓" } else { "✗" }
                )
            };
            t.row(vec![
                arch.label().to_string(),
                cell(want.gate, got.gate),
                cell(want.wire, got.wire),
                cell(want.total, got.total),
                cell(want.area, got.area),
            ]);
        }
        println!("{t}");
    }

    // §7 dominance/crossover claims.
    println!("=== §7 dominance checks (low bandwidth, L = {l}) ===");
    let mem = Bandwidth::constant(1.0);
    let mut t = Table::new(vec![
        "n",
        "US-I side mm",
        "US-II side mm",
        "hybrid side mm",
        "smallest",
    ]);
    for k in 2..=8u32 {
        let n = 4usize.pow(k);
        let p = ArchParams {
            n,
            l,
            bits: 32,
            mem,
        };
        let u1 = metrics_of(Arch::UsI, &p, &tech).side_um;
        let u2 = metrics_of(Arch::UsIILinear, &p, &tech).side_um;
        let hy = metrics_of(Arch::Hybrid, &p, &tech).side_um;
        let best = if hy <= u1 && hy <= u2 {
            "hybrid"
        } else if u2 <= u1 {
            "US-II"
        } else {
            "US-I"
        };
        t.row(vec![
            format!("{n}"),
            format!("{:.1}", u1 / 1e3),
            format!("{:.1}", u2 / 1e3),
            format!("{:.1}", hy / 1e3),
            best.to_string(),
        ]);
    }
    println!("{t}");

    // Crossover n* where US-I overtakes US-II, vs Θ(L²). Each L is an
    // independent search — another parallel sweep.
    println!("US-I/US-II crossover vs the paper's n = Θ(L²):");
    let ls = [8usize, 16, 32, 64];
    let crossovers = parallel_map_timed(&ls, |&l| {
        (1..=11u32).map(|k| 4usize.pow(k)).find(|&n| {
            let p = ArchParams {
                n,
                l,
                bits: 32,
                mem,
            };
            usi::metrics(&p, &tech).side_um < usii::side_linear_um(&p, &tech)
        })
    });
    let mut t = Table::new(vec!["L", "crossover n*", "n*/L^2"]);
    for (l, (crossover, wall)) in ls.into_iter().zip(&crossovers) {
        report.point(&format!("crossover/L={l}"), *wall, None);
        match crossover {
            Some(n) => {
                t.row(vec![
                    format!("{l}"),
                    format!("{n}"),
                    format!("{:.2}", *n as f64 / (l * l) as f64),
                ]);
            }
            None => {
                t.row(vec![format!("{l}"), ">4^11".to_string(), "-".to_string()]);
            }
        }
    }
    println!("{t}");
    println!(
        "n*/L² stays within a bounded constant range across L — the\n\
         crossover scales as Θ(L²), as the paper claims."
    );

    if json_flag_set(&args) {
        report.write_default().expect("write BENCH_engine.json");
    }
}
