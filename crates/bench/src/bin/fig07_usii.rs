//! E5 (Figures 7 & 8): the Ultrascalar II register datapath — the
//! worked 4-instruction example resolved through the full gate-level
//! grid, plus the linear-vs-mesh-of-trees depth comparison.
//!
//! ```text
//! cargo run -p ultrascalar-bench --bin fig07_usii
//! ```

use ultrascalar_bench::Table;
use ultrascalar_circuit::build::bus_value;
use ultrascalar_circuit::generators::UsiiDatapath;
use ultrascalar_circuit::Netlist;

const READY: u64 = 1 << 8;

fn describe(v: u64) -> String {
    if v & READY != 0 {
        format!("{} (ready)", v & 0xFF)
    } else {
        "? (not ready)".to_string()
    }
}

fn main() {
    println!("Figure 7/8 — Ultrascalar II datapath, 4 instructions, 4 registers");
    println!(
        "station 0 writes R2 (unfinished); station 1 writes R1 = 7;\n\
         station 2 writes R2 = 9; station 3 reads R2 and R1.\n\
         Station 3's R2 argument must come from station 2's write (9),\n\
         ignoring station 0's earlier unfinished write — out-of-order issue.\n"
    );

    for (tree, label) in [
        (false, "linear grid (Figure 7)"),
        (true, "mesh of trees (Figure 8)"),
    ] {
        let mut nl = Netlist::new();
        let dp = UsiiDatapath::build(&mut nl, 4, 4, 9, tree);
        let mut inputs = vec![false; nl.num_inputs()];
        let set = |bus: &[ultrascalar_circuit::NodeId], v: u64, inputs: &mut Vec<bool>| {
            for (i, &w) in bus.iter().enumerate() {
                inputs[w.0 as usize] = v >> i & 1 == 1;
            }
        };
        // Initial registers r0..r3 = 1..4, ready.
        for r in 0..4 {
            set(&dp.init_value[r], (r as u64 + 1) | READY, &mut inputs);
        }
        set(&dp.st_regnum[0], 2, &mut inputs);
        inputs[dp.st_valid[0].0 as usize] = true;
        set(&dp.st_value[0], 0, &mut inputs); // unfinished
        set(&dp.st_regnum[1], 1, &mut inputs);
        inputs[dp.st_valid[1].0 as usize] = true;
        set(&dp.st_value[1], 7 | READY, &mut inputs);
        set(&dp.st_regnum[2], 2, &mut inputs);
        inputs[dp.st_valid[2].0 as usize] = true;
        set(&dp.st_value[2], 9 | READY, &mut inputs);
        inputs[dp.st_valid[3].0 as usize] = false;
        set(&dp.arg_request[3][0], 2, &mut inputs);
        set(&dp.arg_request[3][1], 1, &mut inputs);

        let eval = nl.evaluate(&inputs, &[]).expect("datapath settles");
        println!(
            "{label}: {} gates, settled depth {}",
            nl.logic_gate_count(),
            eval.max_level()
        );
        let mut t = Table::new(vec!["signal", "value"]);
        t.row(vec![
            "station 3 argument R2".to_string(),
            describe(bus_value(&eval, &dp.arg_value[3][0])),
        ]);
        t.row(vec![
            "station 3 argument R1".to_string(),
            describe(bus_value(&eval, &dp.arg_value[3][1])),
        ]);
        for r in 0..4 {
            t.row(vec![
                format!("outgoing R{r}"),
                describe(bus_value(&eval, &dp.out_value[r])),
            ]);
        }
        println!("{t}");
    }

    println!("depth scaling (all rows bound, request matches row 0 only):");
    let mut t = Table::new(vec![
        "n (stations)",
        "linear depth",
        "tree depth",
        "linear gates",
        "tree gates",
    ]);
    for k in 2..=6u32 {
        let n = 1usize << k;
        let mut row = vec![format!("{n}")];
        let mut gates = Vec::new();
        for tree in [false, true] {
            let mut nl = Netlist::new();
            let col =
                ultrascalar_circuit::generators::UsiiColumn::build(&mut nl, n + 4, 3, 8, tree);
            let mut inputs = vec![false; nl.num_inputs()];
            for r in 0..n + 4 {
                for (i, &w) in col.row_regnum[r].iter().enumerate() {
                    inputs[w.0 as usize] = (if r == 0 { 1u64 } else { 0 }) >> i & 1 == 1;
                }
                inputs[col.row_valid[r].0 as usize] = true;
            }
            inputs[col.request[0].0 as usize] = true; // request = 1
            let eval = nl.evaluate(&inputs, &[]).expect("settles");
            row.push(format!("{}", eval.max_level()));
            gates.push(format!("{}", nl.logic_gate_count()));
        }
        row.extend(gates);
        t.row(row);
    }
    println!("{t}");
    println!("linear column depth grows Θ(rows); tree column Θ(log rows) — Figure 8's point.");
}
