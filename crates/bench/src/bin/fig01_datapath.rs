//! E1 (Figures 1 & 4): the Ultrascalar I datapath snapshot — what each
//! execution station sees on the register-R0 ring, evaluated three
//! ways: the algorithmic CSPP model, the linear mux-ring netlist, and
//! the logarithmic CSPP-tree netlist (with their measured gate depths).
//!
//! ```text
//! cargo run -p ultrascalar-bench --bin fig01_datapath
//! ```

use ultrascalar_bench::Table;
use ultrascalar_circuit::build::bus_value;
use ultrascalar_circuit::generators::{CombineOp, CsppTree, MuxRing};
use ultrascalar_circuit::Netlist;
use ultrascalar_prefix::{cspp_ring, First};

/// The Figure 1 snapshot for register R0, stations 0..7, station 6
/// oldest: station 6 inserts the initial value 10 (ready); station 7
/// has an unfinished write (not ready); station 4 has written 42
/// (ready). Payload encoding: bits 0..8 value, bit 8 ready.
fn snapshot() -> (Vec<u64>, Vec<bool>) {
    const READY: u64 = 1 << 8;
    let mut vals = vec![0u64; 8];
    let mut seg = vec![false; 8];
    vals[6] = 10 | READY;
    seg[6] = true;
    vals[7] = 0; // not ready
    seg[7] = true;
    vals[4] = 42 | READY;
    seg[4] = true;
    (vals, seg)
}

fn describe(v: u64) -> String {
    if v & (1 << 8) != 0 {
        format!("{} (ready)", v & 0xFF)
    } else {
        "? (not ready)".to_string()
    }
}

fn main() {
    let (vals, seg) = snapshot();
    println!("Figure 1/4 — the register-R0 datapath snapshot");
    println!("station 6 oldest; writers: 6 (init 10), 7 (pending), 4 (42)\n");

    // Algorithmic CSPP.
    let model = cspp_ring::<u64, First>(&vals, &seg);

    // Linear mux ring (Figure 1).
    let mut ring_nl = Netlist::new();
    let ring = MuxRing::build(&mut ring_nl, 8, 9);
    let mut inputs = vec![false; ring_nl.num_inputs()];
    for i in 0..8 {
        inputs[ring.modified[i].0 as usize] = seg[i];
        for (b, &w) in ring.inserted[i].iter().enumerate() {
            inputs[w.0 as usize] = vals[i] >> b & 1 == 1;
        }
    }
    let ring_eval = ring_nl.evaluate(&inputs, &[]).expect("ring settles");

    // CSPP tree (Figure 4).
    let mut tree_nl = Netlist::new();
    let tree = CsppTree::build(&mut tree_nl, 8, 9, CombineOp::First);
    let mut inputs = vec![false; tree_nl.num_inputs()];
    for i in 0..8 {
        inputs[tree.seg[i].0 as usize] = seg[i];
        for (b, &w) in tree.values[i].iter().enumerate() {
            inputs[w.0 as usize] = vals[i] >> b & 1 == 1;
        }
    }
    let tree_eval = tree_nl.evaluate(&inputs, &[]).expect("tree settles");

    let mut t = Table::new(vec![
        "station",
        "incoming R0 (model)",
        "mux ring (Fig 1)",
        "CSPP tree (Fig 4)",
    ]);
    for (i, m) in model.iter().enumerate() {
        t.row(vec![
            format!("{i}{}", if i == 6 { " (oldest)" } else { "" }),
            describe(m.value),
            describe(bus_value(&ring_eval, &ring.incoming[i])),
            describe(bus_value(&tree_eval, &tree.out_value[i])),
        ]);
    }
    println!("{t}");
    println!(
        "gate depth: mux ring {} levels (Θ(n)), CSPP tree {} levels (Θ(log n))",
        ring_eval.max_level(),
        tree_eval.max_level()
    );
    println!(
        "gate count: mux ring {} gates, CSPP tree {} gates",
        ring_nl.logic_gate_count(),
        tree_nl.logic_gate_count()
    );
}
