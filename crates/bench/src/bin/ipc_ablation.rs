//! IPC ablation (supports §4's "the Ultrascalar II … is less efficient
//! than the Ultrascalar I because its datapath does not wrap around"):
//! committed IPC of the three processors — plus the conventional
//! baseline — across the kernel suite and window sizes.
//!
//! Every (window, kernel) cell runs its four simulations as one sweep
//! point on the work-stealing harness; rows are printed in input order
//! so the output is byte-identical to a serial run. `--json` writes
//! per-point wall time and simulated cycles to `BENCH_engine.json`.
//!
//! ```text
//! cargo run -p ultrascalar-bench --bin ipc_ablation [--json]
//! ```

use ultrascalar::{BaselineOoO, PredictorKind, ProcConfig, Processor, Ultrascalar};
use ultrascalar_bench::sweep::{json_flag_set, parallel_map_timed, JsonReport};
use ultrascalar_bench::Table;
use ultrascalar_isa::workload;

/// One table cell: the four processors' results on one kernel.
struct Cell {
    kernel: &'static str,
    base_ipc: f64,
    usi_ipc: f64,
    hy_ipc: f64,
    usii_ipc: f64,
    slowdown: f64,
    cycles: u64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut report = JsonReport::new("ipc_ablation");
    println!("IPC across processors (bimodal predictor, ideal memory)\n");

    let windows = [8usize, 16, 32];
    let kernels = workload::standard_suite(7);
    let points: Vec<(usize, usize)> = windows
        .iter()
        .flat_map(|&n| (0..kernels.len()).map(move |k| (n, k)))
        .collect();
    let cells = parallel_map_timed(&points, |&(n, k)| {
        let (name, prog) = &kernels[k];
        let pred = PredictorKind::Bimodal(64);
        let base = BaselineOoO::new(ProcConfig::ultrascalar_i(n).with_predictor(pred)).run(prog);
        let usi = Ultrascalar::new(ProcConfig::ultrascalar_i(n).with_predictor(pred)).run(prog);
        let hy = Ultrascalar::new(ProcConfig::hybrid(n, n / 4).with_predictor(pred)).run(prog);
        let usii = Ultrascalar::new(ProcConfig::ultrascalar_ii(n).with_predictor(pred)).run(prog);
        Cell {
            kernel: name,
            base_ipc: base.ipc(),
            usi_ipc: usi.ipc(),
            hy_ipc: hy.ipc(),
            usii_ipc: usii.ipc(),
            slowdown: usii.cycles as f64 / usi.cycles as f64,
            cycles: base.cycles + usi.cycles + hy.cycles + usii.cycles,
        }
    });

    let mut it = points.iter().zip(&cells);
    for n in windows {
        println!("window n = {n} (hybrid: C = {}):", n / 4);
        let mut t = Table::new(vec![
            "kernel",
            "baseline OoO",
            "US-I (C=1)",
            &format!("hybrid (C={})", n / 4),
            "US-II (C=n)",
            "US-II slowdown",
        ]);
        for _ in 0..kernels.len() {
            let (_, (cell, wall)) = it.next().expect("one cell per (window, kernel)");
            report.point(&format!("n={n}/{}", cell.kernel), *wall, Some(cell.cycles));
            t.row(vec![
                cell.kernel.to_string(),
                format!("{:.2}", cell.base_ipc),
                format!("{:.2}", cell.usi_ipc),
                format!("{:.2}", cell.hy_ipc),
                format!("{:.2}", cell.usii_ipc),
                format!("{:.2}x", cell.slowdown),
            ]);
        }
        println!("{t}");
    }
    println!(
        "US-I matches the conventional baseline exactly (same ILP), the\n\
         hybrid gives most of it back, and the batch-refill US-II pays the\n\
         window-barrier penalty the paper describes in §4."
    );

    if json_flag_set(&args) {
        report.write_default().expect("write BENCH_engine.json");
    }
}
