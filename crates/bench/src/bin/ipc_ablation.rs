//! IPC ablation (supports §4's "the Ultrascalar II … is less efficient
//! than the Ultrascalar I because its datapath does not wrap around"):
//! committed IPC of the three processors — plus the conventional
//! baseline — across the kernel suite and window sizes.
//!
//! Every (window, kernel) cell runs its simulations as one sweep point
//! on the work-stealing harness; rows are printed in input order so
//! the output is byte-identical to a serial run. Each Ultrascalar
//! config runs a multi-seed *population* (the printed program plus
//! lane-variant seeds) through the worker's [`LanePool`], so the
//! per-config simulations lane-batch instead of running serially —
//! the config-major grouping the sweep harness provides. The printed
//! IPC comes from population member 0 (the original program), which
//! the lane engine guarantees byte-identical to a serial run; the
//! baseline OoO model has no lane engine and stays serial. `--json`
//! writes per-point wall time and total simulated cycles (all
//! population members) to `BENCH_engine.json`.
//!
//! ```text
//! cargo run -p ultrascalar-bench --bin ipc_ablation [--json]
//! ```

use std::time::Instant;
use ultrascalar::{BaselineOoO, LaneBatchStats, PredictorKind, ProcConfig, Processor, RunResult};
use ultrascalar_bench::sweep::{json_flag_set, parallel_map_with, JsonReport, LanePool};
use ultrascalar_bench::Table;
use ultrascalar_isa::{workload, Program};

/// Seeds per Ultrascalar config cell: the printed program plus 7
/// lane-variant populations sharing its schedule.
const POP: usize = 8;

/// One table cell: the four processors' results on one kernel.
struct Cell {
    kernel: &'static str,
    base_ipc: f64,
    usi_ipc: f64,
    hy_ipc: f64,
    usii_ipc: f64,
    slowdown: f64,
    cycles: u64,
    lanes: LaneBatchStats,
    wall: std::time::Duration,
}

/// Run the printed program plus `POP - 1` lane-variant seeds as one
/// lane-batched population; returns member 0's result (the printed
/// number) and the population's total simulated cycles.
fn population_run(
    pool: &mut LanePool,
    cfg: &ProcConfig,
    prog: &Program,
    seed: u64,
) -> (RunResult, u64) {
    let mut population = vec![prog.clone()];
    population.extend(workload::lane_variants(prog, POP - 1, seed));
    let refs: Vec<&Program> = population.iter().collect();
    let mut out = vec![RunResult::default(); POP];
    pool.run_population(cfg, &refs, &mut out);
    let cycles = out.iter().map(|r| r.cycles).sum();
    (out.swap_remove(0), cycles)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut report = JsonReport::new("ipc_ablation");
    println!("IPC across processors (bimodal predictor, ideal memory)\n");

    let windows = [8usize, 16, 32];
    let kernels = workload::standard_suite(7);
    let points: Vec<(usize, usize)> = windows
        .iter()
        .flat_map(|&n| (0..kernels.len()).map(move |k| (n, k)))
        .collect();
    let cells = parallel_map_with(&points, LanePool::new, |pool, &(n, k)| {
        let start = Instant::now();
        let (name, prog) = &kernels[k];
        let seed = 0xAB1E ^ ((n as u64) << 16) ^ k as u64;
        let pred = PredictorKind::Bimodal(64);
        let before = pool.stats();
        let base = BaselineOoO::new(ProcConfig::ultrascalar_i(n).with_predictor(pred)).run(prog);
        let (usi, usi_cycles) = population_run(
            pool,
            &ProcConfig::ultrascalar_i(n).with_predictor(pred),
            prog,
            seed,
        );
        let (hy, hy_cycles) = population_run(
            pool,
            &ProcConfig::hybrid(n, n / 4).with_predictor(pred),
            prog,
            seed,
        );
        let (usii, usii_cycles) = population_run(
            pool,
            &ProcConfig::ultrascalar_ii(n).with_predictor(pred),
            prog,
            seed,
        );
        Cell {
            kernel: name,
            base_ipc: base.ipc(),
            usi_ipc: usi.ipc(),
            hy_ipc: hy.ipc(),
            usii_ipc: usii.ipc(),
            slowdown: usii.cycles as f64 / usi.cycles as f64,
            cycles: base.cycles + usi_cycles + hy_cycles + usii_cycles,
            lanes: pool.stats().delta_since(&before),
            wall: start.elapsed(),
        }
    });

    let mut it = points.iter().zip(&cells);
    for n in windows {
        println!("window n = {n} (hybrid: C = {}):", n / 4);
        let mut t = Table::new(vec![
            "kernel",
            "baseline OoO",
            "US-I (C=1)",
            &format!("hybrid (C={})", n / 4),
            "US-II (C=n)",
            "US-II slowdown",
        ]);
        for _ in 0..kernels.len() {
            let (_, cell) = it.next().expect("one cell per (window, kernel)");
            report.point(
                &format!("n={n}/{}", cell.kernel),
                cell.wall,
                Some(cell.cycles),
            );
            t.row(vec![
                cell.kernel.to_string(),
                format!("{:.2}", cell.base_ipc),
                format!("{:.2}", cell.usi_ipc),
                format!("{:.2}", cell.hy_ipc),
                format!("{:.2}", cell.usii_ipc),
                format!("{:.2}x", cell.slowdown),
            ]);
        }
        println!("{t}");
    }
    let mut lanes = LaneBatchStats::default();
    for c in &cells {
        lanes.merge(&c.lanes);
    }
    println!(
        "US-I matches the conventional baseline exactly (same ILP), the\n\
         hybrid gives most of it back, and the batch-refill US-II pays the\n\
         window-barrier penalty the paper describes in §4."
    );
    println!(
        "\nlane-batched populations: {} batches over {} epochs, {} lane \
         runs, {} peels ({} replay), {} serial demotions",
        lanes.batches,
        lanes.epochs,
        lanes.lane_runs,
        lanes.peels,
        lanes.replay_peels,
        lanes.fallbacks
    );
    report.summary("lane_batches", lanes.batches as f64);
    report.summary("lane_runs", lanes.lane_runs as f64);
    report.summary("lane_peels", lanes.peels as f64);
    report.summary("lane_replay_peels", lanes.replay_peels as f64);
    report.summary("lane_fallbacks", lanes.fallbacks as f64);

    if json_flag_set(&args) {
        report.write_default().expect("write BENCH_engine.json");
    }
}
