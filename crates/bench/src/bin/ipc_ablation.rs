//! IPC ablation (supports §4's "the Ultrascalar II … is less efficient
//! than the Ultrascalar I because its datapath does not wrap around"):
//! committed IPC of the three processors — plus the conventional
//! baseline — across the kernel suite and window sizes.
//!
//! ```text
//! cargo run -p ultrascalar-bench --bin ipc_ablation
//! ```

use ultrascalar::{BaselineOoO, PredictorKind, ProcConfig, Processor, Ultrascalar};
use ultrascalar_bench::Table;
use ultrascalar_isa::workload;

fn main() {
    println!("IPC across processors (bimodal predictor, ideal memory)\n");
    for n in [8usize, 16, 32] {
        println!("window n = {n} (hybrid: C = {}):", n / 4);
        let mut t = Table::new(vec![
            "kernel",
            "baseline OoO",
            "US-I (C=1)",
            &format!("hybrid (C={})", n / 4),
            "US-II (C=n)",
            "US-II slowdown",
        ]);
        for (name, prog) in workload::standard_suite(7) {
            let pred = PredictorKind::Bimodal(64);
            let base = BaselineOoO::new(ProcConfig::ultrascalar_i(n).with_predictor(pred))
                .run(&prog);
            let usi = Ultrascalar::new(ProcConfig::ultrascalar_i(n).with_predictor(pred))
                .run(&prog);
            let hy = Ultrascalar::new(ProcConfig::hybrid(n, n / 4).with_predictor(pred))
                .run(&prog);
            let usii = Ultrascalar::new(ProcConfig::ultrascalar_ii(n).with_predictor(pred))
                .run(&prog);
            t.row(vec![
                name.to_string(),
                format!("{:.2}", base.ipc()),
                format!("{:.2}", usi.ipc()),
                format!("{:.2}", hy.ipc()),
                format!("{:.2}", usii.ipc()),
                format!("{:.2}x", usii.cycles as f64 / usi.cycles as f64),
            ]);
        }
        println!("{t}");
    }
    println!(
        "US-I matches the conventional baseline exactly (same ILP), the\n\
         hybrid gives most of it back, and the batch-refill US-II pays the\n\
         window-barrier penalty the paper describes in §4."
    );
}
