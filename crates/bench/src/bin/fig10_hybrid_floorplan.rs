//! E6 (Figures 9 & 10): the hybrid floorplan — the paper's
//! 32-instruction, 4-cluster (C = 8), 8-register, full-bandwidth
//! example, plus the two-level structure across cluster sizes.
//!
//! ```text
//! cargo run -p ultrascalar-bench --bin fig10_hybrid_floorplan
//! ```

use ultrascalar_bench::Table;
use ultrascalar_memsys::Bandwidth;
use ultrascalar_vlsi::metrics::ArchParams;
use ultrascalar_vlsi::{hybrid, usii, Tech};

fn main() {
    let tech = Tech::cmos_035();

    // The paper's example: n = 32, C = 8, L = 8, M(n) = Θ(n).
    let p = ArchParams {
        n: 32,
        l: 8,
        bits: 32,
        mem: Bandwidth::full(),
    };
    let cluster = ArchParams { n: 8, ..p };
    let cl_side = usii::side_linear_um(&cluster, &tech);
    let m = hybrid::metrics_with_cluster(&p, 8, &tech);

    println!("Figure 10 — hybrid floorplan: n = 32, four clusters of C = 8,");
    println!("L = 8 logical registers, full memory bandwidth (M(n) = Θ(n))\n");
    println!(
        "cluster (8-station Ultrascalar II grid): {:.2} mm on a side",
        cl_side / 1e3
    );
    println!(
        "hybrid: side U(32) = {:.2} mm, area {:.1} mm², longest wire {:.2} mm,",
        m.side_um / 1e3,
        m.area_mm2(),
        m.wire_um / 1e3
    );
    println!(
        "gate depth {} levels (cluster search + inter-cluster CSPP tree)\n",
        m.gate_delay
    );

    let plan = ultrascalar_vlsi::floorplan::hybrid_floorplan(&p, 8, &tech);
    assert!(plan.violations().is_empty());
    println!(
        "placed floorplan (C = 8-station Ultrascalar II cluster, # = CSPP/\n\
         memory channel; cluster utilisation {:.1}%):\n",
        100.0 * plan.leaf_utilisation()
    );
    println!("{}", plan.ascii(56));

    println!("two-level structure across cluster sizes (n = 32, L = 8):");
    let mut t = Table::new(vec![
        "C",
        "clusters",
        "cluster mm",
        "hybrid side mm",
        "gate levels",
    ]);
    for c in hybrid::feasible_clusters(32) {
        let mc = hybrid::metrics_with_cluster(&p, c, &tech);
        let cl = usii::side_linear_um(&ArchParams { n: c, ..p }, &tech);
        t.row(vec![
            format!("{c}"),
            format!("{}", 32 / c),
            format!("{:.2}", cl / 1e3),
            format!("{:.2}", mc.side_um / 1e3),
            format!("{:.0}", mc.gate_delay),
        ]);
    }
    println!("{t}");
    println!(
        "the Figure 9 modified-bit OR trees are folded into the cluster\n\
         pitch (a constant-factor strip), as in the paper's Magic layout."
    );
}
