//! E8 (Figure 12): the empirical layout comparison — a 64-wide
//! Ultrascalar I register datapath vs a 128-wide 4-cluster hybrid, in
//! the calibrated 0.35 µm technology, with the paper's measured numbers
//! beside the model's.
//!
//! ```text
//! cargo run -p ultrascalar-bench --bin fig12_empirical_layouts
//! ```

use ultrascalar_bench::Table;
use ultrascalar_vlsi::empirical::figure12;
use ultrascalar_vlsi::floorplan::LayoutCache;
use ultrascalar_vlsi::metrics::ArchParams;
use ultrascalar_vlsi::{hybrid, usi, Tech};

fn main() {
    println!("Figure 12 — empirical layouts, 0.35 µm CMOS, 3 metal layers,");
    println!("32 × 32-bit logical registers, M(n) = Θ(1) memory datapath\n");

    let f = figure12(&Tech::cmos_035());
    let mut t = Table::new(vec![
        "datapath",
        "stations",
        "model size",
        "paper size",
        "model dens (proc/m²)",
        "paper dens",
    ]);
    t.row(vec![
        "Ultrascalar I (64-wide)".to_string(),
        format!("{}", f.ultrascalar_i.stations),
        format!(
            "{:.1} cm × {:.1} cm",
            f.ultrascalar_i.width_cm, f.ultrascalar_i.height_cm
        ),
        "7 cm × 7 cm".to_string(),
        format!("{:.0}", f.ultrascalar_i.stations_per_m2),
        "≈13,000".to_string(),
    ]);
    t.row(vec![
        "Hybrid (128-wide, 4 clusters)".to_string(),
        format!("{}", f.hybrid.stations),
        format!("{:.1} cm × {:.1} cm", f.hybrid.width_cm, f.hybrid.height_cm),
        "3.2 cm × 2.7 cm".to_string(),
        format!("{:.0}", f.hybrid.stations_per_m2),
        "≈150,000".to_string(),
    ]);
    println!("{t}");
    println!(
        "density ratio hybrid/US-I: model {:.1}× — paper: \"about 11.5 times denser\"",
        f.density_ratio
    );
    println!(
        "\ncalibration note: the technology constants are fitted once to the\n\
         paper's 7 cm Ultrascalar I measurement; the hybrid's size and the\n\
         density ratio are then model outputs (see EXPERIMENTS.md)."
    );

    // Scaling the *placed* floorplans (every station, cluster and
    // channel strip an explicit rectangle) well past the paper's
    // measured points. The memoised layout cache answers each size
    // from the previous one's rectangle prefix — byte-identical to a
    // from-scratch placement — so the sweep extends to n = 4096
    // without re-deriving 2n − 1 rectangles per point.
    println!("\nplaced floorplans at scale (memoised subtree layouts, 0.35 µm):");
    let tech = Tech::cmos_035();
    let mut cache = LayoutCache::new();
    let mut t = Table::new(vec![
        "n",
        "US-I rects",
        "US-I side (cm)",
        "hybrid rects",
        "hybrid side (cm)",
        "util US-I",
        "util hybrid",
    ]);
    for n in [64usize, 128, 256, 512, 1024, 2048, 4096] {
        let p = ArchParams::paper_empirical(n);
        let f_usi = cache.usi_floorplan(&p, &tech);
        let f_hy = cache.hybrid_floorplan(&p, 32, &tech);
        // Placed bounding boxes must land exactly on the analytic
        // recurrences the paper's Figure 11 row evaluates.
        let bb_usi = f_usi.bounding();
        let side_usi = usi::side_um(&p, &tech);
        assert!(
            (bb_usi.w.max(bb_usi.h) - side_usi).abs() / side_usi < 1e-9,
            "n={n}: US-I placement disagrees with recurrence"
        );
        let bb_hy = f_hy.bounding();
        let side_hy = hybrid::side_um(&p, 32, &tech);
        assert!(
            (bb_hy.w.max(bb_hy.h) - side_hy).abs() / side_hy < 1e-9,
            "n={n}: hybrid placement disagrees with recurrence"
        );
        assert_eq!(f_usi.leaves(), n);
        assert_eq!(f_hy.leaves(), n / 32);
        t.row(vec![
            format!("{n}"),
            format!("{}", f_usi.rects.len()),
            format!("{:.1}", side_usi / 1e4),
            format!("{}", f_hy.rects.len()),
            format!("{:.1}", side_hy / 1e4),
            format!("{:.3}", f_usi.leaf_utilisation()),
            format!("{:.3}", f_hy.leaf_utilisation()),
        ]);
    }
    println!("{t}");
    println!(
        "layout cache: {} families, {} rects built, {} served from memoised prefixes",
        cache.families(),
        cache.rects_built(),
        cache.rects_reused()
    );

    println!("\nprojection to 0.1 µm (the paper's closing claim):");
    let f10 = figure12(&Tech::cmos_010());
    println!(
        "128-window hybrid: {:.2} cm × {:.2} cm — the paper predicts a\n\
         window-128, 16-shared-ALU hybrid \"fits easily within a chip 1 cm\n\
         on a side\" (ours keeps all 128 per-station ALUs and still lands\n\
         close to 1 cm).",
        f10.hybrid.width_cm, f10.hybrid.height_cm
    );
}
