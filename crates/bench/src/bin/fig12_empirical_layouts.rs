//! E8 (Figure 12): the empirical layout comparison — a 64-wide
//! Ultrascalar I register datapath vs a 128-wide 4-cluster hybrid, in
//! the calibrated 0.35 µm technology, with the paper's measured numbers
//! beside the model's.
//!
//! ```text
//! cargo run -p ultrascalar-bench --bin fig12_empirical_layouts
//! ```

use ultrascalar_bench::Table;
use ultrascalar_vlsi::empirical::figure12;
use ultrascalar_vlsi::Tech;

fn main() {
    println!("Figure 12 — empirical layouts, 0.35 µm CMOS, 3 metal layers,");
    println!("32 × 32-bit logical registers, M(n) = Θ(1) memory datapath\n");

    let f = figure12(&Tech::cmos_035());
    let mut t = Table::new(vec![
        "datapath",
        "stations",
        "model size",
        "paper size",
        "model dens (proc/m²)",
        "paper dens",
    ]);
    t.row(vec![
        "Ultrascalar I (64-wide)".to_string(),
        format!("{}", f.ultrascalar_i.stations),
        format!(
            "{:.1} cm × {:.1} cm",
            f.ultrascalar_i.width_cm, f.ultrascalar_i.height_cm
        ),
        "7 cm × 7 cm".to_string(),
        format!("{:.0}", f.ultrascalar_i.stations_per_m2),
        "≈13,000".to_string(),
    ]);
    t.row(vec![
        "Hybrid (128-wide, 4 clusters)".to_string(),
        format!("{}", f.hybrid.stations),
        format!("{:.1} cm × {:.1} cm", f.hybrid.width_cm, f.hybrid.height_cm),
        "3.2 cm × 2.7 cm".to_string(),
        format!("{:.0}", f.hybrid.stations_per_m2),
        "≈150,000".to_string(),
    ]);
    println!("{t}");
    println!(
        "density ratio hybrid/US-I: model {:.1}× — paper: \"about 11.5 times denser\"",
        f.density_ratio
    );
    println!(
        "\ncalibration note: the technology constants are fitted once to the\n\
         paper's 7 cm Ultrascalar I measurement; the hybrid's size and the\n\
         density ratio are then model outputs (see EXPERIMENTS.md)."
    );

    println!("\nprojection to 0.1 µm (the paper's closing claim):");
    let f10 = figure12(&Tech::cmos_010());
    println!(
        "128-window hybrid: {:.2} cm × {:.2} cm — the paper predicts a\n\
         window-128, 16-shared-ALU hybrid \"fits easily within a chip 1 cm\n\
         on a side\" (ours keeps all 128 per-station ALUs and still lands\n\
         close to 1 cm).",
        f10.hybrid.width_cm, f10.hybrid.height_cm
    );
}
