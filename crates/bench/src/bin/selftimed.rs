//! Self-timing / pipelining study (§7): "for each of the three
//! processors it is possible to pipeline the system … a program could
//! run faster if most of its instructions depend on their immediate
//! predecessors rather than on far-previous instructions." Run the
//! suite under distance-dependent forwarding latency and correlate the
//! slowdown with each kernel's forwarding locality.
//!
//! ```text
//! cargo run -p ultrascalar-bench --bin selftimed
//! ```

use ultrascalar::{ForwardModel, PredictorKind, ProcConfig, Processor, Ultrascalar};
use ultrascalar_bench::Table;
use ultrascalar_isa::workload;

fn main() {
    let n = 16;
    println!("§7 pipelined-datapath study — Ultrascalar I, n = {n}");
    println!("forwarding latency: per_hop · 2 · (H-tree levels between stations)\n");

    let mut t = Table::new(vec![
        "kernel",
        "flat cycles",
        "per_hop=1",
        "per_hop=2",
        "slowdown@2",
        "local fwd frac",
    ]);
    let mut rows: Vec<(f64, f64)> = Vec::new();
    for (name, prog) in workload::standard_suite(17) {
        let pred = PredictorKind::Bimodal(64);
        let flat = Ultrascalar::new(ProcConfig::ultrascalar_i(n).with_predictor(pred)).run(&prog);
        let p1 = Ultrascalar::new(
            ProcConfig::ultrascalar_i(n)
                .with_predictor(pred)
                .with_forwarding(ForwardModel::Pipelined { per_hop: 1 }),
        )
        .run(&prog);
        let p2 = Ultrascalar::new(
            ProcConfig::ultrascalar_i(n)
                .with_predictor(pred)
                .with_forwarding(ForwardModel::Pipelined { per_hop: 2 }),
        )
        .run(&prog);
        assert_eq!(flat.regs, p2.regs);
        let slowdown = p2.cycles as f64 / flat.cycles as f64;
        let local = flat.stats.local_forward_fraction();
        rows.push((local, slowdown));
        t.row(vec![
            name.to_string(),
            format!("{}", flat.cycles),
            format!("{}", p1.cycles),
            format!("{}", p2.cycles),
            format!("{:.2}x", slowdown),
            format!("{:.0}%", 100.0 * local),
        ]);
    }
    println!("{t}");

    // Rank correlation between locality and slowdown (should be
    // negative: more local → less slowdown).
    let mean_l = rows.iter().map(|r| r.0).sum::<f64>() / rows.len() as f64;
    let mean_s = rows.iter().map(|r| r.1).sum::<f64>() / rows.len() as f64;
    let cov: f64 = rows
        .iter()
        .map(|r| (r.0 - mean_l) * (r.1 - mean_s))
        .sum::<f64>();
    let var_l: f64 = rows.iter().map(|r| (r.0 - mean_l).powi(2)).sum();
    let var_s: f64 = rows.iter().map(|r| (r.1 - mean_s).powi(2)).sum();
    let corr = cov / (var_l.sqrt() * var_s.sqrt()).max(1e-12);
    println!(
        "correlation(locality, slowdown) = {corr:.2} — {}",
        if corr < 0.0 {
            "negative, as the paper's back-of-envelope predicts:\nprograms that depend on immediate predecessors tolerate pipelining best."
        } else {
            "unexpectedly non-negative on this kernel set."
        }
    );
}
