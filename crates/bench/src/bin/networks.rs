//! Interconnect comparison (§2): "we propose to connect the
//! Ultrascalar I datapath to an interleaved data cache … via two
//! fat-tree or butterfly networks." Drive both topologies with the
//! same workloads and offered-load microbenchmarks.
//!
//! ```text
//! cargo run -p ultrascalar-bench --bin networks
//! ```

use ultrascalar::{EnginePool, PredictorKind, ProcConfig};
use ultrascalar_bench::{parallel_map_with, Table};
use ultrascalar_isa::workload;
use ultrascalar_memsys::{Bandwidth, MemConfig, MemRequest, MemSystem, NetworkKind, ReqKind};

/// Cycles to drain a burst of requests through `m` (rewound first).
///
/// Every network admits at least one request per cycle once older
/// traffic clears, so a burst that outlives the cap means the model
/// stopped accepting — panic with the evidence rather than spinning
/// forever.
fn drain(m: &mut MemSystem, reqs: &[MemRequest]) -> u64 {
    m.reset(&[]);
    let mut pending: Vec<MemRequest> = reqs.to_vec();
    let cap = 1_000 + 100 * reqs.len() as u64;
    let mut t = 0u64;
    while !pending.is_empty() {
        assert!(
            t < cap,
            "network failed to drain: {} of {} requests still pending after {t} cycles \
             (first stuck id {})",
            pending.len(),
            reqs.len(),
            pending[0].id
        );
        let (acc, _) = m.tick(t, &pending);
        pending.retain(|r| !acc.contains(&r.id));
        t += 1;
    }
    t
}

fn main() {
    let n = 64;
    println!("fat tree vs butterfly — {n} stations, M(n) = √n = 8 ports\n");

    let base = MemConfig {
        n_leaves: n,
        bandwidth: Bandwidth::sqrt(),
        banks: 64,
        bank_occupancy: 1,
        hop_latency: 0,
        base_latency: 0,
        words: 1 << 12,
        network: NetworkKind::FatTree,
        cluster_cache: None,
    };

    // Offered-load microbenchmark: cycles to drain a burst of requests
    // under traffic patterns that stress each topology's weakness.
    let mk = |pairs: Vec<(usize, usize)>| -> Vec<MemRequest> {
        pairs
            .into_iter()
            .enumerate()
            .map(|(id, (leaf, addr))| MemRequest {
                id: id as u64,
                leaf,
                addr,
                kind: ReqKind::Load,
            })
            .collect()
    };
    let bitrev6 = |x: usize| (0..6).fold(0usize, |acc, b| acc | ((x >> b & 1) << (5 - b)));
    let patterns: Vec<(&str, Vec<MemRequest>)> = vec![
        (
            "uniform stride-1 (all leaves)",
            mk((0..n).map(|i| (i, i)).collect()),
        ),
        (
            "single hot address (all leaves)",
            mk((0..n).map(|i| (i, 5)).collect()),
        ),
        (
            // Fat-tree weakness: a burst from one 16-leaf subtree is
            // capped by that subtree's M(16) = 4 links; the butterfly
            // has no subtree cap.
            "burst from one quadrant (16 reqs)",
            mk((0..16).map(|i| (i, i * 5)).collect()),
        ),
        (
            // Butterfly weakness: the bit-reversal permutation forces
            // path conflicts; the fat tree only sees its port limit.
            "bit-reversal permutation (all leaves)",
            mk((0..n).map(|i| (i, bitrev6(i))).collect()),
        ),
    ];
    let mut t = Table::new(vec!["traffic", "fat tree (cycles)", "butterfly (cycles)"]);
    // Each worker keeps one memory system per topology and rewinds
    // them per traffic pattern.
    let fly_cfg = base.clone().with_network(NetworkKind::Butterfly);
    let drained = parallel_map_with(
        &patterns,
        || {
            (
                MemSystem::new(base.clone(), &[]),
                MemSystem::new(fly_cfg.clone(), &[]),
            )
        },
        |(tree, fly), (_, reqs)| (drain(tree, reqs), drain(fly, reqs)),
    );
    for ((name, _), (tree, fly)) in patterns.iter().zip(&drained) {
        t.row(vec![name.to_string(), format!("{tree}"), format!("{fly}")]);
    }
    println!("{t}");

    // Whole-processor effect.
    println!("kernel suite through an n = 16 Ultrascalar I (√n bandwidth):");
    let mut t = Table::new(vec!["kernel", "fat tree", "butterfly"]);
    let mem16 = MemConfig {
        n_leaves: 16,
        banks: 8,
        ..base.clone()
    };
    let pred = PredictorKind::Bimodal(64);
    let cfg_tree = ProcConfig::ultrascalar_i(16)
        .with_predictor(pred)
        .with_mem(mem16.clone());
    let cfg_fly = ProcConfig::ultrascalar_i(16)
        .with_predictor(pred)
        .with_mem(mem16.clone().with_network(NetworkKind::Butterfly));
    let suite = workload::standard_suite(29);
    // Each worker keeps one warm engine per topology.
    let results = parallel_map_with(
        &suite,
        || EnginePool::new(2),
        |pool, (_, prog)| {
            let tree = pool.acquire(&cfg_tree).run(prog).clone();
            let fly = pool.acquire(&cfg_fly).run(prog).clone();
            (tree, fly)
        },
    );
    for ((name, _), (tree, fly)) in suite.iter().zip(&results) {
        assert_eq!(tree.regs, fly.regs, "{name}");
        t.row(vec![
            name.to_string(),
            format!("{}", tree.cycles),
            format!("{}", fly.cycles),
        ]);
    }
    println!("{t}");
    println!(
        "both topologies are architecturally transparent; they differ only\n\
         in how contention shapes the schedule — the fat tree guarantees\n\
         per-subtree bandwidth, the butterfly wins on conflict-free\n\
         permutations and loses on adversarial ones."
    );
}
