//! Interconnect comparison (§2): "we propose to connect the
//! Ultrascalar I datapath to an interleaved data cache … via two
//! fat-tree or butterfly networks." Drive both topologies with the
//! same workloads and offered-load microbenchmarks.
//!
//! ```text
//! cargo run -p ultrascalar-bench --bin networks
//! ```

use ultrascalar::{PredictorKind, ProcConfig, Processor, Ultrascalar};
use ultrascalar_bench::Table;
use ultrascalar_isa::workload;
use ultrascalar_memsys::{Bandwidth, MemConfig, MemRequest, MemSystem, NetworkKind, ReqKind};

fn drain(cfg: MemConfig, reqs: &[MemRequest]) -> u64 {
    let mut m = MemSystem::new(cfg, &[]);
    let mut pending: Vec<MemRequest> = reqs.to_vec();
    let mut t = 0u64;
    while !pending.is_empty() {
        let (acc, _) = m.tick(t, &pending);
        pending.retain(|r| !acc.contains(&r.id));
        t += 1;
    }
    t
}

fn main() {
    let n = 64;
    println!("fat tree vs butterfly — {n} stations, M(n) = √n = 8 ports\n");

    let base = MemConfig {
        n_leaves: n,
        bandwidth: Bandwidth::sqrt(),
        banks: 64,
        bank_occupancy: 1,
        hop_latency: 0,
        base_latency: 0,
        words: 1 << 12,
        network: NetworkKind::FatTree,
        cluster_cache: None,
    };

    // Offered-load microbenchmark: cycles to drain a burst of requests
    // under traffic patterns that stress each topology's weakness.
    let mk = |pairs: Vec<(usize, usize)>| -> Vec<MemRequest> {
        pairs
            .into_iter()
            .enumerate()
            .map(|(id, (leaf, addr))| MemRequest {
                id: id as u64,
                leaf,
                addr,
                kind: ReqKind::Load,
            })
            .collect()
    };
    let bitrev6 = |x: usize| (0..6).fold(0usize, |acc, b| acc | ((x >> b & 1) << (5 - b)));
    let patterns: Vec<(&str, Vec<MemRequest>)> = vec![
        (
            "uniform stride-1 (all leaves)",
            mk((0..n).map(|i| (i, i)).collect()),
        ),
        (
            "single hot address (all leaves)",
            mk((0..n).map(|i| (i, 5)).collect()),
        ),
        (
            // Fat-tree weakness: a burst from one 16-leaf subtree is
            // capped by that subtree's M(16) = 4 links; the butterfly
            // has no subtree cap.
            "burst from one quadrant (16 reqs)",
            mk((0..16).map(|i| (i, i * 5)).collect()),
        ),
        (
            // Butterfly weakness: the bit-reversal permutation forces
            // path conflicts; the fat tree only sees its port limit.
            "bit-reversal permutation (all leaves)",
            mk((0..n).map(|i| (i, bitrev6(i))).collect()),
        ),
    ];
    let mut t = Table::new(vec!["traffic", "fat tree (cycles)", "butterfly (cycles)"]);
    for (name, reqs) in &patterns {
        let tree = drain(base.clone(), reqs);
        let fly = drain(base.clone().with_network(NetworkKind::Butterfly), reqs);
        t.row(vec![name.to_string(), format!("{tree}"), format!("{fly}")]);
    }
    println!("{t}");

    // Whole-processor effect.
    println!("kernel suite through an n = 16 Ultrascalar I (√n bandwidth):");
    let mut t = Table::new(vec!["kernel", "fat tree", "butterfly"]);
    let mem16 = MemConfig {
        n_leaves: 16,
        banks: 8,
        ..base.clone()
    };
    for (name, prog) in workload::standard_suite(29) {
        let pred = PredictorKind::Bimodal(64);
        let tree = Ultrascalar::new(
            ProcConfig::ultrascalar_i(16)
                .with_predictor(pred)
                .with_mem(mem16.clone()),
        )
        .run(&prog);
        let fly = Ultrascalar::new(
            ProcConfig::ultrascalar_i(16)
                .with_predictor(pred)
                .with_mem(mem16.clone().with_network(NetworkKind::Butterfly)),
        )
        .run(&prog);
        assert_eq!(tree.regs, fly.regs, "{name}");
        t.row(vec![
            name.to_string(),
            format!("{}", tree.cycles),
            format!("{}", fly.cycles),
        ]);
    }
    println!("{t}");
    println!(
        "both topologies are architecturally transparent; they differ only\n\
         in how contention shapes the schedule — the fat tree guarantees\n\
         per-subtree bandwidth, the butterfly wins on conflict-free\n\
         permutations and loses on adversarial ones."
    );
}
