//! Memory-renaming study (§7): "the memory bandwidth pressure can also
//! be reduced by using memory-renaming hardware, which can be
//! implemented by CSPP circuits. With the right caching and renaming
//! protocols, it is conceivable that a processor could require
//! substantially reduced memory bandwidth, resulting in dramatically
//! reduced chip complexity." Measure cycles and memory traffic with
//! renaming off/on under a constrained fat tree.
//!
//! ```text
//! cargo run -p ultrascalar-bench --bin mem_renaming
//! ```

use ultrascalar::{PredictorKind, ProcConfig, Processor, Ultrascalar};
use ultrascalar_bench::Table;
use ultrascalar_isa::workload;
use ultrascalar_memsys::{Bandwidth, MemConfig, NetworkKind};

fn main() {
    let n = 16;
    let mem = MemConfig {
        n_leaves: n,
        bandwidth: Bandwidth::constant(2.0), // tight M(n) = 2
        banks: 8,
        bank_occupancy: 1,
        hop_latency: 1,
        base_latency: 0,
        words: 1 << 12,
        network: NetworkKind::FatTree,
        cluster_cache: None,
    };
    println!("§7 memory renaming — Ultrascalar I, n = {n}, M(n) = 2 ports\n");

    let mut t = Table::new(vec![
        "kernel",
        "cycles (plain)",
        "cycles (renamed)",
        "speedup",
        "mem loads plain",
        "mem loads renamed",
        "store→load fwds",
    ]);
    let mut saved_total = 0i64;
    for (name, prog) in workload::standard_suite(23) {
        let pred = PredictorKind::Bimodal(64);
        let plain = Ultrascalar::new(
            ProcConfig::ultrascalar_i(n)
                .with_predictor(pred)
                .with_mem(mem.clone()),
        )
        .run(&prog);
        let renamed = Ultrascalar::new(
            ProcConfig::ultrascalar_i(n)
                .with_predictor(pred)
                .with_mem(mem.clone())
                .with_memory_renaming(),
        )
        .run(&prog);
        assert_eq!(plain.regs, renamed.regs, "{name}");
        assert_eq!(plain.mem, renamed.mem, "{name}");
        saved_total += plain.stats.mem.loads as i64 - renamed.stats.mem.loads as i64;
        t.row(vec![
            name.to_string(),
            format!("{}", plain.cycles),
            format!("{}", renamed.cycles),
            format!("{:.2}x", plain.cycles as f64 / renamed.cycles as f64),
            format!("{}", plain.stats.mem.loads),
            format!("{}", renamed.stats.mem.loads),
            format!("{}", renamed.stats.store_forwards),
        ]);
    }
    println!("{t}");
    println!(
        "renaming removed {saved_total} load round-trips across the suite and\n\
         never changed architectural state — bandwidth pressure drops exactly\n\
         as §7 anticipates (smaller M(n) ⇒ smaller chip, per Figure 11)."
    );
}
