//! E2 (Figure 3): the timing diagram of the paper's eight-instruction
//! example on the Ultrascalar I, with division = 10 cycles,
//! multiplication = 3, addition = 1.
//!
//! ```text
//! cargo run -p ultrascalar-bench --bin fig03_timing
//! ```

use ultrascalar::{render_timing_diagram, ProcConfig, Processor, Ultrascalar};
use ultrascalar_isa::workload;

fn main() {
    let prog = workload::figure1_sequence();
    let mut proc = Ultrascalar::new(ProcConfig::ultrascalar_i(8));
    let result = proc.run(&prog);
    println!("Figure 3 — relative execution time of each instruction");
    println!("(division 10 cycles, multiplication 3, addition 1)\n");
    println!("{}", render_timing_diagram(&result.timings));
    println!(
        "total: {} cycles for {} instructions (IPC {:.2})",
        result.cycles,
        result.stats.committed,
        result.ipc()
    );
    println!(
        "\nNote the out-of-order hallmark the paper highlights: the\n\
         `sub r0, r5, r6` (station 4) computes immediately, while the\n\
         *earlier* write of R0 (`add r0, r0, r3`, station 7) waits ten\n\
         cycles for the divide — register renaming via the CSPP datapath."
    );
}
