//! Lanes-vs-serial throughput: the lane-parallel batch engine against
//! serial warm-engine runs, over batch sizes {1, 8, 16, 32, 64}.
//!
//! Each cell times the same population of programs — one seeded kernel
//! vectorized over `b` lanes with per-lane initial registers — both
//! ways: `b` serial `run_reusing` passes on a warm scalar engine, and
//! one `LaneBatchEngine::run_batch` (leader engine pass + bit-sliced
//! lock-step for the rest). Both sides are measured in interleaved
//! rounds with the order rotated per round, per-round ratios, median
//! over rounds — the step_ab drift-cancelling protocol.
//!
//! Usage: `lanes_ab [--json] [--quick]`. `--json` writes
//! `BENCH_lanes.json` with per-cell throughput points and
//! `speedup/...` summary rows; `--quick` trims rounds and kernel sizes
//! for CI smoke runs.

use std::time::Instant;
use ultrascalar::{LaneBatchEngine, ProcConfig, Processor, RunResult, Ultrascalar};
use ultrascalar_bench::kernels::{div_chain_seeded, forward_fan_seeded, wide_div_chain_seeded};
use ultrascalar_bench::sweep::{geomean, json_flag_set};
use ultrascalar_bench::{JsonReport, Table};
use ultrascalar_isa::{workload, Program};

/// Median of a small unsorted sample (averages the middle pair when
/// the length is even).
fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    let m = xs.len() / 2;
    if xs.len() % 2 == 1 {
        xs[m]
    } else {
        (xs[m - 1] + xs[m]) / 2.0
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let rounds = if quick { 3 } else { 7 };
    let iters = if quick { 16 } else { 48 };
    let batch_sizes: &[usize] = &[1, 8, 16, 32, 64];

    println!("== lane-parallel batch vs serial engine runs ==\n");
    println!("{rounds} interleaved rounds per cell; per-round ratio, median over rounds.\n");

    let kernels: Vec<(&str, Program)> = vec![
        ("div_chain", div_chain_seeded(iters)),
        ("wide_div_chain_r128", wide_div_chain_seeded(iters)),
        ("forward_fan", forward_fan_seeded(iters)),
    ];
    // The pipelined row exercises lane batching over the hop-banded
    // packed readiness path (distance-dependent forwarding used to
    // block the packed substrate entirely).
    let archs: Vec<(&str, ProcConfig)> = vec![
        ("usi", ProcConfig::ultrascalar_i(64)),
        ("usii", ProcConfig::ultrascalar_ii(64)),
        (
            "usi_pipelined",
            ProcConfig::ultrascalar_i(64)
                .with_forwarding(ultrascalar::ForwardModel::Pipelined { per_hop: 1 }),
        ),
    ];

    let mut t = Table::new(vec![
        "arch",
        "kernel",
        "batch",
        "serial ms",
        "lanes ms",
        "speedup",
        "peels",
    ]);
    let mut report = JsonReport::new("lanes_ab");
    let mut speedups_at_full: Vec<f64> = Vec::new();

    for (arch, cfg) in &archs {
        for (kernel, prog) in &kernels {
            for &b in batch_sizes {
                let programs = workload::lane_variants(prog, b, 0x1A17E5);
                let refs: Vec<&Program> = programs.iter().collect();

                // Warm both sides outside the measurement.
                let mut serial_engine = Ultrascalar::new(cfg.clone());
                let mut serial_out = RunResult::default();
                let mut lane_engine = LaneBatchEngine::new(cfg.clone());
                let mut lane_out = vec![RunResult::default(); b];
                for p in &refs {
                    serial_engine.run_reusing(p, &mut serial_out);
                }
                lane_engine.run_batch(&refs, &mut lane_out);
                let steps = b as u64 * serial_out.stats.committed;

                let mut ts: Vec<f64> = Vec::with_capacity(rounds);
                let mut tl: Vec<f64> = Vec::with_capacity(rounds);
                let mut ratio: Vec<f64> = Vec::with_capacity(rounds);
                for round in 0..rounds {
                    let mut s = 0.0;
                    let mut l = 0.0;
                    for which in if round % 2 == 0 { [0, 1] } else { [1, 0] } {
                        if which == 0 {
                            let start = Instant::now();
                            for p in &refs {
                                serial_engine.run_reusing(p, &mut serial_out);
                            }
                            s = start.elapsed().as_secs_f64();
                        } else {
                            let start = Instant::now();
                            lane_engine.run_batch(&refs, &mut lane_out);
                            l = start.elapsed().as_secs_f64();
                        }
                    }
                    ts.push(s);
                    tl.push(l);
                    ratio.push(s / l);
                }
                let (ms, ml) = (median(&mut ts), median(&mut tl));
                let mr = median(&mut ratio);
                let stats = *lane_engine.lane_stats();
                if b >= 2 && stats.batches == 0 {
                    eprintln!(
                        "warning: {arch}/{kernel}/b={b} never lane-batched \
                         (fallbacks {})",
                        stats.fallbacks
                    );
                }
                if b == 64 {
                    speedups_at_full.push(mr);
                }
                t.row(vec![
                    arch.to_string(),
                    kernel.to_string(),
                    b.to_string(),
                    format!("{:.3}", ms * 1e3),
                    format!("{:.3}", ml * 1e3),
                    format!("{mr:.3}x"),
                    stats.peels.to_string(),
                ]);
                report.point(
                    &format!("serial/{arch}/{kernel}/b={b}"),
                    std::time::Duration::from_secs_f64(ms),
                    Some(steps),
                );
                report.point_with_lanes(
                    &format!("lanes/{arch}/{kernel}/b={b}"),
                    std::time::Duration::from_secs_f64(ml),
                    Some(steps),
                    b as u64,
                );
                report.summary(&format!("speedup/{arch}/{kernel}/b={b}"), mr);
            }
        }
    }

    println!("{t}");
    let geo = geomean(&speedups_at_full);
    println!("geometric-mean speedup at batch 64: {geo:.3}x");
    report.summary("geomean_speedup_b64", geo);

    if json_flag_set(&args) {
        report
            .write_to("BENCH_lanes.json")
            .expect("write BENCH_lanes.json");
    }
}
