//! Lanes-vs-serial throughput: the lane-parallel batch engine against
//! serial warm-engine runs, over batch sizes {1, 8, 16, 32, 64}.
//!
//! Each cell times the same population of programs — one seeded kernel
//! vectorized over `b` lanes with per-lane initial registers — both
//! ways: `b` serial `run_reusing` passes on a warm scalar engine, and
//! one `LaneBatchEngine::run_batch` (leader engine pass + bit-sliced
//! lock-step for the rest). Both sides are measured in interleaved
//! rounds with the order rotated per round, per-round ratios, median
//! over rounds — the step_ab drift-cancelling protocol.
//!
//! The grid crosses clean kernels with the branchy pair
//! (`branch_gauntlet`, `spec_storm`) and a bimodal-predictor arch row:
//! those cells exercise epoch-segmented schedule sharing (the leader's
//! mispredicts split the run into epochs the lock-step pass replays
//! across), so the table reports per-run epochs, divergence peels, and
//! replay peels next to each speedup. A final config-major section
//! runs every (arch, kernel) population through the sweep harness's
//! [`LanePool`] — the grouping the grid binaries use.
//!
//! Usage: `lanes_ab [--json] [--quick]`. `--json` writes
//! `BENCH_lanes.json` with per-cell throughput points and
//! `speedup/...` summary rows; `--quick` trims rounds and kernel sizes
//! for CI smoke runs.

use std::time::Instant;
use ultrascalar::{LaneBatchEngine, PredictorKind, ProcConfig, Processor, RunResult, Ultrascalar};
use ultrascalar_bench::kernels::{
    branch_gauntlet_seeded, div_chain_seeded, forward_fan_seeded, spec_storm_seeded,
    wide_div_chain_seeded,
};
use ultrascalar_bench::sweep::{geomean, json_flag_set, parallel_map_with, LanePool};
use ultrascalar_bench::{JsonReport, Table};
use ultrascalar_isa::{workload, Program};

/// Median of a small unsorted sample (averages the middle pair when
/// the length is even).
fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    let m = xs.len() / 2;
    if xs.len() % 2 == 1 {
        xs[m]
    } else {
        (xs[m - 1] + xs[m]) / 2.0
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let rounds = if quick { 3 } else { 7 };
    let iters = if quick { 16 } else { 48 };
    let batch_sizes: &[usize] = &[1, 8, 16, 32, 64];

    println!("== lane-parallel batch vs serial engine runs ==\n");
    println!("{rounds} interleaved rounds per cell; per-round ratio, median over rounds.\n");

    let kernels: Vec<(&str, Program)> = vec![
        ("div_chain", div_chain_seeded(iters)),
        ("wide_div_chain_r128", wide_div_chain_seeded(iters)),
        ("forward_fan", forward_fan_seeded(iters)),
        ("branch_gauntlet", branch_gauntlet_seeded(iters)),
        ("spec_storm", spec_storm_seeded(iters)),
    ];
    let branchy = ["branch_gauntlet", "spec_storm"];
    // The pipelined row exercises lane batching over the hop-banded
    // packed readiness path; the bimodal row is the epoch-segmented
    // regime — the leader mispredicts, the batch replays across each
    // flush boundary, and `spec_storm`'s seeded wrong-path probe peels
    // a few lanes mid-replay.
    let archs: Vec<(&str, ProcConfig)> = vec![
        ("usi", ProcConfig::ultrascalar_i(64)),
        ("usii", ProcConfig::ultrascalar_ii(64)),
        (
            "usi_pipelined",
            ProcConfig::ultrascalar_i(64)
                .with_forwarding(ultrascalar::ForwardModel::Pipelined { per_hop: 1 }),
        ),
        (
            "usi_bimodal",
            ProcConfig::ultrascalar_i(64).with_predictor(PredictorKind::Bimodal(64)),
        ),
    ];

    let mut t = Table::new(vec![
        "arch",
        "kernel",
        "batch",
        "serial ms",
        "lanes ms",
        "speedup",
        "epochs",
        "peels",
        "rpeels",
    ]);
    let mut report = JsonReport::new("lanes_ab");
    let mut speedups_at_full: Vec<f64> = Vec::new();
    let mut branchy_bimodal_at_full: Vec<f64> = Vec::new();

    for (arch, cfg) in &archs {
        for (kernel, prog) in &kernels {
            for &b in batch_sizes {
                let programs = workload::lane_variants(prog, b, 0x1A17E5);
                let refs: Vec<&Program> = programs.iter().collect();

                // Warm both sides outside the measurement.
                let mut serial_engine = Ultrascalar::new(cfg.clone());
                let mut serial_out = RunResult::default();
                let mut lane_engine = LaneBatchEngine::new(cfg.clone());
                let mut lane_out = vec![RunResult::default(); b];
                for p in &refs {
                    serial_engine.run_reusing(p, &mut serial_out);
                }
                lane_engine.run_batch(&refs, &mut lane_out);
                let steps = b as u64 * serial_out.stats.committed;
                let warm = *lane_engine.lane_stats();

                let mut ts: Vec<f64> = Vec::with_capacity(rounds);
                let mut tl: Vec<f64> = Vec::with_capacity(rounds);
                let mut ratio: Vec<f64> = Vec::with_capacity(rounds);
                for round in 0..rounds {
                    let mut s = 0.0;
                    let mut l = 0.0;
                    for which in if round % 2 == 0 { [0, 1] } else { [1, 0] } {
                        if which == 0 {
                            let start = Instant::now();
                            for p in &refs {
                                serial_engine.run_reusing(p, &mut serial_out);
                            }
                            s = start.elapsed().as_secs_f64();
                        } else {
                            let start = Instant::now();
                            lane_engine.run_batch(&refs, &mut lane_out);
                            l = start.elapsed().as_secs_f64();
                        }
                    }
                    ts.push(s);
                    tl.push(l);
                    ratio.push(s / l);
                }
                let (ms, ml) = (median(&mut ts), median(&mut tl));
                let mr = median(&mut ratio);
                // Per-run counters: the timed rounds repeat one
                // deterministic batch, so the post-warmup delta divides
                // evenly across rounds.
                let stats = lane_engine.lane_stats().delta_since(&warm);
                let per = |c: u64| c / rounds as u64;
                if b >= 2 && stats.batches == 0 {
                    eprintln!(
                        "warning: {arch}/{kernel}/b={b} never lane-batched \
                         (fallbacks {})",
                        stats.fallbacks
                    );
                }
                if b == 64 {
                    speedups_at_full.push(mr);
                    if *arch == "usi_bimodal" && branchy.contains(kernel) {
                        branchy_bimodal_at_full.push(mr);
                    }
                }
                t.row(vec![
                    arch.to_string(),
                    kernel.to_string(),
                    b.to_string(),
                    format!("{:.3}", ms * 1e3),
                    format!("{:.3}", ml * 1e3),
                    format!("{mr:.3}x"),
                    per(stats.epochs).to_string(),
                    per(stats.peels).to_string(),
                    per(stats.replay_peels).to_string(),
                ]);
                report.point(
                    &format!("serial/{arch}/{kernel}/b={b}"),
                    std::time::Duration::from_secs_f64(ms),
                    Some(steps),
                );
                report.point_with_lanes(
                    &format!("lanes/{arch}/{kernel}/b={b}"),
                    std::time::Duration::from_secs_f64(ml),
                    Some(steps),
                    b as u64,
                );
                report.summary(&format!("speedup/{arch}/{kernel}/b={b}"), mr);
                if b == 64 {
                    report.summary(
                        &format!("epochs/{arch}/{kernel}/b={b}"),
                        per(stats.epochs) as f64,
                    );
                    report.summary(
                        &format!("replay_peels/{arch}/{kernel}/b={b}"),
                        per(stats.replay_peels) as f64,
                    );
                }
            }
        }
    }

    println!("{t}");
    let geo = geomean(&speedups_at_full);
    println!("geometric-mean speedup at batch 64: {geo:.3}x");
    report.summary("geomean_speedup_b64", geo);
    let geo_bb = geomean(&branchy_bimodal_at_full);
    println!("geometric-mean speedup at batch 64, bimodal × branchy kernels: {geo_bb:.3}x");
    report.summary("geomean_speedup_b64_bimodal_branchy", geo_bb);

    // Config-major section: the same (arch, kernel) populations at
    // batch 64, but dispatched through the sweep harness — each worker
    // holds a `LanePool`, so every cell it claims reuses the warm
    // engine for that cell's config (how `ipc_ablation` and
    // `throughput` lane-batch their multi-seed populations).
    println!("\n== config-major populations through the sweep-harness lane pool ==\n");
    let cells: Vec<(usize, usize)> = (0..archs.len())
        .flat_map(|a| (0..kernels.len()).map(move |k| (a, k)))
        .collect();
    let pooled = parallel_map_with(&cells, LanePool::new, |pool, &(a, k)| {
        let b = 64usize;
        let programs = workload::lane_variants(&kernels[k].1, b, 0x1A17E5);
        let refs: Vec<&Program> = programs.iter().collect();
        let mut out = vec![RunResult::default(); b];
        pool.run_population(&archs[a].1, &refs, &mut out); // warm
        let before = pool.stats();
        let start = Instant::now();
        pool.run_population(&archs[a].1, &refs, &mut out);
        let wall = start.elapsed();
        let cycles: u64 = out.iter().map(|r| r.cycles).sum();
        (wall, cycles, pool.stats().delta_since(&before))
    });
    let mut pt = Table::new(vec![
        "arch", "kernel", "wall ms", "epochs", "lanes", "peels", "rpeels",
    ]);
    for (&(a, k), (wall, cycles, s)) in cells.iter().zip(&pooled) {
        report.point_with_lanes(
            &format!("sweep/{}/{}/b=64", archs[a].0, kernels[k].0),
            *wall,
            Some(*cycles),
            64,
        );
        pt.row(vec![
            archs[a].0.to_string(),
            kernels[k].0.to_string(),
            format!("{:.3}", wall.as_secs_f64() * 1e3),
            s.epochs.to_string(),
            s.lane_runs.to_string(),
            s.peels.to_string(),
            s.replay_peels.to_string(),
        ]);
    }
    println!("{pt}");

    if json_flag_set(&args) {
        report
            .write_to("BENCH_lanes.json")
            .expect("write BENCH_lanes.json");
    }
}
