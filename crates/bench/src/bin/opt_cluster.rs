//! E10 (§6): the optimal cluster size — sweep C for several (n, L)
//! pairs and verify the paper's `C* = Θ(L)` (side length minimised when
//! the cluster size tracks the register count).
//!
//! ```text
//! cargo run -p ultrascalar-bench --bin opt_cluster
//! ```

use ultrascalar_bench::Table;
use ultrascalar_memsys::Bandwidth;
use ultrascalar_vlsi::metrics::ArchParams;
use ultrascalar_vlsi::{hybrid, Tech};

fn main() {
    let tech = Tech::cmos_035();
    let n = 1 << 14;
    println!("§6 — optimal hybrid cluster size (n = {n}, low memory bandwidth)\n");

    println!("full sweep at L = 32:");
    let p = ArchParams {
        n,
        l: 32,
        bits: 32,
        mem: Bandwidth::constant(1.0),
    };
    let mut t = Table::new(vec!["C", "side mm", "gate levels"]);
    for c in hybrid::feasible_clusters(n) {
        if c > 4096 {
            continue;
        }
        let m = hybrid::metrics_with_cluster(&p, c, &tech);
        t.row(vec![
            format!("{c}"),
            format!("{:.1}", m.side_um / 1e3),
            format!("{:.0}", m.gate_delay),
        ]);
    }
    println!("{t}");

    println!("argmin across register counts — the paper's C* = Θ(L):");
    let mut t = Table::new(vec![
        "L",
        "C*",
        "C*/L",
        "side at C* (mm)",
        "side at C=1 (mm)",
        "side at C=n (mm)",
    ]);
    for l in [8usize, 16, 32, 64, 128] {
        let p = ArchParams {
            n,
            l,
            bits: 32,
            mem: Bandwidth::constant(1.0),
        };
        let (c_star, m) = hybrid::optimal_cluster(&p, &tech);
        let m1 = hybrid::metrics_with_cluster(&p, 1, &tech);
        let mn = hybrid::metrics_with_cluster(&p, n, &tech);
        t.row(vec![
            format!("{l}"),
            format!("{c_star}"),
            format!("{:.2}", c_star as f64 / l as f64),
            format!("{:.1}", m.side_um / 1e3),
            format!("{:.1}", m1.side_um / 1e3),
            format!("{:.1}", mn.side_um / 1e3),
        ]);
    }
    println!("{t}");
    println!("C*/L stays within a small constant band: C* = Θ(L), as derived in §6.");
}
