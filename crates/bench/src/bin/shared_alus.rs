//! Shared-ALU ablation (§1 & §7): "in the designs presented here, the
//! ALU is replicated n times for an n-issue processor. In practice,
//! ALUs can be effectively shared … reducing the chip area further."
//! Sweep the Memo 2 scheduler's pool size on the paper's closing
//! configuration (window 128) and report IPC cost vs ALU-area savings.
//!
//! Every (pool size, kernel) simulation is an independent sweep point
//! on the work-stealing harness; the cross-pool "worst slowdown"
//! column (which compares each row against the fully-replicated
//! k = 128 reference) is derived afterwards from the ordered results,
//! so the output is byte-identical to a serial run. `--json` writes
//! per-point wall time and simulated cycles to `BENCH_engine.json`.
//!
//! ```text
//! cargo run -p ultrascalar-bench --bin shared_alus [--json]
//! ```

use ultrascalar::{PredictorKind, ProcConfig, Processor, Ultrascalar};
use ultrascalar_bench::sweep::{json_flag_set, parallel_map_timed, JsonReport};
use ultrascalar_bench::Table;
use ultrascalar_isa::workload;
use ultrascalar_vlsi::Tech;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut report = JsonReport::new("shared_alus");
    let n = 128;
    let tech = Tech::cmos_035();
    println!("shared-ALU ablation — hybrid, window n = {n}, C = 32, bimodal predictor\n");

    // ALU area saved: n−k replicated integer ALUs at 32 bits.
    let alu_area = |k: usize| (k as f64) * 32.0 * tech.alu_bit_area_um2 / 1e6; // mm²

    let kernels = workload::standard_suite(77);
    let pools = [128usize, 64, 32, 16, 8, 4];
    let points: Vec<(usize, usize)> = pools
        .iter()
        .flat_map(|&k| (0..kernels.len()).map(move |j| (k, j)))
        .collect();
    let runs = parallel_map_timed(&points, |&(k, j)| {
        let cfg = ProcConfig::hybrid(n, 32)
            .with_shared_alus(k)
            .with_predictor(PredictorKind::Bimodal(256));
        let r = Ultrascalar::new(cfg).run(&kernels[j].1);
        assert!(r.halted);
        (r.cycles, r.ipc(), r.stats.alu_stalls)
    });
    for (&(k, j), (run, wall)) in points.iter().zip(&runs) {
        report.point(&format!("alus={k}/{}", kernels[j].0), *wall, Some(run.0));
    }

    // The first pool size (full replication) is the slowdown reference.
    let per_pool = |i: usize| &runs[i * kernels.len()..(i + 1) * kernels.len()];
    let reference: Vec<u64> = per_pool(0).iter().map(|(r, _)| r.0).collect();
    let mut t = Table::new(vec![
        "ALUs",
        "ALU area mm²",
        "geomean IPC",
        "worst kernel slowdown",
        "total ALU stalls",
    ]);
    for (i, k) in pools.into_iter().enumerate() {
        let mut log_ipc_sum = 0.0;
        let mut worst = 1.0f64;
        let mut stalls = 0u64;
        for ((cycles, ipc, s), base) in per_pool(i).iter().map(|(r, _)| r).zip(&reference) {
            log_ipc_sum += ipc.ln();
            stalls += s;
            worst = worst.max(*cycles as f64 / *base as f64);
        }
        t.row(vec![
            format!("{k}"),
            format!("{:.1}", alu_area(k)),
            format!("{:.2}", (log_ipc_sum / kernels.len() as f64).exp()),
            format!("{:.2}x", worst),
            format!("{stalls}"),
        ]);
    }
    println!("{t}");
    println!(
        "the paper's projection — \"a hybrid Ultrascalar with a window-size\n\
         of 128 and 16 shared ALUs\" — costs little IPC on these kernels\n\
         while shedding {:.0} mm² of replicated ALU area (0.35 µm).",
        alu_area(128) - alu_area(16)
    );

    if json_flag_set(&args) {
        report.write_default().expect("write BENCH_engine.json");
    }
}
