//! Shared-ALU ablation (§1 & §7): "in the designs presented here, the
//! ALU is replicated n times for an n-issue processor. In practice,
//! ALUs can be effectively shared … reducing the chip area further."
//! Sweep the Memo 2 scheduler's pool size on the paper's closing
//! configuration (window 128) and report IPC cost vs ALU-area savings.
//!
//! ```text
//! cargo run -p ultrascalar-bench --bin shared_alus
//! ```

use ultrascalar::{PredictorKind, ProcConfig, Processor, Ultrascalar};
use ultrascalar_bench::Table;
use ultrascalar_isa::workload;
use ultrascalar_vlsi::Tech;

fn main() {
    let n = 128;
    let tech = Tech::cmos_035();
    println!("shared-ALU ablation — hybrid, window n = {n}, C = 32, bimodal predictor\n");

    // ALU area saved: n−k replicated integer ALUs at 32 bits.
    let alu_area = |k: usize| (k as f64) * 32.0 * tech.alu_bit_area_um2 / 1e6; // mm²

    let kernels = workload::standard_suite(77);
    let mut t = Table::new(vec![
        "ALUs",
        "ALU area mm²",
        "geomean IPC",
        "worst kernel slowdown",
        "total ALU stalls",
    ]);
    let mut reference: Vec<u64> = Vec::new();
    for k in [128usize, 64, 32, 16, 8, 4] {
        let mut log_ipc_sum = 0.0;
        let mut worst = 1.0f64;
        let mut stalls = 0u64;
        let mut cycles_now = Vec::new();
        for (_, prog) in &kernels {
            let cfg = ProcConfig::hybrid(n, 32)
                .with_shared_alus(k)
                .with_predictor(PredictorKind::Bimodal(256));
            let r = Ultrascalar::new(cfg).run(prog);
            assert!(r.halted);
            log_ipc_sum += r.ipc().ln();
            stalls += r.stats.alu_stalls;
            cycles_now.push(r.cycles);
        }
        if reference.is_empty() {
            reference = cycles_now.clone();
        }
        for (now, base) in cycles_now.iter().zip(&reference) {
            worst = worst.max(*now as f64 / *base as f64);
        }
        t.row(vec![
            format!("{k}"),
            format!("{:.1}", alu_area(k)),
            format!("{:.2}", (log_ipc_sum / kernels.len() as f64).exp()),
            format!("{:.2}x", worst),
            format!("{stalls}"),
        ]);
    }
    println!("{t}");
    println!(
        "the paper's projection — \"a hybrid Ultrascalar with a window-size\n\
         of 128 and 16 shared ALUs\" — costs little IPC on these kernels\n\
         while shedding {:.0} mm² of replicated ALU area (0.35 µm).",
        alu_area(128) - alu_area(16)
    );
}
