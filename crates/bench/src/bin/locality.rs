//! E12 (§7): the self-timing back-of-envelope — "half of the
//! communications paths from one station to its successor are
//! completely local. … a program could run faster if most of its
//! instructions depend on their immediate predecessors rather than on
//! far-previous instructions." Measure the producer→consumer
//! forwarding-distance distribution across the kernel suite.
//!
//! ```text
//! cargo run -p ultrascalar-bench --bin locality
//! ```

use ultrascalar::{EnginePool, PredictorKind, ProcConfig};
use ultrascalar_bench::{parallel_map_with, Table};
use ultrascalar_isa::workload;

fn main() {
    println!("§7 — forwarding-distance locality (Ultrascalar I, n = 16)\n");
    let mut t = Table::new(vec![
        "kernel",
        "dist 1",
        "dist 2",
        "dist 3-4",
        "dist ≥5",
        "regfile",
        "local frac",
    ]);
    let mut total_hist = vec![0u64; 64];
    let mut total_reg = 0u64;
    let suite = workload::standard_suite(42);
    let cfg = ProcConfig::ultrascalar_i(16).with_predictor(PredictorKind::Bimodal(64));
    // Each worker keeps one warm engine and rewinds it per kernel.
    let results = parallel_map_with(
        &suite,
        || EnginePool::new(1),
        |pool, (_, prog)| pool.acquire(&cfg).run(prog).clone(),
    );
    for ((name, _), r) in suite.iter().zip(&results) {
        let h = &r.stats.forward_dist;
        let get = |i: usize| h.get(i).copied().unwrap_or(0);
        let d34 = get(3) + get(4);
        let d5p: u64 = h.iter().skip(5).sum();
        for (i, &v) in h.iter().enumerate() {
            if i < total_hist.len() {
                total_hist[i] += v;
            }
        }
        total_reg += r.stats.regfile_reads;
        t.row(vec![
            name.to_string(),
            format!("{}", get(1)),
            format!("{}", get(2)),
            format!("{d34}"),
            format!("{d5p}"),
            format!("{}", r.stats.regfile_reads),
            format!("{:.0}%", 100.0 * r.stats.local_forward_fraction()),
        ]);
    }
    println!("{t}");

    let fw_total: u64 = total_hist.iter().sum();
    let local = total_hist.get(1).copied().unwrap_or(0);
    println!(
        "aggregate: {} in-window forwardings ({} from the immediate\n\
         predecessor = {:.0}%), {} reads from the committed register file.",
        fw_total,
        local,
        100.0 * local as f64 / fw_total.max(1) as f64,
        total_reg
    );
    println!(
        "\nthe paper's estimate — about half of producer→consumer paths are\n\
         station-to-successor — holds for serial kernels and underestimates\n\
         locality for tight loops; a self-timed datapath would exploit it."
    );
}
