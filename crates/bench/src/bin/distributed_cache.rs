//! Distributed-cache study (§7): "One way to reduce the bandwidth
//! requirements may be to use a cache distributed among the clusters.
//! … it is conceivable that a processor could require substantially
//! reduced memory bandwidth, resulting in dramatically reduced chip
//! complexity." Run the suite with per-cluster caches on a tight
//! fat tree and report network traffic, hit rates and the implied
//! Figure 11 area savings.
//!
//! ```text
//! cargo run -p ultrascalar-bench --bin distributed_cache
//! ```

use ultrascalar::{EnginePool, PredictorKind, ProcConfig};
use ultrascalar_bench::{parallel_map_with, Table};
use ultrascalar_isa::workload;
use ultrascalar_memsys::{Bandwidth, CacheConfig, MemConfig, NetworkKind};
use ultrascalar_vlsi::metrics::ArchParams;
use ultrascalar_vlsi::{usi, Tech};

fn main() {
    let n = 16;
    let clusters = 4;
    let base = MemConfig {
        n_leaves: n,
        bandwidth: Bandwidth::constant(2.0),
        banks: 8,
        bank_occupancy: 1,
        hop_latency: 1,
        base_latency: 0,
        words: 1 << 12,
        network: NetworkKind::FatTree,
        cluster_cache: None,
    };
    let cached = base
        .clone()
        .with_cluster_cache(CacheConfig::small(clusters));

    println!(
        "§7 distributed cluster caches — hybrid n = {n}, {clusters} clusters,\n\
         M(n) = 2 network ports, 64-word direct-mapped cache per cluster\n"
    );
    let mut t = Table::new(vec![
        "kernel",
        "cycles (no cache)",
        "cycles (cached)",
        "network loads (no cache)",
        "network loads (cached)",
        "hit rate",
    ]);
    let mut total_saved = 0i64;
    let pred = PredictorKind::Bimodal(64);
    let cfg_plain = ProcConfig::hybrid(n, n / clusters)
        .with_predictor(pred)
        .with_mem(base.clone());
    let cfg_cached = ProcConfig::hybrid(n, n / clusters)
        .with_predictor(pred)
        .with_mem(cached.clone());
    let suite = workload::standard_suite(61);
    // Each worker keeps two warm engines (plain and cached memory
    // hierarchy) and rewinds them per kernel.
    let results = parallel_map_with(
        &suite,
        || EnginePool::new(2),
        |pool, (_, prog)| {
            let plain = pool.acquire(&cfg_plain).run(prog).clone();
            let cached = pool.acquire(&cfg_cached).run(prog).clone();
            (plain, cached)
        },
    );
    for ((name, _), (plain, with_cache)) in suite.iter().zip(&results) {
        assert_eq!(plain.regs, with_cache.regs, "{name}");
        assert_eq!(plain.mem, with_cache.mem, "{name}");
        let plain_net_loads = plain.stats.mem.loads;
        let cached_net_loads = with_cache.stats.mem.cache_misses;
        total_saved += plain_net_loads as i64 - cached_net_loads as i64;
        let hits = with_cache.stats.mem.cache_hits;
        let total = hits + with_cache.stats.mem.cache_misses;
        t.row(vec![
            name.to_string(),
            format!("{}", plain.cycles),
            format!("{}", with_cache.cycles),
            format!("{plain_net_loads}"),
            format!("{cached_net_loads}"),
            format!(
                "{:.0}%",
                if total == 0 {
                    0.0
                } else {
                    100.0 * hits as f64 / total as f64
                }
            ),
        ]);
    }
    println!("{t}");
    println!("{total_saved} load round-trips removed from the fat tree.\n");

    // The Figure 11 implication: if caching lets M(n) drop a regime,
    // the chip shrinks.
    let tech = Tech::cmos_035();
    let big_m = usi::metrics(
        &ArchParams {
            n: 1 << 12,
            l: 32,
            bits: 32,
            mem: Bandwidth::full(),
        },
        &tech,
    );
    let small_m = usi::metrics(
        &ArchParams {
            n: 1 << 12,
            l: 32,
            bits: 32,
            mem: Bandwidth::sublinear_sqrt(0.25),
        },
        &tech,
    );
    println!(
        "Figure 11 implication at n = 4096: dropping M(n) from Θ(n) to\n\
         O(n^0.25) shrinks the Ultrascalar I from {:.0} mm² to {:.0} mm²\n\
         ({:.1}× area) — \"dramatically reduced chip complexity\".",
        big_m.area_mm2(),
        small_m.area_mm2(),
        big_m.area_mm2() / small_m.area_mm2()
    );
}
