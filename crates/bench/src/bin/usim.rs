//! `usim` — the Ultrascalar command-line driver.
//!
//! ```text
//! usim run  <file.asm> [options]    run a program on a processor model
//! usim asm  <file.asm> [--regs N] [--emit out.ubin]
//!                                   assemble; list encodings or write a .ubin
//! usim serve [--socket PATH]        batch mode: JSON requests in, JSON
//!                                   responses out (see crate::serve)
//! usim help                         this text
//!
//! run options:
//!   --arch usi|usii|hybrid   topology (default usi)
//!   --window N / -n N        stations (default 16)
//!   --cluster C / -c C       hybrid cluster size (default n/4)
//!   --predictor P            perfect|nottaken|taken|btfn|bimodal:K
//!   --alus K                 shared-ALU pool (Memo 2 scheduler)
//!   --mem-exp P              memory bandwidth M(s) = s^P (default 1)
//!   --butterfly              butterfly interconnect instead of fat tree
//!   --renaming               memory renaming (store→load forwarding)
//!   --cache                  distributed per-cluster caches
//!   --fetch-width F          cap instruction fetch per cycle
//!   --per-hop H              pipelined forwarding, H cycles per tree hop
//!   --regs N                 logical registers (default 32)
//!   --diagram                print the Figure 3 timing diagram
//!   --occupancy              print the station-occupancy trace
//!   --show-regs              print non-zero final registers
//!   --max-cycles N           cycle budget
//! ```
//!
//! Example:
//! ```text
//! cargo run -p ultrascalar-bench --bin usim -- \
//!     run asm/dot_product.asm --arch hybrid --window 32 --cluster 8 --diagram
//! ```

use std::process::ExitCode;
use ultrascalar_bench::cli;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("usage: usim run|asm|serve [options]   (usim help for details)");
        return ExitCode::FAILURE;
    };
    let result = match cmd.as_str() {
        "run" => cli::parse_run(rest).and_then(|o| {
            let bytes =
                std::fs::read(&o.path).map_err(|e| format!("cannot read {}: {e}", o.path))?;
            let program = cli::load_program(&o.path, &bytes, o.regs)?;
            cli::execute_program(&o, &program).map(|(_, report)| report)
        }),
        "asm" => cli::parse_asm(rest).and_then(|o| {
            let src = std::fs::read_to_string(&o.path)
                .map_err(|e| format!("cannot read {}: {e}", o.path))?;
            match &o.emit {
                Some(out) => {
                    let bytes = cli::emit_binary(&src, o.regs)?;
                    std::fs::write(out, &bytes).map_err(|e| format!("cannot write {out}: {e}"))?;
                    Ok(format!("wrote {} bytes to {out}", bytes.len()))
                }
                None => cli::execute_asm(&src, o.regs),
            }
        }),
        "serve" => {
            return match cli::parse_serve(rest).and_then(|o| ultrascalar_bench::serve::serve(&o)) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("usim: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "help" | "--help" | "-h" => {
            println!("{}", HELP);
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown subcommand `{other}` (run|asm|serve|help)")),
    };
    match result {
        Ok(report) => {
            // Write directly and ignore EPIPE so `usim … | head` exits
            // quietly instead of panicking on the closed pipe.
            use std::io::Write;
            let _ = writeln!(std::io::stdout(), "{report}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("usim: {e}");
            ExitCode::FAILURE
        }
    }
}

const HELP: &str = "usim — Ultrascalar command-line driver

  usim run  <file.asm> [options]    run a program on a processor model
  usim asm  <file.asm> [--regs N] [--emit out.ubin]
                                    assemble; list encodings or write a .ubin
  usim serve [--socket PATH] [--program-cache N] [--engines N]
             [--workers N] [--shards N]
                                    batch mode: newline-delimited JSON requests
                                    on stdin (or the socket), one JSON response
                                    per line; programs are cached and engines
                                    pooled so repeated requests are allocation-
                                    free
  usim run also accepts .ubin object files

serve options:
  --socket PATH            listen on a Unix socket (default: stdin→stdout);
                           socket mode serves many clients at once, one
                           serving thread per connection
  --workers N              max simultaneous serving threads (default: the
                           host's available parallelism)
  --shards N               cache/pool shard count (default: one per worker);
                           each shard has its own lock, so workers contend
                           only on hash collisions
  --program-cache N        assembled-program LRU capacity, total (default 64)
  --engines N              warm-engine LRU capacity, total (default 8);
                           consecutive same-config requests batch onto the
                           worker's held engine without touching the pool

run options:
  --arch usi|usii|hybrid   topology (default usi)
  --window N / -n N        stations (default 16)
  --cluster C / -c C       hybrid cluster size (default n/4)
  --predictor P            perfect|nottaken|taken|btfn|bimodal:K
  --alus K                 shared-ALU pool (Memo 2 scheduler)
  --mem-exp P              memory bandwidth M(s) = s^P (default 1)
  --butterfly              butterfly interconnect instead of fat tree
  --renaming               memory renaming (store→load forwarding)
  --cache                  distributed per-cluster caches
  --fetch-width F          cap instruction fetch per cycle
  --per-hop H              pipelined forwarding, H cycles per tree hop
  --regs N                 logical registers (default 32)
  --diagram                print the Figure 3 timing diagram
  --occupancy              print the station-occupancy trace
  --show-regs              print non-zero final registers
  --max-cycles N           cycle budget";
