//! E11 (§7): three-dimensional packaging bounds — volumes and wire
//! lengths of the three processors in a true 3-D technology, with the
//! fitted growth exponents beside the paper's claims.
//!
//! ```text
//! cargo run -p ultrascalar-bench --bin threed_bounds
//! ```

use ultrascalar_bench::Table;
use ultrascalar_memsys::Bandwidth;
use ultrascalar_vlsi::metrics::ArchParams;
use ultrascalar_vlsi::{fit, threed, Tech};

fn main() {
    let tech = Tech::cmos_035();
    let l = 32;
    println!("§7 — three-dimensional packaging (L = {l}, low bandwidth)\n");

    let mut t = Table::new(vec![
        "n",
        "US-I vol mm³",
        "US-I wire mm",
        "US-II vol mm³",
        "hybrid vol mm³",
    ]);
    let mut pts_v1 = Vec::new();
    let mut pts_w1 = Vec::new();
    let mut pts_v2 = Vec::new();
    let mut pts_vh = Vec::new();
    for k in 4..=14u32 {
        let n = 1usize << k;
        let p = ArchParams {
            n,
            l,
            bits: 32,
            mem: Bandwidth::constant(1.0),
        };
        let u1 = threed::usi_3d(&p, &tech);
        let u2 = threed::usii_3d(&p, &tech);
        let hy = threed::hybrid_3d(&p, &tech);
        pts_v1.push((n as f64, u1.volume_um3));
        pts_w1.push((n as f64, u1.wire_um));
        pts_v2.push((n as f64, u2.volume_um3));
        pts_vh.push((n as f64, hy.volume_um3));
        if k % 2 == 0 {
            t.row(vec![
                format!("{n}"),
                format!("{:.1}", u1.volume_um3 / 1e9),
                format!("{:.2}", u1.wire_um / 1e3),
                format!("{:.1}", u2.volume_um3 / 1e9),
                format!("{:.1}", hy.volume_um3 / 1e9),
            ]);
        }
    }
    println!("{t}");

    let mut t = Table::new(vec!["quantity", "paper claim", "fitted exponent in n"]);
    t.row(vec![
        "US-I volume".to_string(),
        "Θ(n·L^(3/2)) → n^1".to_string(),
        format!("{:.3}", fit::fit_exponent_tail(&pts_v1, 5).exponent),
    ]);
    t.row(vec![
        "US-I wire".to_string(),
        "Θ(n^(1/3)·L^(1/2)) → n^0.33".to_string(),
        format!("{:.3}", fit::fit_exponent_tail(&pts_w1, 5).exponent),
    ]);
    t.row(vec![
        "US-II volume".to_string(),
        "Θ(n² + L²) → n^2".to_string(),
        format!("{:.3}", fit::fit_exponent_tail(&pts_v2, 5).exponent),
    ]);
    t.row(vec![
        "hybrid volume".to_string(),
        "Θ(n·L^(3/4)) → n^1".to_string(),
        format!("{:.3}", fit::fit_exponent_tail(&pts_vh, 5).exponent),
    ]);
    println!("{t}");

    println!("optimal 3-D cluster size: C* = Θ(L^(3/4)) —");
    let mut t = Table::new(vec!["L", "C* (3-D)", "L^(3/4)"]);
    for l in [16usize, 64, 256, 1024] {
        t.row(vec![
            format!("{l}"),
            format!("{}", threed::optimal_cluster_3d(l)),
            format!("{:.1}", (l as f64).powf(0.75)),
        ]);
    }
    println!("{t}");

    println!(
        "hybrid L-scaling: volume Θ(n·L^(3/4)) in 3-D vs area Θ(n·L) in 2-D —\n\
         the third dimension buys a L^(1/4) density factor."
    );
}
