//! The A/B benchmark kernels, shared by `step_ab` and `lanes_ab`.
//!
//! Each kernel pins one engine regime (blocked-station-heavy,
//! forwarding-heavy, …). The `*_seeded` variants read their working
//! value from a register they never initialise — the seed arrives via
//! `Program::init_regs` — so a lane population built with
//! [`ultrascalar_isa::workload::lane_variants`] computes genuinely
//! different values per lane while taking identical branch paths and
//! touching no memory: the lockstep-friendly shape the lane-parallel
//! batch engine is measured on.

use ultrascalar_isa::Program;

/// Dependent `div` chains in a loop — the blocked-station-heavy regime
/// where the packed unready-word gate replaces per-source operand
/// resolution for every stalled station on every scanned cycle.
pub fn div_chain(iters: u32) -> Program {
    let src = format!(
        r"
            li   r2, 3
            li   r3, {iters}
            li   r7, 0
            li   r1, 1000000007
        loop:
            div  r4, r1, r2
            div  r4, r4, r2
            div  r4, r4, r2
            div  r1, r4, r2     ; loop-carried: serial at any window size
            subi r3, r3, 1
            bne  r3, r7, loop
            halt
        "
    );
    ultrascalar_isa::asm::assemble(&src, 8).expect("div_chain kernel assembles")
}

/// [`div_chain`] with the chain value seeded from `r1`'s *initial
/// register* instead of an `li`, and the per-lane seed in `r5`
/// re-injected every iteration (a pure `div` chain collapses any seed
/// to 0 within a few iterations of `/81`): per-lane values forever,
/// identical control flow (the loop counter is still
/// immediate-driven).
pub fn div_chain_seeded(iters: u32) -> Program {
    let src = format!(
        r"
            li   r2, 3
            li   r3, {iters}
            li   r7, 0
        loop:
            div  r4, r1, r2
            div  r4, r4, r2
            div  r4, r4, r2
            div  r1, r4, r2     ; loop-carried: serial at any window size
            add  r1, r1, r5     ; fold the lane seed back in
            subi r3, r3, 1
            bne  r3, r7, loop
            halt
        "
    );
    ultrascalar_isa::asm::assemble(&src, 8).expect("div_chain_seeded kernel assembles")
}

/// The same blocked-heavy regime spread across the upper half of a
/// 128-entry register file: every live operand sits past lane word 0,
/// so the engine's multi-word unready mask does real work (before the
/// lanes went multi-word this kernel fell back to the scalar scan).
pub fn wide_div_chain(iters: u32) -> Program {
    let src = format!(
        r"
            li   r66, 3
            li   r67, {iters}
            li   r71, 0
            li   r65, 1000000007
        loop:
            div  r100, r65, r66
            div  r101, r100, r66
            div  r102, r101, r66
            div  r65, r102, r66     ; loop-carried: serial at any window size
            subi r67, r67, 1
            bne  r67, r71, loop
            halt
        "
    );
    ultrascalar_isa::asm::assemble(&src, 128).expect("wide_div_chain kernel assembles")
}

/// [`wide_div_chain`] seeded from `r65`'s initial register, with the
/// lane seed in `r103` re-injected every iteration (same collapse
/// avoidance as [`div_chain_seeded`]).
pub fn wide_div_chain_seeded(iters: u32) -> Program {
    let src = format!(
        r"
            li   r66, 3
            li   r67, {iters}
            li   r71, 0
        loop:
            div  r100, r65, r66
            div  r101, r100, r66
            div  r102, r101, r66
            div  r65, r102, r66     ; loop-carried: serial at any window size
            add  r65, r65, r103     ; fold the lane seed back in
            subi r67, r67, 1
            bne  r67, r71, loop
            halt
        "
    );
    ultrascalar_isa::asm::assemble(&src, 128).expect("wide_div_chain_seeded kernel assembles")
}

/// Forwarding-heavy fan: a hub register rewritten twice per loop
/// round, each rewrite feeding a fan of dependent accumulator adds.
/// Nearly every operand read in the window resolves against an
/// in-flight writer, so this is the regime where the packed *value*
/// snapshot (`ProcConfig::packed_values`) replaces the scalar
/// last-writer walk on the hottest path — and where the per-cycle
/// last-writer map reset it removes is widest relative to work done.
pub fn forward_fan(iters: u32) -> Program {
    let src = format!(
        r"
            li   r1, 3
            li   r9, {iters}
            li   r10, 0
        loop:
            addi r1, r1, 1
            add  r2, r2, r1
            add  r3, r3, r1
            add  r4, r4, r1
            addi r1, r1, 2
            add  r5, r5, r1
            add  r6, r6, r1
            add  r7, r7, r1
            subi r9, r9, 1
            bne  r9, r10, loop
            halt
        "
    );
    ultrascalar_isa::asm::assemble(&src, 16).expect("forward_fan kernel assembles")
}

/// [`forward_fan`] with the hub seeded from `r1`'s initial register
/// (accumulators already ride init_regs, so lanes fan genuinely
/// different values).
pub fn forward_fan_seeded(iters: u32) -> Program {
    let src = format!(
        r"
            li   r9, {iters}
            li   r10, 0
        loop:
            addi r1, r1, 1
            add  r2, r2, r1
            add  r3, r3, r1
            add  r4, r4, r1
            addi r1, r1, 2
            add  r5, r5, r1
            add  r6, r6, r1
            add  r7, r7, r1
            subi r9, r9, 1
            bne  r9, r10, loop
            halt
        "
    );
    ultrascalar_isa::asm::assemble(&src, 16).expect("forward_fan_seeded kernel assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ultrascalar_isa::{workload, Interp};

    fn final_reg(p: &Program, r: usize) -> u32 {
        let mut m = Interp::new(p, 1 << 12);
        assert!(m.run(1_000_000).halted(), "kernel must halt");
        m.regs[r]
    }

    #[test]
    fn seeded_variants_are_seed_sensitive_and_control_uniform() {
        for (name, prog, reg) in [
            ("div_chain", div_chain_seeded(8), 1),
            ("wide_div_chain", wide_div_chain_seeded(8), 65),
            ("forward_fan", forward_fan_seeded(8), 2),
        ] {
            let pop = workload::lane_variants(&prog, 4, 0xBEEF);
            let outs: Vec<u32> = pop.iter().map(|p| final_reg(p, reg)).collect();
            assert!(
                outs.windows(2).any(|w| w[0] != w[1]),
                "{name}: lanes must compute different values"
            );
            // Identical dynamic step counts: control flow is
            // seed-independent, the property lane batching relies on.
            let steps: Vec<usize> = pop
                .iter()
                .map(|p| {
                    let mut m = Interp::new(p, 1 << 12);
                    let out = m.run(1_000_000);
                    assert!(out.halted());
                    out.steps()
                })
                .collect();
            assert!(
                steps.windows(2).all(|w| w[0] == w[1]),
                "{name}: lockstep-friendly control flow"
            );
        }
    }

    #[test]
    fn unseeded_kernels_halt() {
        for p in [div_chain(4), wide_div_chain(4), forward_fan(4)] {
            let mut m = Interp::new(&p, 1 << 12);
            assert!(m.run(1_000_000).halted());
        }
    }
}
