//! The A/B benchmark kernels, shared by `step_ab` and `lanes_ab`.
//!
//! Each kernel pins one engine regime (blocked-station-heavy,
//! forwarding-heavy, …). The `*_seeded` variants read their working
//! value from a register they never initialise — the seed arrives via
//! `Program::init_regs` — so a lane population built with
//! [`ultrascalar_isa::workload::lane_variants`] computes genuinely
//! different values per lane while taking identical branch paths and
//! touching no memory: the lockstep-friendly shape the lane-parallel
//! batch engine is measured on.

use ultrascalar_isa::Program;

/// Dependent `div` chains in a loop — the blocked-station-heavy regime
/// where the packed unready-word gate replaces per-source operand
/// resolution for every stalled station on every scanned cycle.
pub fn div_chain(iters: u32) -> Program {
    let src = format!(
        r"
            li   r2, 3
            li   r3, {iters}
            li   r7, 0
            li   r1, 1000000007
        loop:
            div  r4, r1, r2
            div  r4, r4, r2
            div  r4, r4, r2
            div  r1, r4, r2     ; loop-carried: serial at any window size
            subi r3, r3, 1
            bne  r3, r7, loop
            halt
        "
    );
    ultrascalar_isa::asm::assemble(&src, 8).expect("div_chain kernel assembles")
}

/// [`div_chain`] with the chain value seeded from `r1`'s *initial
/// register* instead of an `li`, and the per-lane seed in `r5`
/// re-injected every iteration (a pure `div` chain collapses any seed
/// to 0 within a few iterations of `/81`): per-lane values forever,
/// identical control flow (the loop counter is still
/// immediate-driven).
pub fn div_chain_seeded(iters: u32) -> Program {
    let src = format!(
        r"
            li   r2, 3
            li   r3, {iters}
            li   r7, 0
        loop:
            div  r4, r1, r2
            div  r4, r4, r2
            div  r4, r4, r2
            div  r1, r4, r2     ; loop-carried: serial at any window size
            add  r1, r1, r5     ; fold the lane seed back in
            subi r3, r3, 1
            bne  r3, r7, loop
            halt
        "
    );
    ultrascalar_isa::asm::assemble(&src, 8).expect("div_chain_seeded kernel assembles")
}

/// The same blocked-heavy regime spread across the upper half of a
/// 128-entry register file: every live operand sits past lane word 0,
/// so the engine's multi-word unready mask does real work (before the
/// lanes went multi-word this kernel fell back to the scalar scan).
pub fn wide_div_chain(iters: u32) -> Program {
    let src = format!(
        r"
            li   r66, 3
            li   r67, {iters}
            li   r71, 0
            li   r65, 1000000007
        loop:
            div  r100, r65, r66
            div  r101, r100, r66
            div  r102, r101, r66
            div  r65, r102, r66     ; loop-carried: serial at any window size
            subi r67, r67, 1
            bne  r67, r71, loop
            halt
        "
    );
    ultrascalar_isa::asm::assemble(&src, 128).expect("wide_div_chain kernel assembles")
}

/// [`wide_div_chain`] seeded from `r65`'s initial register, with the
/// lane seed in `r103` re-injected every iteration (same collapse
/// avoidance as [`div_chain_seeded`]).
pub fn wide_div_chain_seeded(iters: u32) -> Program {
    let src = format!(
        r"
            li   r66, 3
            li   r67, {iters}
            li   r71, 0
        loop:
            div  r100, r65, r66
            div  r101, r100, r66
            div  r102, r101, r66
            div  r65, r102, r66     ; loop-carried: serial at any window size
            add  r65, r65, r103     ; fold the lane seed back in
            subi r67, r67, 1
            bne  r67, r71, loop
            halt
        "
    );
    ultrascalar_isa::asm::assemble(&src, 128).expect("wide_div_chain_seeded kernel assembles")
}

/// Forwarding-heavy fan: a hub register rewritten twice per loop
/// round, each rewrite feeding a fan of dependent accumulator adds.
/// Nearly every operand read in the window resolves against an
/// in-flight writer, so this is the regime where the packed *value*
/// snapshot (`ProcConfig::packed_values`) replaces the scalar
/// last-writer walk on the hottest path — and where the per-cycle
/// last-writer map reset it removes is widest relative to work done.
pub fn forward_fan(iters: u32) -> Program {
    let src = format!(
        r"
            li   r1, 3
            li   r9, {iters}
            li   r10, 0
        loop:
            addi r1, r1, 1
            add  r2, r2, r1
            add  r3, r3, r1
            add  r4, r4, r1
            addi r1, r1, 2
            add  r5, r5, r1
            add  r6, r6, r1
            add  r7, r7, r1
            subi r9, r9, 1
            bne  r9, r10, loop
            halt
        "
    );
    ultrascalar_isa::asm::assemble(&src, 16).expect("forward_fan kernel assembles")
}

/// [`forward_fan`] with the hub seeded from `r1`'s initial register
/// (accumulators already ride init_regs, so lanes fan genuinely
/// different values).
pub fn forward_fan_seeded(iters: u32) -> Program {
    let src = format!(
        r"
            li   r9, {iters}
            li   r10, 0
        loop:
            addi r1, r1, 1
            add  r2, r2, r1
            add  r3, r3, r1
            add  r4, r4, r1
            addi r1, r1, 2
            add  r5, r5, r1
            add  r6, r6, r1
            add  r7, r7, r1
            subi r9, r9, 1
            bne  r9, r10, loop
            halt
        "
    );
    ultrascalar_isa::asm::assemble(&src, 16).expect("forward_fan_seeded kernel assembles")
}

/// Branch-heavy kernel with mixed-ILP phases: every loop round takes a
/// data-dependent diamond keyed on *shared* pseudo-random `init_mem`
/// words (a bimodal predictor mispredicts the minority direction, so a
/// run splits into many clean epochs), then runs a short high-ILP fan
/// of independent accumulator adds. Control flow and every memory
/// address are functions of shared data only, so a lane population
/// stays lock-step across every epoch boundary — this is the
/// epoch-segmented schedule-sharing regime with clean (peel-free)
/// wrong-path replay.
pub fn branch_gauntlet(iters: u32) -> Program {
    let src = format!(
        r"
            .word 1040187391, 40503, 374761392, 69069, 1013904222, 1664525
            .word 362436069, 521288628, 88675123, 198491317, 668265262, 915488749
            .word 1597334676, 1181783496, 1332534557, 286293354
            li   r2, 7
            li   r3, {iters}
            li   r12, 15
            li   r8, 0
        loop:
            and  r9, r8, r12
            lw   r10, (r9)
            andi r11, r10, 1
            beq  r11, r0, even  ; shared-data direction: ~50/50, unpredictable
            add  r2, r2, r10
            j    join
        even:
            sub  r2, r2, r10
        join:
            add  r4, r4, r2     ; high-ILP phase: independent accumulators
            add  r5, r5, r2
            add  r6, r6, r2
            addi r8, r8, 1
            subi r3, r3, 1
            bne  r3, r0, loop
            halt
        "
    );
    ultrascalar_isa::asm::assemble(&src, 16).expect("branch_gauntlet kernel assembles")
}

/// [`branch_gauntlet`] with the diamond accumulator (and the fan
/// accumulators) seeded from initial registers instead of an `li`:
/// per-lane values in the dataflow, identical shared-data control
/// flow — the population mispredicts, flushes, and replays in
/// lock-step without a single divergence peel.
pub fn branch_gauntlet_seeded(iters: u32) -> Program {
    let src = format!(
        r"
            .word 1040187391, 40503, 374761392, 69069, 1013904222, 1664525
            .word 362436069, 521288628, 88675123, 198491317, 668265262, 915488749
            .word 1597334676, 1181783496, 1332534557, 286293354
            li   r3, {iters}
            li   r12, 15
            li   r8, 0
        loop:
            and  r9, r8, r12
            lw   r10, (r9)
            andi r11, r10, 1
            beq  r11, r0, even  ; shared-data direction: ~50/50, unpredictable
            add  r2, r2, r10
            j    join
        even:
            sub  r2, r2, r10
        join:
            add  r4, r4, r2     ; high-ILP phase: independent accumulators
            add  r5, r5, r2
            add  r6, r6, r2
            addi r8, r8, 1
            subi r3, r3, 1
            bne  r3, r0, loop
            halt
        "
    );
    ultrascalar_isa::asm::assemble(&src, 16).expect("branch_gauntlet_seeded kernel assembles")
}

/// Speculation-storm kernel: committed control flow is uniform across
/// a lane population (every branch keys on shared data), but the
/// occasional mispredicted `beq` — a zero word in the shared stream —
/// sends the machine down a wrong path whose *guarded* probe branch
/// reads a per-lane value. The guard is the branchless mask idiom:
/// `r6 = (r4 != 0) - 1` is all-zeros on the committed path (the probe
/// compares `0 < threshold`, uniformly taken) and all-ones on the
/// wrong path (the probe compares the lane's `r9` against `0xF000_0000`,
/// resolving differently on ~1/16 of lanes). The flushing `beq` waits
/// on a 10-cycle `div`, so the probe resolves — and trains the
/// predictor — well before the flush: the lane batcher must replay it
/// and peel exactly the lanes whose wrong-path direction diverges from
/// the leader's (`LaneBatchStats::replay_peels`).
pub fn spec_storm(iters: u32) -> Program {
    let src = format!(
        r"
            .word 193, 0, 3626149, 41, 0, 524287, 77731, 8191
            .word 0, 2097143, 15485863, 433494437, 0, 87178291, 479001599, 6700417
            li   r9, 305419896  ; wrong-path probe value (seeded variant: init_regs)
            li   r3, {iters}
            li   r12, 15
            li   r13, -16777216 ; 0xFF00_0000: the probe threshold
            li   r15, 1
            li   r8, 0
        loop:
            and  r10, r8, r12
            lw   r4, (r10)
            div  r14, r4, r15   ; identity, but the beq now resolves 10 cycles late
            beq  r14, r0, skip  ; mispredicts whenever a zero word appears
            sltu r5, r0, r4     ; guarded block: 1 on the committed path
            subi r6, r5, 1      ; 0 committed, all-ones on the wrong path
            xor  r11, r9, r2    ; lane probe, re-rolled per epoch (r2 evolves)
            and  r7, r11, r6    ; 0 committed, the lane probe on the wrong path
            bltu r7, r13, skip  ; committed: uniformly taken; wrong path: per-lane
            add  r2, r2, r13
        skip:
            add  r2, r2, r4
            addi r8, r8, 1
            subi r3, r3, 1
            bne  r3, r0, loop
            halt
        "
    );
    ultrascalar_isa::asm::assemble(&src, 16).expect("spec_storm kernel assembles")
}

/// [`spec_storm`] with the wrong-path probe value `r9` (and the
/// accumulator) seeded from initial registers: the committed schedule
/// stays uniform, but replayed wrong paths genuinely diverge per lane,
/// so a bimodal batch run produces `replay_peels > 0` while every
/// remaining lane still inherits the leader's timing.
pub fn spec_storm_seeded(iters: u32) -> Program {
    let src = format!(
        r"
            .word 193, 0, 3626149, 41, 0, 524287, 77731, 8191
            .word 0, 2097143, 15485863, 433494437, 0, 87178291, 479001599, 6700417
            li   r3, {iters}
            li   r12, 15
            li   r13, -16777216 ; 0xFF00_0000: the probe threshold
            li   r15, 1
            li   r8, 0
        loop:
            and  r10, r8, r12
            lw   r4, (r10)
            div  r14, r4, r15   ; identity, but the beq now resolves 10 cycles late
            beq  r14, r0, skip  ; mispredicts whenever a zero word appears
            sltu r5, r0, r4     ; guarded block: 1 on the committed path
            subi r6, r5, 1      ; 0 committed, all-ones on the wrong path
            xor  r11, r9, r2    ; lane probe, re-rolled per epoch (r2 evolves)
            and  r7, r11, r6    ; 0 committed, the lane probe on the wrong path
            bltu r7, r13, skip  ; committed: uniformly taken; wrong path: per-lane
            add  r2, r2, r13
        skip:
            add  r2, r2, r4
            addi r8, r8, 1
            subi r3, r3, 1
            bne  r3, r0, loop
            halt
        "
    );
    ultrascalar_isa::asm::assemble(&src, 16).expect("spec_storm_seeded kernel assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ultrascalar_isa::{workload, Interp};

    fn final_reg(p: &Program, r: usize) -> u32 {
        let mut m = Interp::new(p, 1 << 12);
        assert!(m.run(1_000_000).halted(), "kernel must halt");
        m.regs[r]
    }

    #[test]
    fn seeded_variants_are_seed_sensitive_and_control_uniform() {
        for (name, prog, reg) in [
            ("div_chain", div_chain_seeded(8), 1),
            ("wide_div_chain", wide_div_chain_seeded(8), 65),
            ("forward_fan", forward_fan_seeded(8), 2),
            ("branch_gauntlet", branch_gauntlet_seeded(24), 2),
            ("spec_storm", spec_storm_seeded(24), 2),
        ] {
            let pop = workload::lane_variants(&prog, 4, 0xBEEF);
            let outs: Vec<u32> = pop.iter().map(|p| final_reg(p, reg)).collect();
            assert!(
                outs.windows(2).any(|w| w[0] != w[1]),
                "{name}: lanes must compute different values"
            );
            // Identical dynamic step counts: control flow is
            // seed-independent, the property lane batching relies on.
            let steps: Vec<usize> = pop
                .iter()
                .map(|p| {
                    let mut m = Interp::new(p, 1 << 12);
                    let out = m.run(1_000_000);
                    assert!(out.halted());
                    out.steps()
                })
                .collect();
            assert!(
                steps.windows(2).all(|w| w[0] == w[1]),
                "{name}: lockstep-friendly control flow"
            );
        }
    }

    #[test]
    fn unseeded_kernels_halt() {
        for p in [
            div_chain(4),
            wide_div_chain(4),
            forward_fan(4),
            branch_gauntlet(4),
            spec_storm(4),
        ] {
            let mut m = Interp::new(&p, 1 << 12);
            assert!(m.run(1_000_000).halted());
        }
    }
}
