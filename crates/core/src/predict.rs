//! Branch predictors.
//!
//! The paper assumes a fetch mechanism (trace cache + branch
//! prediction, §2) without fixing a predictor; we provide the standard
//! menu so the misprediction-recovery machinery ("revert from branch
//! misprediction in one clock cycle") can be exercised at any accuracy
//! point, including a *perfect* oracle for pure-dataflow studies.

/// Which predictor a processor uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredictorKind {
    /// Oracle: fetch follows the architecturally correct path
    /// (zero mispredictions).
    Perfect,
    /// Always predict not-taken (fall through).
    NotTaken,
    /// Always predict taken.
    Taken,
    /// Backward-taken / forward-not-taken.
    Btfn,
    /// Bimodal table of 2-bit saturating counters with the given number
    /// of entries (power of two recommended).
    Bimodal(usize),
}

/// Dynamic predictor state (only the bimodal has any).
#[derive(Debug, Clone)]
pub struct Predictor {
    kind: PredictorKind,
    counters: Vec<u8>,
}

impl Predictor {
    /// Instantiate a predictor.
    ///
    /// # Panics
    /// Panics for `Bimodal(0)`.
    pub fn new(kind: PredictorKind) -> Self {
        let counters = match kind {
            PredictorKind::Bimodal(entries) => {
                assert!(entries > 0, "bimodal predictor needs entries");
                vec![1u8; entries] // weakly not-taken
            }
            _ => Vec::new(),
        };
        Predictor { kind, counters }
    }

    /// The kind this predictor was built with.
    pub fn kind(&self) -> PredictorKind {
        self.kind
    }

    /// Forget all training, in place and allocation-free: every bimodal
    /// counter returns to its power-on weakly-not-taken state, exactly
    /// as `Predictor::new(self.kind())` would start.
    pub fn reset(&mut self) {
        self.counters.fill(1);
    }

    /// Predict the direction of the conditional branch at `pc` with the
    /// given target.
    pub fn predict(&self, pc: usize, target: usize) -> bool {
        match self.kind {
            // Perfect prediction is realised in the fetch unit (it
            // replays the golden path); if consulted it behaves like
            // BTFN, but it never is in normal operation.
            PredictorKind::Perfect | PredictorKind::Btfn => target <= pc,
            PredictorKind::NotTaken => false,
            PredictorKind::Taken => true,
            PredictorKind::Bimodal(_) => self.counters[pc % self.counters.len()] >= 2,
        }
    }

    /// Train on a resolved branch.
    pub fn update(&mut self, pc: usize, taken: bool) {
        if let PredictorKind::Bimodal(_) = self.kind {
            let n = self.counters.len();
            let c = &mut self.counters[pc % n];
            if taken {
                *c = (*c + 1).min(3);
            } else {
                *c = c.saturating_sub(1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_predictors() {
        let nt = Predictor::new(PredictorKind::NotTaken);
        assert!(!nt.predict(10, 2));
        let t = Predictor::new(PredictorKind::Taken);
        assert!(t.predict(10, 2));
        let b = Predictor::new(PredictorKind::Btfn);
        assert!(b.predict(10, 2)); // backward: taken
        assert!(!b.predict(10, 20)); // forward: not taken
    }

    #[test]
    fn bimodal_learns_a_loop_branch() {
        let mut p = Predictor::new(PredictorKind::Bimodal(16));
        // Initially weakly not-taken.
        assert!(!p.predict(5, 1));
        // Train taken twice → predicts taken.
        p.update(5, true);
        p.update(5, true);
        assert!(p.predict(5, 1));
        // Saturates: one not-taken doesn't flip it.
        p.update(5, true);
        p.update(5, false);
        assert!(p.predict(5, 1));
        // But repeated not-taken does.
        p.update(5, false);
        p.update(5, false);
        assert!(!p.predict(5, 1));
    }

    #[test]
    fn bimodal_entries_are_independent_mod_table() {
        let mut p = Predictor::new(PredictorKind::Bimodal(4));
        p.update(0, true);
        p.update(0, true);
        assert!(p.predict(0, 0));
        assert!(!p.predict(1, 0)); // untrained entry
        assert!(p.predict(4, 0)); // aliases with pc 0
    }

    #[test]
    #[should_panic(expected = "needs entries")]
    fn zero_entry_bimodal_rejected() {
        let _ = Predictor::new(PredictorKind::Bimodal(0));
    }
}
