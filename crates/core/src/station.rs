//! Execution-station state shared by the processor models.

use ultrascalar_isa::Instr;

/// Lane words in a packed register mask. Four words cover the ISA's
/// entire register space (`Reg` is a `u8`, and programs validate
/// `num_regs <= 256`), so the packed engine path never has to fall
/// back to the scalar scan on account of register-file width.
pub const REG_LANE_WORDS: usize = 4;

/// Registers covered by the packed readiness path: `64 · W` lanes.
pub const MAX_PACKED_REGS: usize = 64 * REG_LANE_WORDS;

/// A per-register bit mask over multi-word lanes: bit `r % 64` of word
/// `r / 64` belongs to register `r` — the engine-side fixed-width form
/// of the `[u64; W]` lane words in `ultrascalar_prefix::packed`.
pub type RegMask = [u64; REG_LANE_WORDS];

/// Word-wise AND over the first `words` lane words (the live prefix
/// for the running program: `num_regs.div_ceil(64)` words; higher
/// words can never be raised and are skipped). This sits on the
/// engine's per-station hot path, so the common narrow widths are
/// spelled out rather than looped — `words` is constant over a run and
/// the match predicts perfectly, keeping a `num_regs <= 64` program at
/// exactly one AND like the original single-word mask.
#[inline(always)]
pub fn mask_intersection(a: &RegMask, b: &RegMask, words: usize) -> RegMask {
    let mut out = [0u64; REG_LANE_WORDS];
    match words {
        1 => out[0] = a[0] & b[0],
        2 => {
            out[0] = a[0] & b[0];
            out[1] = a[1] & b[1];
        }
        _ => {
            for j in 0..REG_LANE_WORDS {
                out[j] = a[j] & b[j];
            }
        }
    }
    out
}

/// True iff any of the first `words` lane words is raised.
#[inline(always)]
pub fn mask_any(m: &RegMask, words: usize) -> bool {
    match words {
        1 => m[0] != 0,
        2 => (m[0] | m[1]) != 0,
        _ => m.iter().any(|&w| w != 0),
    }
}

/// Progress of an instruction's memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemPhase {
    /// Not a memory instruction, or not yet eligible.
    None,
    /// Eligible and waiting for the fat tree / bank to accept.
    Requesting,
    /// Accepted; response outstanding.
    InFlight,
}

/// One occupied execution station (paper Figure 2: "each station
/// includes its own functional units, its own register file, instruction
/// decode logic and control logic"). The per-station register file is
/// not materialised — the engine reconstructs each station's view from
/// program order every cycle, which is exactly what the CSPP datapath
/// computes.
#[derive(Debug, Clone)]
pub struct StationEntry {
    /// Dynamic sequence number (program order, monotone).
    pub seq: u64,
    /// Static instruction index (`>= program.len()` marks the synthetic
    /// halt fetched when the pc falls off the end).
    pub pc: usize,
    /// The decoded instruction.
    pub instr: Instr,
    /// The next pc the fetch unit assumed when it fetched past this
    /// instruction.
    pub predicted_next: usize,
    /// First cycle at which the station may read arguments and issue.
    pub fetched_at: u64,
    /// Cycle the instruction began executing (for memory operations,
    /// the cycle its request was accepted).
    pub issued_at: Option<u64>,
    /// Cycle at whose *end* the result entered the datapath; consumers
    /// may issue from `completed_at + 1`.
    pub completed_at: Option<u64>,
    /// Register result value, if the instruction writes one.
    pub result: Option<u32>,
    /// Memory access progress.
    pub mem: MemPhase,
    /// Resolved branch direction.
    pub taken: Option<bool>,
    /// Effective memory address, recorded when a load/store first
    /// computes it (request offered, or a renaming forward/resolution).
    /// Feeds the flush replay log: wrong-path memory operations shape
    /// the schedule through their addresses, so the lane batcher must
    /// be able to compare a lane's addresses against the leader's.
    pub mem_addr: Option<usize>,
    /// Resolved architectural next pc (branches/jumps; `pc+1` others).
    pub actual_next: Option<usize>,
    /// Lane `r` set iff the instruction reads register `r`, over
    /// [`REG_LANE_WORDS`] lane words (every architectural register has
    /// a lane — the ISA caps register files at [`MAX_PACKED_REGS`]).
    /// Fixed at decode, so per-cycle readiness gating is a word-array
    /// AND against the scan's unready lane words.
    pub src_mask: RegMask,
    /// Cached lower bound on this station's issue cycle, learned the
    /// last time the packed gate found it operand-blocked: the **max**
    /// of its blocking sources' known readiness times (an entry issues
    /// only when *all* sources are ready, so the max of the known ones
    /// bounds it from below; sources with unscheduled producers add no
    /// bound, they can only delay further). While the bound holds, the
    /// scan skips the gate and operand resolution for this entry
    /// outright — the dominant per-cycle cost in deeply blocked
    /// windows. `u64::MAX` means "blocked with no scheduled wake-up".
    pub not_before: u64,
    /// Commit epoch [`not_before`](Self::not_before) was computed in.
    /// The bound is conditioned on producers forwarding in-window: an
    /// in-order commit publishes the committed register file, which
    /// consumers may read from commit+2 — possibly *before* the
    /// forwarding horizon — so any commit invalidates every cached
    /// bound. Flushes only remove younger entries (producers are
    /// fixed) and scheduled completions are immutable, so the epoch
    /// counter only needs to advance on commits.
    pub nb_epoch: u64,
}

impl StationEntry {
    /// A freshly fetched entry.
    pub fn new(seq: u64, pc: usize, instr: Instr, predicted_next: usize, fetched_at: u64) -> Self {
        let mut src_mask: RegMask = [0; REG_LANE_WORDS];
        for r in instr.reads().iter().flatten() {
            src_mask[r.index() / 64] |= 1u64 << (r.index() % 64);
        }
        StationEntry {
            seq,
            pc,
            instr,
            predicted_next,
            fetched_at,
            issued_at: None,
            completed_at: None,
            result: None,
            mem: MemPhase::None,
            taken: None,
            mem_addr: None,
            actual_next: None,
            src_mask,
            // `0 > t` never holds, so a fresh entry always resolves.
            not_before: 0,
            nb_epoch: 0,
        }
    }

    /// Has the result been in the datapath since before cycle `t`
    /// (i.e. may a consumer issue at `t`, may the dealloc CSPP see this
    /// station as finished at the start of `t`)?
    #[inline]
    pub fn done_before(&self, t: u64) -> bool {
        self.completed_at.is_some_and(|c| c < t)
    }

    /// Has execution finished at all (regardless of cycle)?
    #[inline]
    pub fn is_done(&self) -> bool {
        self.completed_at.is_some()
    }

    /// Is this the synthetic halt inserted when the pc runs off the end
    /// of the program?
    #[inline]
    pub fn is_synthetic(&self, program_len: usize) -> bool {
        self.pc >= program_len
    }

    /// Did this branch resolve against its prediction?
    #[inline]
    pub fn mispredicted(&self) -> bool {
        match self.actual_next {
            Some(actual) => self.instr.is_branch() && actual != self.predicted_next,
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ultrascalar_isa::{BranchCond, Reg};

    #[test]
    fn done_before_is_strict() {
        let mut e = StationEntry::new(0, 0, Instr::Nop, 1, 0);
        assert!(!e.done_before(5));
        e.completed_at = Some(4);
        assert!(e.done_before(5));
        assert!(!e.done_before(4));
        assert!(e.is_done());
    }

    #[test]
    fn misprediction_detection() {
        let mut e = StationEntry::new(
            0,
            3,
            Instr::Branch {
                cond: BranchCond::Eq,
                rs1: Reg(0),
                rs2: Reg(0),
                target: 9,
            },
            4, // predicted fall-through
            0,
        );
        assert!(!e.mispredicted()); // unresolved
        e.actual_next = Some(9);
        assert!(e.mispredicted());
        e.actual_next = Some(4);
        assert!(!e.mispredicted());
    }

    #[test]
    fn non_branches_never_mispredict() {
        let mut e = StationEntry::new(0, 0, Instr::Nop, 1, 0);
        e.actual_next = Some(99);
        assert!(!e.mispredicted());
    }

    #[test]
    fn synthetic_detection() {
        let e = StationEntry::new(0, 10, Instr::Halt, 10, 0);
        assert!(e.is_synthetic(10));
        assert!(!e.is_synthetic(11));
    }

    #[test]
    fn src_mask_covers_high_registers() {
        let e = StationEntry::new(
            0,
            0,
            Instr::Alu {
                op: ultrascalar_isa::AluOp::Add,
                rd: Reg(0),
                rs1: Reg(65),
                rs2: Reg(255),
            },
            1,
            0,
        );
        assert_eq!(e.src_mask[0], 0);
        assert_eq!(e.src_mask[1], 1 << 1); // r65 = word 1, bit 1
        assert_eq!(e.src_mask[3], 1 << 63); // r255 = word 3, bit 63
        let unready: RegMask = [0, 1 << 1, 0, 0];
        assert!(mask_any(&mask_intersection(&unready, &e.src_mask, 4), 4));
        let ready: RegMask = [!0, 0, !0, 0];
        assert!(!mask_any(&mask_intersection(&ready, &e.src_mask, 4), 4));
        // Truncated to the live word prefix, higher words drop out.
        assert!(!mask_any(&mask_intersection(&unready, &e.src_mask, 1), 1));
        assert!(mask_any(&mask_intersection(&unready, &e.src_mask, 2), 2));
    }
}
