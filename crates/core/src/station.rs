//! Execution-station state shared by the processor models.

use ultrascalar_isa::Instr;

/// Progress of an instruction's memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemPhase {
    /// Not a memory instruction, or not yet eligible.
    None,
    /// Eligible and waiting for the fat tree / bank to accept.
    Requesting,
    /// Accepted; response outstanding.
    InFlight,
}

/// One occupied execution station (paper Figure 2: "each station
/// includes its own functional units, its own register file, instruction
/// decode logic and control logic"). The per-station register file is
/// not materialised — the engine reconstructs each station's view from
/// program order every cycle, which is exactly what the CSPP datapath
/// computes.
#[derive(Debug, Clone)]
pub struct StationEntry {
    /// Dynamic sequence number (program order, monotone).
    pub seq: u64,
    /// Static instruction index (`>= program.len()` marks the synthetic
    /// halt fetched when the pc falls off the end).
    pub pc: usize,
    /// The decoded instruction.
    pub instr: Instr,
    /// The next pc the fetch unit assumed when it fetched past this
    /// instruction.
    pub predicted_next: usize,
    /// First cycle at which the station may read arguments and issue.
    pub fetched_at: u64,
    /// Cycle the instruction began executing (for memory operations,
    /// the cycle its request was accepted).
    pub issued_at: Option<u64>,
    /// Cycle at whose *end* the result entered the datapath; consumers
    /// may issue from `completed_at + 1`.
    pub completed_at: Option<u64>,
    /// Register result value, if the instruction writes one.
    pub result: Option<u32>,
    /// Memory access progress.
    pub mem: MemPhase,
    /// Resolved branch direction.
    pub taken: Option<bool>,
    /// Resolved architectural next pc (branches/jumps; `pc+1` others).
    pub actual_next: Option<usize>,
    /// Bit `r` set iff the instruction reads register `r` (registers
    /// ≥ 64 are omitted — the packed engine path that consumes this
    /// mask is only enabled when every register fits one lane word).
    /// Fixed at decode, so per-cycle readiness gating is a single
    /// load-and-AND against the scan's unready lane word.
    pub src_mask: u64,
}

impl StationEntry {
    /// A freshly fetched entry.
    pub fn new(seq: u64, pc: usize, instr: Instr, predicted_next: usize, fetched_at: u64) -> Self {
        let src_mask = instr
            .reads()
            .iter()
            .flatten()
            .filter(|r| r.index() < 64)
            .fold(0u64, |m, r| m | 1 << r.index());
        StationEntry {
            seq,
            pc,
            instr,
            predicted_next,
            fetched_at,
            issued_at: None,
            completed_at: None,
            result: None,
            mem: MemPhase::None,
            taken: None,
            actual_next: None,
            src_mask,
        }
    }

    /// Has the result been in the datapath since before cycle `t`
    /// (i.e. may a consumer issue at `t`, may the dealloc CSPP see this
    /// station as finished at the start of `t`)?
    #[inline]
    pub fn done_before(&self, t: u64) -> bool {
        self.completed_at.is_some_and(|c| c < t)
    }

    /// Has execution finished at all (regardless of cycle)?
    #[inline]
    pub fn is_done(&self) -> bool {
        self.completed_at.is_some()
    }

    /// Is this the synthetic halt inserted when the pc runs off the end
    /// of the program?
    #[inline]
    pub fn is_synthetic(&self, program_len: usize) -> bool {
        self.pc >= program_len
    }

    /// Did this branch resolve against its prediction?
    #[inline]
    pub fn mispredicted(&self) -> bool {
        match self.actual_next {
            Some(actual) => self.instr.is_branch() && actual != self.predicted_next,
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ultrascalar_isa::{BranchCond, Reg};

    #[test]
    fn done_before_is_strict() {
        let mut e = StationEntry::new(0, 0, Instr::Nop, 1, 0);
        assert!(!e.done_before(5));
        e.completed_at = Some(4);
        assert!(e.done_before(5));
        assert!(!e.done_before(4));
        assert!(e.is_done());
    }

    #[test]
    fn misprediction_detection() {
        let mut e = StationEntry::new(
            0,
            3,
            Instr::Branch {
                cond: BranchCond::Eq,
                rs1: Reg(0),
                rs2: Reg(0),
                target: 9,
            },
            4, // predicted fall-through
            0,
        );
        assert!(!e.mispredicted()); // unresolved
        e.actual_next = Some(9);
        assert!(e.mispredicted());
        e.actual_next = Some(4);
        assert!(!e.mispredicted());
    }

    #[test]
    fn non_branches_never_mispredict() {
        let mut e = StationEntry::new(0, 0, Instr::Nop, 1, 0);
        e.actual_next = Some(99);
        assert!(!e.mispredicted());
    }

    #[test]
    fn synthetic_detection() {
        let e = StationEntry::new(0, 10, Instr::Halt, 10, 0);
        assert!(e.is_synthetic(10));
        assert!(!e.is_synthetic(11));
    }
}
