//! The paper's contribution: cycle-accurate models of the three
//! scalable superscalar processors, plus a conventional idealized
//! out-of-order baseline.
//!
//! # The three Ultrascalars as one engine
//!
//! The paper's §6 observation — "we can view a cluster as taking on the
//! role of a single 'super' execution station … each cluster behaves
//! just like an execution station in the Ultrascalar I" — means all
//! three processors share one scheduling semantics, differing only in
//! the *granularity* at which window slots are reclaimed:
//!
//! | Processor | Cluster size `C` | Reclaim granularity |
//! |---|---|---|
//! | Ultrascalar I | 1 | single station, wrap-around ring |
//! | Hybrid | `1 < C < n` | whole cluster of `C` stations |
//! | Ultrascalar II | `n` | the entire window (batch refill; the paper's "stations idle waiting for everyone to finish before refilling") |
//!
//! [`engine::Ultrascalar`] implements exactly that, driven by the
//! shared fetch/predict/memory machinery. [`baseline::BaselineOoO`] is
//! an *independent* implementation of a conventional idealized
//! superscalar (rename map, physical registers, broadcast wakeup,
//! in-order ROB retirement); the paper's claim that the Ultrascalar
//! "exploits the same instruction-level parallelism as today's
//! superscalars … exactly what would be produced in a traditional
//! superscalar" is property-tested as cycle-for-cycle equality between
//! `Ultrascalar` with `C = 1` and `BaselineOoO`.
//!
//! # Cycle conventions
//!
//! * An instruction **issues** on the first cycle `t` at which every
//!   source is ready in its station's register-file view, and its
//!   result enters the datapath at the end of cycle
//!   `t + latency − 1`; consumers can issue the following cycle
//!   ("newly written results propagate to all readers in one clock
//!   cycle").
//! * The deallocation / memory-serialisation / commit conditions are
//!   CSPP circuits evaluated on start-of-cycle state, so a station is
//!   reclaimed at the end of the first cycle that *begins* with it and
//!   all older stations finished, and its slot refills (cluster-wide)
//!   the next cycle.
//! * Branch misprediction recovery is the paper's one-cycle scheme:
//!   younger stations are flushed at the end of the resolving cycle and
//!   fetch resumes on the correct path the next cycle; nothing else is
//!   repaired because every station's register view is rebuilt by the
//!   datapath.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod baseline;
pub mod config;
pub mod engine;
pub mod fetch;
pub mod lane;
pub mod latency;
pub mod pool;
pub mod predict;
pub mod processor;
pub mod station;
pub mod stats;
pub mod timing;

pub use baseline::BaselineOoO;
pub use config::{ForwardModel, ProcConfig};
pub use engine::{FlushEvent, FlushedEntry, ReplayLog, Ultrascalar};
pub use lane::{LaneBatchEngine, LaneBatchStats, LaneBatcher, MAX_LANES};
pub use latency::LatencyModel;
pub use pool::{config_shard_hash, EnginePool, PoolStats, PooledEngine, ShardedEnginePool};
pub use predict::PredictorKind;
pub use processor::{Processor, RunResult};
pub use stats::ProcStats;
pub use timing::{render_station_occupancy, render_timing_diagram, InstrTiming};
